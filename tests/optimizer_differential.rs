//! Differential tests for the algebraic expression optimizer: every query
//! shape must return the *same multiset of rows* with the optimizer on
//! (chains fused into one `A_R·A_S` product, labels pushed down as masks,
//! aggregates fed weighted counts) and off (one Traverse op per hop).
//!
//! The graphs are deliberately hostile multigraphs — parallel same-type
//! edges, cross-type parallels, self-loops — because fusion runs on a
//! *counting* semiring: a cell holding `k` parallel edges must contribute
//! `k` rows (or weight `k` into an aggregate), exactly like the unfused
//! plan's per-edge expansion. Row *order* is not part of the contract (the
//! fused plan emits destination-major), so comparisons sort first.
//!
//! A companion golden test snapshots `GRAPH.EXPLAIN` for fused shapes under
//! `tests/golden/explain_optimizer.snap`; regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test optimizer_differential`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use redisgraph_core::{Graph, TraverseStrategy};
use std::path::PathBuf;

const RELS: [&str; 3] = ["T0", "T1", "T2"];
const LABELS: [&str; 2] = ["A", "B"];

/// Build a random multigraph with self-loops and guaranteed parallel edges.
fn random_graph(seed: u64, nodes: u64, edges: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new("opt-diff");
    for _ in 0..nodes {
        let label = LABELS[rng.gen_range(0..LABELS.len())];
        g.add_node(&[label], vec![]);
    }
    for _ in 0..edges {
        let src = rng.gen_range(0..nodes);
        let dst = if rng.gen_bool(0.1) { src } else { rng.gen_range(0..nodes) };
        let rel = RELS[rng.gen_range(0..RELS.len())];
        g.add_edge(src, dst, rel, vec![]).unwrap();
    }
    // Parallel edges and a self-loop regardless of what the RNG produced.
    if nodes >= 2 {
        g.add_edge(0, 1, "T0", vec![]).unwrap();
        g.add_edge(0, 1, "T0", vec![]).unwrap();
        g.add_edge(0, 1, "T1", vec![]).unwrap();
        g.add_edge(1, 1, "T2", vec![]).unwrap();
    }
    g
}

/// Query shapes the optimizer either fuses (chains with unbound
/// intermediates, label masks, weighted aggregates) or must leave alone
/// (bound intermediates, bound edges, cycles) — both kinds have to stay
/// row-identical to the unfused plan.
fn queries() -> Vec<&'static str> {
    vec![
        // Plain 2-hop chains: typed, repeated type, untyped, multi-type.
        "MATCH (a)-[:T0]->(b)-[:T1]->(c) RETURN id(a), id(c)",
        "MATCH (a)-[:T0]->(b)-[:T0]->(c) RETURN id(a), id(c)",
        "MATCH (a)-[]->(b)-[]->(c) RETURN id(a), id(c)",
        "MATCH (a)-[:T0|T1]->(b)-[:T2]->(c) RETURN id(a), id(c)",
        // 3-hop chain.
        "MATCH (a)-[:T0]->(b)-[:T1]->(c)-[:T2]->(d) RETURN id(a), id(d)",
        // Transposed chains: incoming hops, mixed directions.
        "MATCH (a)<-[:T0]-(b)<-[:T1]-(c) RETURN id(a), id(c)",
        "MATCH (a)-[:T0]->(b)<-[:T1]-(c) RETURN id(a), id(c)",
        "MATCH (a)<-[]-(b)<-[]-(c) RETURN count(c)",
        // Label masks: on the source, mid-chain, on the destination, all.
        "MATCH (a:A)-[:T0]->(b)-[:T1]->(c) RETURN id(a), id(c)",
        "MATCH (a)-[:T0]->(b:B)-[:T1]->(c) RETURN id(a), id(c)",
        "MATCH (a)-[:T0]->(b)-[:T1]->(c:B) RETURN id(a), id(c)",
        "MATCH (a:A)-[:T0]->(b:B)-[:T1]->(c:A) RETURN id(a), id(c)",
        // Single hop that fuses only because of the destination label mask.
        "MATCH (a)-[:T0]->(b:B) RETURN id(a), id(b)",
        // Weighted aggregates: the fused plan feeds path *counts* into the
        // accumulator instead of materialising one record per path.
        "MATCH (a)-[:T0]->(b)-[:T1]->(c) RETURN count(c)",
        "MATCH (a)-[]->(b)-[]->(c) RETURN count(*)",
        "MATCH (a)-[:T0]->(b)-[:T1]->(c) RETURN sum(id(c))",
        "MATCH (a)-[:T0]->(b)-[:T1]->(c) RETURN min(id(c)), max(id(c))",
        "MATCH (a:A)-[:T0]->(b)-[:T0]->(c) RETURN id(a), count(c) ORDER BY id(a)",
        "MATCH (a)-[:T0]->(b)-[:T1]->(c) RETURN count(DISTINCT id(c))",
        // Not fusable — the plans must agree here too.
        "MATCH (a)-[:T0]->(b)-[:T1]->(c) RETURN id(a), id(b), id(c)", // live intermediate
        "MATCH (a)-[e:T0]->(b)-[:T1]->(c) RETURN id(e), id(c)",       // bound edge
        "MATCH (a)-[:T0]->(b)-[:T0]->(a) RETURN id(a)",               // cycle (expand into)
        "MATCH (a)-[:T0]->(b)-[:T1]->(c) WHERE id(a) < 5 RETURN id(a), id(c)",
    ]
}

/// Run one query and return its rows as a sorted multiset of debug strings.
fn sorted_rows(g: &mut Graph, optimize: bool, query: &str) -> Vec<String> {
    g.set_optimizer(optimize);
    let rs = g.query(query).expect("query executes");
    let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort_unstable();
    rows
}

#[test]
fn fused_and_unfused_plans_are_row_identical() {
    for seed in 0..4u64 {
        let nodes = 8 + seed * 9; // 8..35 nodes
        let edges = (nodes as usize) * 3;
        for strategy in [TraverseStrategy::Scalar, TraverseStrategy::Batched] {
            let mut g = random_graph(seed, nodes, edges);
            g.set_traverse_strategy(strategy);
            for query in queries() {
                let unfused = sorted_rows(&mut g, false, query);
                let fused = sorted_rows(&mut g, true, query);
                assert_eq!(
                    unfused, fused,
                    "optimizer changed rows on seed {seed} ({strategy:?}): {query}"
                );
            }
        }
    }
}

#[test]
fn fusion_is_correct_on_unflushed_delta_views() {
    // Mutations sit in the DeltaMatrix delta buffers until a flush; fused
    // products must read through the merged view exactly like per-hop
    // traversals. Mutate (including deletes of one of a parallel pair),
    // never flush, and compare again.
    let mut g = random_graph(7, 16, 40);
    g.sync_matrices();
    // Post-flush deltas: more parallel edges plus a deletion.
    g.add_edge(0, 1, "T0", vec![]).unwrap();
    let doomed = g.add_edge(2, 3, "T1", vec![]).unwrap();
    g.add_edge(2, 3, "T1", vec![]).unwrap();
    g.add_edge(3, 3, "T0", vec![]).unwrap();
    assert!(g.delete_edge(doomed));
    for strategy in [TraverseStrategy::Scalar, TraverseStrategy::Batched] {
        g.set_traverse_strategy(strategy);
        for query in queries() {
            let unfused = sorted_rows(&mut g, false, query);
            let fused = sorted_rows(&mut g, true, query);
            assert_eq!(unfused, fused, "delta-view divergence ({strategy:?}): {query}");
        }
    }
}

#[test]
fn readonly_snapshots_honour_the_optimizer_flag() {
    // Lock-free read-only snapshots carry the graph's optimizer setting;
    // fused and unfused snapshots of the same graph must agree.
    let mut g = random_graph(11, 12, 36);
    let query = "MATCH (a)-[:T0]->(b)-[:T1]->(c) RETURN id(a), id(c)";

    g.set_optimizer(true);
    let fused_snap = g.snapshot();
    let mut fused: Vec<String> = fused_snap
        .query_readonly(query)
        .expect("fused snapshot query")
        .rows
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    fused.sort_unstable();

    g.set_optimizer(false);
    let unfused = sorted_rows(&mut g, false, query);
    assert_eq!(unfused, fused);
}

#[test]
fn count_matrix_cache_invalidates_on_mutation() {
    // The fused path memoises counting matrices per epoch; a mutation after
    // a fused query must be visible to the next fused query (stale cache =
    // wrong counts), including a delete that demotes a parallel pair.
    let mut g = Graph::new("cache-inv");
    for _ in 0..3 {
        g.add_node(&["A"], vec![]);
    }
    g.add_edge(0, 1, "T0", vec![]).unwrap();
    g.add_edge(1, 2, "T1", vec![]).unwrap();
    let query = "MATCH (a)-[:T0]->(b)-[:T1]->(c) RETURN count(c)";
    let count = |g: &mut Graph| g.query(query).unwrap().scalar().and_then(|v| v.as_i64()).unwrap();
    assert_eq!(count(&mut g), 1);
    let extra = g.add_edge(0, 1, "T0", vec![]).unwrap(); // parallel pair → 2 paths
    assert_eq!(count(&mut g), 2);
    assert!(g.delete_edge(extra));
    assert_eq!(count(&mut g), 1);
}

// --- EXPLAIN golden snapshots -------------------------------------------

/// Deterministic fixture for the EXPLAIN corpus: labelled nodes with every
/// relationship type present, so no operand degenerates to "unknown type".
fn explain_fixture() -> Graph {
    let mut g = Graph::new("opt-explain");
    for k in 0..6 {
        g.add_node(&[LABELS[k % 2]], vec![]);
    }
    for (src, dst, rel) in
        [(0, 1, "T0"), (1, 2, "T1"), (2, 3, "T2"), (3, 4, "T0"), (4, 5, "T1"), (5, 0, "T2")]
    {
        g.add_edge(src, dst, rel, vec![]).unwrap();
    }
    g
}

const EXPLAIN_CASES: &[&str] = &[
    // Chain fusion: one Conditional Traverse with the full product.
    "MATCH (a)-[:T0]->(b)-[:T1]->(c) RETURN id(a), id(c)",
    "MATCH (a)-[:T0]->(b)-[:T1]->(c)-[:T2]->(d) RETURN count(d)",
    // Source label rides along from the label scan.
    "MATCH (a:A)-[:T0]->(b)-[:T1]->(c) RETURN id(a), id(c)",
    // Mask pushdown: mid-chain and destination labels become `·L_B` masks.
    "MATCH (a)-[:T0]->(b:B)-[:T1]->(c) RETURN id(a), id(c)",
    "MATCH (a)-[:T0]->(b:B) RETURN id(a), id(b)",
    // Transposed (incoming) chain.
    "MATCH (a)<-[:T0]-(b)<-[:T1]-(c) RETURN id(a), id(c)",
    // Multi-type and untyped operands.
    "MATCH (a)-[:T0|T1]->(b)-[:T2]->(c) RETURN id(a), id(c)",
    "MATCH (a)-[]->(b)-[]->(c) RETURN count(c)",
    // A live intermediate keeps the per-hop plan.
    "MATCH (a)-[:T0]->(b)-[:T1]->(c) RETURN id(a), id(b), id(c)",
];

#[test]
fn explain_matches_golden_snapshot() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let path = dir.join("explain_optimizer.snap");

    let mut g = explain_fixture();
    let mut out = String::new();
    for query in EXPLAIN_CASES {
        out.push_str(&format!("query: {query}\n"));
        for (tag, optimize) in [("fused", true), ("unfused", false)] {
            g.set_optimizer(optimize);
            out.push_str(&format!("{tag}:\n"));
            for line in g.explain(query).expect("explain") {
                out.push_str(&format!("  {line}\n"));
            }
        }
        out.push('\n');
    }

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, &out).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it", path.display())
    });
    assert_eq!(expected, out, "EXPLAIN snapshot diverged; review and regenerate if intended");
}
