//! Differential proptest for parameterized queries: a `CYPHER p=… ` header
//! binding `$p` at execution time must be observationally identical to the
//! same query with the value spliced into the text as a literal — on both
//! traversal strategies, both cold (first execution plans from scratch) and
//! warm (second execution reuses the cached skeleton and re-binds).
//!
//! The comparison runs through the full in-process server so the plan cache
//! sits in the loop: a cache that leaked one binding's value into another
//! execution, or a substitution pass that missed an expression position
//! (filters, projections, ORDER BY, UNWIND lists, aggregate arguments),
//! would diverge from the literal-inlined reference. Row order is not part
//! of the contract between the two spellings, so rows are sorted before
//! comparing; headers must match exactly.

use proptest::prelude::*;
use redisgraph_core::TraverseStrategy;
use redisgraph_server::{RedisGraphServer, RespValue, ServerConfig};

/// Seeded server: a ring of `nodes` labelled nodes with ids, names, and a
/// chord so 2-hop traversals fan out.
fn seeded_server(nodes: u64) -> RedisGraphServer {
    let server = RedisGraphServer::new(ServerConfig::default());
    let mut create = String::from("CREATE ");
    for k in 0..nodes {
        if k > 0 {
            create.push_str(", ");
        }
        create.push_str(&format!("(p{k}:Node {{id: {k}, name: 'n{k}'}})"));
    }
    let reply = server.query("g", &create);
    assert!(!matches!(reply, RespValue::Error(_)), "seed failed: {reply}");
    for k in 0..nodes {
        for other in [(k + 1) % nodes, (k + 3) % nodes] {
            let reply = server.query(
                "g",
                &format!(
                    "MATCH (a:Node {{id: {k}}}), (b:Node {{id: {other}}}) CREATE (a)-[:LINK]->(b)"
                ),
            );
            assert!(!matches!(reply, RespValue::Error(_)), "seed failed: {reply}");
        }
    }
    server
}

/// Header plus order-insensitive rows; panics on error replies so a binding
/// bug can never pass as "both sides errored identically by accident".
fn header_and_sorted_rows(reply: &RespValue) -> (RespValue, Vec<String>) {
    let RespValue::Array(sections) = reply else { panic!("not a query reply: {reply}") };
    let RespValue::Array(rows) = &sections[1] else { panic!("no rows section: {reply}") };
    let mut sorted: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    sorted.sort();
    (sections[0].clone(), sorted)
}

fn cached_flag(reply: &RespValue) -> bool {
    let RespValue::Array(sections) = reply else { panic!("not a query reply: {reply}") };
    let RespValue::Array(stats) = &sections[2] else { panic!("no stats footer: {reply}") };
    stats
        .iter()
        .find_map(|l| match l {
            RespValue::BulkString(s) => s.strip_prefix("Cached: ").map(|v| v == "true"),
            _ => None,
        })
        .expect("stats footer must carry a Cached line")
}

/// The query shapes under test, as (parameter spelling, literal spelling)
/// pairs covering every expression position `ExecutionPlan::bind`
/// substitutes into.
fn query_pairs(int_v: i64, name: &str, list: &[i64]) -> Vec<(String, String)> {
    let list_lit =
        format!("[{}]", list.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", "));
    vec![
        // Point filter.
        (
            format!("CYPHER p={int_v} MATCH (n:Node) WHERE n.id = $p RETURN n.id"),
            format!("MATCH (n:Node) WHERE n.id = {int_v} RETURN n.id"),
        ),
        // Range filter over a traversal.
        (
            format!(
                "CYPHER p={int_v} MATCH (s:Node)-[:LINK]->(t) WHERE s.id > $p RETURN s.id, t.id"
            ),
            format!("MATCH (s:Node)-[:LINK]->(t) WHERE s.id > {int_v} RETURN s.id, t.id"),
        ),
        // String equality.
        (
            format!("CYPHER p='{name}' MATCH (n:Node) WHERE n.name = $p RETURN n.id"),
            format!("MATCH (n:Node) WHERE n.name = '{name}' RETURN n.id"),
        ),
        // UNWIND over a list parameter.
        (
            format!("CYPHER p={list_lit} UNWIND $p AS x RETURN x"),
            format!("UNWIND {list_lit} AS x RETURN x"),
        ),
        // Aggregate over a fused 2-hop chain.
        (
            format!(
                "CYPHER p={int_v} MATCH (s:Node)-[:LINK]->()-[:LINK]->(t) \
                 WHERE s.id = $p RETURN count(t)"
            ),
            format!("MATCH (s:Node)-[:LINK]->()-[:LINK]->(t) WHERE s.id = {int_v} RETURN count(t)"),
        ),
        // Parameter in the projection itself, under ORDER BY.
        (
            format!("CYPHER p={int_v} MATCH (n:Node) RETURN n.id, $p ORDER BY n.id"),
            format!("MATCH (n:Node) RETURN n.id, {int_v} ORDER BY n.id"),
        ),
    ]
}

proptest! {
    #[test]
    fn parameterized_matches_literal_inlined_cold_and_cached(
        nodes in 4u64..14,
        int_v in -4i64..14,
        name_sel in 0u64..16,
        list in prop::collection::vec(-10i64..10, 0..5),
    ) {
        // `name` sometimes misses every node on purpose: empty results must
        // agree too.
        let name = format!("n{name_sel}");
        for strategy in [TraverseStrategy::Scalar, TraverseStrategy::Batched] {
            let server = seeded_server(nodes);
            server.graph("g").write().set_traverse_strategy(strategy);
            for (param_text, literal_text) in query_pairs(int_v, &name, &list) {
                let cold = server.query("g", &param_text);
                prop_assert!(!cached_flag(&cold), "first execution must miss: {param_text}");
                let warm = server.query("g", &param_text);
                prop_assert!(cached_flag(&warm), "second execution must hit: {param_text}");
                let reference = server.query("g", &literal_text);

                let cold = header_and_sorted_rows(&cold);
                let warm = header_and_sorted_rows(&warm);
                let reference = header_and_sorted_rows(&reference);
                prop_assert_eq!(
                    &cold, &reference,
                    "cold parameterized run diverged ({:?}): {}", strategy, param_text
                );
                prop_assert_eq!(
                    &warm, &reference,
                    "cached parameterized run diverged ({:?}): {}", strategy, param_text
                );
            }
        }
    }
}
