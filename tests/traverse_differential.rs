//! Differential tests for the two traversal execution strategies: the
//! batched algebraic path (frontier `mxm`) must produce **row-for-row
//! identical** results to the per-record scalar path on every query shape —
//! single hops in every direction, bound edge variables, parallel edges,
//! self-loops, `Expand Into` semi-joins, and variable-length patterns
//! (including `*0..n` and unbounded `*`).
//!
//! Every case runs the same Cypher text twice against the same graph, once
//! per pinned [`TraverseStrategy`], and compares the full result sets
//! (columns, rows, and row order). A third run exercises the batched path
//! over *unflushed* delta matrices (merged `Cow` views) through the
//! read-only executor.
//!
//! Scope note: the store keeps one edge id per `(src, dst, type)` matrix
//! cell, so parallel same-type edges traverse as one row on **both**
//! strategies — these tests pin that the strategies agree, not full
//! openCypher per-edge multiplicity (a ROADMAP follow-on: multi-edge cells).

use rand::{Rng, SeedableRng, StdRng};
use redisgraph_core::{Graph, TraverseStrategy};

const RELS: [&str; 3] = ["T0", "T1", "T2"];
const LABELS: [&str; 2] = ["A", "B"];

/// Build a random multigraph: `nodes` labelled nodes, `edges` random edges
/// over three relationship types, deliberately including self-loops and
/// parallel edges (both same-type and cross-type).
fn random_graph(seed: u64, nodes: u64, edges: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new("diff");
    for _ in 0..nodes {
        let label = LABELS[rng.gen_range(0..LABELS.len())];
        g.add_node(&[label], vec![]);
    }
    for _ in 0..edges {
        let src = rng.gen_range(0..nodes);
        // One edge in ten is a self-loop.
        let dst = if rng.gen_bool(0.1) { src } else { rng.gen_range(0..nodes) };
        let rel = RELS[rng.gen_range(0..RELS.len())];
        g.add_edge(src, dst, rel, vec![]).unwrap();
    }
    // Guarantee at least one parallel same-type pair and one cross-type pair
    // regardless of what the RNG produced.
    if nodes >= 2 {
        g.add_edge(0, 1, "T0", vec![]).unwrap();
        g.add_edge(0, 1, "T0", vec![]).unwrap();
        g.add_edge(0, 1, "T1", vec![]).unwrap();
        g.add_edge(1, 1, "T2", vec![]).unwrap(); // self-loop
    }
    g
}

/// Query shapes covering every traversal variant the planner emits.
fn queries() -> Vec<&'static str> {
    vec![
        // Single hop: untyped / typed / multi-type, all three directions.
        "MATCH (a)-[]->(b) RETURN id(a), id(b)",
        "MATCH (a)-[:T0]->(b) RETURN id(a), id(b)",
        "MATCH (a)<-[:T1]-(b) RETURN id(a), id(b)",
        "MATCH (a)-[:T0|T2]-(b) RETURN id(a), id(b)",
        // Bound edge variables (the edge id must come out of the product).
        "MATCH (a)-[e:T0]->(b) RETURN id(a), id(e), id(b)",
        "MATCH (a)-[e]->(b) RETURN id(e), type(e)",
        "MATCH (a)<-[e]-(b) RETURN id(a), id(e), id(b)",
        // Label-filtered endpoints around the traversal.
        "MATCH (a:A)-[:T1]->(b:B) RETURN id(a), id(b)",
        // Expand Into: both endpoints bound by earlier pattern parts.
        "MATCH (a)-[:T0]->(b), (a)-[:T1]->(b) RETURN id(a), id(b)",
        "MATCH (a)-[:T0]->(b), (a)-[e]->(b) RETURN id(a), id(e), id(b)",
        // Multi-hop chains (each hop is its own Traverse op).
        "MATCH (a)-[:T0]->(b)-[:T1]->(c) RETURN id(a), id(b), id(c)",
        "MATCH (a)-[]->(b)-[]->(c)-[]->(d) RETURN id(a), id(d)",
        // Variable-length: untyped, typed, zero-min, unbounded, incoming.
        "MATCH (a)-[*1..2]->(b) RETURN id(a), id(b)",
        "MATCH (a)-[:T0*1..3]->(b) RETURN id(a), id(b)",
        "MATCH (a)-[*0..2]->(b) RETURN id(a), id(b)",
        "MATCH (a)-[:T1*0..]->(b) RETURN id(a), id(b)",
        "MATCH (a)<-[*1..2]-(b) RETURN id(a), id(b)",
        "MATCH (a)-[*2..2]-(b) RETURN id(a), id(b)",
        // Variable-length Expand Into.
        "MATCH (a)-[:T0]->(b), (a)-[*1..3]->(b) RETURN id(a), id(b)",
        // Aggregation on top (sorted output, exercises the whole pipeline).
        "MATCH (a)-[:T2]->(b) RETURN id(a), count(b) ORDER BY id(a)",
    ]
}

/// Run one query under a pinned strategy and return (columns, rows).
fn run(g: &mut Graph, strategy: TraverseStrategy, query: &str) -> (Vec<String>, String) {
    g.set_traverse_strategy(strategy);
    let rs = g.query(query).expect("query executes");
    (rs.columns.clone(), format!("{:?}", rs.rows))
}

#[test]
fn batched_and_scalar_strategies_are_row_identical() {
    for seed in 0..6u64 {
        let nodes = 8 + seed * 7; // 8..43 nodes
        let edges = (nodes as usize) * 3;
        let mut g = random_graph(seed, nodes, edges);
        for query in queries() {
            let scalar = run(&mut g, TraverseStrategy::Scalar, query);
            let batched = run(&mut g, TraverseStrategy::Batched, query);
            assert_eq!(scalar, batched, "strategies diverged on seed {seed}: {query}");
        }
    }
}

#[test]
fn batched_strategy_reads_unflushed_delta_views() {
    // Mutations stay buffered (huge threshold, no sync): the batched path
    // must answer from the merged Cow views exactly like the scalar path.
    let mut g = random_graph(99, 24, 80);
    g.set_flush_threshold(1_000_000);
    g.add_edge(2, 3, "T0", vec![]).unwrap();
    g.add_edge(3, 2, "T1", vec![]).unwrap();
    assert!(g.has_pending_deltas(), "edges must still be buffered");

    for query in queries() {
        g.set_traverse_strategy(TraverseStrategy::Scalar);
        let scalar = g.query_readonly(query).expect("scalar run");
        g.set_traverse_strategy(TraverseStrategy::Batched);
        let batched = g.query_readonly(query).expect("batched run");
        assert_eq!(
            format!("{:?}", scalar.rows),
            format!("{:?}", batched.rows),
            "strategies diverged on pending-delta graph: {query}"
        );
        assert!(g.has_pending_deltas(), "read-only queries must not flush");
    }
}

#[test]
fn auto_strategy_matches_scalar_on_large_batches() {
    // A graph wide enough that the first traversal sees more records than
    // BATCH_TRAVERSE_MIN_RECORDS, so Auto actually takes the batched path.
    let mut g = random_graph(7, 200, 800);
    for query in [
        "MATCH (a)-[:T0]->(b)-[:T1]->(c) RETURN id(a), id(c)",
        "MATCH (a)-[*1..2]->(b) RETURN count(b)",
    ] {
        let scalar = run(&mut g, TraverseStrategy::Scalar, query);
        let auto = run(&mut g, TraverseStrategy::Auto, query);
        assert_eq!(scalar, auto, "auto diverged from scalar: {query}");
    }
}

#[test]
fn empty_frontier_edge_cases() {
    let mut g = Graph::new("empty");
    // No nodes at all.
    for strategy in [TraverseStrategy::Scalar, TraverseStrategy::Batched] {
        g.set_traverse_strategy(strategy);
        let rs = g.query("MATCH (a)-[:T0]->(b) RETURN id(b)").unwrap();
        assert!(rs.rows.is_empty(), "{strategy:?}");
    }
    // Nodes but no edges; unknown relationship type.
    g.add_node(&["A"], vec![]);
    g.add_node(&["A"], vec![]);
    for strategy in [TraverseStrategy::Scalar, TraverseStrategy::Batched] {
        g.set_traverse_strategy(strategy);
        let rs = g.query("MATCH (a)-[]->(b) RETURN id(b)").unwrap();
        assert!(rs.rows.is_empty(), "{strategy:?}");
        let rs = g.query("MATCH (a)-[:NOPE]->(b) RETURN id(b)").unwrap();
        assert!(rs.rows.is_empty(), "{strategy:?}");
        // Variable-length over an edgeless graph still honours hop 0.
        let rs = g.query("MATCH (a)-[*0..3]->(b) RETURN count(b)").unwrap();
        assert_eq!(format!("{:?}", rs.rows), "[[Int(2)]]", "{strategy:?}");
    }
}
