//! Differential tests for the two traversal execution strategies: the
//! batched algebraic path (frontier `mxm`) must produce **row-for-row
//! identical** results to the per-record scalar path on every query shape —
//! single hops in every direction, bound edge variables, parallel edges,
//! self-loops, `Expand Into` semi-joins, and variable-length patterns
//! (including `*0..n` and unbounded `*`).
//!
//! Every case runs the same Cypher text twice against the same graph, once
//! per pinned [`TraverseStrategy`], and compares the full result sets
//! (columns, rows, and row order). A third run exercises the batched path
//! over *unflushed* delta matrices (merged `Cow` views) through the
//! read-only executor.
//!
//! Parallel same-type edges are fully expanded: the matrix cell keeps one
//! representative edge id and the store's multi-edge side table holds the
//! rest, so `MATCH (a)-[r:R]->(b)` returns one row **per edge** on both
//! strategies. [`single_hop_yields_one_row_per_parallel_edge`] pins that
//! multiplicity against a hand-rolled edge-list oracle (the `baseline` crate
//! dedups parallel edges, so it cannot serve as the oracle here).

use rand::{Rng, SeedableRng, StdRng};
use redisgraph_core::{Graph, TraverseStrategy};

const RELS: [&str; 3] = ["T0", "T1", "T2"];
const LABELS: [&str; 2] = ["A", "B"];

/// Build a random multigraph: `nodes` labelled nodes, `edges` random edges
/// over three relationship types, deliberately including self-loops and
/// parallel edges (both same-type and cross-type).
fn random_graph(seed: u64, nodes: u64, edges: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new("diff");
    // This suite compares the scalar and batched traversal *strategies*; keep
    // the algebraic optimizer out of the picture so both sides execute the
    // same per-hop plan (fused plans are covered by optimizer_differential).
    g.set_optimizer(false);
    for _ in 0..nodes {
        let label = LABELS[rng.gen_range(0..LABELS.len())];
        g.add_node(&[label], vec![]);
    }
    for _ in 0..edges {
        let src = rng.gen_range(0..nodes);
        // One edge in ten is a self-loop.
        let dst = if rng.gen_bool(0.1) { src } else { rng.gen_range(0..nodes) };
        let rel = RELS[rng.gen_range(0..RELS.len())];
        g.add_edge(src, dst, rel, vec![]).unwrap();
    }
    // Guarantee at least one parallel same-type pair and one cross-type pair
    // regardless of what the RNG produced.
    if nodes >= 2 {
        g.add_edge(0, 1, "T0", vec![]).unwrap();
        g.add_edge(0, 1, "T0", vec![]).unwrap();
        g.add_edge(0, 1, "T1", vec![]).unwrap();
        g.add_edge(1, 1, "T2", vec![]).unwrap(); // self-loop
    }
    g
}

/// Query shapes covering every traversal variant the planner emits.
fn queries() -> Vec<&'static str> {
    vec![
        // Single hop: untyped / typed / multi-type, all three directions.
        "MATCH (a)-[]->(b) RETURN id(a), id(b)",
        "MATCH (a)-[:T0]->(b) RETURN id(a), id(b)",
        "MATCH (a)<-[:T1]-(b) RETURN id(a), id(b)",
        "MATCH (a)-[:T0|T2]-(b) RETURN id(a), id(b)",
        // Bound edge variables (the edge id must come out of the product).
        "MATCH (a)-[e:T0]->(b) RETURN id(a), id(e), id(b)",
        "MATCH (a)-[e]->(b) RETURN id(e), type(e)",
        "MATCH (a)<-[e]-(b) RETURN id(a), id(e), id(b)",
        // Label-filtered endpoints around the traversal.
        "MATCH (a:A)-[:T1]->(b:B) RETURN id(a), id(b)",
        // Expand Into: both endpoints bound by earlier pattern parts.
        "MATCH (a)-[:T0]->(b), (a)-[:T1]->(b) RETURN id(a), id(b)",
        "MATCH (a)-[:T0]->(b), (a)-[e]->(b) RETURN id(a), id(e), id(b)",
        // Multi-hop chains (each hop is its own Traverse op).
        "MATCH (a)-[:T0]->(b)-[:T1]->(c) RETURN id(a), id(b), id(c)",
        "MATCH (a)-[]->(b)-[]->(c)-[]->(d) RETURN id(a), id(d)",
        // Variable-length: untyped, typed, zero-min, unbounded, incoming.
        "MATCH (a)-[*1..2]->(b) RETURN id(a), id(b)",
        "MATCH (a)-[:T0*1..3]->(b) RETURN id(a), id(b)",
        "MATCH (a)-[*0..2]->(b) RETURN id(a), id(b)",
        "MATCH (a)-[:T1*0..]->(b) RETURN id(a), id(b)",
        "MATCH (a)<-[*1..2]-(b) RETURN id(a), id(b)",
        "MATCH (a)-[*2..2]-(b) RETURN id(a), id(b)",
        // Variable-length Expand Into.
        "MATCH (a)-[:T0]->(b), (a)-[*1..3]->(b) RETURN id(a), id(b)",
        // Aggregation on top (sorted output, exercises the whole pipeline).
        "MATCH (a)-[:T2]->(b) RETURN id(a), count(b) ORDER BY id(a)",
    ]
}

/// Run one query under a pinned strategy and return (columns, rows).
fn run(g: &mut Graph, strategy: TraverseStrategy, query: &str) -> (Vec<String>, String) {
    g.set_traverse_strategy(strategy);
    let rs = g.query(query).expect("query executes");
    (rs.columns.clone(), format!("{:?}", rs.rows))
}

#[test]
fn batched_and_scalar_strategies_are_row_identical() {
    for seed in 0..6u64 {
        let nodes = 8 + seed * 7; // 8..43 nodes
        let edges = (nodes as usize) * 3;
        let mut g = random_graph(seed, nodes, edges);
        for query in queries() {
            let scalar = run(&mut g, TraverseStrategy::Scalar, query);
            let batched = run(&mut g, TraverseStrategy::Batched, query);
            assert_eq!(scalar, batched, "strategies diverged on seed {seed}: {query}");
        }
    }
}

#[test]
fn single_hop_yields_one_row_per_parallel_edge() {
    // Hand-rolled oracle: record every edge as it is inserted. The `baseline`
    // crate sorts-and-dedups its edge list, so it would under-count here.
    let mut g = Graph::new("multi");
    for _ in 0..4 {
        g.add_node(&["A"], vec![]);
    }
    let mut oracle: Vec<(u64, u64, u64, &str)> = Vec::new(); // (src, edge, dst, rel)
    for &(src, dst, rel) in &[
        (0, 1, "T0"),
        (0, 1, "T0"), // parallel same-type
        (0, 1, "T0"), // triple
        (0, 1, "T1"), // cross-type parallel
        (1, 2, "T0"),
        (2, 2, "T0"), // self-loop
        (2, 2, "T0"), // parallel self-loop
        (3, 0, "T1"),
    ] {
        let e = g.add_edge(src, dst, rel, vec![]).unwrap();
        oracle.push((src, e, dst, rel));
    }

    let expect = |oracle: &[(u64, u64, u64, &str)], rel: Option<&str>| {
        let mut rows: Vec<(u64, u64, u64)> = oracle
            .iter()
            .filter(|(_, _, _, r)| rel.is_none_or(|want| *r == want))
            .map(|&(s, e, d, _)| (s, e, d))
            .collect();
        rows.sort_unstable();
        rows
    };
    let observed = |g: &mut Graph, strategy: TraverseStrategy, query: &str| {
        g.set_traverse_strategy(strategy);
        let rs = g.query(query).expect("query executes");
        let mut rows: Vec<(u64, u64, u64)> = rs
            .rows
            .iter()
            .map(|row| {
                let ints: Vec<u64> = row
                    .iter()
                    .map(|v| {
                        format!("{v:?}")
                            .trim_start_matches("Int(")
                            .trim_end_matches(')')
                            .parse()
                            .unwrap()
                    })
                    .collect();
                (ints[0], ints[1], ints[2])
            })
            .collect();
        rows.sort_unstable();
        rows
    };

    for strategy in [TraverseStrategy::Scalar, TraverseStrategy::Batched] {
        // Typed: three T0 edges between (0,1) → three rows with distinct ids.
        let got = observed(&mut g, strategy, "MATCH (a)-[e:T0]->(b) RETURN id(a), id(e), id(b)");
        assert_eq!(got, expect(&oracle, Some("T0")), "{strategy:?} typed");
        // Untyped: every edge, exactly once.
        let got = observed(&mut g, strategy, "MATCH (a)-[e]->(b) RETURN id(a), id(e), id(b)");
        assert_eq!(got, expect(&oracle, None), "{strategy:?} untyped");
        // No edge variable bound: multiplicity still one row per edge.
        g.set_traverse_strategy(strategy);
        let rs = g.query("MATCH (a)-[:T0]->(b) RETURN id(a), id(b)").unwrap();
        assert_eq!(rs.rows.len(), expect(&oracle, Some("T0")).len(), "{strategy:?} unbound");
        // Incoming direction expands the same parallel cells.
        let rs = g.query("MATCH (b)<-[e:T0]-(a) RETURN id(e)").unwrap();
        assert_eq!(rs.rows.len(), expect(&oracle, Some("T0")).len(), "{strategy:?} incoming");
    }

    // Deleting one parallel edge drops exactly its row; the survivors keep
    // traversing through the re-pointed representative cell.
    let victim = oracle[1].1;
    assert!(g.delete_edge(victim));
    oracle.retain(|&(_, e, _, _)| e != victim);
    for strategy in [TraverseStrategy::Scalar, TraverseStrategy::Batched] {
        let got = observed(&mut g, strategy, "MATCH (a)-[e:T0]->(b) RETURN id(a), id(e), id(b)");
        assert_eq!(got, expect(&oracle, Some("T0")), "{strategy:?} after delete");
    }
}

#[test]
fn batched_strategy_reads_unflushed_delta_views() {
    // Mutations stay buffered (huge threshold, no sync): the batched path
    // must answer from the merged Cow views exactly like the scalar path.
    let mut g = random_graph(99, 24, 80);
    g.set_flush_threshold(1_000_000);
    g.add_edge(2, 3, "T0", vec![]).unwrap();
    g.add_edge(3, 2, "T1", vec![]).unwrap();
    assert!(g.has_pending_deltas(), "edges must still be buffered");

    for query in queries() {
        g.set_traverse_strategy(TraverseStrategy::Scalar);
        let scalar = g.query_readonly(query).expect("scalar run");
        g.set_traverse_strategy(TraverseStrategy::Batched);
        let batched = g.query_readonly(query).expect("batched run");
        assert_eq!(
            format!("{:?}", scalar.rows),
            format!("{:?}", batched.rows),
            "strategies diverged on pending-delta graph: {query}"
        );
        assert!(g.has_pending_deltas(), "read-only queries must not flush");
    }
}

#[test]
fn auto_strategy_matches_scalar_on_large_batches() {
    // A graph wide enough that the first traversal sees more records than
    // BATCH_TRAVERSE_MIN_RECORDS, so Auto actually takes the batched path.
    let mut g = random_graph(7, 200, 800);
    for query in [
        "MATCH (a)-[:T0]->(b)-[:T1]->(c) RETURN id(a), id(c)",
        "MATCH (a)-[*1..2]->(b) RETURN count(b)",
    ] {
        let scalar = run(&mut g, TraverseStrategy::Scalar, query);
        let auto = run(&mut g, TraverseStrategy::Auto, query);
        assert_eq!(scalar, auto, "auto diverged from scalar: {query}");
    }
}

#[test]
fn empty_frontier_edge_cases() {
    let mut g = Graph::new("empty");
    // No nodes at all.
    for strategy in [TraverseStrategy::Scalar, TraverseStrategy::Batched] {
        g.set_traverse_strategy(strategy);
        let rs = g.query("MATCH (a)-[:T0]->(b) RETURN id(b)").unwrap();
        assert!(rs.rows.is_empty(), "{strategy:?}");
    }
    // Nodes but no edges; unknown relationship type.
    g.add_node(&["A"], vec![]);
    g.add_node(&["A"], vec![]);
    for strategy in [TraverseStrategy::Scalar, TraverseStrategy::Batched] {
        g.set_traverse_strategy(strategy);
        let rs = g.query("MATCH (a)-[]->(b) RETURN id(b)").unwrap();
        assert!(rs.rows.is_empty(), "{strategy:?}");
        let rs = g.query("MATCH (a)-[:NOPE]->(b) RETURN id(b)").unwrap();
        assert!(rs.rows.is_empty(), "{strategy:?}");
        // Variable-length over an edgeless graph still honours hop 0.
        let rs = g.query("MATCH (a)-[*0..3]->(b) RETURN count(b)").unwrap();
        assert_eq!(format!("{:?}", rs.rows), "[[Int(2)]]", "{strategy:?}");
    }
}
