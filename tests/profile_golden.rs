//! Golden-file tests for `GRAPH.PROFILE` output shape: each case's annotated
//! operator tree — with the run-to-run wall times redacted to `<ms>` — is
//! snapshotted under `tests/golden/*.snap` and compared verbatim.
//!
//! Every case runs under **both** traversal strategies (scalar row-at-a-time
//! and batched frontier `mxm`) and must produce the *same* redacted tree:
//! the strategy changes how a traversal executes, never the operator shape
//! or the record counts flowing between operators.
//!
//! To (re)generate snapshots after an intentional planner/formatter change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test profile_golden
//! ```
//!
//! and review the diff like any other code change.

use redisgraph_core::{format_profile, Graph, TraverseStrategy};
use std::path::PathBuf;

/// The corpus: name → profiled query. Covers a label scan + expand, a
/// var-length traversal, an aggregate, a WITH-segmented pipeline (the
/// formatter's `--- segment ---` separator), and a profiled write.
const CASES: &[(&str, &str)] = &[
    ("profile_scan_expand", "MATCH (a:Node)-[:LINK]->(b) RETURN id(b)"),
    ("profile_filter_point_read", "MATCH (s:Node)-[:LINK]->(t) WHERE id(s) = 3 RETURN id(t)"),
    ("profile_varlength", "MATCH (s:Node)-[*1..2]->(t) WHERE id(s) = 0 RETURN count(t)"),
    ("profile_aggregate", "MATCH (n:Node) RETURN count(n)"),
    (
        "profile_with_segments",
        "MATCH (a:Node)-[:LINK]->(b) WITH b AS hop MATCH (hop)-[:LINK]->(c) RETURN count(c)",
    ),
    ("profile_create", "CREATE (:Extra {id: 100})-[:LINK]->(:Extra {id: 101})"),
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// A fresh deterministic fixture per (case, strategy): a 12-node ring with
/// +4 chords, so traversals fan out but stay readable in a snapshot.
fn fixture(strategy: TraverseStrategy) -> Graph {
    let mut g = Graph::new("profile-golden");
    g.set_traverse_strategy(strategy);
    let mut create = String::from("CREATE ");
    for k in 0..12 {
        if k > 0 {
            create.push_str(", ");
        }
        create.push_str(&format!("(p{k}:Node {{id: {k}}})"));
    }
    g.query(&create).expect("seed nodes");
    for k in 0..12u64 {
        let next = (k + 1) % 12;
        let chord = (k + 4) % 12;
        g.query(&format!(
            "MATCH (a:Node {{id: {k}}}), (b:Node {{id: {next}}}) CREATE (a)-[:LINK]->(b)"
        ))
        .expect("ring edge");
        g.query(&format!(
            "MATCH (a:Node {{id: {k}}}), (b:Node {{id: {chord}}}) CREATE (a)-[:LINK]->(b)"
        ))
        .expect("chord edge");
    }
    g
}

/// Redact the wall time — the only run-dependent token in a profile line —
/// keeping the operator description and record count verbatim.
fn redact(line: &str) -> String {
    match line.find("Execution time: ") {
        Some(i) => format!("{}Execution time: <ms>", &line[..i]),
        None => line.to_string(),
    }
}

fn render(query: &str, strategy: TraverseStrategy) -> String {
    let mut g = fixture(strategy);
    let (_rows, profiles) = g.profile(query).expect("profiled query");
    let mut out = format!("query: {query}\n");
    for line in format_profile(&profiles) {
        out.push_str(&redact(&line));
        out.push('\n');
    }
    out
}

#[test]
fn profile_output_matches_golden_snapshots_under_both_strategies() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    let mut failures = Vec::new();

    for (name, query) in CASES {
        let scalar = render(query, TraverseStrategy::Scalar);
        let batched = render(query, TraverseStrategy::Batched);
        // Strategy independence first: identical operators, identical record
        // counts — only the (redacted) timings may differ.
        if scalar != batched {
            failures.push(format!(
                "`{name}` diverges between traversal strategies\n--- scalar ---\n{scalar}\n--- batched ---\n{batched}"
            ));
            continue;
        }
        let path = dir.join(format!("{name}.snap"));
        if update {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&path, &scalar).unwrap();
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(expected) if expected == scalar => {}
            Ok(expected) => failures.push(format!(
                "snapshot mismatch for `{name}`\n--- expected ({}) ---\n{expected}\n--- actual ---\n{scalar}",
                path.display()
            )),
            Err(e) => failures.push(format!(
                "missing snapshot {} for `{name}` ({e}); run with UPDATE_GOLDEN=1 to create it",
                path.display()
            )),
        }
    }

    assert!(
        failures.is_empty(),
        "{} profile golden case(s) diverged:\n\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn every_profile_line_is_annotated() {
    // Shape contract independent of the snapshots: every line of every case
    // (segment separators aside) carries both annotations, and profiled
    // queries still return correct results.
    let mut g = fixture(TraverseStrategy::Auto);
    let (rows, profiles) = g.profile("MATCH (n:Node) RETURN count(n)").expect("profile");
    assert_eq!(format!("{}", rows.rows[0][0]), "12");
    assert!(!profiles.is_empty());
    for line in format_profile(&profiles) {
        if line.starts_with("---") {
            continue;
        }
        assert!(
            line.contains("Records produced: ") && line.contains("Execution time: "),
            "unannotated profile line: {line:?}"
        );
    }
}
