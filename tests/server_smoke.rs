//! Multi-threaded server smoke test: concurrent clients push a mixed
//! read/write `GRAPH.QUERY` workload at one graph through the single-threaded
//! dispatcher (`start_dispatcher`) and the module threadpool.
//!
//! What it asserts:
//!
//! * **no deadlock** — every reply arrives within a generous timeout (a stuck
//!   lock or a wedged pool fails the test instead of hanging it);
//! * **writes are not lost** — the final node/edge counts equal exactly what
//!   the writer clients created;
//! * **reads are consistent** — each reader observes monotonically
//!   non-decreasing counts (the workload only adds entities, so a decreasing
//!   count would mean a read saw a torn graph).

use crossbeam::channel::{unbounded, Sender};
use redisgraph_server::server::Request;
use redisgraph_server::{RedisGraphServer, RespValue, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

const WRITERS: usize = 4;
const READERS: usize = 4;
const WRITES_PER_WRITER: usize = 25;
const READS_PER_READER: usize = 40;
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Send one framed GRAPH.QUERY and wait (bounded) for its reply.
fn roundtrip(tx: &Sender<Request>, graph: &str, query: &str) -> RespValue {
    let (reply_tx, reply_rx) = unbounded();
    tx.send(Request {
        command: RespValue::command(&["GRAPH.QUERY", graph, query]),
        reply_to: reply_tx,
    })
    .expect("dispatcher is alive");
    reply_rx
        .recv_timeout(REPLY_TIMEOUT)
        .expect("no reply within timeout — dispatcher or pool deadlocked")
}

/// Pull the single integer cell out of a `count(...)` reply.
fn scalar_count(reply: &RespValue) -> i64 {
    let RespValue::Array(sections) = reply else { panic!("expected an array reply, got {reply}") };
    let RespValue::Array(rows) = &sections[1] else { panic!("bad rows section") };
    let RespValue::Array(row) = &rows[0] else { panic!("bad row") };
    let RespValue::Integer(n) = row[0] else { panic!("bad count cell") };
    n
}

#[test]
fn concurrent_mixed_reads_and_writes_stay_consistent() {
    let server = Arc::new(RedisGraphServer::new(ServerConfig {
        thread_count: 4,
        ..ServerConfig::default()
    }));
    // Anchor node so writers can attach edges with a MATCH + CREATE.
    let seeded = server.query("smoke", "CREATE (:Hub {name: 'hub'})");
    assert!(!matches!(seeded, RespValue::Error(_)), "seed failed: {seeded}");

    let (tx, dispatcher) = server.start_dispatcher();

    let mut clients = Vec::new();
    for w in 0..WRITERS {
        let tx = tx.clone();
        clients.push(std::thread::spawn(move || {
            for i in 0..WRITES_PER_WRITER {
                let query =
                    format!("MATCH (h:Hub) CREATE (:Item {{writer: {w}, seq: {i}}})-[:OF]->(h)");
                let reply = roundtrip(&tx, "smoke", &query);
                assert!(!matches!(reply, RespValue::Error(_)), "write {w}/{i} failed: {reply}");
            }
        }));
    }
    for r in 0..READERS {
        let tx = tx.clone();
        clients.push(std::thread::spawn(move || {
            let mut last = -1i64;
            for i in 0..READS_PER_READER {
                let reply = roundtrip(&tx, "smoke", "MATCH (i:Item)-[:OF]->(:Hub) RETURN count(i)");
                let count = scalar_count(&reply);
                assert!(
                    count >= last,
                    "reader {r} read {i}: count went backwards ({last} -> {count})"
                );
                assert!(
                    count <= (WRITERS * WRITES_PER_WRITER) as i64,
                    "reader {r} read {i}: impossible count {count}"
                );
                last = count;
            }
        }));
    }
    for client in clients {
        client.join().expect("client thread panicked");
    }

    // Every write must be visible once the clients are done.
    let expected = (WRITERS * WRITES_PER_WRITER) as i64;
    let final_count = scalar_count(&roundtrip(&tx, "smoke", "MATCH (i:Item) RETURN count(i)"));
    assert_eq!(final_count, expected, "lost or duplicated writes");
    let edge_count =
        scalar_count(&roundtrip(&tx, "smoke", "MATCH (:Item)-[r:OF]->(:Hub) RETURN count(r)"));
    assert_eq!(edge_count, expected, "edge count diverged from node count");

    // The store agrees with the Cypher view (+1 for the hub node).
    {
        let graph = server.graph("smoke");
        let guard = graph.read();
        assert_eq!(guard.node_count() as i64, expected + 1);
        assert_eq!(guard.edge_count() as i64, expected);
    }

    // Clean shutdown: dropping the request channel stops the dispatcher.
    drop(tx);
    dispatcher.join().expect("dispatcher thread panicked");
}

/// Delta-matrix stress: a tiny `DELTA_MAX_PENDING_CHANGES` makes writer
/// threads trip matrix flushes constantly, and every read query crosses the
/// server's read barrier (which itself takes the write lock to flush) while
/// other readers and writers hammer the same graph. Asserts the same
/// bounded-timeout no-deadlock, lost-write, and monotonic-read guarantees as
/// the plain smoke test, plus that deletes interleaved with pending inserts
/// never corrupt the counts.
#[test]
fn delta_flushes_under_concurrent_mixed_traffic() {
    let server = Arc::new(RedisGraphServer::new(ServerConfig {
        thread_count: 4,
        delta_max_pending_changes: 4, // force mid-stream flushes
        ..ServerConfig::default()
    }));
    let seeded = server.query("delta", "CREATE (:Hub {name: 'hub'})");
    assert!(!matches!(seeded, RespValue::Error(_)), "seed failed: {seeded}");
    // The knob round-trips over the wire.
    let got =
        server.handle(&RespValue::command(&["GRAPH.CONFIG", "GET", "DELTA_MAX_PENDING_CHANGES"]));
    let RespValue::Array(kv) = got else { panic!("bad GRAPH.CONFIG GET reply") };
    assert_eq!(kv[1], RespValue::Integer(4));

    let (tx, dispatcher) = server.start_dispatcher();

    let mut clients = Vec::new();
    for w in 0..WRITERS {
        let tx = tx.clone();
        clients.push(std::thread::spawn(move || {
            for i in 0..WRITES_PER_WRITER {
                // Two nodes + one edge per write: enough churn that the
                // 4-change threshold flushes inside the write query itself.
                let query = format!(
                    "MATCH (h:Hub) CREATE (:Item {{writer: {w}, seq: {i}}})-[:OF]->(h), \
                     (:Scratch {{writer: {w}, seq: {i}}})"
                );
                let reply = roundtrip(&tx, "delta", &query);
                assert!(!matches!(reply, RespValue::Error(_)), "write {w}/{i} failed: {reply}");
                // Delete the scratch node again while other writers keep the
                // buffers dirty (delete-with-pending-inserts under load).
                let query = format!("MATCH (s:Scratch {{writer: {w}, seq: {i}}}) DETACH DELETE s");
                let reply = roundtrip(&tx, "delta", &query);
                assert!(!matches!(reply, RespValue::Error(_)), "delete {w}/{i} failed: {reply}");
            }
        }));
    }
    for r in 0..READERS {
        let tx = tx.clone();
        clients.push(std::thread::spawn(move || {
            let mut last = -1i64;
            for i in 0..READS_PER_READER {
                // Forces the read barrier (and under it, a flush) mid-stream.
                let reply = roundtrip(&tx, "delta", "MATCH (i:Item)-[:OF]->(:Hub) RETURN count(i)");
                let count = scalar_count(&reply);
                assert!(
                    count >= last,
                    "reader {r} read {i}: count went backwards ({last} -> {count})"
                );
                assert!(
                    count <= (WRITERS * WRITES_PER_WRITER) as i64,
                    "reader {r} read {i}: impossible count {count}"
                );
                last = count;
            }
        }));
    }
    for client in clients {
        client.join().expect("client thread panicked");
    }

    let expected = (WRITERS * WRITES_PER_WRITER) as i64;
    let final_count = scalar_count(&roundtrip(&tx, "delta", "MATCH (i:Item) RETURN count(i)"));
    assert_eq!(final_count, expected, "lost or duplicated writes");
    let scratch_count = scalar_count(&roundtrip(&tx, "delta", "MATCH (s:Scratch) RETURN count(s)"));
    assert_eq!(scratch_count, 0, "scratch nodes must all be deleted");
    let edge_count =
        scalar_count(&roundtrip(&tx, "delta", "MATCH (:Item)-[r:OF]->(:Hub) RETURN count(r)"));
    assert_eq!(edge_count, expected, "edge count diverged from node count");

    // The store agrees with the Cypher view (+1 for the hub node).
    {
        let graph = server.graph("delta");
        let guard = graph.read();
        assert_eq!(guard.node_count() as i64, expected + 1);
        assert_eq!(guard.edge_count() as i64, expected);
    }

    drop(tx);
    dispatcher.join().expect("dispatcher thread panicked");
}

#[test]
fn dispatcher_survives_malformed_queries_under_load() {
    let server = Arc::new(RedisGraphServer::new(ServerConfig {
        thread_count: 2,
        ..ServerConfig::default()
    }));
    server.query("smoke", "CREATE (:Hub)");
    let (tx, dispatcher) = server.start_dispatcher();

    let mut clients = Vec::new();
    for c in 0..4 {
        let tx = tx.clone();
        clients.push(std::thread::spawn(move || {
            for i in 0..20 {
                if (c + i) % 3 == 0 {
                    // Malformed on purpose: must produce an error reply, not
                    // poison the graph lock or kill the worker.
                    let reply = roundtrip(&tx, "smoke", "MATCH (h:Hub RETURN h");
                    assert!(matches!(reply, RespValue::Error(_)));
                } else {
                    let reply = roundtrip(&tx, "smoke", "MATCH (h:Hub) RETURN count(h)");
                    assert_eq!(scalar_count(&reply), 1);
                }
            }
        }));
    }
    for client in clients {
        client.join().expect("client thread panicked");
    }
    drop(tx);
    dispatcher.join().expect("dispatcher thread panicked");
}
