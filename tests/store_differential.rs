//! Whole-store differential proptest: the delta-matrix write path must be
//! observationally identical to eager flushing at every level of the stack.
//!
//! Each case runs one random workload of `add_node` / `add_edge` /
//! `delete_edge` / `delete_node` / property writes / explicit flushes against
//! three models simultaneously:
//!
//! * **delta** — a [`Graph`] with a small flush threshold, so automatic
//!   flushes trigger at arbitrary points mid-workload;
//! * **eager** — a [`Graph`] with threshold 1 plus an explicit
//!   `sync_matrices()` after every mutation (the pre-delta behaviour);
//! * **baseline** — the adjacency-list oracle from `crates/baseline`,
//!   rebuilt from the live edge set at every checkpoint (no matrices at all).
//!
//! At random checkpoints (and always at the end) the harness asserts equal
//! adjacency / transpose / relation / label matrices, equal Cypher query
//! results on both the write and the read-only paths — including through an
//! epoch [`GraphSnapshot`] — equal `CALL algo.*` procedure outputs, and
//! k-hop counts that agree with the baseline BFS.
//!
//! Two further (non-property) tests pin the MVCC semantics the server's
//! lock-free read path depends on: a snapshot pinned at epoch N answers
//! identically before, while, and after a concurrent writer publishes epoch
//! N+1; and a write-heavy flush loop reclaims superseded epochs instead of
//! accumulating them.

use baseline::AdjacencyListGraph;
use proptest::prelude::*;
use redisgraph_core::{Graph, Value};

/// One scripted workload step, decoded from a generated tuple.
#[derive(Debug, Clone, Copy)]
enum Step {
    AddNode { label_sel: u64 },
    AddEdge { src_sel: u64, dst_sel: u64, rel_sel: u64 },
    DeleteEdge { edge_sel: u64 },
    DeleteNode { node_sel: u64 },
    SetProp { node_sel: u64, value: u64 },
    Flush,
    Checkpoint,
}

fn decode((kind, a, b, c): (u8, u64, u64, u64)) -> Step {
    match kind {
        // Node/edge creation is over-weighted so graphs actually grow.
        0 | 1 => Step::AddNode { label_sel: a },
        2..=5 => Step::AddEdge { src_sel: a, dst_sel: b, rel_sel: c },
        6 => Step::DeleteEdge { edge_sel: a },
        7 => Step::DeleteNode { node_sel: a },
        8 => Step::SetProp { node_sel: a, value: b },
        9 => Step::Flush,
        _ => Step::Checkpoint,
    }
}

fn steps() -> impl Strategy<Value = Vec<(u8, u64, u64, u64)>> {
    prop::collection::vec((0u8..11, 0u64..1000, 0u64..1000, 0u64..3), 0..60)
}

const LABELS: [&str; 2] = ["A", "B"];
const RELS: [&str; 3] = ["R0", "R1", "R2"];

/// Mirror of the live entity state, used to drive both graphs identically and
/// to rebuild the baseline oracle at checkpoints.
#[derive(Default)]
struct Shadow {
    nodes: Vec<u64>,
    edges: Vec<(u64, u64, u64)>, // (edge id, src, dst)
}

/// Apply one step to both graphs (and the shadow). Both graphs run exactly
/// the same calls; the eager one is additionally flushed after every step.
fn apply(step: Step, delta: &mut Graph, eager: &mut Graph, shadow: &mut Shadow) -> bool {
    let did_mutate = match step {
        Step::AddNode { label_sel } => {
            let label = LABELS[(label_sel % 2) as usize];
            let props = vec![("v", Value::Int(label_sel as i64))];
            let id_d = delta.add_node(&[label], props.clone());
            let id_e = eager.add_node(&[label], props);
            assert_eq!(id_d, id_e, "node id allocation diverged");
            shadow.nodes.push(id_d);
            true
        }
        Step::AddEdge { src_sel, dst_sel, rel_sel } => {
            if shadow.nodes.is_empty() {
                return false;
            }
            let src = shadow.nodes[(src_sel as usize) % shadow.nodes.len()];
            let dst = shadow.nodes[(dst_sel as usize) % shadow.nodes.len()];
            let rel = RELS[(rel_sel % 3) as usize];
            let id_d = delta.add_edge(src, dst, rel, vec![]).expect("live endpoints");
            let id_e = eager.add_edge(src, dst, rel, vec![]).expect("live endpoints");
            assert_eq!(id_d, id_e, "edge id allocation diverged");
            shadow.edges.push((id_d, src, dst));
            true
        }
        Step::DeleteEdge { edge_sel } => {
            if shadow.edges.is_empty() {
                return false;
            }
            let idx = (edge_sel as usize) % shadow.edges.len();
            let (eid, _, _) = shadow.edges.swap_remove(idx);
            assert_eq!(delta.delete_edge(eid), eager.delete_edge(eid));
            true
        }
        Step::DeleteNode { node_sel } => {
            if shadow.nodes.is_empty() {
                return false;
            }
            let idx = (node_sel as usize) % shadow.nodes.len();
            let nid = shadow.nodes.swap_remove(idx);
            assert_eq!(delta.delete_node(nid), eager.delete_node(nid));
            shadow.edges.retain(|&(_, s, d)| s != nid && d != nid);
            true
        }
        Step::SetProp { node_sel, value } => {
            if shadow.nodes.is_empty() {
                return false;
            }
            let nid = shadow.nodes[(node_sel as usize) % shadow.nodes.len()];
            let v = Value::Int(value as i64);
            assert_eq!(
                delta.set_node_property(nid, "v", v.clone()),
                eager.set_node_property(nid, "v", v)
            );
            true
        }
        Step::Flush => {
            delta.sync_matrices(); // flush-at-arbitrary-point
            false
        }
        Step::Checkpoint => false,
    };
    if did_mutate {
        eager.sync_matrices(); // the eager oracle never buffers
    }
    did_mutate
}

/// Queries whose results must match between the two graphs at checkpoints.
const CHECK_QUERIES: [&str; 6] = [
    "MATCH (n) RETURN count(n)",
    "MATCH (a:A) RETURN count(a)",
    "MATCH (a)-[:R0]->(b) RETURN count(b)",
    "MATCH (a)-[r]->(b) RETURN count(r)",
    "MATCH (a:A)-[*1..3]->(b) RETURN count(DISTINCT b)",
    "MATCH (a)<-[:R1]-(b) RETURN count(b)",
];

/// Procedures whose row sets must match at checkpoints.
const CHECK_PROCS: [&str; 2] = [
    "CALL algo.wcc() YIELD node, component RETURN node, component ORDER BY node",
    "CALL algo.triangles() YIELD triangles RETURN triangles",
];

fn checkpoint(delta: &Graph, eager: &Graph, shadow: &Shadow) -> Result<(), TestCaseError> {
    prop_assert_eq!(delta.node_count(), eager.node_count());
    prop_assert_eq!(delta.edge_count(), eager.edge_count());

    // Matrix-level equality: merged views of every matrix, element for element.
    prop_assert_eq!(
        delta.adjacency_matrix().to_triples(),
        eager.adjacency_matrix().to_triples(),
        "adjacency diverged"
    );
    prop_assert_eq!(
        delta.adjacency_matrix_t().to_triples(),
        eager.adjacency_matrix_t().to_triples(),
        "adjacency transpose diverged"
    );
    for rel in RELS {
        if let Some(id) = delta.schema.rel_type_id(rel) {
            let d = delta.relation_matrix(id).expect("exists").to_triples();
            let e = eager.relation_matrix(id).expect("exists").to_triples();
            prop_assert_eq!(d, e, "relation matrix {} diverged", rel);
        }
    }
    for label in LABELS {
        prop_assert_eq!(
            delta.nodes_with_label(label),
            eager.nodes_with_label(label),
            "label {} diverged",
            label
        );
    }

    // Query-level equality, on the read-only path (merged views) of the delta
    // graph versus the write path of the eager one.
    for q in CHECK_QUERIES {
        let d = delta.query_readonly(q).map(|rs| rs.rows);
        let e = eager.query_readonly(q).map(|rs| rs.rows);
        prop_assert_eq!(d.unwrap(), e.unwrap(), "query `{}` diverged", q);
    }
    for q in CHECK_PROCS {
        let d = delta.query_readonly(q).map(|rs| rs.rows);
        let e = eager.query_readonly(q).map(|rs| rs.rows);
        prop_assert_eq!(d.unwrap(), e.unwrap(), "procedure `{}` diverged", q);
    }

    // The epoch-snapshot read path (what the server actually serves reads
    // from): a snapshot taken now must answer exactly like the live graphs,
    // delta buffers and all.
    let snap = delta.snapshot();
    for q in CHECK_QUERIES {
        let s = snap.query_readonly(q).map(|rs| rs.rows);
        let e = eager.query_readonly(q).map(|rs| rs.rows);
        prop_assert_eq!(s.unwrap(), e.unwrap(), "snapshot query `{}` diverged", q);
    }

    // k-hop counts agree with the pointer-chasing baseline rebuilt from the
    // live edge set (a matrix-free oracle).
    if !shadow.nodes.is_empty() {
        let max_id = shadow.nodes.iter().copied().max().unwrap_or(0) + 1;
        let mut oracle = AdjacencyListGraph::from_edge_list(max_id, &[]);
        let mut dedup: Vec<(u64, u64)> =
            shadow.edges.iter().map(|&(_, s, d)| (s, d)).filter(|&(s, d)| s != d).collect();
        dedup.sort_unstable();
        dedup.dedup();
        for (s, d) in dedup {
            oracle.add_edge(s, d);
        }
        for &src in shadow.nodes.iter().take(5) {
            for k in [1u32, 3] {
                prop_assert_eq!(
                    delta.khop_count(src, k),
                    oracle.khop_count(src, k),
                    "khop({}, {}) diverged from the baseline",
                    src,
                    k
                );
            }
        }
    }
    Ok(())
}

#[test]
fn pinned_snapshot_is_isolated_before_while_and_after_a_concurrent_writer() {
    use std::sync::{Arc, Barrier, RwLock};

    // The server's exact shape: the live graph behind a lock, snapshots
    // pinned outside it. Lock-step barriers make "while the writer
    // publishes" deterministic instead of a timing lottery.
    let graph = Arc::new(RwLock::new(Graph::new("mvcc")));
    {
        let mut g = graph.write().unwrap();
        for i in 0..20 {
            g.query(&format!("CREATE (:A {{id: {i}}})")).unwrap();
        }
        for i in 0..19 {
            g.query(&format!(
                "MATCH (x:A {{id: {i}}}), (y:A {{id: {}}}) CREATE (x)-[:R0]->(y)",
                i + 1
            ))
            .unwrap();
        }
        g.sync_matrices();
    }
    let snapshot = graph.read().unwrap().snapshot();
    let pinned_epoch = snapshot.epoch();
    let before: Vec<Vec<_>> =
        CHECK_QUERIES.iter().map(|q| snapshot.query_readonly(q).unwrap().rows).collect();

    let rounds = 8usize;
    let barrier = Arc::new(Barrier::new(2));
    let writer = {
        let graph = Arc::clone(&graph);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            for r in 0..rounds {
                {
                    let mut g = graph.write().unwrap();
                    g.query(&format!(
                        "CREATE (:A {{id: {}}})-[:R0]->(:B {{id: {}}})",
                        100 + r,
                        200 + r
                    ))
                    .unwrap();
                    g.query(&format!("MATCH (x:A {{id: {}}}) SET x.v = {r}", r % 20)).unwrap();
                    g.sync_matrices(); // publish a new epoch
                }
                barrier.wait(); // epoch published; reader's turn
                barrier.wait(); // reader verified; next round
            }
        })
    };
    for _ in 0..rounds {
        barrier.wait(); // the writer just published a newer epoch
        for (q, expect) in CHECK_QUERIES.iter().zip(&before) {
            let rows = snapshot.query_readonly(q).unwrap().rows;
            assert_eq!(&rows, expect, "snapshot drifted mid-write for query `{q}`");
        }
        assert_eq!(snapshot.epoch(), pinned_epoch, "a snapshot's epoch is pinned forever");
        barrier.wait();
    }
    writer.join().unwrap();

    // After the writer is gone: the snapshot still answers from epoch N,
    // while the live graph has visibly moved on.
    for (q, expect) in CHECK_QUERIES.iter().zip(&before) {
        assert_eq!(
            &snapshot.query_readonly(q).unwrap().rows,
            expect,
            "snapshot drifted after join"
        );
    }
    let live = graph.read().unwrap();
    assert!(live.epoch() > pinned_epoch, "the writer must have published newer epochs");
    assert_eq!(live.node_count(), snapshot.node_count() + 2 * rounds);
}

#[test]
fn write_heavy_flush_loop_reclaims_epochs_instead_of_accumulating() {
    use std::sync::Arc;

    let mut g = Graph::new("reclaim");
    g.query("CREATE (:A {id: 0})").unwrap();
    g.sync_matrices();
    // One long-lived reader keeps its epoch alive for the whole loop…
    let long_lived = g.snapshot();
    let first_epoch = Arc::downgrade(&long_lived.adjacency_epoch_pin());

    // …while 40 write+flush cycles each publish (and then abandon) an epoch.
    let mut weaks = Vec::new();
    for i in 1..=40 {
        g.query(&format!("CREATE (:A {{id: {i}}})-[:R0]->(:B {{id: {i}}})")).unwrap();
        g.sync_matrices();
        weaks.push(Arc::downgrade(&g.adjacency_epoch_pin()));
        // The pin (the only reader of this epoch) drops right here.
    }
    let alive = weaks.iter().filter(|w| w.upgrade().is_some()).count();
    assert!(alive <= 1, "unreferenced epochs must be reclaimed, {alive} of 40 still alive");
    assert!(first_epoch.upgrade().is_some(), "an epoch with a live reader must survive");
    drop(long_lived);
    assert!(first_epoch.upgrade().is_none(), "the last reader dropping must release its epoch");
}

proptest! {
    #[test]
    fn delta_store_is_observationally_identical_to_eager(
        script in steps(),
        threshold in 1usize..16,
    ) {
        let mut delta = Graph::new("delta");
        delta.set_flush_threshold(threshold);
        let mut eager = Graph::new("eager");
        eager.set_flush_threshold(1);
        let mut shadow = Shadow::default();

        for &raw in &script {
            let step = decode(raw);
            apply(step, &mut delta, &mut eager, &mut shadow);
            if matches!(step, Step::Checkpoint) {
                checkpoint(&delta, &eager, &shadow)?;
            }
        }
        // Final checkpoint with whatever is still buffered…
        checkpoint(&delta, &eager, &shadow)?;
        // …and again after a full flush collapses every buffer.
        delta.sync_matrices();
        prop_assert!(!delta.has_pending_deltas());
        checkpoint(&delta, &eager, &shadow)?;
    }

    #[test]
    fn delta_store_matches_eager_through_cypher_writes(
        ops in prop::collection::vec((0u8..4, 0u64..12, 0u64..12), 0..40),
        threshold in 1usize..12,
    ) {
        // The same differential harness, but every mutation arrives through
        // the Cypher write path (CREATE / DELETE / SET) exactly as the server
        // issues it — exercising the executor's merged-view reads mid-query.
        let mut delta = Graph::new("delta");
        delta.set_flush_threshold(threshold);
        let mut eager = Graph::new("eager");
        eager.set_flush_threshold(1);

        for &(kind, a, b) in &ops {
            let query = match kind {
                0 => format!("CREATE (:N {{id: {a}}})"),
                1 => format!(
                    "MATCH (x:N {{id: {a}}}), (y:N {{id: {b}}}) CREATE (x)-[:L]->(y)"
                ),
                2 => format!("MATCH (x:N {{id: {a}}})-[r:L]->() DELETE r"),
                _ => format!("MATCH (x:N {{id: {a}}}) SET x.w = {b}"),
            };
            let d = delta.query(&query).map(|rs| rs.rows);
            let e = eager.query(&query).map(|rs| rs.rows);
            eager.sync_matrices();
            prop_assert_eq!(d.is_ok(), e.is_ok(), "query `{}` outcome diverged", &query);
            prop_assert_eq!(d.unwrap_or_default(), e.unwrap_or_default());
        }
        for q in CHECK_QUERIES {
            let d = delta.query_readonly(q).map(|rs| rs.rows);
            let e = eager.query_readonly(q).map(|rs| rs.rows);
            prop_assert_eq!(d.unwrap(), e.unwrap(), "query `{}` diverged", q);
        }
        prop_assert_eq!(delta.node_count(), eager.node_count());
        prop_assert_eq!(delta.edge_count(), eager.edge_count());
        prop_assert_eq!(
            delta.adjacency_matrix().to_triples(),
            eager.adjacency_matrix().to_triples()
        );
    }
}
