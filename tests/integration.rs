//! Cross-crate integration tests: generated datasets flow through both engines,
//! the Cypher path agrees with the algebraic fast path and with the baseline,
//! and the server substrate serves the benchmark workload correctly under
//! concurrency.

use crossbeam::channel::unbounded;
use datagen::{KhopWorkload, RmatConfig, SeedSelection};
use redisgraph_bench::{load_dataset, Dataset};
use redisgraph_core::{Graph, Value};
use redisgraph_server::server::Request;
use redisgraph_server::{RedisGraphServer, RespValue, ServerConfig};
use std::sync::Arc;

/// The three implementations of the k-hop count — baseline BFS, algebraic BFS,
/// and the full Cypher query — must agree on every seed and every k.
#[test]
fn khop_agreement_across_all_three_paths() {
    let loaded = load_dataset(Dataset::Graph500, 9, 5);
    let degrees = loaded.edges.out_degrees();
    let workload = KhopWorkload::with_seed_count(
        2,
        loaded.edges.num_vertices,
        &degrees,
        SeedSelection::NonIsolated,
        3,
        8,
    );
    for &seed in &workload.seeds {
        for k in [1u32, 2, 3, 6] {
            let algebraic = loaded.redisgraph.khop_count(seed, k);
            let pointer_chasing = loaded.baseline.khop_count(seed, k);
            assert_eq!(algebraic, pointer_chasing, "seed {seed} k {k}");

            let query =
                format!("MATCH (s:Node)-[*1..{k}]->(t) WHERE id(s) = {seed} RETURN count(t)");
            let rs = loaded.redisgraph.query_readonly(&query).unwrap();
            let via_cypher = rs.scalar().and_then(|v| v.as_i64()).unwrap() as u64;
            assert_eq!(via_cypher, algebraic, "cypher path diverged at seed {seed} k {k}");
        }
    }
}

/// `*0..n` variable-length patterns include the start node (hop 0) all the
/// way through parser → planner → executor, on both traversal strategies.
/// Regression: `khop_reach` started its hop loop at 1 and silently dropped
/// the source from the reached set.
#[test]
fn zero_min_hops_includes_the_start_node_end_to_end() {
    use redisgraph_core::TraverseStrategy;

    let mut g = Graph::new("zero-hop");
    // path 0→1→2 plus an isolated node 3
    g.query("CREATE (:Node {id: 0})-[:LINK]->(:Node {id: 1})-[:LINK]->(:Node {id: 2})").unwrap();
    g.query("CREATE (:Node {id: 3})").unwrap();

    for strategy in [TraverseStrategy::Scalar, TraverseStrategy::Batched] {
        g.set_traverse_strategy(strategy);
        // *0..2 from node 0 reaches {0, 1, 2}.
        let rs = g.query("MATCH (s:Node)-[*0..2]->(t) WHERE id(s) = 0 RETURN count(t)").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(3)), "{strategy:?}");
        // *0 (exactly zero hops) matches only the start node, even isolated.
        let rs = g.query("MATCH (s:Node)-[*0]->(t) WHERE id(s) = 3 RETURN count(t)").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(1)), "{strategy:?}");
        // Typed zero-min patterns take the typed-BFS path.
        let rs =
            g.query("MATCH (s:Node)-[:LINK*0..1]->(t) WHERE id(s) = 1 RETURN count(t)").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(2)), "{strategy:?}");
        // min ≥ 1 still excludes the start node.
        let rs = g.query("MATCH (s:Node)-[*1..2]->(t) WHERE id(s) = 0 RETURN count(t)").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(2)), "{strategy:?}");
    }
}

/// The Twitter-like dataset behaves the same way (denser, heavy-tailed).
#[test]
fn khop_agreement_on_twitter_dataset() {
    let loaded = load_dataset(Dataset::Twitter, 9, 6);
    for seed in [1u64, 7, 63, 200] {
        for k in [1u32, 2, 3] {
            assert_eq!(
                loaded.redisgraph.khop_count(seed, k),
                loaded.baseline.khop_count(seed, k),
                "seed {seed} k {k}"
            );
        }
    }
}

/// Graph mutations through Cypher stay consistent with the matrices: counts
/// reported by queries match the store after interleaved writes and deletes.
#[test]
fn interleaved_writes_keep_matrices_consistent() {
    let mut g = Graph::new("consistency");
    // build a ring of 20 nodes
    g.query("CREATE (:Node {id: 0})").unwrap();
    for i in 1..20 {
        g.query(&format!("CREATE (:Node {{id: {i}}})")).unwrap();
    }
    for i in 0..20u64 {
        let j = (i + 1) % 20;
        g.query(&format!(
            "MATCH (a:Node {{id: {i}}}), (b:Node {{id: {j}}}) CREATE (a)-[:NEXT]->(b)"
        ))
        .unwrap();
    }
    assert_eq!(g.node_count(), 20);
    assert_eq!(g.edge_count(), 20);
    // every node reaches every other node in ≤ 19 hops around the ring
    assert_eq!(g.khop_count(0, 19), 19);
    // the Cypher count agrees
    let rs = g.query("MATCH (s:Node {id: 0})-[*1..19]->(t) RETURN count(t)").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(19)));

    // break the ring and check reachability drops
    g.query("MATCH (a:Node {id: 9})-[r:NEXT]->(b) DELETE r").unwrap();
    assert_eq!(g.edge_count(), 19);
    assert_eq!(g.khop_count(0, 19), 9, "nodes past the cut are unreachable");

    // delete a node: its incident edges disappear from traversals
    g.query("MATCH (n:Node {id: 5}) DETACH DELETE n").unwrap();
    assert_eq!(g.node_count(), 19);
    assert_eq!(g.khop_count(0, 19), 4, "reachability stops at the deleted node");
}

/// The RMAT generator, bulk load, and the benchmark's Cypher query all work
/// through the server substrate, concurrently, with consistent answers.
#[test]
fn server_serves_benchmark_workload_concurrently() {
    let el = datagen::rmat::generate(&RmatConfig {
        scale: 8,
        edge_factor: 8,
        seed: 3,
        ..Default::default()
    });
    let server = Arc::new(RedisGraphServer::new(ServerConfig {
        thread_count: 4,
        ..ServerConfig::default()
    }));
    server.graph("bench").write().bulk_load(el.num_vertices, &el.edges);

    // Expected answers straight from the core library.
    let expected: Vec<(u64, u64)> =
        (0..16u64).map(|seed| (seed, server.graph("bench").read().khop_count(seed, 2))).collect();

    let (tx, handle) = server.start_dispatcher();
    let mut clients = Vec::new();
    for chunk in expected.chunks(4) {
        let tx = tx.clone();
        let chunk = chunk.to_vec();
        clients.push(std::thread::spawn(move || {
            let (reply_tx, reply_rx) = unbounded();
            for (seed, expected_count) in chunk {
                let query =
                    format!("MATCH (s:Node)-[*1..2]->(t) WHERE id(s) = {seed} RETURN count(t)");
                tx.send(Request {
                    command: RespValue::command(&["GRAPH.QUERY", "bench", &query]),
                    reply_to: reply_tx.clone(),
                })
                .unwrap();
                let reply = reply_rx.recv().unwrap();
                let RespValue::Array(sections) = reply else { panic!("bad reply") };
                let RespValue::Array(rows) = &sections[1] else { panic!("bad rows") };
                let RespValue::Array(row) = &rows[0] else { panic!("bad row") };
                let RespValue::Integer(count) = row[0] else { panic!("bad count") };
                assert_eq!(count as u64, expected_count, "seed {seed}");
            }
        }));
    }
    for c in clients {
        c.join().unwrap();
    }
    drop(tx);
    handle.join().unwrap();
}

/// Writes and reads interleave correctly through the server's lock discipline.
#[test]
fn server_mixes_reads_and_writes() {
    let server = RedisGraphServer::new(ServerConfig { thread_count: 2, ..ServerConfig::default() });
    server.query("g", "CREATE (:Counter {n: 0})");
    for i in 1..=10 {
        let reply = server.query("g", &format!("MATCH (c:Counter) SET c.n = {i} RETURN c.n"));
        assert!(!matches!(reply, RespValue::Error(_)), "write {i} failed: {reply}");
        let read = server.query("g", "MATCH (c:Counter) RETURN c.n");
        let RespValue::Array(sections) = read else { panic!() };
        let RespValue::Array(rows) = &sections[1] else { panic!() };
        let RespValue::Array(row) = &rows[0] else { panic!() };
        assert_eq!(row[0], RespValue::Integer(i));
    }
}

/// The workload generator's query text is accepted verbatim by the engine —
/// i.e. the benchmark driver and the query language stay in sync.
#[test]
fn workload_queries_parse_and_execute() {
    let loaded = load_dataset(Dataset::Graph500, 8, 11);
    let degrees = loaded.edges.out_degrees();
    let suite = KhopWorkload::full_suite(
        loaded.edges.num_vertices,
        &degrees,
        SeedSelection::NonIsolated,
        13,
    );
    for workload in suite.iter() {
        let seed = workload.seeds[0];
        let rs = loaded
            .redisgraph
            .query_readonly(&workload.cypher_query(seed))
            .unwrap_or_else(|e| panic!("workload query failed for k={}: {e}", workload.k));
        let count = rs.scalar().and_then(|v| v.as_i64()).unwrap();
        assert_eq!(count as u64, loaded.redisgraph.khop_count(seed, workload.k));
    }
}

/// The `CALL algo.*` procedures, the direct `algo` crate entry points, and
/// the naive baseline oracles must agree on a generated RMAT graph — the
/// full "analytics on the query engine's matrices" loop, end to end.
#[test]
fn algo_procedures_agree_with_direct_calls_and_baseline() {
    let el = datagen::rmat::generate(&RmatConfig {
        scale: 7,
        edge_factor: 4,
        seed: 23,
        ..RmatConfig::default()
    });
    let mut g = Graph::new("algo-e2e");
    g.bulk_load(el.num_vertices, &el.edges);

    // Triangles: Cypher CALL == algo crate == baseline oracle.
    let via_cypher = g
        .query_readonly("CALL algo.triangles() YIELD triangles RETURN triangles")
        .unwrap()
        .scalar()
        .and_then(|v| v.as_i64())
        .unwrap() as u64;
    assert_eq!(via_cypher, algo::triangle_count(&g.adjacency_matrix()));
    assert_eq!(via_cypher, baseline::algorithms::triangle_count(el.num_vertices, &el.edges));

    // WCC: component count agrees with the union-find oracle.
    let rs = g
        .query_readonly("CALL algo.wcc() YIELD component RETURN count(DISTINCT component)")
        .unwrap();
    let via_cypher = rs.scalar().and_then(|v| v.as_i64()).unwrap() as usize;
    let mut oracle = baseline::algorithms::wcc(el.num_vertices, &el.edges);
    oracle.sort_unstable();
    oracle.dedup();
    assert_eq!(via_cypher, oracle.len());

    // BFS levels through the record pipeline match the queue-BFS oracle.
    let oracle_levels = baseline::algorithms::bfs_levels(el.num_vertices, &el.edges, 0);
    let rs = g
        .query_readonly("CALL algo.bfs(0) YIELD node, level RETURN node, level ORDER BY level")
        .unwrap();
    assert_eq!(rs.rows.len(), oracle_levels.iter().filter(|&&l| l >= 0).count());
    for row in &rs.rows {
        let Value::Node(node) = row[0] else { panic!("expected a node") };
        assert_eq!(row[1].as_i64().unwrap(), oracle_levels[node as usize]);
    }
}
