//! End-to-end network suite: real TCP sockets against [`GraphServer`] — the
//! byte-level interface RedisGraph clients speak — including the hostile
//! clients the framing loop exists to survive.
//!
//! What it proves:
//!
//! * **byte-level equivalence** — a pipelined 5 000-command workload sent
//!   over TCP returns exactly the header+rows the in-process dispatcher
//!   returns for the same commands, in pipeline order;
//! * **slowloris resilience** — a client trickling one byte at a time (frames
//!   split at every position, including exactly between a bulk trailer's
//!   `\r` and `\n`) is served correctly, never disconnected, never misparsed;
//! * **bounded buffering** — a declared 512MB bulk cannot grow the retained
//!   buffer past `MAX_QUERY_BUFFER`: the connection is closed at the bound;
//! * **protocol errors close** — a garbage (non-RESP, non-inline) prefix
//!   gets a `-ERR Protocol error` reply and a closed connection;
//! * **inline commands** — Redis' `telnet`-friendly form (`PING\r\n` with no
//!   RESP framing, quoting per `sdssplitargs`) round-trips, mixes with
//!   framed commands on one connection, ignores blank lines, and is bounded:
//!   unbalanced quotes and newline-free floods past 64KB close the
//!   connection;
//! * **connection cap** — client `max_connections + 1` is greeted with an
//!   error and refused;
//! * **graceful shutdown** — `SHUTDOWN` over the wire (and the in-process
//!   handle) drains in-flight replies, then the listener stops accepting;
//! * **pipeline execution order** — like Redis, a pipeline saves round
//!   trips without reordering execution: a pipelined write is visible to
//!   every later command of the same pipeline (queries, admin commands, and
//!   `GRAPH.DELETE` included);
//! * **observability over the wire** — `GRAPH.PROFILE` returns the annotated
//!   operator tree for pipelined queries, `GRAPH.SLOWLOG` captures queries
//!   over the runtime-set threshold and `RESET` empties it, and the
//!   `GRAPH.INFO` counters stay consistent across a 5 000-command pipeline
//!   without leaking active-connection slots;
//! * **parameterized queries & the plan cache** — a pipeline rotating
//!   `CYPHER k=… ` headers over one query shape gets per-binding answers
//!   while every execution after the first reports `Cached: true`, with the
//!   hit/miss counters visible in `GRAPH.INFO`.

use redisgraph_server::{GraphServer, RedisGraphServer, RespClient, RespValue, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Strip the statistics section (its execution-time line differs run to
/// run): equivalence is judged on header + rows.
fn header_and_rows(reply: &RespValue) -> (RespValue, RespValue) {
    match reply {
        RespValue::Array(sections) if sections.len() == 3 => {
            (sections[0].clone(), sections[1].clone())
        }
        other => (other.clone(), RespValue::Null),
    }
}

/// The CREATE statements both servers are seeded with: a little social graph
/// with enough fan-out that 2-hop queries return several rows.
fn seed_statements() -> Vec<String> {
    let mut stmts = Vec::new();
    // A ring of 40 people with chords, so ids are deterministic: person k
    // gets node id k.
    let mut create = String::from("CREATE ");
    for k in 0..40 {
        if k > 0 {
            create.push_str(", ");
        }
        create.push_str(&format!("(p{k}:Node {{id: {k}}})"));
    }
    stmts.push(create);
    for k in 0..40u64 {
        let next = (k + 1) % 40;
        let chord = (k + 7) % 40;
        stmts.push(format!(
            "MATCH (a:Node {{id: {k}}}), (b:Node {{id: {next}}}) CREATE (a)-[:LINK]->(b)"
        ));
        stmts.push(format!(
            "MATCH (a:Node {{id: {k}}}), (b:Node {{id: {chord}}}) CREATE (a)-[:LINK]->(b)"
        ));
    }
    stmts
}

/// The read workload: a deterministic rotation over point reads, 2-hop
/// traversals, admin commands, and deliberate errors (which must also be
/// delivered in pipeline order).
fn workload_commands(n: usize) -> Vec<RespValue> {
    (0..n)
        .map(|i| {
            let k = (i * 13) % 40;
            match i % 5 {
                0 => RespValue::command(&[
                    "GRAPH.QUERY",
                    "g",
                    &format!("MATCH (s:Node)-[:LINK]->(t) WHERE id(s) = {k} RETURN id(t)"),
                ]),
                1 => RespValue::command(&[
                    "GRAPH.QUERY",
                    "g",
                    &format!(
                        "MATCH (s:Node)-[:LINK]->()-[:LINK]->(t) WHERE id(s) = {k} \
                         RETURN count(t)"
                    ),
                ]),
                2 => RespValue::command(&[
                    "GRAPH.QUERY",
                    "g",
                    &format!("MATCH (s:Node)-[*1..2]->(t) WHERE id(s) = {k} RETURN count(t)"),
                ]),
                3 => RespValue::command(&["PING"]),
                _ => RespValue::command(&["GRAPH.QUERY", "g", "MATCH (a RETURN a"]),
            }
        })
        .collect()
}

#[test]
fn pipelined_tcp_workload_matches_in_process_dispatcher_row_for_row() {
    let net = GraphServer::bind(
        "127.0.0.1:0",
        ServerConfig { thread_count: 4, ..ServerConfig::default() },
    )
    .expect("bind ephemeral port");
    let inproc = RedisGraphServer::new(ServerConfig { thread_count: 4, ..ServerConfig::default() });

    // Seed both servers with identical writes — the TCP one through the
    // socket, so even graph construction crosses the wire.
    let mut client = RespClient::connect(net.local_addr()).expect("connect");
    for stmt in seed_statements() {
        let over_tcp = client.query("g", &stmt).expect("seed over tcp");
        let in_process = inproc.query("g", &stmt);
        assert!(!matches!(over_tcp, RespValue::Error(_)), "seed failed over tcp: {over_tcp}");
        assert_eq!(header_and_rows(&over_tcp), header_and_rows(&in_process));
    }

    // One 5 000-command pipeline in a single burst: replies must come back
    // 1:1, in order, and identical (header + rows) to the in-process path.
    let commands = workload_commands(5_000);
    let replies = client.pipeline(&commands).expect("pipeline");
    assert_eq!(replies.len(), commands.len());
    for (i, (command, over_tcp)) in commands.iter().zip(&replies).enumerate() {
        let in_process = net.server().handle(command); // same engine, no socket
        let reference = inproc.handle(command);
        assert_eq!(
            header_and_rows(over_tcp),
            header_and_rows(&reference),
            "command #{i} diverged between TCP and the in-process dispatcher: {command}"
        );
        assert_eq!(
            header_and_rows(over_tcp),
            header_and_rows(&in_process),
            "command #{i} diverged between TCP and its own server's handle(): {command}"
        );
    }
    net.shutdown();
}

#[test]
fn slowloris_one_byte_at_a_time_is_served_not_disconnected() {
    let net = GraphServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    net.server().query("g", "CREATE (:Node {id: 1})-[:LINK]->(:Node {id: 2})");

    let mut stream = TcpStream::connect(net.local_addr()).expect("connect");
    let frame =
        RespValue::command(&["GRAPH.QUERY", "g", "MATCH (a:Node)-[:LINK]->(b) RETURN id(b)"])
            .encode();
    // Feed the frame one byte at a time: the server sees every possible
    // split, including between the bulk trailer's `\r` and `\n`. A misparse
    // or a premature `Malformed` classification would error or disconnect.
    for &byte in &frame {
        stream.write_all(&[byte]).expect("server closed mid-frame");
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut client = RespClient::from_stream(stream);
    let reply = client.read_reply().expect("reply after slow frame");
    let expected = net.server().query("g", "MATCH (a:Node)-[:LINK]->(b) RETURN id(b)");
    assert_eq!(header_and_rows(&reply), header_and_rows(&expected));

    // The connection is still healthy: a second (fast) command round-trips.
    let pong = client.command(&["PING"]).expect("second command");
    assert_eq!(pong, RespValue::SimpleString("PONG".into()));
    net.shutdown();
}

#[test]
fn declared_512mb_bulk_is_closed_at_the_buffer_bound() {
    // 64KB cap: far below the declared bulk, far above one read chunk.
    let net = GraphServer::bind(
        "127.0.0.1:0",
        ServerConfig { max_query_buffer: 64 * 1024, ..ServerConfig::default() },
    )
    .expect("bind");
    let mut stream = TcpStream::connect(net.local_addr()).expect("connect");
    stream.set_write_timeout(Some(Duration::from_secs(2))).unwrap();

    // A command array declaring a 512MB argument (just under the decoder's
    // own cap, so only MAX_QUERY_BUFFER can stop it), then a stream of
    // payload the server must refuse to retain.
    stream.write_all(b"*2\r\n$4\r\nPING\r\n$536870912\r\n").expect("header");
    let chunk = [b'a'; 1024];
    let mut sent = 0usize;
    let closed_early = loop {
        match stream.write_all(&chunk) {
            Ok(()) => {
                sent += chunk.len();
                // Well past the cap plus both sockets' kernel buffers: if the
                // server were retaining without bound we would still be
                // writing successfully at 8MB.
                if sent > 8 * 1024 * 1024 {
                    break false;
                }
            }
            Err(_) => break true,
        }
    };
    assert!(closed_early, "server kept reading a 512MB bulk past 8MB with a 64KB MAX_QUERY_BUFFER");
    net.shutdown();
}

#[test]
fn garbage_prefix_gets_protocol_error_and_close() {
    let net = GraphServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut stream = TcpStream::connect(net.local_addr()).expect("connect");
    // A TLS ClientHello is neither RESP nor a UTF-8 inline line: hopeless.
    stream.write_all(b"\x16\x03\x01\x00\xc8\x01\n").expect("write");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read until close");
    let text = String::from_utf8_lossy(&reply);
    assert!(
        text.starts_with("-ERR Protocol error"),
        "expected a protocol error before close, got {text:?}"
    );
    // read_to_end returning proves the server closed the connection.
    net.shutdown();
}

#[test]
fn inline_commands_round_trip_and_mix_with_resp_framing() {
    let net = GraphServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut stream = TcpStream::connect(net.local_addr()).expect("connect");

    // Bare `PING\r\n`, the way telnet sends it — blank lines ignored first.
    stream.write_all(b"\r\n\r\nPING\r\n").expect("inline ping");
    let mut client = RespClient::from_stream(stream);
    assert_eq!(client.read_reply().expect("pong"), RespValue::SimpleString("PONG".into()));

    // A quoted inline GRAPH.QUERY: the whole Cypher statement is one
    // argument thanks to sdssplitargs-style double quotes.
    let mut raw = client.stream().try_clone().expect("clone stream");
    raw.write_all(b"GRAPH.QUERY inl \"CREATE (:Node {id: 7})\"\r\n").expect("inline create");
    let created = client.read_reply().expect("create reply");
    assert!(!matches!(created, RespValue::Error(_)), "inline create failed: {created}");

    // RESP framing still works on the very same connection, and sees the
    // inline command's write.
    let reply = client
        .command(&["GRAPH.QUERY", "inl", "MATCH (n:Node) RETURN n.id"])
        .expect("framed query");
    let RespValue::Array(sections) = &reply else { panic!("not a query reply: {reply}") };
    let RespValue::Array(rows) = &sections[1] else { panic!() };
    assert_eq!(rows.len(), 1, "framed read must see the inline write");

    // And back to inline again, pipelined two-in-one-burst with a framed
    // command: replies come back in order.
    let mut raw = client.stream().try_clone().expect("clone stream");
    let mut burst = b"PING\r\n".to_vec();
    burst.extend_from_slice(&RespValue::command(&["PING"]).encode());
    raw.write_all(&burst).expect("mixed burst");
    assert_eq!(client.read_reply().unwrap(), RespValue::SimpleString("PONG".into()));
    assert_eq!(client.read_reply().unwrap(), RespValue::SimpleString("PONG".into()));
    net.shutdown();
}

#[test]
fn inline_unknown_command_errs_without_closing_the_connection() {
    // `GET foo` is a *valid inline frame* for a command this server does not
    // implement: the right behaviour is an `unknown command` error and a
    // live connection — not a protocol error, not a close.
    let net = GraphServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut stream = TcpStream::connect(net.local_addr()).expect("connect");
    stream.write_all(b"GET foo\r\n").expect("write");
    let mut client = RespClient::from_stream(stream);
    let reply = client.read_reply().expect("error reply");
    let RespValue::Error(message) = &reply else { panic!("expected an error, got {reply}") };
    assert!(message.contains("unknown command"), "got {message:?}");
    // The connection survives to serve the next command.
    assert_eq!(client.command(&["PING"]).unwrap(), RespValue::SimpleString("PONG".into()));
    net.shutdown();
}

#[test]
fn inline_unbalanced_quotes_get_protocol_error_and_close() {
    let net = GraphServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut stream = TcpStream::connect(net.local_addr()).expect("connect");
    stream.write_all(b"GRAPH.QUERY g \"oops no closing quote\r\n").expect("write");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read until close");
    let text = String::from_utf8_lossy(&reply);
    assert!(
        text.starts_with("-ERR Protocol error"),
        "unbalanced quotes must be a protocol error, got {text:?}"
    );
    net.shutdown();
}

#[test]
fn inline_newline_free_flood_is_closed_at_the_line_cap() {
    // A client pushing printable bytes with no newline can never finish an
    // inline command; past the 64KB line cap the server must close rather
    // than buffer forever.
    let net = GraphServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut stream = TcpStream::connect(net.local_addr()).expect("connect");
    stream.set_write_timeout(Some(Duration::from_secs(2))).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Just over the cap, in one burst the server fully drains before it
    // condemns the line (writing far past the cap would race the server's
    // close and turn the error reply into a TCP reset).
    let flood = vec![b'a'; 66 * 1024];
    let _ = stream.write_all(&flood);
    let mut reply = Vec::new();
    match stream.read_to_end(&mut reply) {
        Ok(_) => {
            let text = String::from_utf8_lossy(&reply);
            assert!(
                text.starts_with("-ERR Protocol error"),
                "newline-free flood must be a protocol error, got {text:?}"
            );
        }
        // A reset still proves the server closed at the bound; only a read
        // *timeout* would mean it sat there buffering.
        Err(e) => {
            assert_ne!(e.kind(), std::io::ErrorKind::WouldBlock, "server kept buffering: {e}");
            assert_ne!(e.kind(), std::io::ErrorKind::TimedOut, "server kept buffering: {e}");
        }
    }
    net.shutdown();
}

#[test]
fn connection_cap_refuses_excess_clients() {
    let net = GraphServer::bind(
        "127.0.0.1:0",
        ServerConfig { max_connections: 2, ..ServerConfig::default() },
    )
    .expect("bind");
    let mut a = RespClient::connect(net.local_addr()).expect("client a");
    let mut b = RespClient::connect(net.local_addr()).expect("client b");
    // Round-trips prove both are being served (not just queued in accept).
    assert_eq!(a.command(&["PING"]).unwrap(), RespValue::SimpleString("PONG".into()));
    assert_eq!(b.command(&["PING"]).unwrap(), RespValue::SimpleString("PONG".into()));

    let mut c = RespClient::connect(net.local_addr()).expect("tcp connect still succeeds");
    let refusal = c.read_reply().expect("refusal reply");
    assert_eq!(refusal, RespValue::Error("ERR max number of clients reached".into()));
    assert!(c.read_reply().is_err(), "connection must be closed after the refusal");

    // The two admitted clients are unaffected.
    assert_eq!(a.command(&["PING"]).unwrap(), RespValue::SimpleString("PONG".into()));
    drop(a);
    drop(b);
    // A freed slot is reusable (give the server a tick to notice the close).
    std::thread::sleep(Duration::from_millis(200));
    let mut d = RespClient::connect(net.local_addr()).expect("client d");
    assert_eq!(d.command(&["PING"]).unwrap(), RespValue::SimpleString("PONG".into()));
    net.shutdown();
}

#[test]
fn shutdown_command_drains_replies_then_stops_the_listener() {
    let net = GraphServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    net.server().query("g", "CREATE (:Node {id: 1})-[:LINK]->(:Node {id: 2})");
    let addr = net.local_addr();

    let mut client = RespClient::connect(addr).expect("connect");
    // Pipeline a query *behind* the SHUTDOWN ack: both replies must arrive
    // (drain before close), in order.
    let replies = client
        .pipeline(&[
            RespValue::command(&["GRAPH.QUERY", "g", "MATCH (n:Node) RETURN count(n)"]),
            RespValue::command(&["SHUTDOWN"]),
        ])
        .expect("pipelined shutdown");
    assert!(matches!(replies[0], RespValue::Array(_)), "query reply must drain: {}", replies[0]);
    assert_eq!(replies[1], RespValue::SimpleString("OK".into()));
    assert!(client.read_reply().is_err(), "server must close after SHUTDOWN");

    assert!(net.is_shutdown_requested());
    net.shutdown(); // joins accept + connection threads
    assert!(TcpStream::connect(addr).is_err(), "listener must be gone after graceful shutdown");
}

#[test]
fn pipelined_commands_execute_strictly_in_order() {
    // Redis pipeline semantics: one burst, but each command sees every
    // earlier command's effects — writes before reads, admin commands
    // interleaved, delete last.
    let net = GraphServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = RespClient::connect(net.local_addr()).expect("connect");
    let replies = client
        .pipeline(&[
            RespValue::command(&["GRAPH.QUERY", "ord", "CREATE (:Node {id: 1})"]),
            RespValue::command(&["GRAPH.QUERY", "ord", "MATCH (n:Node) RETURN count(n)"]),
            RespValue::command(&["GRAPH.QUERY", "ord", "CREATE (:Node {id: 2})"]),
            RespValue::command(&["GRAPH.QUERY", "ord", "MATCH (n:Node) RETURN count(n)"]),
            RespValue::command(&["GRAPH.CONFIG", "SET", "MAX_QUERY_BUFFER", "4096"]),
            RespValue::command(&["GRAPH.CONFIG", "GET", "MAX_QUERY_BUFFER"]),
            RespValue::command(&["GRAPH.DELETE", "ord"]),
            RespValue::command(&["GRAPH.LIST"]),
        ])
        .expect("ordered pipeline");
    let count = |reply: &RespValue| -> i64 {
        let RespValue::Array(sections) = reply else { panic!("not a query reply: {reply}") };
        let RespValue::Array(rows) = &sections[1] else { panic!() };
        let RespValue::Array(row) = &rows[0] else { panic!() };
        let RespValue::Integer(n) = row[0] else { panic!() };
        n
    };
    assert_eq!(count(&replies[1]), 1, "first CREATE must be visible to the pipelined MATCH");
    assert_eq!(count(&replies[3]), 2, "second CREATE must be visible to the second MATCH");
    assert_eq!(replies[4], RespValue::SimpleString("OK".into()));
    assert_eq!(
        replies[5],
        RespValue::Array(vec![
            RespValue::BulkString("MAX_QUERY_BUFFER".into()),
            RespValue::Integer(4096),
        ])
    );
    assert_eq!(replies[6], RespValue::SimpleString("OK".into()), "delete of existing graph");
    assert_eq!(replies[7], RespValue::Array(vec![]), "graph must be gone by GRAPH.LIST time");
    net.shutdown();
}

#[test]
fn pipelined_delete_is_observable_by_the_next_command() {
    // GRAPH.DELETE semantics under pipelining: once the delete's OK is on
    // the wire, no later command of any pipeline may observe the old graph.
    // A query naming the deleted graph transparently creates a *fresh* one
    // (Redis-style create-on-use), so the count must be zero — not the 3
    // nodes the orphan held. Epoch snapshots make this subtle: a stale
    // GraphEntry would happily keep serving the orphan forever.
    let net = GraphServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = RespClient::connect(net.local_addr()).expect("connect");
    let replies = client
        .pipeline(&[
            RespValue::command(&[
                "GRAPH.QUERY",
                "del",
                "CREATE (:N {id: 1}), (:N {id: 2}), (:N {id: 3})",
            ]),
            RespValue::command(&["GRAPH.QUERY", "del", "MATCH (n:N) RETURN count(n)"]),
            RespValue::command(&["GRAPH.DELETE", "del"]),
            RespValue::command(&["GRAPH.QUERY", "del", "MATCH (n:N) RETURN count(n)"]),
            RespValue::command(&["GRAPH.LIST"]),
        ])
        .expect("delete pipeline");
    let count = |reply: &RespValue| -> i64 {
        let RespValue::Array(sections) = reply else { panic!("not a query reply: {reply}") };
        let RespValue::Array(rows) = &sections[1] else { panic!() };
        let RespValue::Array(row) = &rows[0] else { panic!() };
        let RespValue::Integer(n) = row[0] else { panic!() };
        n
    };
    assert_eq!(count(&replies[1]), 3, "writes visible before the delete");
    assert_eq!(replies[2], RespValue::SimpleString("OK".into()), "delete must succeed");
    assert_eq!(count(&replies[3]), 0, "post-delete read must see a fresh empty graph");
    // The fresh graph was re-created by the read, so it is listed again.
    assert_eq!(
        replies[4],
        RespValue::Array(vec![RespValue::BulkString("del".into())]),
        "create-on-use after delete"
    );
    net.shutdown();
}

/// Flatten a `GRAPH.INFO` reply (array of `[section-name, [k, v, ...]]`)
/// into one `field -> value` map for assertions.
fn info_fields(reply: &RespValue) -> std::collections::HashMap<String, RespValue> {
    let RespValue::Array(sections) = reply else { panic!("GRAPH.INFO not an array: {reply}") };
    let mut fields = std::collections::HashMap::new();
    for section in sections {
        let RespValue::Array(parts) = section else { panic!("section not an array: {section}") };
        let RespValue::Array(kvs) = &parts[1] else { panic!("section body not an array") };
        for pair in kvs.chunks(2) {
            let RespValue::BulkString(key) = &pair[0] else { panic!("key not a string") };
            fields.insert(key.clone(), pair[1].clone());
        }
    }
    fields
}

fn info_int(fields: &std::collections::HashMap<String, RespValue>, key: &str) -> i64 {
    match fields.get(key) {
        Some(RespValue::Integer(n)) => *n,
        other => panic!("GRAPH.INFO field {key} missing or non-integer: {other:?}"),
    }
}

#[test]
fn pipelined_profile_returns_annotated_operator_trees() {
    let net = GraphServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = RespClient::connect(net.local_addr()).expect("connect");
    let replies = client
        .pipeline(&[
            RespValue::command(&[
                "GRAPH.QUERY",
                "prof",
                "CREATE (:Node {id: 1})-[:LINK]->(:Node {id: 2})-[:LINK]->(:Node {id: 3})",
            ]),
            RespValue::command(&[
                "GRAPH.PROFILE",
                "prof",
                "MATCH (a:Node)-[:LINK]->(b) RETURN id(b)",
            ]),
            RespValue::command(&["GRAPH.PROFILE", "prof", "MATCH (n:Node) RETURN count(n)"]),
        ])
        .expect("profile pipeline");
    assert!(matches!(replies[0], RespValue::Array(_)), "seed CREATE failed: {}", replies[0]);

    // Each PROFILE reply is a flat array of annotated operator lines.
    for reply in &replies[1..] {
        let RespValue::Array(lines) = reply else { panic!("PROFILE not an array: {reply}") };
        assert!(!lines.is_empty());
        for line in lines {
            let RespValue::BulkString(text) = line else { panic!("line not a string: {line}") };
            assert!(
                text.contains("Records produced: ") && text.contains("Execution time: "),
                "unannotated profile line: {text:?}"
            );
        }
    }
    // The traversal profile names its operators with real record counts: the
    // scan produced 3 nodes, the traversal narrowed them to 2 sources.
    let RespValue::Array(lines) = &replies[1] else { unreachable!() };
    let text: Vec<String> = lines
        .iter()
        .map(|l| match l {
            RespValue::BulkString(s) => s.clone(),
            other => panic!("{other}"),
        })
        .collect();
    assert!(
        text.iter().any(|l| l.contains("Label Scan") && l.contains("Records produced: 3")),
        "missing scan line: {text:?}"
    );
    assert!(
        text.iter().any(|l| l.contains("Traverse") && l.contains("Records produced: 2")),
        "missing traverse line: {text:?}"
    );
    net.shutdown();
}

#[test]
fn slowlog_captures_slow_queries_and_reset_empties_it_over_the_wire() {
    let net = GraphServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = RespClient::connect(net.local_addr()).expect("connect");

    // Default threshold (10ms) keeps fast queries out of the log.
    let _ = client.query("slow", "CREATE (:Node {id: 1})").expect("seed");
    assert_eq!(
        client.command(&["GRAPH.SLOWLOG", "slow"]).unwrap(),
        RespValue::Array(vec![]),
        "a fast CREATE must not enter the slowlog at the default threshold"
    );

    // Threshold 0 logs everything that runs after it is set.
    assert_eq!(
        client.command(&["GRAPH.CONFIG", "SET", "SLOWLOG_TIME_THRESHOLD", "0"]).unwrap(),
        RespValue::SimpleString("OK".into())
    );
    let _ = client.query("slow", "MATCH (n:Node) RETURN count(n)").expect("read");
    let entries = client.command(&["GRAPH.SLOWLOG", "slow", "GET"]).expect("slowlog get");
    let RespValue::Array(entries) = entries else { panic!("SLOWLOG not an array: {entries}") };
    assert_eq!(entries.len(), 1, "exactly the post-threshold query is logged: {entries:?}");
    let RespValue::Array(fields) = &entries[0] else { panic!("entry not an array") };
    assert_eq!(fields.len(), 5, "timestamp, command, query, millis, arg count");
    assert!(matches!(fields[0], RespValue::Integer(ts) if ts > 0), "unix timestamp");
    assert_eq!(fields[1], RespValue::BulkString("GRAPH.QUERY".into()));
    assert_eq!(fields[2], RespValue::BulkString("MATCH (n:Node) RETURN count(n)".into()));
    assert!(matches!(&fields[3], RespValue::BulkString(ms) if ms.parse::<f64>().is_ok()));
    assert!(matches!(fields[4], RespValue::Integer(_)));

    // RESET empties the ring; the threshold is untouched, so the next query
    // is logged again.
    assert_eq!(
        client.command(&["GRAPH.SLOWLOG", "slow", "RESET"]).unwrap(),
        RespValue::SimpleString("OK".into())
    );
    assert_eq!(
        client.command(&["GRAPH.SLOWLOG", "slow", "GET"]).unwrap(),
        RespValue::Array(vec![])
    );
    let _ = client.query("slow", "MATCH (n:Node) RETURN id(n)").expect("read after reset");
    let RespValue::Array(after) = client.command(&["GRAPH.SLOWLOG", "slow"]).unwrap() else {
        panic!()
    };
    assert_eq!(after.len(), 1, "logging resumes after RESET");
    net.shutdown();
}

#[test]
fn graph_info_counters_stay_consistent_across_a_5000_command_pipeline() {
    let net = GraphServer::bind(
        "127.0.0.1:0",
        ServerConfig { thread_count: 4, ..ServerConfig::default() },
    )
    .expect("bind");
    let mut client = RespClient::connect(net.local_addr()).expect("connect");
    for stmt in seed_statements() {
        let reply = client.query("g", &stmt).expect("seed");
        assert!(!matches!(reply, RespValue::Error(_)), "seed failed: {reply}");
    }
    let before = info_fields(&client.command(&["GRAPH.INFO"]).expect("info before"));

    let commands = workload_commands(5_000);
    let replies = client.pipeline(&commands).expect("pipeline");
    assert_eq!(replies.len(), commands.len());
    let after = info_fields(&client.command(&["GRAPH.INFO"]).expect("info after"));

    // The workload rotation: of every 5 commands, 3 are valid reads, 1 is a
    // PING, 1 is a deliberate parse error. All GRAPH.QUERYs count as
    // dispatched commands; only the valid ones count as executed.
    let queries = 4_000;
    let failures = 1_000;
    assert_eq!(
        info_int(&after, "graph.query") - info_int(&before, "graph.query"),
        queries,
        "every pipelined GRAPH.QUERY is counted once"
    );
    assert_eq!(info_int(&after, "ping") - info_int(&before, "ping"), 1_000);
    assert_eq!(
        info_int(&after, "queries_executed") - info_int(&before, "queries_executed"),
        queries - failures
    );
    assert_eq!(info_int(&after, "queries_failed") - info_int(&before, "queries_failed"), failures);
    assert_eq!(
        info_int(&after, "queries_readonly") - info_int(&before, "queries_readonly"),
        queries - failures,
        "the workload is pure reads"
    );
    assert_eq!(info_int(&after, "queries_write") - info_int(&before, "queries_write"), 0);

    // The latency histogram samples every query that reached a worker —
    // parse failures are rejected at dispatch, before the pool.
    assert_eq!(
        info_int(&after, "query_samples") - info_int(&before, "query_samples"),
        queries - failures
    );
    assert!(info_int(&after, "query_p50_usec") <= info_int(&after, "query_p99_usec"));
    assert!(info_int(&after, "query_p99_usec") <= info_int(&after, "query_max_usec"));

    // Byte counters moved by at least the pipeline's raw sizes, and the
    // pipeline's depth registered in the histogram.
    let burst: usize = commands.iter().map(|c| c.encode().len()).sum();
    assert!(
        info_int(&after, "bytes_in") - info_int(&before, "bytes_in") >= burst as i64,
        "bytes_in must cover the pipelined burst"
    );
    assert!(info_int(&after, "bytes_out") > info_int(&before, "bytes_out"));
    // The framing loop records batch depth per socket read, so the 5 000
    // commands land as several deep batches (each 16KB read chunk holds
    // dozens of these ~100-byte frames) — far deeper than the seed's
    // one-command round-trips.
    assert!(
        info_int(&after, "pipeline_depth_max") > 1,
        "pipelined burst never produced a multi-frame batch"
    );

    // This one connection is the only active one — no slots leaked.
    assert_eq!(info_int(&after, "connections_active"), 1);
    assert_eq!(info_int(&after, "connections_accepted"), 1);
    assert_eq!(info_int(&after, "connections_refused"), 0);
    drop(client);
    for _ in 0..50 {
        if net.active_connections() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(net.active_connections(), 0, "closed connection must release its slot");
    net.shutdown();
}

#[test]
fn graph_delete_racing_an_in_flight_read_never_tears_over_tcp() {
    // The socket-level twin of the modelcheck `graph_delete` suite: one
    // connection fires a traversal while another deletes the graph out from
    // under it. The read must complete against the pre-delete epoch
    // snapshot (full result) or a fresh create-on-use graph (empty result)
    // — never an error, a torn partial count, or a hung connection.
    let net = GraphServer::bind(
        "127.0.0.1:0",
        ServerConfig { thread_count: 4, ..ServerConfig::default() },
    )
    .expect("bind");
    let addr = net.local_addr();

    let seed = |client: &mut RespClient, name: &str| {
        let mut create = String::from("CREATE ");
        for k in 0..12 {
            if k > 0 {
                create.push_str(", ");
            }
            create.push_str(&format!("(p{k}:Node {{id: {k}}})"));
        }
        let reply = client.query(name, &create).expect("seed create");
        assert!(!matches!(reply, RespValue::Error(_)), "seed failed: {reply}");
        for k in 0..12u64 {
            let next = (k + 1) % 12;
            let reply = client
                .query(
                    name,
                    &format!(
                        "MATCH (a:Node {{id: {k}}}), (b:Node {{id: {next}}}) CREATE (a)-[:LINK]->(b)"
                    ),
                )
                .expect("seed edge");
            assert!(!matches!(reply, RespValue::Error(_)), "seed failed: {reply}");
        }
    };
    const RACE_READ: &str = "MATCH (s:Node)-[*1..4]->(t) RETURN count(t)";
    let count = |reply: &RespValue| -> i64 {
        let RespValue::Array(sections) = reply else { panic!("not a query reply: {reply}") };
        let RespValue::Array(rows) = &sections[1] else { panic!("no rows section: {reply}") };
        let RespValue::Array(row) = &rows[0] else { panic!("empty rows: {reply}") };
        let RespValue::Integer(n) = row[0] else { panic!("non-integer count: {reply}") };
        n
    };

    // Measure the full-graph answer once, on an undisturbed control graph.
    let mut control = RespClient::connect(addr).expect("control connect");
    seed(&mut control, "control");
    let full = count(&control.query("control", RACE_READ).expect("control read"));
    assert!(full > 0, "control traversal returned nothing — the race would be vacuous");

    for round in 0..20 {
        let name = format!("race{round}");
        let mut writer = RespClient::connect(addr).expect("writer connect");
        seed(&mut writer, &name);

        // Reader pre-connects so the race is query-vs-delete, not
        // connect-vs-delete; the barrier lines up the fire moment.
        let mut reader_client = RespClient::connect(addr).expect("reader connect");
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let reader = {
            let name = name.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                reader_client.query(&name, RACE_READ).expect("racing read reply")
            })
        };
        barrier.wait();
        let deleted = writer.command(&["GRAPH.DELETE", &name]).expect("delete reply");
        assert_eq!(
            deleted,
            RespValue::SimpleString("OK".into()),
            "round {round}: delete must succeed exactly once"
        );

        let reply = reader.join().expect("reader thread");
        assert!(
            !matches!(reply, RespValue::Error(_)),
            "round {round}: racing read errored: {reply}"
        );
        let seen = count(&reply);
        assert!(
            seen == full || seen == 0,
            "round {round}: racing read observed a torn result: {seen} (full = {full})"
        );

        // Whatever the race's outcome, the name now denotes a fresh graph.
        let after = writer.query(&name, "MATCH (n) RETURN count(n)").expect("post-race read");
        assert_eq!(count(&after), 0, "round {round}: delete left data behind");
    }
    net.shutdown();
}

#[test]
fn pipelined_parameter_bindings_share_one_cached_plan_over_tcp() {
    // One query *shape*, many `CYPHER k=…` bindings, one pipeline: every
    // execution after the first must be served from the plan cache (the
    // header's values are not part of the cache key), and each must still
    // answer for its own binding — a cache that spliced text or reused a
    // bound plan would return the wrong row.
    let net = GraphServer::bind(
        "127.0.0.1:0",
        ServerConfig { thread_count: 4, ..ServerConfig::default() },
    )
    .expect("bind");
    let mut client = RespClient::connect(net.local_addr()).expect("connect");
    let mut create = String::from("CREATE ");
    for k in 0..10 {
        if k > 0 {
            create.push_str(", ");
        }
        create.push_str(&format!("(p{k}:Node {{id: {k}}})"));
    }
    let seeded = client.query("params", &create).expect("seed");
    assert!(!matches!(seeded, RespValue::Error(_)), "seed failed: {seeded}");

    let cached_flag = |reply: &RespValue| -> bool {
        let RespValue::Array(sections) = reply else { panic!("not a query reply: {reply}") };
        let RespValue::Array(stats) = &sections[2] else { panic!("no stats footer: {reply}") };
        stats
            .iter()
            .find_map(|l| match l {
                RespValue::BulkString(s) => s.strip_prefix("Cached: ").map(|v| v == "true"),
                _ => None,
            })
            .expect("stats footer must carry a Cached line")
    };
    let single = |reply: &RespValue| -> i64 {
        let RespValue::Array(sections) = reply else { panic!("not a query reply: {reply}") };
        let RespValue::Array(rows) = &sections[1] else { panic!() };
        let RespValue::Array(row) = &rows[0] else { panic!("no rows: {reply}") };
        let RespValue::Integer(n) = row[0] else { panic!("non-integer cell: {reply}") };
        n
    };

    let commands: Vec<RespValue> = (0..40)
        .map(|i| {
            let k = (i * 7) % 10;
            RespValue::command(&[
                "GRAPH.QUERY",
                "params",
                &format!("CYPHER k={k} MATCH (n:Node) WHERE n.id = $k RETURN n.id"),
            ])
        })
        .collect();
    let replies = client.pipeline(&commands).expect("param pipeline");
    assert_eq!(replies.len(), commands.len());
    for (i, reply) in replies.iter().enumerate() {
        let k = (i * 7) % 10;
        assert_eq!(single(reply), k as i64, "binding #{i} answered for the wrong parameter");
        if i == 0 {
            assert!(!cached_flag(reply), "the very first execution must be a cache miss");
        } else {
            assert!(cached_flag(reply), "execution #{i} was not served from the plan cache");
        }
    }

    // The counters tell the same story over the wire.
    let fields = info_fields(&client.command(&["GRAPH.INFO"]).expect("info"));
    assert_eq!(info_int(&fields, "plan_cache_hits"), 39);
    assert!(info_int(&fields, "plan_cache_entries") >= 1);
    net.shutdown();
}

#[test]
fn max_query_buffer_is_tunable_over_the_wire() {
    let net = GraphServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = RespClient::connect(net.local_addr()).expect("connect");
    assert_eq!(
        client.command(&["GRAPH.CONFIG", "SET", "MAX_QUERY_BUFFER", "2048"]).unwrap(),
        RespValue::SimpleString("OK".into())
    );
    assert_eq!(
        client.command(&["GRAPH.CONFIG", "GET", "MAX_QUERY_BUFFER"]).unwrap(),
        RespValue::Array(vec![
            RespValue::BulkString("MAX_QUERY_BUFFER".into()),
            RespValue::Integer(2048),
        ])
    );
    // The live value applies to this very connection: exceed it mid-frame.
    let mut stream = client.stream().try_clone().expect("clone stream");
    stream.write_all(b"*2\r\n$4\r\nPING\r\n$1000000\r\n").unwrap();
    let chunk = [b'x'; 1024];
    let mut closed = false;
    for _ in 0..4096 {
        if stream.write_all(&chunk).is_err() {
            closed = true;
            break;
        }
    }
    assert!(closed, "2KB MAX_QUERY_BUFFER did not close a 1MB frame");
    net.shutdown();
}
