#!/usr/bin/env python3
"""Schema guard for the smoke-mode BENCH_*.json files CI produces.

Not a performance gate: CI runners are too noisy to compare wall times. What
this catches is a benchmark that silently stopped measuring — a required key
gone missing after a refactor, a workload that returned zero rows against a
preloaded graph, a NaN/zero timing from a broken clock path — so a regression
to "the bench runs but measures nothing" fails the build instead of landing.

Usage: python3 scripts/bench_check.py BENCH_writes_smoke.json [more.json ...]
"""

import json
import math
import sys

# Per-suite required keys for every entry of "results". A file whose "suite"
# is unknown fails loudly: new suites must register here, which is exactly
# the forcing function that keeps this guard in sync with the bench bins.
REQUIRED_RESULT_KEYS = {
    "writes": {"mode", "threshold", "wall_ms", "writes", "reads", "writes_per_sec", "checksum"},
    "traverse": {"query", "mode", "threads", "wall_ms", "rows"},
    "network": {"op", "queries", "wall_ms", "qps", "rows"},
    "algos": {"dataset", "algorithm", "wall_ms", "iterations", "result"},
    "mixed": {"mode", "queries", "wall_ms", "qps", "rows"},
}

# Numeric keys that must be finite and strictly positive: a zero or NaN here
# means the op was not actually measured (or measured nothing).
POSITIVE_KEYS = {"wall_ms", "writes_per_sec", "qps", "writes", "queries", "rows", "checksum"}

# The network suite also reports the server's own GRAPH.INFO deltas. These
# keys must be present; the *_positive subset must be > 0 (a zero means the
# registry stopped counting even though the bench drove real traffic), and
# connections_active must be <= 1 after the run (only the polling client) —
# anything higher is a leaked connection slot.
NETWORK_METRIC_KEYS = {
    "queries_executed",
    "queries_readonly",
    "bytes_in",
    "bytes_out",
    "connections_accepted",
    "connections_active",
    "connections_refused",
    "plan_cache_hits",
    "plan_cache_misses",
    "plan_cache_evictions",
}
NETWORK_METRIC_POSITIVE = {
    "queries_executed",
    "queries_readonly",
    "bytes_in",
    "bytes_out",
    "connections_accepted",
    # The param_point_cached workload repeats one normalized query shape, so
    # a run with zero cache hits means the plan cache stopped serving.
    "plan_cache_hits",
}


def check_network_metrics(path, doc):
    problems = []
    metrics = doc.get("server_metrics")
    if not isinstance(metrics, dict):
        return [f"{path}: network suite must report a 'server_metrics' object"]
    missing = NETWORK_METRIC_KEYS - set(metrics)
    if missing:
        problems.append(f"{path}: server_metrics missing keys: {sorted(missing)}")
    for key in NETWORK_METRIC_POSITIVE & set(metrics):
        value = metrics[key]
        if not isinstance(value, int) or value <= 0:
            problems.append(
                f"{path}: server_metrics.{key} = {value!r} — the registry "
                f"recorded nothing for a bench that drove real traffic"
            )
    active = metrics.get("connections_active")
    if isinstance(active, int) and active > 1:
        problems.append(
            f"{path}: server_metrics.connections_active = {active} after the "
            f"run — connection slots leaked (only the polling client may remain)"
        )
    return problems


# The plan cache exists to make repeated query shapes cheaper; CI noise can
# flip a few percent either way, but the cached run falling this far behind
# the uncached one means lookups cost more than the planning they save.
PLAN_CACHE_SLOWDOWN_TOLERANCE = 1.25


def check_network_plan_cache(path, doc):
    by_op = {}
    for entry in doc.get("results") or []:
        if isinstance(entry, dict) and "op" in entry:
            by_op[entry["op"]] = entry
    missing = {"param_point_cached", "param_point_uncached"} - set(by_op)
    if missing:
        return [f"{path}: network suite missing param_point ops: {sorted(missing)}"]
    cached = by_op["param_point_cached"].get("qps")
    uncached = by_op["param_point_uncached"].get("qps")
    if not all(isinstance(v, (int, float)) and v > 0 for v in (cached, uncached)):
        return []  # the generic positive-keys check reports these
    if cached * PLAN_CACHE_SLOWDOWN_TOLERANCE < uncached:
        return [
            f"{path}: param_point cached throughput {cached:.0f} qps fell behind "
            f"uncached {uncached:.0f} qps — the plan cache made queries slower"
        ]
    return []


# Perf-regression tolerance for the traverse suite's mode comparisons. CI
# wall times are noisy, so the gate only fires on multiples no amount of
# jitter explains: the fused plan falling behind the per-hop batched plan it
# replaces, or row-block threading making the same product slower.
TRAVERSE_SLOWDOWN_TOLERANCE = 1.5


def check_traverse(path, doc):
    problems = []
    by_query = {}
    for entry in doc.get("results") or []:
        if isinstance(entry, dict) and "query" in entry and "mode" in entry:
            by_query.setdefault(entry["query"], {})[entry["mode"]] = entry

    for query, modes in by_query.items():
        # Row identity: every mode of a query answers the same count. This is
        # the cheap end of the fused-vs-unfused differential suite — a fused
        # 3hop_chain that multiplies wrong shows up right here.
        rows = {mode: entry.get("rows") for mode, entry in modes.items()}
        if len(set(rows.values())) > 1:
            problems.append(f"{path}: '{query}' row counts diverge across modes: {rows}")

        missing = {"scalar", "batched", "batched+threads", "fused"} - set(modes)
        if missing:
            problems.append(f"{path}: '{query}' missing modes: {sorted(missing)}")
            continue

        batched = modes["batched"].get("wall_ms")
        threaded = modes["batched+threads"].get("wall_ms")
        fused = modes["fused"].get("wall_ms")
        if not all(isinstance(v, (int, float)) and v > 0 for v in (batched, threaded, fused)):
            continue  # the generic positive-keys check reports these
        if fused > batched * TRAVERSE_SLOWDOWN_TOLERANCE:
            problems.append(
                f"{path}: '{query}' fused plan slower than unfused "
                f"({fused:.2f}ms vs {batched:.2f}ms batched) — the algebraic "
                f"optimizer regressed"
            )
        if threaded > batched * TRAVERSE_SLOWDOWN_TOLERANCE:
            problems.append(
                f"{path}: '{query}' batched+threads slower than batched "
                f"({threaded:.2f}ms vs {batched:.2f}ms) — the mxm thread "
                f"budget regressed"
            )
    return problems


def check_file(path):
    problems = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    suite = doc.get("suite")
    if suite is None:
        return [f"{path}: missing top-level 'suite' key"]
    required = REQUIRED_RESULT_KEYS.get(suite)
    if required is None:
        return [
            f"{path}: unknown suite '{suite}' — register its schema in "
            f"scripts/bench_check.py"
        ]

    if suite == "network":
        problems.extend(check_network_metrics(path, doc))
        problems.extend(check_network_plan_cache(path, doc))
    if suite == "traverse":
        problems.extend(check_traverse(path, doc))

    results = doc.get("results")
    if not isinstance(results, list) or not results:
        return problems + [f"{path}: 'results' must be a non-empty list"]

    for i, entry in enumerate(results):
        if not isinstance(entry, dict):
            problems.append(f"{path}: results[{i}] is not an object")
            continue
        missing = required - set(entry)
        if missing:
            problems.append(
                f"{path}: results[{i}] missing required keys: {sorted(missing)}"
            )
        for key, value in entry.items():
            if key not in POSITIVE_KEYS:
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{path}: results[{i}].{key} is not a number: {value!r}")
            elif math.isnan(value) or math.isinf(value):
                problems.append(f"{path}: results[{i}].{key} is {value} (not finite)")
            elif value <= 0:
                problems.append(
                    f"{path}: results[{i}].{key} = {value} — measured op regressed "
                    f"to zero (bench ran but measured nothing)"
                )
    return problems


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    all_problems = []
    for path in argv[1:]:
        all_problems.extend(check_file(path))
    if all_problems:
        for p in all_problems:
            print(f"bench_check: FAIL: {p}", file=sys.stderr)
        return 1
    print(f"bench_check: OK ({len(argv) - 1} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
