//! Real-time recommendation engine — one of the use cases the paper's
//! introduction motivates ("real-time recommendation engines,
//! personalization, … social networking").
//!
//! A Twitter-like follower graph is generated, loaded, and each query
//! recommends new accounts to follow: accounts followed by the accounts you
//! follow, ranked by how many of your follows follow them, excluding the ones
//! you already follow.
//!
//! ```text
//! cargo run --release -p redisgraph-bench --example social_recommendations
//! ```

use datagen::PowerLawConfig;
use redisgraph_core::{Graph, Value};
use std::time::Instant;

fn main() {
    // A scaled-down follower network with the real graph's degree shape.
    let network = datagen::powerlaw::generate(&PowerLawConfig {
        num_vertices: 2_000,
        edges_per_vertex: 12,
        random_fraction: 0.15,
        seed: 11,
    });
    let mut g = Graph::new("followers");
    g.bulk_load(network.num_vertices, &network.edges);
    println!("loaded follower graph: {} accounts, {} follow edges", g.node_count(), g.edge_count());

    // Recommend for a handful of accounts.
    for account in [5u64, 42, 300] {
        let start = Instant::now();
        // friends-of-friends, grouped and ranked by the number of common follows
        let recs = g
            .query_readonly(&format!(
                "MATCH (me)-[:LINK]->(friend)-[:LINK]->(candidate) \
                 WHERE id(me) = {account} AND NOT id(candidate) = {account} \
                 RETURN id(candidate), count(friend) AS strength \
                 ORDER BY strength DESC LIMIT 5"
            ))
            .expect("recommendation query succeeds");
        let elapsed = start.elapsed();

        println!(
            "\naccount {account}: top follow recommendations ({:.2} ms)",
            elapsed.as_secs_f64() * 1e3
        );
        if recs.rows.is_empty() {
            println!("    (no second-degree connections)");
        }
        for row in &recs.rows {
            let candidate = &row[0];
            let strength = row[1].as_i64().unwrap_or(0);
            println!("    account {candidate:<8} followed by {strength} of your follows");
        }

        // Cross-check the candidate pool size with the algebraic 2-hop reach.
        let pool = g.khop_count(account, 2);
        let direct = g.khop_count(account, 1);
        println!(
            "    candidate pool: {} accounts within 2 hops ({} followed directly)",
            pool, direct
        );
        assert!(pool >= direct);
    }

    // A personalization-style query: accounts that both 5 and 42 can reach in
    // one hop (shared interests).
    let shared = g
        .query_readonly(
            "MATCH (a)-[:LINK]->(x)<-[:LINK]-(b) WHERE id(a) = 5 AND id(b) = 42 RETURN count(x)",
        )
        .expect("shared-interest query succeeds");
    if let Some(Value::Int(n)) = shared.scalar() {
        println!("\naccounts followed by both 5 and 42: {n}");
    }
}
