//! Real-time recommendation engine — one of the use cases the paper's
//! introduction motivates ("real-time recommendation engines,
//! personalization, … social networking").
//!
//! A Twitter-like follower graph is generated, loaded, and each query
//! recommends new accounts to follow: accounts followed by the accounts you
//! follow, ranked by how many of your follows follow them, excluding the ones
//! you already follow.
//!
//! ```text
//! cargo run --release -p redisgraph-bench --example social_recommendations
//! ```

use datagen::PowerLawConfig;
use redisgraph_core::{Graph, Value};
use std::time::Instant;

fn main() {
    // A scaled-down follower network with the real graph's degree shape.
    let network = datagen::powerlaw::generate(&PowerLawConfig {
        num_vertices: 2_000,
        edges_per_vertex: 12,
        random_fraction: 0.15,
        seed: 11,
    });
    let mut g = Graph::new("followers");
    g.bulk_load(network.num_vertices, &network.edges);
    println!("loaded follower graph: {} accounts, {} follow edges", g.node_count(), g.edge_count());

    // Recommend for a handful of accounts.
    for account in [5u64, 42, 300] {
        let start = Instant::now();
        // friends-of-friends, grouped and ranked by the number of common follows
        let recs = g
            .query_readonly(&format!(
                "MATCH (me)-[:LINK]->(friend)-[:LINK]->(candidate) \
                 WHERE id(me) = {account} AND NOT id(candidate) = {account} \
                 RETURN id(candidate), count(friend) AS strength \
                 ORDER BY strength DESC LIMIT 5"
            ))
            .expect("recommendation query succeeds");
        let elapsed = start.elapsed();

        println!(
            "\naccount {account}: top follow recommendations ({:.2} ms)",
            elapsed.as_secs_f64() * 1e3
        );
        if recs.rows.is_empty() {
            println!("    (no second-degree connections)");
        }
        for row in &recs.rows {
            let candidate = &row[0];
            let strength = row[1].as_i64().unwrap_or(0);
            println!("    account {candidate:<8} followed by {strength} of your follows");
        }

        // Cross-check the candidate pool size with the algebraic 2-hop reach.
        let pool = g.khop_count(account, 2);
        let direct = g.khop_count(account, 1);
        println!(
            "    candidate pool: {} accounts within 2 hops ({} followed directly)",
            pool, direct
        );
        assert!(pool >= direct);
    }

    // A personalization-style query: accounts that both 5 and 42 can reach in
    // one hop (shared interests).
    let shared = g
        .query_readonly(
            "MATCH (a)-[:LINK]->(x)<-[:LINK]-(b) WHERE id(a) = 5 AND id(b) = 42 RETURN count(x)",
        )
        .expect("shared-interest query succeeds");
    if let Some(Value::Int(n)) = shared.scalar() {
        println!("\naccounts followed by both 5 and 42: {n}");
    }

    // Who are the most influential accounts overall? PageRank over the exact
    // same adjacency matrices the recommendation queries traversed, via the
    // CALL procedure surface — analytics as a by-product of the query engine.
    let start = Instant::now();
    let influencers = g
        .query_readonly(
            "CALL algo.pagerank() YIELD node, score \
             RETURN node, score ORDER BY score DESC LIMIT 5",
        )
        .expect("pagerank procedure succeeds");
    println!(
        "\nmost influential accounts by PageRank ({:.2} ms):",
        start.elapsed().as_secs_f64() * 1e3
    );
    for row in &influencers.rows {
        let account = &row[0];
        let score = row[1].as_f64().unwrap_or(0.0);
        println!("    account {account:<12} score {score:.5}");
    }

    // Cross-check: how fragmented is the follower graph?
    let components = g
        .query_readonly("CALL algo.wcc() YIELD component RETURN count(DISTINCT component)")
        .expect("wcc procedure succeeds");
    if let Some(Value::Int(n)) = components.scalar() {
        println!("\nweakly connected components in the follower graph: {n}");
    }
}
