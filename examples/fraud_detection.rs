//! Fraud detection — another use case from the paper's introduction.
//!
//! Builds a payment network of customers, cards, merchants and devices, then:
//!
//! 1. finds *card sharing rings* — distinct customers using the same card;
//! 2. finds *device collusion* — customers transacting with a flagged merchant
//!    through a device also used by another customer;
//! 3. computes the *blast radius* of a flagged account: every entity within
//!    k hops, using the same variable-length traversal the k-hop benchmark
//!    measures.
//!
//! ```text
//! cargo run --release -p redisgraph-bench --example fraud_detection
//! ```

use redisgraph_core::{Graph, Value};

fn main() {
    let mut g = Graph::new("payments");

    // Customers, cards, devices, merchants.
    g.query(
        "CREATE (:Customer {name: 'alice', risk: 1}), (:Customer {name: 'bob', risk: 2}), \
                (:Customer {name: 'carol', risk: 8}), (:Customer {name: 'dave', risk: 3}), \
                (:Card {number: 'C-100'}), (:Card {number: 'C-200'}), \
                (:Device {fingerprint: 'D-1'}), (:Device {fingerprint: 'D-2'}), \
                (:Merchant {name: 'GoodShop'}), (:Merchant {name: 'ShadyShop', flagged: true})",
    )
    .unwrap();

    // Relationships: who holds which card, which device was used, where money went.
    for (a, rel, b) in [
        ("alice", "HOLDS", "C-100"),
        ("bob", "HOLDS", "C-100"), // same card as alice → ring
        ("carol", "HOLDS", "C-200"),
        ("dave", "HOLDS", "C-200"),
    ] {
        g.query(&format!(
            "MATCH (c:Customer {{name: '{a}'}}), (k:Card {{number: '{b}'}}) CREATE (c)-[:{rel}]->(k)"
        ))
        .unwrap();
    }
    for (customer, device) in [("alice", "D-1"), ("carol", "D-2"), ("dave", "D-2")] {
        g.query(&format!(
            "MATCH (c:Customer {{name: '{customer}'}}), (d:Device {{fingerprint: '{device}'}}) CREATE (c)-[:USED]->(d)"
        ))
        .unwrap();
    }
    for (customer, merchant, amount) in [
        ("alice", "GoodShop", 30),
        ("carol", "ShadyShop", 900),
        ("dave", "ShadyShop", 850),
        ("bob", "GoodShop", 12),
    ] {
        g.query(&format!(
            "MATCH (c:Customer {{name: '{customer}'}}), (m:Merchant {{name: '{merchant}'}}) \
             CREATE (c)-[:PAID {{amount: {amount}}}]->(m)"
        ))
        .unwrap();
    }
    println!("payment network: {} nodes, {} edges\n", g.node_count(), g.edge_count());

    // 1. Card-sharing rings: two different customers holding the same card.
    let rings = g
        .query(
            "MATCH (a:Customer)-[:HOLDS]->(card:Card)<-[:HOLDS]-(b:Customer) \
             WHERE a.name < b.name \
             RETURN a.name, b.name, card.number",
        )
        .unwrap();
    println!("card-sharing rings:");
    println!("{}", rings.to_table());
    assert!(!rings.rows.is_empty());

    // 2. Device collusion around flagged merchants: customers paying a flagged
    //    merchant from a device that another customer also used.
    let collusion = g
        .query(
            "MATCH (m:Merchant {flagged: true})<-[p:PAID]-(c:Customer)-[:USED]->(d:Device)<-[:USED]-(other:Customer) \
             WHERE p.amount > 500 AND c.name <> other.name \
             RETURN c.name, other.name, d.fingerprint, p.amount ORDER BY p.amount DESC",
        )
        .unwrap();
    println!("device collusion near flagged merchants:");
    println!("{}", collusion.to_table());

    // 3. Blast radius of the riskiest customer: everything reachable in ≤3 hops
    //    in either direction (the k-hop primitive of the paper's benchmark).
    let risky = g.query("MATCH (c:Customer) RETURN c.name ORDER BY c.risk DESC LIMIT 1").unwrap();
    let name = risky.rows[0][0].to_string();
    let blast = g
        .query(&format!(
            "MATCH (c:Customer {{name: '{name}'}})-[*1..3]-(entity) RETURN count(DISTINCT entity)"
        ))
        .unwrap();
    if let Some(Value::Int(n)) = blast.scalar() {
        println!("blast radius of '{name}' (≤3 hops, any direction): {n} entities");
        assert!(*n > 0);
    }
}
