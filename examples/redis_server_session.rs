//! A client session against the Redis-like server substrate: commands are
//! framed in RESP exactly as a Redis client would send them, dispatched by the
//! single main thread, and executed on the module threadpool — the
//! architecture §II of the paper describes.
//!
//! ```text
//! cargo run --release -p redisgraph-bench --example redis_server_session
//! ```

use redisgraph_server::{RedisGraphServer, RespValue, ServerConfig};

fn send(server: &RedisGraphServer, parts: &[&str]) -> RespValue {
    let command = RespValue::command(parts);
    // Round-trip through the wire encoding to demonstrate the protocol layer.
    let bytes = command.encode();
    let (decoded, _) = RespValue::decode(&bytes).expect("well-formed frame");
    let reply = server.handle(&decoded);
    println!("> {}", parts.join(" "));
    println!("{reply}\n");
    reply
}

fn main() {
    // THREAD_COUNT 4: the module loads with a four-worker query pool.
    let server = RedisGraphServer::new(ServerConfig { thread_count: 4, ..ServerConfig::default() });

    send(&server, &["PING"]);

    send(
        &server,
        &[
            "GRAPH.QUERY",
            "motogp",
            "CREATE (:Rider {name: 'Valentino Rossi'})-[:rides]->(:Team {name: 'Yamaha'}), \
                    (:Rider {name: 'Dani Pedrosa'})-[:rides]->(:Team {name: 'Honda'}), \
                    (:Rider {name: 'Andrea Dovizioso'})-[:rides]->(:Team {name: 'Ducati'})",
        ],
    );

    let reply = send(
        &server,
        &[
            "GRAPH.QUERY",
            "motogp",
            "MATCH (r:Rider)-[:rides]->(t:Team) WHERE t.name = 'Yamaha' RETURN r.name, t.name",
        ],
    );
    assert!(matches!(reply, RespValue::Array(_)));

    send(
        &server,
        &["GRAPH.EXPLAIN", "motogp", "MATCH (r:Rider)-[:rides]->(t:Team) RETURN count(r)"],
    );

    send(&server, &["GRAPH.QUERY", "motogp", "MATCH (r:Rider) RETURN count(r)"]);

    send(&server, &["GRAPH.LIST"]);
    send(&server, &["GRAPH.DELETE", "motogp"]);
    send(&server, &["GRAPH.LIST"]);

    // The same session over a *real* socket: bind the TCP server on an
    // ephemeral loopback port, connect the blocking client, and let the
    // bytes cross an actual network stack — framing loop, worker pool,
    // pipelined replies and all.
    println!("--- over TCP ---\n");
    let net = redisgraph_server::GraphServer::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    println!("listening on {}\n", net.local_addr());
    let mut client =
        redisgraph_server::RespClient::connect(net.local_addr()).expect("connect to self");
    for (graph, query) in [
        ("motogp", "CREATE (:Rider {name: 'Marc Marquez'})-[:rides]->(:Team {name: 'Honda'})"),
        ("motogp", "MATCH (r:Rider)-[:rides]->(t:Team) RETURN r.name, t.name"),
    ] {
        let reply = client.query(graph, query).expect("round-trip");
        println!("> GRAPH.QUERY {graph} '{query}'");
        println!("{reply}\n");
    }
    // A pipelined burst: three commands in one write, three replies in order.
    let replies = client
        .pipeline(&[
            RespValue::command(&["PING"]),
            RespValue::command(&["GRAPH.QUERY", "motogp", "MATCH (r:Rider) RETURN count(r)"]),
            RespValue::command(&["GRAPH.CONFIG", "GET", "MAX_QUERY_BUFFER"]),
        ])
        .expect("pipelined round-trip");
    for reply in &replies {
        println!("(pipelined) {reply}");
    }
    net.shutdown(); // drains in-flight queries, closes every connection
    println!("\nserver shut down cleanly");
}
