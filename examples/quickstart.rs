//! Quickstart: create a graph, run Cypher queries, inspect the execution plan.
//!
//! ```text
//! cargo run --release -p redisgraph-bench --example quickstart
//! ```

use redisgraph_core::Graph;

fn main() {
    // A graph is an in-process object; the server crate adds the Redis keyspace
    // and RESP protocol on top of it (see the `redis_server_session` example).
    let mut g = Graph::new("quickstart");

    // Write queries mutate the graph and report statistics.
    let created = g
        .query(
            "CREATE (ann:Person {name: 'Ann', age: 34}), \
                    (bob:Person {name: 'Bob', age: 28}), \
                    (cat:Person {name: 'Cat', age: 41}), \
                    (acme:Company {name: 'Acme'}), \
                    (ann)-[:KNOWS {since: 2015}]->(bob), \
                    (bob)-[:KNOWS {since: 2019}]->(cat), \
                    (ann)-[:WORKS_AT]->(acme), \
                    (cat)-[:WORKS_AT]->(acme)",
        )
        .expect("create succeeds");
    println!("-- CREATE statistics --");
    println!("{}", created.to_table());

    // Read queries: traversals become sparse-matrix operations internally.
    let friends_of_friends = g
        .query(
            "MATCH (a:Person {name: 'Ann'})-[:KNOWS*1..2]->(p) RETURN p.name, p.age ORDER BY p.age",
        )
        .expect("query succeeds");
    println!("-- Ann's 1..2-hop KNOWS neighbourhood --");
    println!("{}", friends_of_friends.to_table());

    let colleagues = g
        .query(
            "MATCH (a:Person)-[:WORKS_AT]->(c:Company)<-[:WORKS_AT]-(b:Person) \
             WHERE a.name < b.name RETURN a.name, b.name, c.name",
        )
        .expect("query succeeds");
    println!("-- colleagues (same company) --");
    println!("{}", colleagues.to_table());

    let stats = g
        .query("MATCH (p:Person) RETURN count(p), avg(p.age), min(p.age), max(p.age)")
        .expect("query succeeds");
    println!("-- aggregate over people --");
    println!("{}", stats.to_table());

    // GRAPH.EXPLAIN equivalent: show how a query compiles to plan operations.
    println!("-- execution plan for the k-hop benchmark query --");
    for line in g
        .explain("MATCH (s:Node)-[*1..6]->(t) WHERE id(s) = 0 RETURN count(t)")
        .expect("explain succeeds")
    {
        println!("    {line}");
    }
}
