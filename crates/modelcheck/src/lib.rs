//! # modelcheck — deterministic concurrency model checking
//!
//! A loom/shuttle-style checker, built in-tree because the build is
//! offline. Test code hands [`check`] (or [`explore`]) a closure; the
//! checker runs it many times under a controlled scheduler that serializes
//! all threads and decides, at every instrumented operation, which thread
//! runs next:
//!
//! - an exhaustive **bounded-preemption DFS** over scheduling decisions,
//!   backtracking through the decision tree until exhausted or capped, and
//! - **PCT** (probabilistic concurrency testing) iterations with seeded
//!   random priorities, which reach deep interleavings DFS's budget cannot.
//!
//! Production code participates by using the vendored `parking_lot` /
//! `crossbeam` shims (built with their `model` feature in model-check
//! builds): their locks, channels, atomics and thread spawns route through
//! [`sync`] and [`thread`] here, so the *real* types — not models of them —
//! run under the scheduler. Outside an execution every wrapper delegates to
//! std, so enabling the feature does not change ordinary tests.
//!
//! Failures print a schedule string; setting `MC_REPLAY=<that string>` and
//! re-running the same test replays the failing interleaving exactly (the
//! scheduler is deterministic given the decision sequence).

mod exec;
pub mod sync;
pub mod thread;

pub use exec::in_execution;

use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use exec::{Decision, RunConfig, RunOutcome, SplitMix, Strategy};

/// Exploration budget and semantics knobs for one [`check`] call.
pub struct Config {
    /// Cap on DFS schedules (the DFS stops early if the tree is exhausted).
    pub max_schedules: usize,
    /// Additional PCT (randomized) iterations after the DFS phase.
    pub pct_iterations: usize,
    /// Per-run step bound; exceeding it fails the run as a livelock.
    pub max_steps: usize,
    /// DFS preemption budget (None = unbounded, full interleaving tree).
    pub preemption_bound: Option<usize>,
    /// Number of PCT priority-change points per iteration.
    pub pct_depth: usize,
    /// Base seed for the PCT phase; every iteration derives from it.
    pub seed: u64,
    /// Permit model threads to panic without failing the execution (for
    /// suites that test panic-safety of the code under check).
    pub allow_thread_panics: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_schedules: 1200,
            pct_iterations: 600,
            max_steps: 20_000,
            preemption_bound: Some(2),
            pct_depth: 3,
            seed: 0x5EED_CA11,
            allow_thread_panics: false,
        }
    }
}

/// A schedule that violated a property, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Failure {
    pub message: String,
    /// Deterministic replay string (`c:3.0.1...`): the branch taken at each
    /// branchable scheduling decision.
    pub schedule: String,
    /// Which phase found it (for the log; replay does not need it).
    pub phase: &'static str,
}

/// Outcome of a [`check`] call.
#[derive(Debug, Clone)]
pub struct Report {
    /// Total executions run.
    pub explored: usize,
    /// Distinct decision sequences among them (DFS schedules are distinct
    /// by construction; PCT iterations can repeat).
    pub distinct: usize,
    pub failure: Option<Failure>,
}

fn schedule_string(decisions: &[Decision]) -> String {
    let parts: Vec<String> = decisions.iter().map(|d| d.chosen.to_string()).collect();
    format!("c:{}", parts.join("."))
}

fn parse_schedule(s: &str) -> Option<Vec<u32>> {
    let body = s.strip_prefix("c:")?;
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split('.').map(|p| p.parse().ok()).collect()
}

fn seq_hash(decisions: &[Decision]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for d in decisions {
        d.chosen.hash(&mut h);
    }
    h.finish()
}

fn run_cfg(cfg: &Config) -> RunConfig {
    RunConfig {
        max_steps: cfg.max_steps,
        preemption_bound: cfg.preemption_bound,
        allow_thread_panics: cfg.allow_thread_panics,
    }
}

fn failure_from(outcome: &RunOutcome, phase: &'static str) -> Option<Failure> {
    outcome.failure.as_ref().map(|message| Failure {
        message: message.clone(),
        schedule: schedule_string(&outcome.decisions),
        phase,
    })
}

/// Explore schedules of `f` under the configured budgets. Returns a report;
/// never panics on property violations (use [`explore`] for assert-style
/// use in tests).
pub fn check<F: Fn()>(cfg: &Config, f: F) -> Report {
    // Replay mode: a single deterministic run of the recorded schedule.
    if let Ok(replay) = std::env::var("MC_REPLAY") {
        let prefix = parse_schedule(&replay)
            .unwrap_or_else(|| panic!("malformed MC_REPLAY string: {replay:?}"));
        let outcome = exec::run_once(Strategy::Replay { prefix, pos: 0 }, run_cfg(cfg), &f);
        return Report { explored: 1, distinct: 1, failure: failure_from(&outcome, "replay") };
    }

    let mut distinct = HashSet::new();
    let mut explored = 0;

    // Phase 1: bounded-preemption DFS. Each run replays a prefix of
    // decisions and defaults to "keep running the current thread" past it;
    // the next prefix flips the deepest decision with an untaken branch.
    let mut prefix: Vec<u32> = Vec::new();
    let mut dfs_done = false;
    while explored < cfg.max_schedules {
        let outcome =
            exec::run_once(Strategy::Replay { prefix: prefix.clone(), pos: 0 }, run_cfg(cfg), &f);
        explored += 1;
        distinct.insert(seq_hash(&outcome.decisions));
        if outcome.failure.is_some() {
            return Report {
                explored,
                distinct: distinct.len(),
                failure: failure_from(&outcome, "dfs"),
            };
        }
        match next_prefix(&outcome.decisions) {
            Some(next) => prefix = next,
            None => {
                dfs_done = true;
                break;
            }
        }
    }
    let _ = dfs_done;

    // Phase 2: PCT. Seeded random priorities with priority-change points
    // placed uniformly over the (adaptively estimated) run length.
    let mut step_estimate = 256usize;
    for i in 0..cfg.pct_iterations {
        let iter_seed = cfg.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = SplitMix(iter_seed);
        let change_points: Vec<usize> =
            (0..cfg.pct_depth).map(|_| 1 + (rng.next() as usize) % step_estimate.max(2)).collect();
        let outcome = exec::run_once(
            Strategy::Pct { rng, priorities: Vec::new(), change_points, next_low: 1 << 16 },
            run_cfg(cfg),
            &f,
        );
        explored += 1;
        step_estimate = (step_estimate + outcome.steps).max(2) / 2;
        distinct.insert(seq_hash(&outcome.decisions));
        if outcome.failure.is_some() {
            return Report {
                explored,
                distinct: distinct.len(),
                failure: failure_from(&outcome, "pct"),
            };
        }
    }

    Report { explored, distinct: distinct.len(), failure: None }
}

/// Deepest decision with an untaken branch decides the next DFS prefix.
fn next_prefix(decisions: &[Decision]) -> Option<Vec<u32>> {
    for i in (0..decisions.len()).rev() {
        if decisions[i].chosen + 1 < decisions[i].n_options {
            let mut next: Vec<u32> = decisions[..i].iter().map(|d| d.chosen).collect();
            next.push(decisions[i].chosen + 1);
            return Some(next);
        }
    }
    None
}

/// Assert-style wrapper for test suites: explores, prints a summary line,
/// and panics with replay instructions if any schedule violated a property.
pub fn explore<F: Fn()>(name: &str, cfg: &Config, f: F) -> Report {
    let report = check(cfg, f);
    match &report.failure {
        None => {
            println!(
                "modelcheck[{name}]: ok — {} schedules explored, {} distinct",
                report.explored, report.distinct
            );
            report
        }
        Some(fail) => {
            panic!(
                "modelcheck[{name}] FAILED ({} phase) after {} schedules:\n  {}\n  \
                 schedule: {}\n  replay: re-run this test with MC_REPLAY={} \
                 (single deterministic execution)",
                fail.phase, report.explored, fail.message, fail.schedule, fail.schedule
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn small() -> Config {
        Config { max_schedules: 300, pct_iterations: 100, ..Config::default() }
    }

    #[test]
    fn finds_check_then_act_race() {
        // Classic TOCTOU over-admission: two threads check a shim-atomic
        // counter against a cap and then increment. Some interleaving must
        // admit both past cap=1 — the checker has to find it.
        let report = check(&small(), || {
            let gauge = Arc::new(sync::atomic::AtomicUsize::new(0));
            let admitted = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let gauge = gauge.clone();
                    let admitted = admitted.clone();
                    thread::spawn(move || {
                        if gauge.load(sync::atomic::Ordering::SeqCst) < 1 {
                            gauge.fetch_add(1, sync::atomic::Ordering::SeqCst);
                            admitted.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert!(admitted.load(Ordering::SeqCst) <= 1, "over-admission past the cap");
        });
        let failure = report.failure.expect("checker must find the TOCTOU race");
        assert!(failure.message.contains("over-admission"), "{}", failure.message);
    }

    #[test]
    fn race_free_cas_admission_passes() {
        // The fixed protocol: compare_exchange admission. No schedule can
        // over-admit.
        let report = check(&small(), || {
            let gauge = Arc::new(sync::atomic::AtomicUsize::new(0));
            let admitted = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let gauge = gauge.clone();
                    let admitted = admitted.clone();
                    thread::spawn(move || {
                        let mut cur = gauge.load(sync::atomic::Ordering::SeqCst);
                        loop {
                            if cur >= 1 {
                                return;
                            }
                            match gauge.compare_exchange(
                                cur,
                                cur + 1,
                                sync::atomic::Ordering::SeqCst,
                                sync::atomic::Ordering::SeqCst,
                            ) {
                                Ok(_) => {
                                    admitted.fetch_add(1, Ordering::SeqCst);
                                    return;
                                }
                                Err(actual) => cur = actual,
                            }
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert!(admitted.load(Ordering::SeqCst) <= 1);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.distinct > 1, "expected multiple distinct schedules");
    }

    #[test]
    fn detects_deadlock() {
        let report = check(&small(), || {
            let a = Arc::new(sync::Mutex::new(0));
            let b = Arc::new(sync::Mutex::new(0));
            let (a2, b2) = (a.clone(), b.clone());
            let h = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            drop(_ga);
            drop(_gb);
            let _ = h.join();
        });
        let failure = report.failure.expect("checker must find the lock-order deadlock");
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
    }

    #[test]
    fn mutex_counter_is_consistent() {
        let report = check(&small(), || {
            let m = Arc::new(sync::Mutex::new(0u32));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let m = m.clone();
                    thread::spawn(move || {
                        let mut g = m.lock().unwrap();
                        let v = *g;
                        *g = v + 1;
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 2, "mutex failed to serialize increments");
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }

    #[test]
    fn condvar_wakeups_are_not_lost() {
        // One-slot handoff: consumer waits on a condvar for a flag the
        // producer sets under the mutex. If the model's wait/notify could
        // lose a wakeup this deadlocks.
        let report = check(&small(), || {
            let pair = Arc::new((sync::Mutex::new(false), sync::Condvar::new()));
            let p2 = pair.clone();
            let h = thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut g = m.lock().unwrap();
                *g = true;
                drop(g);
                cv.notify_one();
            });
            let (m, cv) = &*pair;
            let mut g = m.lock().unwrap();
            while !*g {
                g = cv.wait(g).unwrap();
            }
            drop(g);
            h.join().unwrap();
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }

    #[test]
    fn failing_schedule_replays_deterministically() {
        let body = || {
            let gauge = Arc::new(sync::atomic::AtomicUsize::new(0));
            let g2 = gauge.clone();
            let h = thread::spawn(move || {
                let seen = g2.load(sync::atomic::Ordering::SeqCst);
                g2.store(seen + 1, sync::atomic::Ordering::SeqCst);
            });
            let seen = gauge.load(sync::atomic::Ordering::SeqCst);
            gauge.store(seen + 1, sync::atomic::Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(gauge.load(sync::atomic::Ordering::SeqCst), 2, "lost update");
        };
        let report = check(&small(), body);
        let failure = report.failure.expect("checker must find the lost update");

        // Replay the printed schedule directly (without the env var, which
        // would leak across parallel tests): the same decisions must
        // reproduce the same failure.
        let prefix = parse_schedule(&failure.schedule).expect("valid schedule string");
        for _ in 0..3 {
            let outcome = exec::run_once(
                Strategy::Replay { prefix: prefix.clone(), pos: 0 },
                run_cfg(&small()),
                &body,
            );
            let replayed = outcome.failure.expect("replay must reproduce the failure");
            assert!(replayed.contains("lost update"), "{replayed}");
            assert_eq!(schedule_string(&outcome.decisions), failure.schedule);
        }
    }

    #[test]
    fn yield_spins_terminate() {
        // A spin loop waiting on another thread's store must terminate in
        // every schedule thanks to yield fairness.
        let report = check(&small(), || {
            let flag = Arc::new(sync::atomic::AtomicBool::new(false));
            let f2 = flag.clone();
            let h = thread::spawn(move || {
                f2.store(true, sync::atomic::Ordering::SeqCst);
            });
            while !flag.load(sync::atomic::Ordering::SeqCst) {
                thread::yield_now();
            }
            h.join().unwrap();
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }

    #[test]
    fn outside_execution_primitives_delegate_to_std() {
        // No execution running: the wrappers behave as plain std types.
        assert!(!in_execution());
        let m = sync::Mutex::new(1);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 2);
        let rw = sync::RwLock::new(3);
        assert_eq!(*rw.read().unwrap(), 3);
        let h = thread::spawn(|| 40 + 2);
        assert_eq!(h.join().unwrap(), 42);
    }
}
