//! Instrumented thread management. Inside a model execution, spawned
//! threads are real OS threads registered with the scheduler — they run
//! only when granted the turn, so all interleaving happens at instrumented
//! points. Outside an execution everything delegates to `std::thread`.

use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crate::exec::{self, ctx, Execution, ModelAbort};

pub struct JoinHandle<T> {
    real: std::thread::JoinHandle<T>,
    model: Option<(Arc<Execution>, usize)>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((exec, id)) = &self.model {
            exec.join(*id);
        }
        self.real.join()
    }

    pub fn is_finished(&self) -> bool {
        match &self.model {
            Some((exec, id)) => exec.thread_is_finished(*id),
            None => self.real.is_finished(),
        }
    }

    pub fn thread(&self) -> &std::thread::Thread {
        self.real.thread()
    }
}

/// Mirror of `std::thread::Builder` (name + spawn).
pub struct Builder {
    inner: std::thread::Builder,
}

impl Default for Builder {
    fn default() -> Self {
        Builder::new()
    }
}

impl Builder {
    pub fn new() -> Self {
        Builder { inner: std::thread::Builder::new() }
    }

    pub fn name(self, name: String) -> Self {
        Builder { inner: self.inner.name(name) }
    }

    pub fn stack_size(self, size: usize) -> Self {
        Builder { inner: self.inner.stack_size(size) }
    }

    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match ctx() {
            Some((exec, _)) => spawn_model(self.inner, exec, None, f),
            None => {
                let real = self.inner.spawn(f)?;
                Ok(JoinHandle { real, model: None })
            }
        }
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// Ensures `live_os` is decremented however the wrapper exits.
struct OsExit(Arc<Execution>);

impl Drop for OsExit {
    fn drop(&mut self) {
        self.0.os_thread_exited();
    }
}

fn spawn_model<F, T>(
    builder: std::thread::Builder,
    exec: Arc<Execution>,
    scope: Option<usize>,
    f: F,
) -> io::Result<JoinHandle<T>>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let id = exec.register_thread(scope);
    let exec2 = exec.clone();
    match builder.spawn(move || model_thread_main(exec2, id, scope, f)) {
        Ok(real) => Ok(JoinHandle { real, model: Some((exec, id)) }),
        Err(e) => {
            // The OS thread never existed: retire the registration so the
            // scheduler doesn't wait for it.
            exec.finish_thread(id, scope, None);
            exec.os_thread_exited();
            Err(e)
        }
    }
}

/// Body of every model OS thread: adopt the scheduler context, wait for the
/// first turn, run the payload, then hand bookkeeping back — propagating
/// user panics so the real `JoinHandle` reports them like std would.
fn model_thread_main<F, T>(exec: Arc<Execution>, id: usize, scope: Option<usize>, f: F) -> T
where
    F: FnOnce() -> T,
{
    let _exit = OsExit(exec.clone());
    if let Err(p) = panic::catch_unwind(AssertUnwindSafe(|| exec.enter_thread(id))) {
        // Aborted before ever being scheduled.
        exec.finish_thread(id, scope, None);
        exec::clear_ctx();
        panic::resume_unwind(p);
    }
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    let user_panic = match &result {
        Err(p) if !p.is::<ModelAbort>() => Some(exec::panic_message(p.as_ref())),
        _ => None,
    };
    exec.finish_thread(id, scope, user_panic);
    exec::clear_ctx();
    match result {
        Ok(v) => v,
        Err(p) => panic::resume_unwind(p),
    }
}

pub fn yield_now() {
    match ctx() {
        Some((exec, _)) => exec.schedule_yield(),
        None => std::thread::yield_now(),
    }
}

/// Under the model there is no virtual clock: sleeping is a plain yield.
pub fn sleep(dur: Duration) {
    match ctx() {
        Some((exec, _)) => exec.schedule_yield(),
        None => std::thread::sleep(dur),
    }
}

// ---------------------------------------------------------------- scope --

/// Mirror of `std::thread::scope`, model-aware: scoped children register
/// with the scheduler and the scope exit blocks (as a model operation)
/// until all of them have finished, so the real `std::thread::scope` join
/// at the end never blocks outside scheduler control.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    match ctx() {
        Some((exec, _)) => std::thread::scope(|s| {
            let scope_id = exec.register_scope();
            let wrapper = Scope { std: s, model: Some((exec.clone(), scope_id)) };
            let r = f(&wrapper);
            exec.wait_scope(scope_id);
            r
        }),
        None => std::thread::scope(|s| f(&Scope { std: s, model: None })),
    }
}

pub struct Scope<'scope, 'env: 'scope> {
    std: &'scope std::thread::Scope<'scope, 'env>,
    model: Option<(Arc<Execution>, usize)>,
}

impl Clone for Scope<'_, '_> {
    fn clone(&self) -> Self {
        Scope { std: self.std, model: self.model.clone() }
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.model {
            Some((exec, scope_id)) => {
                let id = exec.register_thread(Some(*scope_id));
                let exec2 = exec.clone();
                let scope_id = *scope_id;
                let real = self.std.spawn(move || model_thread_main(exec2, id, Some(scope_id), f));
                ScopedJoinHandle { real, model: Some((exec.clone(), id)) }
            }
            None => ScopedJoinHandle { real: self.std.spawn(f), model: None },
        }
    }
}

pub struct ScopedJoinHandle<'scope, T> {
    real: std::thread::ScopedJoinHandle<'scope, T>,
    model: Option<(Arc<Execution>, usize)>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((exec, id)) = &self.model {
            exec.join(*id);
        }
        self.real.join()
    }

    pub fn is_finished(&self) -> bool {
        match &self.model {
            Some((exec, id)) => exec.thread_is_finished(*id),
            None => self.real.is_finished(),
        }
    }
}
