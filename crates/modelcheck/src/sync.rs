//! Instrumented drop-in replacements for `std::sync` primitives.
//!
//! Each type embeds the real std primitive and adds scheduler bookkeeping
//! when the calling thread is inside a model execution; outside one, every
//! operation delegates straight to std. That makes these types safe to link
//! into ordinary builds and tests — cargo feature unification can turn the
//! vendored shims' `model` feature on for a whole test workspace without
//! changing behaviour anywhere a model execution is not actively running.
//!
//! Inside an execution the protocol is: logical ownership is granted by the
//! scheduler first (a blocking decision point), after which the embedded
//! std primitive is acquired with `try_lock` — guaranteed uncontended,
//! because only one model thread runs at a time and the scheduler only
//! grants ownership the real lock can honour. No `unsafe` needed.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, Arc, LockResult, PoisonError, TryLockError};

use crate::exec::{ctx, Execution};

fn addr_of<T: ?Sized>(v: &T) -> usize {
    v as *const T as *const () as usize
}

/// Unwrap a std try-lock result, ignoring poison: under the model, a
/// poisoned real lock only means a model thread unwound while holding it
/// (abort or an expected panic) — logical ownership is what matters.
fn ignore_poison<G>(r: Result<G, TryLockError<G>>) -> Option<G> {
    match r {
        Ok(g) => Some(g),
        Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
        Err(TryLockError::WouldBlock) => None,
    }
}

struct ModelRelease {
    exec: Arc<Execution>,
    addr: usize,
    kind: ReleaseKind,
}

#[derive(Clone, Copy)]
enum ReleaseKind {
    Mutex,
    Read,
    Write,
}

impl ModelRelease {
    /// Recover the parts without running the release bookkeeping.
    fn disarm(self) -> (Arc<Execution>, usize) {
        let exec = self.exec.clone();
        let addr = self.addr;
        std::mem::forget(self);
        (exec, addr)
    }
}

impl Drop for ModelRelease {
    fn drop(&mut self) {
        match self.kind {
            ReleaseKind::Mutex => self.exec.mutex_unlock(self.addr),
            ReleaseKind::Read => self.exec.rw_unlock_read(self.addr),
            ReleaseKind::Write => self.exec.rw_unlock_write(self.addr),
        }
    }
}

// ---------------------------------------------------------------- Mutex --

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    // Dropped in declaration order: the real guard is released before the
    // scheduler learns the lock is free, so a newly granted owner's
    // `try_lock` always succeeds.
    std: Option<sync::MutexGuard<'a, T>>,
    model: Option<ModelRelease>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        addr_of(self)
    }

    fn model_guard(&self, exec: Arc<Execution>) -> MutexGuard<'_, T> {
        let std = ignore_poison(self.inner.try_lock())
            .expect("model invariant: real mutex contended after logical grant");
        MutexGuard {
            lock: self,
            std: Some(std),
            model: Some(ModelRelease { exec, addr: self.addr(), kind: ReleaseKind::Mutex }),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some((exec, _)) = ctx() {
            exec.mutex_lock(self.addr());
            Ok(self.model_guard(exec))
        } else {
            match self.inner.lock() {
                Ok(g) => Ok(MutexGuard { lock: self, std: Some(g), model: None }),
                Err(e) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    std: Some(e.into_inner()),
                    model: None,
                })),
            }
        }
    }

    pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, TryLockError<MutexGuard<'_, T>>> {
        if let Some((exec, _)) = ctx() {
            if exec.mutex_try_lock(self.addr()) {
                Ok(self.model_guard(exec))
            } else {
                Err(TryLockError::WouldBlock)
            }
        } else {
            match self.inner.try_lock() {
                Ok(g) => Ok(MutexGuard { lock: self, std: Some(g), model: None }),
                Err(TryLockError::Poisoned(e)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                        lock: self,
                        std: Some(e.into_inner()),
                        model: None,
                    })))
                }
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            }
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

// -------------------------------------------------------------- Condvar --

pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    fn addr(&self) -> usize {
        addr_of(self)
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.model.take() {
            Some(release) => {
                let (exec, mutex_addr) = release.disarm();
                let lock = guard.lock;
                // Drop the real guard first; the scheduler then atomically
                // (inside its state lock) releases logical ownership and
                // joins the wait queue — no wakeup can slip between the two,
                // and no other model thread runs before `condvar_wait` takes
                // the state lock because we still hold the turn.
                drop(guard.std.take());
                drop(guard);
                exec.condvar_wait(self.addr(), mutex_addr);
                Ok(lock.model_guard(exec))
            }
            None => {
                let lock = guard.lock;
                let std = guard.std.take().expect("guard accessed after release");
                drop(guard);
                match self.inner.wait(std) {
                    Ok(g) => Ok(MutexGuard { lock, std: Some(g), model: None }),
                    Err(e) => Err(PoisonError::new(MutexGuard {
                        lock,
                        std: Some(e.into_inner()),
                        model: None,
                    })),
                }
            }
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if guard.model.is_some() {
            // Modeled as an untimed wait (see module docs on time): a state
            // only reachable via the timeout firing is a liveness bug and is
            // reported as a deadlock by the scheduler.
            match self.wait(guard) {
                Ok(g) => Ok((g, WaitTimeoutResult(false))),
                Err(e) => Err(PoisonError::new((e.into_inner(), WaitTimeoutResult(false)))),
            }
        } else {
            let lock = guard.lock;
            let std = guard.std.take().expect("guard accessed after release");
            drop(guard);
            match self.inner.wait_timeout(std, dur) {
                Ok((g, t)) => Ok((
                    MutexGuard { lock, std: Some(g), model: None },
                    WaitTimeoutResult(t.timed_out()),
                )),
                Err(e) => {
                    let (g, t) = e.into_inner();
                    Err(PoisonError::new((
                        MutexGuard { lock, std: Some(g), model: None },
                        WaitTimeoutResult(t.timed_out()),
                    )))
                }
            }
        }
    }

    pub fn notify_one(&self) {
        if let Some((exec, _)) = ctx() {
            exec.condvar_notify(self.addr(), false);
        } else {
            self.inner.notify_one();
        }
    }

    pub fn notify_all(&self) {
        if let Some((exec, _)) = ctx() {
            exec.condvar_notify(self.addr(), true);
        } else {
            self.inner.notify_all();
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar")
    }
}

// --------------------------------------------------------------- RwLock --

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    std: Option<sync::RwLockReadGuard<'a, T>>,
    // Held only for its Drop (scheduler release bookkeeping).
    _model: Option<ModelRelease>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    std: Option<sync::RwLockWriteGuard<'a, T>>,
    // Held only for its Drop (scheduler release bookkeeping).
    _model: Option<ModelRelease>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn addr(&self) -> usize {
        addr_of(self)
    }

    fn model_read(&self, exec: Arc<Execution>) -> RwLockReadGuard<'_, T> {
        let std = ignore_poison(self.inner.try_read())
            .expect("model invariant: real rwlock read contended after logical grant");
        RwLockReadGuard {
            std: Some(std),
            _model: Some(ModelRelease { exec, addr: self.addr(), kind: ReleaseKind::Read }),
        }
    }

    fn model_write(&self, exec: Arc<Execution>) -> RwLockWriteGuard<'_, T> {
        let std = ignore_poison(self.inner.try_write())
            .expect("model invariant: real rwlock write contended after logical grant");
        RwLockWriteGuard {
            std: Some(std),
            _model: Some(ModelRelease { exec, addr: self.addr(), kind: ReleaseKind::Write }),
        }
    }

    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if let Some((exec, _)) = ctx() {
            exec.rw_read(self.addr());
            Ok(self.model_read(exec))
        } else {
            match self.inner.read() {
                Ok(g) => Ok(RwLockReadGuard { std: Some(g), _model: None }),
                Err(e) => Err(PoisonError::new(RwLockReadGuard {
                    std: Some(e.into_inner()),
                    _model: None,
                })),
            }
        }
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if let Some((exec, _)) = ctx() {
            exec.rw_write(self.addr());
            Ok(self.model_write(exec))
        } else {
            match self.inner.write() {
                Ok(g) => Ok(RwLockWriteGuard { std: Some(g), _model: None }),
                Err(e) => Err(PoisonError::new(RwLockWriteGuard {
                    std: Some(e.into_inner()),
                    _model: None,
                })),
            }
        }
    }

    pub fn try_read(&self) -> Result<RwLockReadGuard<'_, T>, TryLockError<RwLockReadGuard<'_, T>>> {
        if let Some((exec, _)) = ctx() {
            if exec.rw_try_read(self.addr()) {
                Ok(self.model_read(exec))
            } else {
                Err(TryLockError::WouldBlock)
            }
        } else {
            match self.inner.try_read() {
                Ok(g) => Ok(RwLockReadGuard { std: Some(g), _model: None }),
                Err(TryLockError::Poisoned(e)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(RwLockReadGuard {
                        std: Some(e.into_inner()),
                        _model: None,
                    })))
                }
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            }
        }
    }

    pub fn try_write(
        &self,
    ) -> Result<RwLockWriteGuard<'_, T>, TryLockError<RwLockWriteGuard<'_, T>>> {
        if let Some((exec, _)) = ctx() {
            if exec.rw_try_write(self.addr()) {
                Ok(self.model_write(exec))
            } else {
                Err(TryLockError::WouldBlock)
            }
        } else {
            match self.inner.try_write() {
                Ok(g) => Ok(RwLockWriteGuard { std: Some(g), _model: None }),
                Err(TryLockError::Poisoned(e)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(RwLockWriteGuard {
                        std: Some(e.into_inner()),
                        _model: None,
                    })))
                }
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            }
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

// -------------------------------------------------------------- atomics --

pub mod atomic {
    //! Instrumented atomics, modeled sequentially consistent: each access is
    //! a scheduling point followed by the real std operation. The `Ordering`
    //! argument is passed through to std (so non-model builds keep the
    //! production orderings) but does not narrow the schedules explored.

    pub use std::sync::atomic::Ordering;

    use crate::exec::ctx;

    fn hook() {
        if let Some((exec, _)) = ctx() {
            exec.schedule();
        }
    }

    macro_rules! model_int_atomic {
        ($name:ident, $std:ident, $prim:ty) => {
            #[derive(Default, Debug)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                pub const fn new(v: $prim) -> Self {
                    $name { inner: std::sync::atomic::$std::new(v) }
                }

                pub fn load(&self, order: Ordering) -> $prim {
                    hook();
                    self.inner.load(order)
                }

                pub fn store(&self, val: $prim, order: Ordering) {
                    hook();
                    self.inner.store(val, order)
                }

                pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                    hook();
                    self.inner.swap(val, order)
                }

                pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                    hook();
                    self.inner.fetch_add(val, order)
                }

                pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                    hook();
                    self.inner.fetch_sub(val, order)
                }

                pub fn fetch_max(&self, val: $prim, order: Ordering) -> $prim {
                    hook();
                    self.inner.fetch_max(val, order)
                }

                pub fn fetch_min(&self, val: $prim, order: Ordering) -> $prim {
                    hook();
                    self.inner.fetch_min(val, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    hook();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    hook();
                    self.inner.compare_exchange_weak(current, new, success, failure)
                }

                pub fn get_mut(&mut self) -> &mut $prim {
                    self.inner.get_mut()
                }

                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }
            }

            impl From<$prim> for $name {
                fn from(v: $prim) -> Self {
                    Self::new(v)
                }
            }
        };
    }

    model_int_atomic!(AtomicUsize, AtomicUsize, usize);
    model_int_atomic!(AtomicU64, AtomicU64, u64);
    model_int_atomic!(AtomicU32, AtomicU32, u32);
    model_int_atomic!(AtomicI64, AtomicI64, i64);

    #[derive(Default, Debug)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            AtomicBool { inner: std::sync::atomic::AtomicBool::new(v) }
        }

        pub fn load(&self, order: Ordering) -> bool {
            hook();
            self.inner.load(order)
        }

        pub fn store(&self, val: bool, order: Ordering) {
            hook();
            self.inner.store(val, order)
        }

        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            hook();
            self.inner.swap(val, order)
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            hook();
            self.inner.compare_exchange(current, new, success, failure)
        }

        pub fn get_mut(&mut self) -> &mut bool {
            self.inner.get_mut()
        }

        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }
    }

    impl From<bool> for AtomicBool {
        fn from(v: bool) -> Self {
            Self::new(v)
        }
    }
}
