//! The controlled scheduler at the heart of the model checker.
//!
//! Every model thread is a real OS thread, but exactly one holds the *turn*
//! at any moment; all instrumented operations (lock, unlock, atomic access,
//! channel send, spawn, join, yield) funnel through [`Execution::schedule`],
//! which picks the next thread to run. Because threads only interleave at
//! instrumented points and the picker is driven by a deterministic strategy,
//! a recorded decision sequence replays an execution exactly.
//!
//! Scheduling strategies:
//! - **DFS** (bounded-preemption exhaustive search): the checker replays a
//!   growing prefix of decisions and takes the first untried branch at the
//!   deepest branchable decision, backtracking when a subtree is exhausted.
//!   Preempting a runnable thread costs budget; once the bound is hit the
//!   current thread is forced to continue, which keeps the tree finite and
//!   polynomial while still covering every schedule with few preemptions
//!   (where the overwhelming majority of real concurrency bugs live).
//! - **PCT** (probabilistic concurrency testing): threads get random
//!   priorities, the highest-priority runnable thread always runs, and at
//!   `depth` random steps the running thread's priority drops below all
//!   others. Seeded, so any failing iteration is reproducible.
//!
//! Memory model: atomics are modeled *sequentially consistent* — each access
//! is a scheduling point followed by the real operation, so every explored
//! interleaving corresponds to a real SC execution. This catches
//! check-then-act races, lost wakeups, and ordering bugs between threads,
//! but does not model C11 weak-memory reorderings within a thread.
//!
//! Time: there is no virtual clock. `sleep` and `wait_timeout` are modeled
//! as plain yields that never time out; a state where every thread is
//! blocked (even in a timed wait) is reported as a deadlock, because code
//! that is only correct thanks to a timeout firing is a liveness bug.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Panic payload used to unwind model threads when an execution aborts
/// (failure found or exploration cancelled). Never shown to the user.
pub(crate) struct ModelAbort;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BlockedOn {
    Mutex(usize),
    RwRead(usize),
    RwWrite(usize),
    Condvar(usize),
    Join(usize),
    Scope(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RunState {
    Runnable,
    /// Called `yield_now`: not schedulable again until some other thread has
    /// taken a non-yield step (bounds spin-loop interleavings, loom-style),
    /// unless every runnable thread is in this state.
    Yielded,
    Blocked(BlockedOn),
    Finished,
}

struct ThreadInfo {
    state: RunState,
    /// Set when the thread's closure panicked with a user (non-abort) payload.
    panicked: bool,
}

#[derive(Default)]
struct RwState {
    readers: Vec<usize>,
    writer: Option<usize>,
}

/// One branchable scheduling decision: `chosen` is an index into the sorted
/// option list, not a thread id, so replay strings stay stable.
#[derive(Clone, Copy)]
pub(crate) struct Decision {
    pub chosen: u32,
    pub n_options: u32,
}

pub(crate) enum Strategy {
    /// Follow `prefix` at each branchable decision; past the end, prefer the
    /// currently running thread (minimises preemptions). DFS and exact
    /// replay are both expressed through this.
    Replay { prefix: Vec<u32>, pos: usize },
    /// PCT randomized priorities with `change_points` priority drops.
    Pct { rng: SplitMix, priorities: Vec<u64>, change_points: Vec<usize>, next_low: u64 },
}

/// Deterministic splitmix64 — all the randomness PCT needs, no deps.
pub(crate) struct SplitMix(pub u64);

impl SplitMix {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

struct ExecState {
    threads: Vec<ThreadInfo>,
    current: usize,
    steps: usize,
    preemptions: usize,
    decisions: Vec<Decision>,
    strategy: Strategy,
    failure: Option<String>,
    aborting: bool,
    mutexes: HashMap<usize, Option<usize>>,
    rwlocks: HashMap<usize, RwState>,
    condvars: HashMap<usize, Vec<usize>>,
    /// scope id -> number of live child threads.
    scopes: HashMap<usize, usize>,
    next_scope: usize,
}

pub(crate) struct RunConfig {
    pub max_steps: usize,
    pub preemption_bound: Option<usize>,
    pub allow_thread_panics: bool,
}

pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
    cfg: RunConfig,
    /// OS threads created by this execution that have not yet fully exited;
    /// the controller spins this to zero before finishing a run so no model
    /// thread can leak into the next execution.
    live_os: AtomicUsize,
}

pub(crate) struct RunOutcome {
    pub decisions: Vec<Decision>,
    pub failure: Option<String>,
    pub steps: usize,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The (execution, thread id) context of the calling thread, if it is a
/// model thread inside an active execution.
pub(crate) fn ctx() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// True when the calling thread is running inside a model execution. The
/// instrumented primitives use this to fall back to plain std behaviour in
/// ordinary (non-model) builds and tests.
pub fn in_execution() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn set_ctx(v: Option<(Arc<Execution>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

pub(crate) fn clear_ctx() {
    set_ctx(None);
}

impl Execution {
    fn new(strategy: Strategy, cfg: RunConfig) -> Self {
        Execution {
            state: Mutex::new(ExecState {
                threads: vec![ThreadInfo { state: RunState::Runnable, panicked: false }],
                current: 0,
                steps: 0,
                preemptions: 0,
                decisions: Vec::new(),
                strategy,
                failure: None,
                aborting: false,
                mutexes: HashMap::new(),
                rwlocks: HashMap::new(),
                condvars: HashMap::new(),
                scopes: HashMap::new(),
                next_scope: 0,
            }),
            cv: Condvar::new(),
            cfg,
            live_os: AtomicUsize::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn abort_check(&self, st: &ExecState) {
        if st.aborting {
            panic::resume_unwind(Box::new(ModelAbort));
        }
    }

    /// Record a failure and wake everyone so blocked threads can unwind.
    /// Does not unwind the caller — callers that must stop follow up with
    /// `abort_check`.
    fn fail_locked(&self, st: &mut ExecState, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// Threads eligible to run next. Yielded threads only become options
    /// when no non-yielded runnable thread exists; once the preemption
    /// budget is spent, a runnable current thread is forced to continue.
    fn options(&self, st: &ExecState) -> Vec<usize> {
        let mut runnable = Vec::new();
        let mut yielded = Vec::new();
        for (id, t) in st.threads.iter().enumerate() {
            match t.state {
                RunState::Runnable => runnable.push(id),
                RunState::Yielded => yielded.push(id),
                _ => {}
            }
        }
        let opts = if runnable.is_empty() { yielded } else { runnable };
        if let Some(bound) = self.cfg.preemption_bound {
            if st.preemptions >= bound && opts.contains(&st.current) {
                return vec![st.current];
            }
        }
        opts
    }

    /// Pick the next thread to run and publish it as `st.current`. Called
    /// with the state lock held, by the thread that currently owns the turn
    /// (or is giving it up). Fails the execution on deadlock.
    fn pick_next(&self, st: &mut ExecState) {
        let me = st.current;
        let opts = self.options(st);
        if opts.is_empty() {
            if st.threads.iter().all(|t| t.state == RunState::Finished) {
                st.current = usize::MAX;
                self.cv.notify_all();
                return;
            }
            let detail: Vec<String> =
                st.threads.iter().enumerate().map(|(i, t)| format!("t{i}:{:?}", t.state)).collect();
            self.fail_locked(st, format!("deadlock: no runnable thread ({})", detail.join(" ")));
            return;
        }
        let idx = if opts.len() == 1 {
            0
        } else {
            let chosen = match &mut st.strategy {
                Strategy::Replay { prefix, pos } => {
                    let i = if *pos < prefix.len() {
                        (prefix[*pos] as usize).min(opts.len() - 1)
                    } else {
                        // Default past the prefix: keep running the current
                        // thread when possible, else take the lowest id.
                        opts.iter().position(|&t| t == me).unwrap_or(0)
                    };
                    *pos += 1;
                    i
                }
                Strategy::Pct { rng, priorities, change_points, next_low } => {
                    while priorities.len() < st.threads.len() {
                        priorities.push(rng.next() | (1 << 32));
                    }
                    let i = opts
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &t)| priorities[t])
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    if change_points.contains(&st.steps) {
                        // Priority change point: demote the winner below all
                        // current priorities for subsequent decisions.
                        priorities[opts[i]] = *next_low;
                        *next_low = next_low.saturating_sub(1);
                    }
                    i
                }
            };
            st.decisions.push(Decision { chosen: chosen as u32, n_options: opts.len() as u32 });
            chosen
        };
        let chosen = opts[idx];
        if chosen != me
            && st.threads.get(me).map(|t| t.state == RunState::Runnable).unwrap_or(false)
        {
            st.preemptions += 1;
        }
        st.threads[chosen].state = RunState::Runnable;
        st.current = chosen;
        self.cv.notify_all();
    }

    /// Block until this thread owns the turn (or the execution aborts).
    fn wait_for_turn<'a>(
        &'a self,
        mut st: MutexGuard<'a, ExecState>,
        me: usize,
    ) -> MutexGuard<'a, ExecState> {
        loop {
            if st.aborting {
                drop(st);
                panic::resume_unwind(Box::new(ModelAbort));
            }
            if st.current == me {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Count one step for `me`, un-yield other threads (a non-yield step is
    /// the progress that re-arms them), enforce the step bound.
    fn step_locked(&self, st: &mut ExecState, me: usize, is_yield: bool) {
        st.steps += 1;
        if st.steps > self.cfg.max_steps {
            self.fail_locked(
                st,
                format!(
                    "step bound exceeded ({} steps): possible livelock or unbounded spin",
                    self.cfg.max_steps
                ),
            );
            self.abort_check(st);
        }
        if !is_yield {
            for (id, t) in st.threads.iter_mut().enumerate() {
                if id != me && t.state == RunState::Yielded {
                    t.state = RunState::Runnable;
                }
            }
        }
    }

    /// The basic scheduling point: every instrumented visible operation
    /// calls this immediately *before* performing the real operation.
    pub(crate) fn schedule(self: &Arc<Self>) {
        let me = cur_id();
        let mut st = self.lock();
        self.abort_check(&st);
        self.step_locked(&mut st, me, false);
        self.pick_next(&mut st);
        let _st = self.wait_for_turn(st, me);
    }

    /// `yield_now`: a scheduling point where the caller steps aside.
    pub(crate) fn schedule_yield(self: &Arc<Self>) {
        let me = cur_id();
        let mut st = self.lock();
        self.abort_check(&st);
        self.step_locked(&mut st, me, true);
        st.threads[me].state = RunState::Yielded;
        self.pick_next(&mut st);
        let _st = self.wait_for_turn(st, me);
    }

    // ---- blocking primitive protocols -----------------------------------

    fn block_until<F>(self: &Arc<Self>, mut try_acquire: F, on: BlockedOn)
    where
        F: FnMut(&mut ExecState, usize) -> bool,
    {
        let me = cur_id();
        let mut st = self.lock();
        self.abort_check(&st);
        loop {
            if try_acquire(&mut st, me) {
                return;
            }
            st.threads[me].state = RunState::Blocked(on);
            self.pick_next(&mut st);
            st = self.wait_for_turn(st, me);
        }
    }

    fn wake_blocked(st: &mut ExecState, on: BlockedOn) {
        for t in st.threads.iter_mut() {
            if t.state == RunState::Blocked(on) {
                t.state = RunState::Runnable;
            }
        }
    }

    pub(crate) fn mutex_lock(self: &Arc<Self>, addr: usize) {
        self.schedule();
        self.block_until(
            |st, me| {
                let owner = st.mutexes.entry(addr).or_insert(None);
                if owner.is_none() {
                    *owner = Some(me);
                    true
                } else {
                    false
                }
            },
            BlockedOn::Mutex(addr),
        );
    }

    pub(crate) fn mutex_try_lock(self: &Arc<Self>, addr: usize) -> bool {
        self.schedule();
        let mut st = self.lock();
        self.abort_check(&st);
        let me = cur_id();
        let owner = st.mutexes.entry(addr).or_insert(None);
        if owner.is_none() {
            *owner = Some(me);
            true
        } else {
            false
        }
    }

    /// Release bookkeeping. Runs without a scheduling point: the next
    /// instrumented operation of the caller is the next place the scheduler
    /// can switch, and no visible operation happens in between. Must never
    /// panic — it runs from guard drops during abort unwinding.
    pub(crate) fn mutex_unlock(self: &Arc<Self>, addr: usize) {
        let mut st = self.lock();
        st.mutexes.insert(addr, None);
        if !st.aborting {
            Self::wake_blocked(&mut st, BlockedOn::Mutex(addr));
        }
    }

    pub(crate) fn rw_read(self: &Arc<Self>, addr: usize) {
        self.schedule();
        self.block_until(
            |st, me| {
                let rw = st.rwlocks.entry(addr).or_default();
                if rw.writer.is_none() {
                    rw.readers.push(me);
                    true
                } else {
                    false
                }
            },
            BlockedOn::RwRead(addr),
        );
    }

    pub(crate) fn rw_try_read(self: &Arc<Self>, addr: usize) -> bool {
        self.schedule();
        let mut st = self.lock();
        self.abort_check(&st);
        let me = cur_id();
        let rw = st.rwlocks.entry(addr).or_default();
        if rw.writer.is_none() {
            rw.readers.push(me);
            true
        } else {
            false
        }
    }

    pub(crate) fn rw_write(self: &Arc<Self>, addr: usize) {
        self.schedule();
        self.block_until(
            |st, me| {
                let rw = st.rwlocks.entry(addr).or_default();
                if rw.writer.is_none() && rw.readers.is_empty() {
                    rw.writer = Some(me);
                    true
                } else {
                    false
                }
            },
            BlockedOn::RwWrite(addr),
        );
    }

    pub(crate) fn rw_try_write(self: &Arc<Self>, addr: usize) -> bool {
        self.schedule();
        let mut st = self.lock();
        self.abort_check(&st);
        let me = cur_id();
        let rw = st.rwlocks.entry(addr).or_default();
        if rw.writer.is_none() && rw.readers.is_empty() {
            rw.writer = Some(me);
            true
        } else {
            false
        }
    }

    pub(crate) fn rw_unlock_read(self: &Arc<Self>, addr: usize) {
        let mut st = self.lock();
        let me = cur_id();
        if let Some(rw) = st.rwlocks.get_mut(&addr) {
            if let Some(i) = rw.readers.iter().position(|&r| r == me) {
                rw.readers.swap_remove(i);
            }
            let empty = rw.readers.is_empty();
            if empty && !st.aborting {
                Self::wake_blocked(&mut st, BlockedOn::RwWrite(addr));
            }
        }
    }

    pub(crate) fn rw_unlock_write(self: &Arc<Self>, addr: usize) {
        let mut st = self.lock();
        if let Some(rw) = st.rwlocks.get_mut(&addr) {
            rw.writer = None;
        }
        if !st.aborting {
            Self::wake_blocked(&mut st, BlockedOn::RwWrite(addr));
            Self::wake_blocked(&mut st, BlockedOn::RwRead(addr));
        }
    }

    /// Condvar wait: atomically (under the scheduler's state lock) release
    /// the associated model mutex and join the wait queue, so no wakeup
    /// issued after the caller released the mutex can be lost. Reacquires
    /// the mutex before returning.
    pub(crate) fn condvar_wait(self: &Arc<Self>, cv_addr: usize, mutex_addr: usize) {
        let me = cur_id();
        {
            let mut st = self.lock();
            self.abort_check(&st);
            self.step_locked(&mut st, me, false);
            st.mutexes.insert(mutex_addr, None);
            Self::wake_blocked(&mut st, BlockedOn::Mutex(mutex_addr));
            st.condvars.entry(cv_addr).or_default().push(me);
            st.threads[me].state = RunState::Blocked(BlockedOn::Condvar(cv_addr));
            self.pick_next(&mut st);
            let _st = self.wait_for_turn(st, me);
        }
        // Notified (state already reset to Runnable by the notifier) and we
        // own the turn: reacquire the mutex, possibly blocking again.
        self.block_until(
            |st, me| {
                let owner = st.mutexes.entry(mutex_addr).or_insert(None);
                if owner.is_none() {
                    *owner = Some(me);
                    true
                } else {
                    false
                }
            },
            BlockedOn::Mutex(mutex_addr),
        );
    }

    pub(crate) fn condvar_notify(self: &Arc<Self>, cv_addr: usize, all: bool) {
        let me = cur_id();
        let mut st = self.lock();
        if st.aborting {
            return; // notify during unwind: scheduler already woke everyone
        }
        self.step_locked(&mut st, me, false);
        let waiters = st.condvars.entry(cv_addr).or_default();
        let woken: Vec<usize> = if all {
            std::mem::take(waiters)
        } else {
            waiters.drain(..waiters.len().min(1)).collect()
        };
        for w in woken {
            st.threads[w].state = RunState::Runnable;
        }
        self.pick_next(&mut st);
        let _st = self.wait_for_turn(st, me);
    }

    // ---- threads ---------------------------------------------------------

    /// Register a new model thread (caller holds the turn). Returns its id.
    pub(crate) fn register_thread(self: &Arc<Self>, scope: Option<usize>) -> usize {
        self.schedule();
        let mut st = self.lock();
        self.abort_check(&st);
        st.threads.push(ThreadInfo { state: RunState::Runnable, panicked: false });
        let id = st.threads.len() - 1;
        if let Some(s) = scope {
            *st.scopes.entry(s).or_insert(0) += 1;
        }
        // Counted before the OS thread exists so the controller cannot
        // observe zero while a spawn is in flight.
        self.live_os.fetch_add(1, Ordering::SeqCst);
        id
    }

    /// First thing a new model OS thread does: adopt its context and wait
    /// to be scheduled for the first time.
    pub(crate) fn enter_thread(self: &Arc<Self>, id: usize) {
        set_ctx(Some((self.clone(), id)));
        let st = self.lock();
        let _st = self.wait_for_turn(st, id);
    }

    /// Last thing a model thread does on its way out (normal return, user
    /// panic, or abort unwind). Marks it finished, wakes joiners, settles
    /// scope accounting, and passes the turn on.
    pub(crate) fn finish_thread(
        self: &Arc<Self>,
        id: usize,
        scope: Option<usize>,
        user_panic: Option<String>,
    ) {
        let mut st = self.lock();
        st.threads[id].state = RunState::Finished;
        if let Some(msg) = user_panic {
            st.threads[id].panicked = true;
            if !self.cfg.allow_thread_panics {
                self.fail_locked(&mut st, format!("thread t{id} panicked: {msg}"));
            }
        }
        if let Some(s) = scope {
            if let Some(n) = st.scopes.get_mut(&s) {
                *n = n.saturating_sub(1);
                if *n == 0 && !st.aborting {
                    Self::wake_blocked(&mut st, BlockedOn::Scope(s));
                }
            }
        }
        if !st.aborting {
            Self::wake_blocked(&mut st, BlockedOn::Join(id));
            if st.current == id {
                self.pick_next(&mut st);
            }
        } else {
            self.cv.notify_all();
        }
    }

    /// Decremented by the OS-thread wrapper as its very last action.
    pub(crate) fn os_thread_exited(&self) {
        self.live_os.fetch_sub(1, Ordering::SeqCst);
    }

    pub(crate) fn join(self: &Arc<Self>, target: usize) {
        self.schedule();
        self.block_until(
            |st, _me| st.threads[target].state == RunState::Finished,
            BlockedOn::Join(target),
        );
    }

    pub(crate) fn thread_is_finished(self: &Arc<Self>, target: usize) -> bool {
        self.schedule();
        let st = self.lock();
        self.abort_check(&st);
        st.threads[target].state == RunState::Finished
    }

    pub(crate) fn register_scope(self: &Arc<Self>) -> usize {
        let mut st = self.lock();
        let id = st.next_scope;
        st.next_scope += 1;
        st.scopes.insert(id, 0);
        id
    }

    pub(crate) fn wait_scope(self: &Arc<Self>, scope: usize) {
        self.schedule();
        self.block_until(
            |st, _me| st.scopes.get(&scope).copied().unwrap_or(0) == 0,
            BlockedOn::Scope(scope),
        );
    }

    // ---- run control -----------------------------------------------------

    /// The test closure returned on thread 0: drive the remaining threads to
    /// completion (or deadlock/failure) and wait for every model OS thread
    /// to exit.
    fn drive_to_completion(self: &Arc<Self>, main_ok: bool) {
        {
            let mut st = self.lock();
            st.threads[0].state = RunState::Finished;
            if !main_ok && st.failure.is_none() {
                st.aborting = true;
                self.cv.notify_all();
            }
            if !st.aborting {
                Self::wake_blocked(&mut st, BlockedOn::Join(0));
                if st.current == 0 {
                    self.pick_next(&mut st);
                }
            } else {
                self.cv.notify_all();
            }
            // Wait until every thread has finished or the run is aborting.
            while !st.aborting && !st.threads.iter().all(|t| t.state == RunState::Finished) {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.aborting {
                // Make sure no thread stays parked waiting for a turn.
                self.cv.notify_all();
            }
        }
        // Spin (with real yields — these are real OS threads unwinding) until
        // every spawned thread has fully exited.
        while self.live_os.load(Ordering::SeqCst) > 0 {
            self.cv.notify_all();
            std::thread::yield_now();
        }
    }
}

fn cur_id() -> usize {
    ctx().map(|(_, id)| id).expect("modelcheck: operation outside a model thread")
}

/// Run the closure once under the given strategy. The closure runs on the
/// calling thread as model thread 0.
pub(crate) fn run_once(strategy: Strategy, cfg: RunConfig, f: &dyn Fn()) -> RunOutcome {
    let exec = Arc::new(Execution::new(strategy, cfg));
    set_ctx(Some((exec.clone(), 0)));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    let main_ok = match result {
        Ok(()) => true,
        Err(p) => {
            if !p.is::<ModelAbort>() {
                let msg = panic_message(p.as_ref());
                let mut st = exec.lock();
                let m = format!("main thread panicked: {msg}");
                exec.fail_locked(&mut st, m);
            }
            false
        }
    };
    exec.drive_to_completion(main_ok);
    set_ctx(None);
    let st = exec.lock();
    RunOutcome { decisions: st.decisions.clone(), failure: st.failure.clone(), steps: st.steps }
}

pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
