//! Epoch reclamation versus held snapshots.
//!
//! The server caches one sealed snapshot per epoch; a write invalidates the
//! cache and the next read rebuilds it, dropping the previous epoch's
//! `Arc`. Reclamation must be precise in both directions: a snapshot still
//! held by an in-flight query is never freed or mutated (its contents are
//! immutable for its whole lifetime), and once the last holder lets go the
//! old epoch really is freed, not accumulated.

use std::sync::{Arc, Weak};

use modelcheck::{explore, thread, Config};
use redisgraph_core::{Graph, GraphSnapshot};

fn cfg() -> Config {
    Config { max_schedules: 1800, pct_iterations: 300, preemption_bound: None, ..Config::default() }
}

/// The server's single-flight pin: serve the cached snapshot if it is
/// still the live epoch, otherwise seal a fresh one and swap it in —
/// dropping (reclaiming) the previous epoch's snapshot.
fn pin(
    lock: &parking_lot::RwLock<Graph>,
    cache: &parking_lot::Mutex<Option<Arc<GraphSnapshot>>>,
) -> Arc<GraphSnapshot> {
    let mut cached = cache.lock();
    let live = lock.read();
    match cached.as_ref() {
        Some(snap) if snap.epoch() == live.epoch() => Arc::clone(snap),
        _ => {
            let fresh = Arc::new(live.snapshot());
            *cached = Some(Arc::clone(&fresh));
            fresh
        }
    }
}

#[test]
fn reclamation_never_frees_or_mutates_a_held_snapshot() {
    let report = explore("epoch_reclaim/held_snapshot_stays_valid", &cfg(), || {
        let mut g = Graph::new("e");
        g.add_node(&["N"], vec![]);
        let base_epoch = g.epoch();
        let lock = Arc::new(parking_lot::RwLock::new(g));
        let cache = Arc::new(parking_lot::Mutex::new(None::<Arc<GraphSnapshot>>));
        let held: Arc<parking_lot::Mutex<Option<Weak<GraphSnapshot>>>> =
            Arc::new(parking_lot::Mutex::new(None));

        let reader = {
            let lock = Arc::clone(&lock);
            let cache = Arc::clone(&cache);
            let held = Arc::clone(&held);
            thread::spawn(move || {
                let snap = pin(&lock, &cache);
                *held.lock() = Some(Arc::downgrade(&snap));
                let epoch = snap.epoch();
                let nodes = snap.node_count();
                // Epoch pinning: the snapshot's contents are a function of
                // its epoch alone, no matter when the writer runs.
                assert_eq!(
                    nodes,
                    if epoch == base_epoch { 1 } else { 2 },
                    "snapshot contents disagree with its pinned epoch {epoch}"
                );
                // Give the writer a window to mutate and re-pin (which
                // drops the cache's reference to our epoch)...
                thread::yield_now();
                // ...then re-read: a held snapshot is immutable forever.
                assert_eq!(snap.epoch(), epoch, "held snapshot changed epoch");
                assert_eq!(snap.node_count(), nodes, "held snapshot mutated under us");
            })
        };

        // The writer publishes a new epoch and re-pins: the cache swap is
        // the reclamation point for the previous epoch's snapshot.
        lock.write().add_node(&["N"], vec![]);
        let fresh = pin(&lock, &cache);
        assert_eq!(fresh.node_count(), 2);
        drop(fresh);

        reader.join().unwrap();

        // Every holder is gone: clearing the cache must free the reader's
        // epoch — reclamation may be deferred, never skipped.
        *cache.lock() = None;
        let weak = held.lock().take();
        if let Some(weak) = weak {
            assert!(weak.upgrade().is_none(), "snapshot epoch leaked past its last holder");
        }
    });
    assert!(report.distinct >= 100, "only {} distinct schedules explored", report.distinct);
}
