//! `GRAPH.DELETE` racing an in-flight snapshot read.
//!
//! A delete marks the keyspace entry, removes it from the map, and briefly
//! takes the write lock so every dispatched query has finished before OK
//! goes out. A read racing the delete runs against the pre-delete epoch
//! snapshot (one row) or a fresh graph recreated under the name (zero
//! rows) — it must never error, tear, or deadlock the worker pool.

use std::sync::Arc;

use modelcheck::{explore, thread, Config};
use redisgraph_server::{RedisGraphServer, RespValue, ServerConfig};

fn cfg() -> Config {
    // Each run boots a real server (worker pool, dispatch, locks), so the
    // per-schedule step count is high; the budget is trimmed to keep the
    // suite inside the CI wall-clock window.
    Config { max_schedules: 1500, pct_iterations: 300, preemption_bound: None, ..Config::default() }
}

/// Rows in a `GRAPH.QUERY` reply (`[header, rows, stats]`).
fn row_count(reply: &RespValue) -> usize {
    match reply {
        RespValue::Array(sections) if sections.len() == 3 => match &sections[1] {
            RespValue::Array(rows) => rows.len(),
            other => panic!("malformed rows section: {other:?}"),
        },
        other => panic!("malformed query reply: {other:?}"),
    }
}

#[test]
fn delete_racing_a_read_never_tears_or_errors() {
    let report = explore("graph_delete/read_race", &cfg(), || {
        let server = Arc::new(RedisGraphServer::new(ServerConfig {
            thread_count: 2,
            ..ServerConfig::default()
        }));
        let created = server.query("g", "CREATE (:N {v: 1})");
        assert!(!matches!(created, RespValue::Error(_)), "setup failed: {created:?}");

        let reader = {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                let reply = server.query("g", "MATCH (n:N) RETURN n.v");
                // Before the delete: the pinned snapshot serves the row.
                // After it: the name resolves to a fresh, empty graph.
                // Anything else means the delete tore an in-flight read.
                let rows = row_count(&reply);
                assert!(rows <= 1, "read observed {rows} rows from a 1-node graph");
            })
        };

        let deleted = server.handle(&RespValue::command(&["GRAPH.DELETE", "g"]));
        assert_eq!(
            deleted,
            RespValue::SimpleString("OK".to_string()),
            "delete must succeed exactly once"
        );

        reader.join().unwrap();
        // The name now denotes a fresh graph in every schedule.
        let after = server.query("g", "MATCH (n:N) RETURN n.v");
        assert_eq!(row_count(&after), 0, "delete left data behind");
        drop(server); // pool Drop joins the workers under the scheduler
    });
    assert!(report.distinct >= 1200, "only {} distinct schedules explored", report.distinct);
}
