//! Epoch snapshots versus concurrent delta flushes.
//!
//! The server pins a [`GraphSnapshot`] under a momentary read lock, then
//! executes the query with no lock held. With the flush threshold at one,
//! every mutation folds the delta buffers into fresh epoch CSRs mid-write —
//! a snapshot taken around that fold must still observe either *all* of the
//! write-lock holder's mutations or *none* of them, and its reachability
//! view must agree with its entity counts.

use std::sync::Arc;

use modelcheck::{explore, thread, Config};
use redisgraph_core::{Graph, TraverseDir};

fn cfg() -> Config {
    Config { max_schedules: 1800, pct_iterations: 300, preemption_bound: None, ..Config::default() }
}

#[test]
fn snapshots_never_observe_a_half_applied_flush() {
    let report = explore("delta_flush_epoch/atomic_visibility", &cfg(), || {
        let mut g = Graph::new("m");
        // Fold the delta buffers on every mutation: the writer below
        // triggers two flushes while holding the write lock.
        g.set_flush_threshold(1);
        let a = g.add_node(&["N"], vec![]);
        let b = g.add_node(&["N"], vec![]);
        let c = g.add_node(&["N"], vec![]);
        g.sync_matrices();
        let lock = Arc::new(parking_lot::RwLock::new(g));

        let writer = {
            let lock = Arc::clone(&lock);
            thread::spawn(move || {
                // Both edges land under one write-lock hold, so together
                // they are one atomic unit as far as snapshots go.
                let mut g = lock.write();
                g.add_edge(a, b, "R", vec![]).unwrap();
                g.add_edge(b, c, "R", vec![]).unwrap();
            })
        };

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    // The server's read path: pin under a momentary read
                    // lock, then run entirely lock-free on the snapshot.
                    let snap = lock.read().snapshot();
                    let edges = snap.edge_count();
                    assert!(
                        edges == 0 || edges == 2,
                        "snapshot observed a half-applied write: {edges} of 2 edges"
                    );
                    // Matrix state must agree with the entity counts: with
                    // both edges, c is reachable from a in two hops; with
                    // neither, nothing is.
                    let reached = snap.khop_reach(a, 1, 2, TraverseDir::Outgoing);
                    let expected = if edges == 2 { 2 } else { 0 };
                    assert_eq!(
                        reached.nvals(),
                        expected,
                        "snapshot's matrices disagree with its edge count ({edges} edges)"
                    );
                })
            })
            .collect();

        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        // After the writer released the lock every new snapshot is complete.
        let snap = lock.read().snapshot();
        assert_eq!(snap.edge_count(), 2);
    });
    assert!(report.distinct >= 1400, "only {} distinct schedules explored", report.distinct);
}
