//! `maxclients` slot accounting (`Metrics::try_acquire_connection`).
//!
//! `connections_active` is the single source of truth for the connection
//! cap: admission must be one atomic decision (a CAS loop), because a
//! load-then-add lets two racing acceptors both pass the check and
//! over-admit. The seeded mutant `--cfg xmut_relaxed_admission` swaps the
//! CAS for exactly that check-then-act and must make this suite fail.

use std::sync::Arc;

use modelcheck::sync::atomic::{AtomicUsize, Ordering};
use modelcheck::{explore, thread, Config};
use redisgraph_server::Metrics;

fn cfg() -> Config {
    Config { max_schedules: 2000, pct_iterations: 400, preemption_bound: None, ..Config::default() }
}

#[test]
fn admission_never_exceeds_the_cap() {
    const CAP: u64 = 2;
    let report = explore("maxclients/no_over_admission", &cfg(), || {
        let metrics = Arc::new(Metrics::default());
        let admitted = Arc::new(AtomicUsize::new(0));
        let acceptors: Vec<_> = (0..3)
            .map(|_| {
                let metrics = Arc::clone(&metrics);
                let admitted = Arc::clone(&admitted);
                thread::spawn(move || {
                    if metrics.try_acquire_connection(CAP) {
                        admitted.fetch_add(1, Ordering::SeqCst);
                        // At every instant the gauge must respect the cap —
                        // this is the check the racy admission breaks.
                        let active = metrics.connections_active.load(Ordering::SeqCst);
                        assert!(active <= CAP, "over-admission: {active} active past cap {CAP}");
                    }
                })
            })
            .collect();
        for h in acceptors {
            h.join().unwrap();
        }
        let admitted = admitted.load(Ordering::SeqCst) as u64;
        let active = metrics.connections_active.load(Ordering::SeqCst);
        assert!(admitted <= CAP, "admitted {admitted} connections past cap {CAP}");
        assert_eq!(active, admitted, "gauge drifted from successful admissions");
    });
    assert!(report.distinct >= 800, "only {} distinct schedules explored", report.distinct);
}

#[test]
fn released_slots_are_reusable_and_never_double_counted() {
    let report = explore("maxclients/release_cycle", &cfg(), || {
        let metrics = Arc::new(Metrics::default());
        // Three connections cycle through a cap of one: each either claims
        // the slot and returns it, or is refused. The gauge must end at zero
        // and never exceed the cap in between.
        let conns: Vec<_> = (0..3)
            .map(|_| {
                let metrics = Arc::clone(&metrics);
                thread::spawn(move || {
                    if metrics.try_acquire_connection(1) {
                        assert!(
                            metrics.connections_active.load(Ordering::SeqCst) <= 1,
                            "cap of one exceeded while a slot was held"
                        );
                        metrics.release_connection();
                    }
                })
            })
            .collect();
        for h in conns {
            h.join().unwrap();
        }
        assert_eq!(
            metrics.connections_active.load(Ordering::SeqCst),
            0,
            "slot leaked or double-released"
        );
    });
    assert!(report.distinct >= 700, "only {} distinct schedules explored", report.distinct);
}
