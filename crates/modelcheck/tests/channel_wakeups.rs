//! Wakeup correctness of the vendored `crossbeam` channel.
//!
//! The channel is the spine of the module threadpool (jobs in, replies
//! out), so a lost wakeup — a sender parking a receiver forever, or a
//! bounded sender never learning a slot freed up — wedges the whole query
//! path. The checker's deadlock detector turns any lost wakeup into a
//! failing schedule.

use std::sync::Arc;

use modelcheck::sync::atomic::{AtomicU64, Ordering};
use modelcheck::{explore, thread, Config};

fn cfg() -> Config {
    Config { max_schedules: 2000, pct_iterations: 400, preemption_bound: None, ..Config::default() }
}

#[test]
fn bounded_channel_delivers_every_item() {
    let report = explore("channel_wakeups/bounded_handoff", &cfg(), || {
        // Capacity one forces producers to block and be woken as the
        // consumer drains: every send/recv pair exercises a wakeup.
        let (tx, rx) = crossbeam::channel::bounded::<u64>(1);
        let producers: Vec<_> = [(1u64, 2u64), (10, 20)]
            .into_iter()
            .map(|(a, b)| {
                let tx = tx.clone();
                thread::spawn(move || {
                    tx.send(a).unwrap();
                    tx.send(b).unwrap();
                })
            })
            .collect();
        drop(tx);
        let mut sum = 0;
        for _ in 0..4 {
            sum += rx.recv().expect("producer still connected");
        }
        assert_eq!(sum, 33, "items lost or duplicated across blocking sends");
        assert!(rx.recv().is_err(), "channel must disconnect after both producers exit");
        for p in producers {
            p.join().unwrap();
        }
    });
    assert!(report.distinct >= 1500, "only {} distinct schedules explored", report.distinct);
}

#[test]
fn consumer_parked_on_recv_is_always_woken() {
    let report = explore("channel_wakeups/no_lost_wakeup", &cfg(), || {
        let (tx, rx) = crossbeam::channel::unbounded::<u64>();
        let received = Arc::new(AtomicU64::new(0));
        let consumer = {
            let received = Arc::clone(&received);
            thread::spawn(move || {
                // Park before, during, or after the sends — in every
                // schedule each recv must be woken exactly once.
                while let Ok(v) = rx.recv() {
                    received.fetch_add(v, Ordering::SeqCst);
                }
            })
        };
        tx.send(5).unwrap();
        tx.send(7).unwrap();
        drop(tx); // disconnect must also wake a parked consumer
        consumer.join().unwrap();
        assert_eq!(received.load(Ordering::SeqCst), 12, "consumer missed a send");
    });
    assert!(report.distinct >= 120, "only {} distinct schedules explored", report.distinct);
}
