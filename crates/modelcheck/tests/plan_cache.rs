//! Plan-cache invalidation versus in-flight plan builds.
//!
//! The server's plan cache hands a query's parsed-and-planned skeleton to
//! every later execution of the same normalized text. Plans bake in planning
//! config at build time (the GraphBLAS thread budget, the optimizer setting),
//! so a config change invalidates the cache — but the build itself runs
//! *outside* the cache lock: a worker that missed, then planned against the
//! old config, must not install its now-stale plan after the invalidation.
//! The cache's generation counter is the guard; these schedules drive the
//! race directly against the real `PlanCache` and `ExecutionPlan` types.
//!
//! The seeded mutant `--cfg xmut_no_cache_invalidation` removes the
//! generation check in `PlanCache::insert`; CI asserts this suite fails
//! under it (a stale thread budget survives its invalidation).

use std::sync::Arc;

use modelcheck::{explore, thread, Config};
use redisgraph_core::Graph;
use redisgraph_server::metrics::Metrics;
use redisgraph_server::{CachedPlan, Lookup, PlanCache};

fn cfg() -> Config {
    Config { max_schedules: 1800, pct_iterations: 300, preemption_bound: None, ..Config::default() }
}

/// Parse and plan `query` exactly as the server's miss path does, capturing
/// the process-wide GraphBLAS thread budget at build time.
fn build(query: &str) -> Arc<CachedPlan> {
    let g = Graph::new("mc");
    let ast = cypher::parse(query).expect("suite queries parse");
    let read_only = ast.is_read_only();
    let plan = g.build_plan(&ast).expect("suite queries plan");
    Arc::new(CachedPlan {
        has_params: plan.has_params(),
        plan: Arc::new(plan),
        read_only,
        optimized: true,
    })
}

/// The stale-plan race: a worker misses and plans under the old
/// `QUERY_THREADS`, while the main thread applies the config change and
/// invalidates. Whatever the interleaving, no lookup after the invalidation
/// may ever surface a plan carrying the retired thread budget.
#[test]
fn invalidation_never_serves_a_stale_plan() {
    const KEY: &str = "MATCH (n) RETURN count(n)";
    let report = explore("plan_cache/no_stale_plan_after_invalidation", &cfg(), || {
        graphblas::Context::set_nthreads(1);
        let cache = Arc::new(PlanCache::new(4));
        let metrics = Arc::new(Metrics::default());

        let worker = {
            let cache = Arc::clone(&cache);
            let metrics = Arc::clone(&metrics);
            thread::spawn(move || {
                // The server's miss path: observe the generation, plan
                // outside the lock, then try to install.
                if let Lookup::Miss(generation) = cache.lookup(KEY, &metrics) {
                    let plan = build(KEY);
                    cache.insert(KEY.to_string(), plan, generation, &metrics);
                }
            })
        };

        // GRAPH.CONFIG SET QUERY_THREADS 2: apply the new budget, then
        // flush every cached plan built under the old one.
        graphblas::Context::set_nthreads(2);
        cache.invalidate();

        worker.join().unwrap();

        // The worker's insert either beat the invalidation (flushed with
        // everything else) or trailed it (rejected by the generation
        // check). Serving a budget-1 plan now would hand a query built for
        // the retired config to every future execution.
        if let Lookup::Hit(cached) = cache.lookup(KEY, &metrics) {
            assert_eq!(
                cached.plan.thread_budget(),
                graphblas::Context::nthreads(),
                "cache served a plan built under a retired QUERY_THREADS value"
            );
        }
        graphblas::Context::set_nthreads(1);
    });
    // The two-thread miss/invalidate race has a small sync-op footprint, so
    // DFS exhausts it in a few dozen schedules — require enough distinct ones
    // to know both orders of insert-vs-invalidate were driven.
    assert!(report.distinct >= 20, "only {} distinct schedules explored", report.distinct);
}

/// Concurrent misses racing their inserts into a capacity-1 cache: the
/// bound holds at every step, the loser is evicted (not leaked), and the
/// hit/miss/eviction counters stay consistent with what actually happened.
#[test]
fn concurrent_inserts_respect_the_lru_bound_and_counters() {
    let report = explore("plan_cache/lru_bound_under_racing_inserts", &cfg(), || {
        let cache = Arc::new(PlanCache::new(1));
        let metrics = Arc::new(Metrics::default());

        let spawn_insert = |key: &'static str| {
            let cache = Arc::clone(&cache);
            let metrics = Arc::clone(&metrics);
            thread::spawn(move || {
                if let Lookup::Miss(generation) = cache.lookup(key, &metrics) {
                    let plan = build("MATCH (n) RETURN n");
                    cache.insert(key.to_string(), plan, generation, &metrics);
                }
                assert!(cache.len() <= 1, "cache overflowed its configured capacity");
            })
        };
        let t1 = spawn_insert("MATCH (a) RETURN a");
        let t2 = spawn_insert("MATCH (b) RETURN b");
        t1.join().unwrap();
        t2.join().unwrap();

        use crossbeam::atomic::Ordering;
        let hits = metrics.plan_cache_hits.load(Ordering::Relaxed);
        let misses = metrics.plan_cache_misses.load(Ordering::Relaxed);
        let evictions = metrics.plan_cache_evictions.load(Ordering::Relaxed);
        // Distinct keys, empty cache: both lookups missed, both inserts
        // landed, and capacity 1 evicted exactly the earlier of the two.
        assert_eq!((hits, misses), (0, 2));
        assert_eq!(cache.len(), 1);
        assert_eq!(evictions, 1);
    });
    assert!(report.distinct >= 100, "only {} distinct schedules explored", report.distinct);
}
