//! Writer preference of the vendored `parking_lot::RwLock`.
//!
//! The production lock gates new readers behind a `writers_waiting` counter
//! so a parked writer cannot starve behind an unbroken stream of readers
//! (the delta-flush path depends on this: a flush must not wait forever
//! behind read-only queries). These suites pin two properties:
//!
//! 1. a reader arriving *after* a writer has parked observes the writer's
//!    update — it never slips past the gate (`xmut_no_writer_gate` removes
//!    the gate and must make this suite fail);
//! 2. the write lock is exclusive: read-modify-write under it never loses
//!    an update, and readers only ever observe fully-written states.

use std::sync::Arc;

use modelcheck::{explore, thread, Config};

fn cfg() -> Config {
    Config { max_schedules: 2000, pct_iterations: 400, preemption_bound: None, ..Config::default() }
}

#[test]
fn parked_writer_is_not_overtaken_by_later_readers() {
    let report = explore("rwlock_fairness/no_overtake", &cfg(), || {
        let lock = Arc::new(parking_lot::RwLock::new(Vec::<&'static str>::new()));

        // An early reader holds the lock so the writer must park.
        let early = lock.read();

        let writer = {
            let lock = Arc::clone(&lock);
            thread::spawn(move || lock.write().push("w"))
        };

        // Wait until the writer has announced itself on the gate (the write
        // side increments `writers_waiting` before blocking, so this loop
        // terminates in every schedule).
        while lock.queued_writers() == 0 {
            thread::yield_now();
        }

        // This reader arrives strictly after the writer parked: writer
        // preference means it must observe the write, not overtake it.
        let late_reader = {
            let lock = Arc::clone(&lock);
            thread::spawn(move || {
                let g = lock.read();
                assert_eq!(
                    g.as_slice(),
                    ["w"],
                    "late reader overtook a parked writer (writer preference violated)"
                );
            })
        };

        drop(early);
        writer.join().unwrap();
        late_reader.join().unwrap();
    });
    assert!(report.distinct >= 150, "only {} distinct schedules explored", report.distinct);
}

#[test]
fn write_lock_serializes_read_modify_write() {
    let report = explore("rwlock_fairness/exclusive_writers", &cfg(), || {
        let lock = Arc::new(parking_lot::RwLock::new(0u64));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    let mut g = lock.write();
                    let v = *g;
                    *g = v + 1;
                })
            })
            .collect();
        // A concurrent reader may see 0, 1 or 2 — but never a torn value.
        let reader = {
            let lock = Arc::clone(&lock);
            thread::spawn(move || {
                let v = *lock.read();
                assert!(v <= 2, "reader observed impossible counter value {v}");
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(*lock.read(), 2, "write lock lost an update");
    });
    assert!(report.distinct >= 1500, "only {} distinct schedules explored", report.distinct);
}
