//! `ThreadPool::wait_idle` versus panicking jobs.
//!
//! Graceful shutdown drains `in_flight` to zero before tearing the
//! listener down. A job that panics unwinds its worker thread — the
//! in-flight count must come back down anyway (the guard decrements on
//! drop during unwind) or every later drain waits out its full timeout,
//! and the surviving workers must keep serving jobs.

use std::sync::Arc;
use std::time::Duration;

use modelcheck::sync::atomic::{AtomicUsize, Ordering};
use modelcheck::{explore, thread, Config};
use redisgraph_server::ThreadPool;

fn cfg() -> Config {
    Config {
        max_schedules: 2000,
        pct_iterations: 400,
        preemption_bound: None,
        // The suite *injects* a panic; the property is that the pool
        // survives it, so a panicking model thread is not itself a failure.
        allow_thread_panics: true,
        ..Config::default()
    }
}

#[test]
fn wait_idle_drains_past_a_panicking_job() {
    let report = explore("pool_wait_idle/panicking_job", &cfg(), || {
        let pool = ThreadPool::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        pool.execute(|| panic!("job blew up (injected by the model-check suite)"));
        {
            let ran = Arc::clone(&ran);
            pool.execute(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        // The wall-clock timeout is generous: under the scheduler a run
        // takes microseconds, so hitting it means in_flight wedged.
        assert!(
            pool.wait_idle(Duration::from_secs(30)),
            "panicked job leaked in_flight and wedged wait_idle"
        );
        assert_eq!(ran.load(Ordering::SeqCst), 1, "healthy job was lost after the panic");
        assert_eq!(pool.in_flight(), 0);
        drop(pool); // joins the dead worker (Err) and the survivor (Ok)
    });
    assert!(report.distinct >= 1500, "only {} distinct schedules explored", report.distinct);
}

#[test]
fn concurrent_submitters_drain_cleanly() {
    let report = explore("pool_wait_idle/concurrent_submit", &cfg(), || {
        let pool = Arc::new(ThreadPool::new(2));
        let done = Arc::new(AtomicUsize::new(0));
        let submitters: Vec<_> = (0..2)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    pool.execute(move || {
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                })
            })
            .collect();
        for s in submitters {
            s.join().unwrap();
        }
        assert!(pool.wait_idle(Duration::from_secs(30)), "pool failed to drain");
        assert_eq!(done.load(Ordering::SeqCst), 2, "a submitted job never ran");
    });
    assert!(report.distinct >= 1500, "only {} distinct schedules explored", report.distinct);
}
