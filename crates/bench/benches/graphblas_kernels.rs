//! Criterion bench for experiment E6 (ablation): the GraphBLAS kernels behind
//! the traversal engine, and the design choices DESIGN.md calls out —
//! algebraic frontier expansion vs. pointer-chasing BFS, masked vs. unmasked
//! `mxm`, and serial vs. parallel SpGEMM (intra-query parallelism, which
//! RedisGraph deliberately disables).

use baseline::AdjacencyListGraph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::RmatConfig;
use graphblas::prelude::*;
use std::hint::black_box;

fn build_matrix(scale: u32) -> (SparseMatrix<bool>, AdjacencyListGraph, u64) {
    let el = datagen::rmat::generate(&RmatConfig {
        scale,
        edge_factor: 16,
        seed: 9,
        ..Default::default()
    });
    let n = el.num_vertices;
    let triples: Vec<(u64, u64, bool)> = {
        let mut e: Vec<(u64, u64)> = el.edges.iter().copied().filter(|&(s, d)| s != d).collect();
        e.sort_unstable();
        e.dedup();
        e.into_iter().map(|(s, d)| (s, d, true)).collect()
    };
    let m = SparseMatrix::from_triples(n, n, &triples).unwrap();
    let adj = AdjacencyListGraph::from_edge_list(n, &el.edges);
    (m, adj, n)
}

/// Algebraic one-hop frontier expansion (masked vxm) vs. the baseline's
/// adjacency-list scan, from a single-vertex frontier.
fn frontier_expansion(c: &mut Criterion) {
    let (matrix, adj, n) = build_matrix(12);
    let semiring = Semiring::lor_land();
    let desc = Descriptor::default();
    let mut group = c.benchmark_group("kernels/frontier_expansion");
    group.bench_function("vxm_single_source", |b| {
        let mut f = SparseVector::<bool>::new(n);
        f.set_element(1, true);
        b.iter(|| black_box(vxm(black_box(&f), &matrix, &semiring, None, &desc)))
    });
    group.bench_function("adjacency_list_scan", |b| {
        b.iter(|| black_box(adj.out_neighbors(black_box(1)).to_vec()))
    });
    // Wide frontier: 1% of all vertices at once — where the algebraic
    // formulation amortises best.
    let wide: Vec<(u64, bool)> = (0..n).step_by(100).map(|i| (i, true)).collect();
    let wide_frontier = SparseVector::from_entries(n, &wide).unwrap();
    group.bench_function("vxm_wide_frontier", |b| {
        b.iter(|| black_box(vxm(black_box(&wide_frontier), &matrix, &semiring, None, &desc)))
    });
    group.bench_function("adjacency_list_wide_frontier", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            for &(v, _) in &wide {
                out.extend_from_slice(adj.out_neighbors(black_box(v)));
            }
            out.sort_unstable();
            out.dedup();
            black_box(out)
        })
    });
    group.finish();
}

/// Masked vs. unmasked mxm (two-hop neighbourhood with and without excluding
/// existing one-hop edges), and the serial vs. parallel SpGEMM ablation.
fn mxm_ablation(c: &mut Criterion) {
    let (matrix, _, _) = build_matrix(10);
    let semiring = Semiring::lor_land();
    let mut group = c.benchmark_group("kernels/mxm");
    group.sample_size(10);
    group.bench_function("unmasked", |b| {
        b.iter(|| black_box(mxm(&matrix, &matrix, &semiring, None, &Descriptor::default())))
    });
    group.bench_function("masked_complement", |b| {
        let mask = MatrixMask::new(&matrix);
        let desc = Descriptor::new().with_mask_complement().with_mask_structure();
        b.iter(|| black_box(mxm(&matrix, &matrix, &semiring, Some(&mask), &desc)))
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            let desc = Descriptor::new().with_nthreads(t);
            b.iter(|| black_box(mxm(&matrix, &matrix, &semiring, None, &desc)))
        });
    }
    group.finish();
}

/// Transpose and reduction kernels used when maintaining the graph object.
fn maintenance_kernels(c: &mut Criterion) {
    let (matrix, _, _) = build_matrix(12);
    let mut group = c.benchmark_group("kernels/maintenance");
    group.sample_size(20);
    group.bench_function("transpose", |b| b.iter(|| black_box(transpose(black_box(&matrix)))));
    group.bench_function("reduce_out_degrees", |b| {
        let monoid = graphblas::monoid::plus_monoid::<u64>();
        let counts = apply_matrix(&matrix, &UnaryOp::custom(|_| true));
        let as_u64 = SparseMatrix::from_triples(
            counts.nrows(),
            counts.ncols(),
            &counts.to_triples().into_iter().map(|(r, c, _)| (r, c, 1u64)).collect::<Vec<_>>(),
        )
        .unwrap();
        b.iter(|| black_box(reduce_to_vector(black_box(&as_u64), &monoid)))
    });
    group.finish();
}

criterion_group!(benches, frontier_expansion, mxm_ablation, maintenance_kernels);
criterion_main!(benches);
