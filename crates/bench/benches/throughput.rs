//! Criterion bench for experiment E5: concurrent read throughput as a function
//! of the module threadpool size (the §II architecture claim). Each iteration
//! pushes a batch of 1-hop count queries from several client threads through
//! the single-threaded dispatcher and waits for every reply.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use crossbeam::channel::unbounded;
use datagen::{KhopWorkload, SeedSelection};
use redisgraph_bench::{load_dataset, Dataset};
use redisgraph_server::server::Request;
use redisgraph_server::{RedisGraphServer, RespValue, ServerConfig};
use std::hint::black_box;
use std::sync::Arc;

const QUERIES_PER_ITER: usize = 64;
const CLIENTS: usize = 4;

fn throughput_scaling(c: &mut Criterion) {
    let loaded = load_dataset(Dataset::Graph500, 10, 42);
    let degrees = loaded.edges.out_degrees();
    let workload = KhopWorkload::with_seed_count(
        1,
        loaded.edges.num_vertices,
        &degrees,
        SeedSelection::NonIsolated,
        7,
        QUERIES_PER_ITER,
    );

    let mut group = c.benchmark_group("throughput/pool_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(QUERIES_PER_ITER as u64));
    for pool_size in [1usize, 2, 4] {
        // One server per pool size, reused across iterations.
        let server = Arc::new(RedisGraphServer::new(ServerConfig {
            thread_count: pool_size,
            ..ServerConfig::default()
        }));
        server.graph("bench").write().bulk_load(loaded.edges.num_vertices, &loaded.edges.edges);
        let (tx, _dispatcher) = server.start_dispatcher();

        group.bench_with_input(BenchmarkId::new("pool", pool_size), &pool_size, |b, _| {
            b.iter(|| {
                let mut client_handles = Vec::new();
                for chunk in workload.seeds.chunks(QUERIES_PER_ITER / CLIENTS) {
                    let tx = tx.clone();
                    let seeds = chunk.to_vec();
                    client_handles.push(std::thread::spawn(move || {
                        let (reply_tx, reply_rx) = unbounded();
                        for seed in seeds {
                            let query = format!(
                                "MATCH (s:Node)-[*1..1]->(t) WHERE id(s) = {seed} RETURN count(t)"
                            );
                            tx.send(Request {
                                command: RespValue::command(&["GRAPH.QUERY", "bench", &query]),
                                reply_to: reply_tx.clone(),
                            })
                            .unwrap();
                            black_box(reply_rx.recv().unwrap());
                        }
                    }));
                }
                for h in client_handles {
                    h.join().unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, throughput_scaling);
criterion_main!(benches);
