//! Criterion bench for experiments E1/E2: k-hop neighbourhood-count latency on
//! the Graph500 and Twitter-like datasets, RedisGraph reproduction vs. the
//! adjacency-list baseline, k ∈ {1, 2, 3, 6}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{KhopWorkload, SeedSelection};
use redisgraph_bench::{load_dataset, Dataset};
use std::hint::black_box;

fn khop_benchmarks(c: &mut Criterion) {
    // Keep the criterion run laptop-sized; the khop_table binary exposes the
    // scale knob for bigger runs.
    let scale = 11;
    for dataset in [Dataset::Graph500, Dataset::Twitter] {
        let loaded = load_dataset(dataset, scale, 42);
        let degrees = loaded.edges.out_degrees();
        let mut group = c.benchmark_group(format!("khop/{}", dataset.name().to_lowercase()));
        for k in [1u32, 2, 3, 6] {
            let workload = KhopWorkload::with_seed_count(
                k,
                loaded.edges.num_vertices,
                &degrees,
                SeedSelection::NonIsolated,
                7,
                16,
            );
            group.bench_with_input(BenchmarkId::new("redisgraph", k), &k, |b, &k| {
                b.iter(|| {
                    let mut total = 0u64;
                    for &seed in &workload.seeds {
                        total += loaded.redisgraph.khop_count(black_box(seed), k);
                    }
                    black_box(total)
                })
            });
            group.bench_with_input(BenchmarkId::new("baseline", k), &k, |b, &k| {
                b.iter(|| {
                    let mut total = 0u64;
                    for &seed in &workload.seeds {
                        total += loaded.baseline.khop_count(black_box(seed), k);
                    }
                    black_box(total)
                })
            });
        }
        group.finish();
    }
}

fn khop_cypher_path(c: &mut Criterion) {
    // The full GRAPH.QUERY code path (parse → plan → algebraic traverse →
    // aggregate) for the 1-hop and 2-hop benchmark queries.
    let loaded = load_dataset(Dataset::Graph500, 11, 42);
    let mut group = c.benchmark_group("khop/cypher_path");
    for k in [1u32, 2] {
        group.bench_with_input(BenchmarkId::new("graph500", k), &k, |b, &k| {
            let query = format!("MATCH (s:Node)-[*1..{k}]->(t) WHERE id(s) = 1 RETURN count(t)");
            b.iter(|| black_box(loaded.redisgraph.query_readonly(black_box(&query)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, khop_benchmarks, khop_cypher_path);
criterion_main!(benches);
