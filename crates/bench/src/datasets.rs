//! Benchmark dataset construction: generates the scaled-down Graph500 and
//! Twitter-like graphs and loads them into both engines under test so every
//! measurement runs on identical data.

use baseline::AdjacencyListGraph;
use datagen::{EdgeList, PowerLawConfig, RmatConfig};
use redisgraph_core::Graph;

/// Which of the paper's two datasets to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// The Graph500 RMAT graph (paper: 2.4 M vertices, 67 M edges).
    Graph500,
    /// The Twitter-like power-law graph (paper: 41.6 M vertices, 1.47 B edges).
    Twitter,
}

impl Dataset {
    /// Parse from a command-line string.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "graph500" | "g500" => Some(Dataset::Graph500),
            "twitter" | "tw" => Some(Dataset::Twitter),
            _ => None,
        }
    }

    /// Display name matching the paper's figure labels.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Graph500 => "Graph500",
            Dataset::Twitter => "Twitter",
        }
    }

    /// Generate the edge list at a given scale knob. For Graph500 the knob is
    /// the RMAT scale (log2 of the vertex count); for Twitter it is also used
    /// as a power of two of the vertex count so both datasets grow together.
    pub fn generate(&self, scale: u32, seed: u64) -> EdgeList {
        match self {
            Dataset::Graph500 => datagen::rmat::generate(&RmatConfig {
                scale,
                edge_factor: 28, // the TigerGraph benchmark's Graph500 instance has ≈28 edges/vertex
                seed,
                ..RmatConfig::default()
            }),
            Dataset::Twitter => datagen::powerlaw::generate(&PowerLawConfig {
                num_vertices: 1u64 << scale,
                edges_per_vertex: 35, // ≈ the real Twitter dataset's average out-degree
                random_fraction: 0.15,
                seed,
            }),
        }
    }
}

/// A generated dataset loaded into both engines.
pub struct LoadedDataset {
    /// Which dataset this is.
    pub dataset: Dataset,
    /// The raw edge list (kept for degree statistics / seed selection).
    pub edges: EdgeList,
    /// The matrix-backed RedisGraph reproduction.
    pub redisgraph: Graph,
    /// The adjacency-list baseline engine.
    pub baseline: AdjacencyListGraph,
}

/// Generate a dataset and load it into both engines.
pub fn load_dataset(dataset: Dataset, scale: u32, seed: u64) -> LoadedDataset {
    let edges = dataset.generate(scale, seed);
    let mut redisgraph = Graph::new(dataset.name());
    redisgraph.bulk_load(edges.num_vertices, &edges.edges);
    let baseline = AdjacencyListGraph::from_edge_list(edges.num_vertices, &edges.edges);
    LoadedDataset { dataset, edges, redisgraph, baseline }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_engines_load_identical_graphs() {
        let loaded = load_dataset(Dataset::Graph500, 8, 1);
        assert_eq!(loaded.redisgraph.node_count(), loaded.baseline.node_count());
        assert_eq!(loaded.redisgraph.edge_count(), loaded.baseline.edge_count());
        // spot-check k-hop equivalence on a few seeds
        for seed in [0u64, 3, 17, 101] {
            for k in [1, 2, 3] {
                assert_eq!(
                    loaded.redisgraph.khop_count(seed, k),
                    loaded.baseline.khop_count(seed, k),
                    "k-hop mismatch at seed {seed}, k {k}"
                );
            }
        }
    }

    #[test]
    fn dataset_parsing_and_names() {
        assert_eq!(Dataset::parse("graph500"), Some(Dataset::Graph500));
        assert_eq!(Dataset::parse("Twitter"), Some(Dataset::Twitter));
        assert_eq!(Dataset::parse("nope"), None);
        assert_eq!(Dataset::Graph500.name(), "Graph500");
    }

    #[test]
    fn twitter_dataset_is_denser_than_its_vertex_count() {
        let el = Dataset::Twitter.generate(9, 2);
        assert_eq!(el.num_vertices, 512);
        assert!(el.num_edges() as u64 > el.num_vertices * 20);
    }
}
