//! Plain-text report formatting shared by the harness binaries: aligned tables
//! printed in the same shape as the paper's figure and the TigerGraph
//! benchmark's result tables.

use crate::khop::KhopMeasurement;

/// Render a list of rows as an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(headers.iter().map(|s| s.to_string()).collect(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Render the k-hop suite results as the per-dataset table of §III.
pub fn render_khop_table(results: &[KhopMeasurement]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|m| {
            vec![
                m.dataset.clone(),
                m.engine.clone(),
                m.k.to_string(),
                m.seeds.to_string(),
                format!("{:.3}", m.avg_ms),
                format!("{:.1}", m.avg_count),
            ]
        })
        .collect();
    render_table(
        &["dataset", "engine", "k-hop", "seeds", "avg response (ms)", "avg neighbourhood"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_headers() {
        let table = render_table(
            &["system", "ms"],
            &[vec!["RedisGraph".into(), "0.4".into()], vec!["Neo4j".into(), "14.5".into()]],
        );
        assert!(table.contains("system"));
        assert!(table.lines().count() >= 4);
        // every data line has both columns
        assert!(table.lines().last().unwrap().contains("Neo4j"));
    }

    #[test]
    fn khop_table_contains_all_measurements() {
        let m = KhopMeasurement {
            dataset: "Graph500".into(),
            engine: "RedisGraph (repro)".into(),
            k: 6,
            seeds: 10,
            avg_ms: 1.234,
            avg_count: 99.0,
        };
        let table = render_khop_table(&[m]);
        assert!(table.contains("Graph500"));
        assert!(table.contains("1.234"));
        assert!(table.contains("99.0"));
    }
}
