//! # redisgraph-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (see `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured numbers).
//!
//! The harness has two faces:
//!
//! * **Criterion benches** (`cargo bench -p redisgraph-bench`) — `khop`,
//!   `graphblas_kernels`, `throughput`;
//! * **stand-alone binaries** (`cargo run --release -p redisgraph-bench --bin …`) —
//!   `khop_table`, `fig1`, `throughput` — which print the same rows/series the
//!   paper reports.

pub mod datasets;
pub mod khop;
pub mod report;

pub use datasets::{load_dataset, Dataset, LoadedDataset};
pub use khop::{run_khop_suite, KhopMeasurement};
