//! Interleaved write/read throughput benchmark for the delta-matrix write
//! path: streams a generated edge list into the store one `add_edge` at a
//! time, with read queries (`khop_count` + `neighbors`) interleaved every
//! `--read-every` writes, and measures the same workload under two regimes:
//!
//! * **delta** — the production configuration: mutations buffer into each
//!   matrix's delta buffers (flush threshold `--threshold`), reads cross a
//!   `sync_matrices()` barrier exactly like the server's read path;
//! * **eager** — the pre-delta behaviour: `sync_matrices()` after every
//!   single mutation, i.e. a per-op CSR fold.
//!
//! Writes a machine-readable `BENCH_writes.json` with both measurements and
//! the speedup, so the write-path trajectory has data points alongside the
//! k-hop, throughput, and algos suites.
//!
//! ```text
//! cargo run --release -p redisgraph-bench --bin writes -- \
//!     --edges 100000 --read-every 1000 --out BENCH_writes.json
//! ```

use datagen::RmatConfig;
use redisgraph_bench::report::render_table;
use redisgraph_core::Graph;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured regime.
struct Measurement {
    mode: &'static str,
    threshold: usize,
    wall_ms: f64,
    writes: usize,
    reads: usize,
    writes_per_sec: f64,
    /// Sum of every interleaved read result — identical across regimes by
    /// construction, so a divergence flags a correctness bug, not noise.
    checksum: u64,
}

/// Stream the edge list into a graph, interleaving reads. `eager` flushes
/// after every mutation (per-op `sync_matrices`); otherwise mutations buffer
/// and reads flush once at the barrier, as the server does.
fn run_workload(
    vertices: u64,
    edges: &[(u64, u64)],
    read_every: usize,
    threshold: usize,
    eager: bool,
) -> Measurement {
    let mut g = Graph::new("writes");
    g.set_flush_threshold(if eager { 1 } else { threshold });
    let start = Instant::now();
    for v in 0..vertices {
        g.add_node(&["Node"], vec![("id", redisgraph_core::Value::Int(v as i64))]);
        if eager {
            g.sync_matrices();
        }
    }
    let mut reads = 0usize;
    let mut checksum = 0u64;
    for (i, &(src, dst)) in edges.iter().enumerate() {
        g.add_edge(src, dst, "LINK", vec![]).expect("endpoints exist");
        if eager {
            g.sync_matrices();
        }
        if (i + 1) % read_every == 0 {
            // Read barrier, then the two read shapes the paper's workloads
            // lean on: a 2-hop neighbourhood count and a row scan.
            g.sync_matrices();
            let probe = src % vertices;
            checksum += g.khop_count(probe, 2);
            checksum += g.neighbors(probe, None, redisgraph_core::TraverseDir::Both).len() as u64;
            reads += 2;
        }
    }
    g.sync_matrices();
    checksum += g.adjacency_matrix().nvals() as u64;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    Measurement {
        mode: if eager { "eager" } else { "delta" },
        threshold: g.flush_threshold(),
        wall_ms,
        writes: vertices as usize + edges.len(),
        reads,
        writes_per_sec: (vertices as usize + edges.len()) as f64 / (wall_ms / 1e3),
        checksum,
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let num_edges: usize = arg(&argv, "--edges").unwrap_or(100_000);
    let read_every: usize = arg(&argv, "--read-every").unwrap_or(1_000).max(1);
    let threshold: usize = arg(&argv, "--threshold").unwrap_or(graphblas::DEFAULT_FLUSH_THRESHOLD);
    let out_path: String = arg(&argv, "--out").unwrap_or_else(|| "BENCH_writes.json".to_string());

    // An RMAT graph sized so the requested edge count lands on 2^scale
    // vertices with roughly 8 edges per vertex — skewed like the paper's
    // datasets, so flushes hit rows of very different lengths.
    let mut scale = 4u32;
    while (1u64 << (scale + 3)) < num_edges as u64 {
        scale += 1;
    }
    let el = datagen::rmat::generate(&RmatConfig {
        scale,
        edge_factor: (num_edges as u64 / (1u64 << scale)).max(1) as u32,
        seed: 42,
        ..RmatConfig::default()
    });
    let edges: Vec<(u64, u64)> = el.edges.iter().copied().take(num_edges).collect();
    println!(
        "Interleaved write/read workload: {} vertices, {} edges, reads every {} writes\n",
        el.num_vertices,
        edges.len(),
        read_every
    );

    let delta = run_workload(el.num_vertices, &edges, read_every, threshold, false);
    let eager = run_workload(el.num_vertices, &edges, read_every, threshold, true);
    assert_eq!(
        delta.checksum, eager.checksum,
        "delta and eager regimes returned different read results"
    );
    let speedup = eager.wall_ms / delta.wall_ms;

    let rows: Vec<Vec<String>> = [&delta, &eager]
        .iter()
        .map(|m| {
            vec![
                m.mode.to_string(),
                m.threshold.to_string(),
                format!("{:.1}", m.wall_ms),
                m.writes.to_string(),
                m.reads.to_string(),
                format!("{:.0}", m.writes_per_sec),
                m.checksum.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["mode", "threshold", "wall (ms)", "writes", "reads", "writes/s", "checksum"],
            &rows
        )
    );
    println!("\ndelta speedup over per-op sync: {speedup:.1}x");

    std::fs::write(&out_path, to_json(&el, read_every, &delta, &eager, speedup))
        .expect("write benchmark report");
    println!("wrote {out_path}");
}

/// Hand-rolled JSON (no serde in the offline build).
fn to_json(
    el: &datagen::EdgeList,
    read_every: usize,
    delta: &Measurement,
    eager: &Measurement,
    speedup: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"suite\": \"writes\",");
    let _ = writeln!(out, "  \"vertices\": {},", el.num_vertices);
    let _ = writeln!(out, "  \"read_every\": {read_every},");
    let _ = writeln!(out, "  \"speedup\": {speedup:.3},");
    out.push_str("  \"results\": [\n");
    for (i, m) in [delta, eager].into_iter().enumerate() {
        let comma = if i == 0 { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"threshold\": {}, \"wall_ms\": {:.6}, \"writes\": {}, \
             \"reads\": {}, \"writes_per_sec\": {:.3}, \"checksum\": {}}}{comma}",
            m.mode, m.threshold, m.wall_ms, m.writes, m.reads, m.writes_per_sec, m.checksum
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn arg<T: std::str::FromStr>(argv: &[String], name: &str) -> Option<T> {
    argv.iter().position(|a| a == name).and_then(|i| argv.get(i + 1)).and_then(|s| s.parse().ok())
}
