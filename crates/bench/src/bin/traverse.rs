//! Traversal-strategy benchmark: the same multi-hop `MATCH` queries over an
//! RMAT graph, executed per-record (scalar pointer chasing), batched
//! (frontier `mxm`), batched with intra-query parallelism
//! (`QUERY_THREADS > 1` row-block threading inside the `mxm`), and fused
//! (the algebraic optimizer collapses the hop chain into one
//! counting-semiring matrix product and feeds path counts straight into the
//! aggregate). The first three modes pin the optimizer *off* so they keep
//! measuring the per-hop strategies in isolation.
//!
//! Row counts must agree across all modes — the bench doubles as a coarse
//! differential check — and the batched/fused timings are what the paper's
//! "traversals are algebraic expressions" claim buys in practice.
//!
//! ```text
//! cargo run --release -p redisgraph-bench --bin traverse -- \
//!     --scale 10 --edge-factor 8 --iters 3 --threads 4 --out BENCH_traverse.json
//! ```

use datagen::RmatConfig;
use graphblas::Context;
use redisgraph_bench::report::render_table;
use redisgraph_core::{Graph, TraverseStrategy};
use std::fmt::Write as _;
use std::time::Instant;

/// One (query, mode) measurement.
struct Measurement {
    query_name: &'static str,
    mode: &'static str,
    threads: usize,
    wall_ms: f64,
    rows: i64,
}

/// The benchmark queries: a 3-hop relationship chain (three Conditional
/// Traverse ops, frontier batches growing per hop), a variable-length
/// pattern (the batched level-synchronous BFS), and a variable-length
/// `Expand Into` semi-join — the shape where the algebraic formulation wins
/// outright, because the scalar path re-runs a BFS for every record while
/// the batched path runs one frontier BFS for all distinct sources and
/// probes each record's target out of the product.
const QUERIES: [(&str, &str); 3] = [
    ("3hop_chain", "MATCH (a:Node)-[:LINK]->(b)-[:LINK]->(c)-[:LINK]->(d) RETURN count(d)"),
    ("varlen_1_3", "MATCH (a:Node)-[:LINK*1..3]->(b) RETURN count(b)"),
    ("semi_join_varlen", "MATCH (a:Node)-[:LINK]->(b:Node), (a)-[:LINK*1..3]->(b) RETURN count(*)"),
];

/// Run one query under a pinned strategy/thread count; returns best-of-iters
/// wall time and the count(*) scalar for cross-mode comparison.
fn run_query(
    g: &mut Graph,
    strategy: TraverseStrategy,
    threads: usize,
    optimize: bool,
    query: &str,
    iters: usize,
) -> (f64, i64) {
    g.set_traverse_strategy(strategy);
    g.set_optimizer(optimize);
    Context::set_nthreads(threads);
    let mut best_ms = f64::INFINITY;
    let mut rows = 0i64;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let rs = g.query(query).expect("benchmark query executes");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(ms);
        rows = rs.scalar().and_then(|v| v.as_i64()).expect("count(*) scalar");
    }
    Context::set_nthreads(1);
    (best_ms, rows)
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let scale: u32 = arg(&argv, "--scale").unwrap_or(10);
    let edge_factor: u32 = arg(&argv, "--edge-factor").unwrap_or(8);
    let iters: usize = arg(&argv, "--iters").unwrap_or(3);
    // The floor of 2 applies only to the hardware-probe default, so an
    // explicit `--threads 1` still measures a genuinely single-threaded run.
    let threads: usize =
        arg(&argv, "--threads").unwrap_or_else(|| Context::hardware_threads().clamp(2, 4)).max(1);
    let out_path: String = arg(&argv, "--out").unwrap_or_else(|| "BENCH_traverse.json".to_string());

    let el = datagen::rmat::generate(&RmatConfig {
        scale,
        edge_factor,
        seed: 42,
        ..RmatConfig::default()
    });
    let mut g = Graph::new("traverse-bench");
    g.bulk_load(el.num_vertices, &el.edges);
    g.sync_matrices();
    println!(
        "RMAT scale {scale} (edge factor {edge_factor}): {} vertices, {} edges (deduped)\n",
        g.node_count(),
        g.edge_count()
    );

    // The per-hop modes pin the optimizer off; "fused" lets it collapse the
    // chain into one algebraic product (variable-length queries have no
    // fusable fixed chain and measure the optimizer's no-op overhead).
    let modes: [(&str, TraverseStrategy, usize, bool); 4] = [
        ("scalar", TraverseStrategy::Scalar, 1, false),
        ("batched", TraverseStrategy::Batched, 1, false),
        ("batched+threads", TraverseStrategy::Batched, threads, false),
        ("fused", TraverseStrategy::Batched, 1, true),
    ];

    let mut measurements: Vec<Measurement> = Vec::new();
    for (query_name, query) in QUERIES {
        let mut baseline_rows: Option<i64> = None;
        for (mode, strategy, nthreads, optimize) in modes {
            let (wall_ms, rows) = run_query(&mut g, strategy, nthreads, optimize, query, iters);
            match baseline_rows {
                None => baseline_rows = Some(rows),
                Some(expect) => assert_eq!(
                    rows, expect,
                    "traversal strategies disagreed on `{query_name}` row counts"
                ),
            }
            measurements.push(Measurement { query_name, mode, threads: nthreads, wall_ms, rows });
        }
    }

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.query_name.to_string(),
                m.mode.to_string(),
                m.threads.to_string(),
                format!("{:.2}", m.wall_ms),
                m.rows.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&["query", "mode", "threads", "wall (ms)", "rows"], &rows));

    for (query_name, _) in QUERIES {
        let of = |mode: &str| {
            measurements
                .iter()
                .find(|m| m.query_name == query_name && m.mode == mode)
                .expect("measured")
                .wall_ms
        };
        println!(
            "{query_name}: batched speedup {:.2}x, batched+threads speedup {:.2}x, \
             fused speedup {:.2}x",
            of("scalar") / of("batched"),
            of("scalar") / of("batched+threads"),
            of("scalar") / of("fused"),
        );
    }

    std::fs::write(&out_path, to_json(scale, edge_factor, &g, iters, &measurements))
        .expect("write benchmark report");
    println!("wrote {out_path}");
}

/// Hand-rolled JSON (no serde in the offline build).
fn to_json(
    scale: u32,
    edge_factor: u32,
    g: &Graph,
    iters: usize,
    measurements: &[Measurement],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"suite\": \"traverse\",");
    let _ = writeln!(out, "  \"scale\": {scale},");
    let _ = writeln!(out, "  \"edge_factor\": {edge_factor},");
    let _ = writeln!(out, "  \"vertices\": {},", g.node_count());
    let _ = writeln!(out, "  \"edges\": {},", g.edge_count());
    let _ = writeln!(out, "  \"iters\": {iters},");
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 < measurements.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"query\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \"wall_ms\": {:.6}, \
             \"rows\": {}}}{comma}",
            m.query_name, m.mode, m.threads, m.wall_ms, m.rows
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn arg<T: std::str::FromStr>(argv: &[String], name: &str) -> Option<T> {
    argv.iter().position(|a| a == name).and_then(|i| argv.get(i + 1)).and_then(|s| s.parse().ok())
}
