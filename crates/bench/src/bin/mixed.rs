//! Mixed read/write benchmark: point-read QPS while a background
//! `algo.pagerank` and a steady writer hammer the same graph — the workload
//! that exposed the global read-barrier stall this repo removed.
//!
//! Two modes over the identical graph, thread mix, and queries:
//!
//! * **epoch_snapshot** (after) — the live server dispatch: every command
//!   goes through `RedisGraphServer::submit_query`, so reads share the
//!   cached per-epoch sealed snapshot and execute lock-free while pagerank
//!   runs on the same snapshot;
//! * **legacy_read_barrier** (before) — an in-binary re-enactment of the
//!   pre-epoch lock discipline through the same public APIs: each read first
//!   performs the old barrier (`has_pending_deltas()` → take the *write*
//!   lock and `sync_matrices()`), then executes while *holding the read
//!   lock*; pagerank does the same. With a writer continuously dirtying the
//!   delta buffers, every read's barrier queues on the write lock behind the
//!   in-flight pagerank's read lock — and with a write-preferring lock, all
//!   other readers queue behind that waiting writer. Point reads stall for
//!   the full pagerank runtime, once per landed write.
//!
//! The legacy discipline was written against parking_lot's write-preferring
//! rwlock; this repo's vendored `parking_lot` stand-in wraps the std lock,
//! which on Linux admits new readers past a parked writer. Replayed verbatim
//! on that lock the legacy mode exhibits the *other* pathology — with
//! analytics read-holds overlapping, the writer (and therefore every flush)
//! starves outright, measured here at ~240 landed writes/2s against a
//! 1ms-cadence writer even without analytics. So the legacy re-enactment
//! routes its lock acquisitions through a small write-preferring gate
//! ([`FairGate`]) that restores the fairness the discipline assumed; the
//! epoch mode needs no such gate because its readers take no lock at all.
//!
//! The legacy mode also skips the worker-pool dispatch the real old server
//! paid, so the measured speedup is *conservative* — the epoch mode carries
//! the pool overhead, the legacy mode does not.
//!
//! Both modes run for a fixed wall-clock window and count completed point
//! reads; the JSON report carries per-mode `{queries, wall_ms, qps, rows}`
//! plus the top-level `speedup`.
//!
//! On a single-core host the stall still shows, for a scheduling reason
//! rather than a parallelism one: a legacy reader blocked on the write lock
//! cannot use the CPU slices the OS would happily give it, while an epoch
//! reader is always runnable and interleaves with the pagerank burn — so the
//! heavier the analytics holds, the wider the gap. The defaults (scale 14,
//! pagerank×100) make each hold ~50ms so the blocked fraction dominates.
//!
//! ```text
//! cargo run --release -p redisgraph-bench --bin mixed -- \
//!     --scale 14 --readers 4 --analytics 2 --duration-ms 3000 --out BENCH_mixed.json
//! ```

use crossbeam::channel::bounded;
use datagen::RmatConfig;
use redisgraph_bench::report::render_table;
use redisgraph_server::{RedisGraphServer, RespValue, ServerConfig};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A write-preferring reader/writer gate: once a writer is waiting, new
/// readers queue behind it. This is the admission order parking_lot (and the
/// pthread discipline RedisGraph itself was written for) gives; the legacy
/// mode layers it over the graph's std-backed lock so the old read barrier
/// behaves as it did in production rather than silently starving writers.
#[derive(Default)]
struct FairGate {
    state: Mutex<GateState>,
    turnstile: Condvar,
}

#[derive(Default)]
struct GateState {
    readers: usize,
    writers_waiting: usize,
    writer_active: bool,
}

impl FairGate {
    fn read_enter(&self) {
        let mut s = self.state.lock().unwrap();
        while s.writer_active || s.writers_waiting > 0 {
            s = self.turnstile.wait(s).unwrap();
        }
        s.readers += 1;
    }

    fn read_exit(&self) {
        let mut s = self.state.lock().unwrap();
        s.readers -= 1;
        if s.readers == 0 {
            self.turnstile.notify_all();
        }
    }

    fn write_enter(&self) {
        let mut s = self.state.lock().unwrap();
        s.writers_waiting += 1;
        while s.writer_active || s.readers > 0 {
            s = self.turnstile.wait(s).unwrap();
        }
        s.writers_waiting -= 1;
        s.writer_active = true;
    }

    fn write_exit(&self) {
        let mut s = self.state.lock().unwrap();
        s.writer_active = false;
        self.turnstile.notify_all();
    }
}

/// One measured mode.
struct Measurement {
    mode: &'static str,
    queries: usize,
    wall_ms: f64,
    qps: f64,
    /// Sum of every point read's `count(t)` — proof the reads returned real
    /// data (0 would flag an empty or unreachable graph).
    rows: u64,
}

/// Queries of the fixed workload mix.
struct Workload {
    vertices: u64,
    pagerank: String,
}

impl Workload {
    /// The `i`-th point read of reader `c`: deterministic seed rotation
    /// sweeping the whole id space (40503 and 7919 are coprime with every
    /// power-of-two vertex count).
    fn point_read(&self, c: usize, i: usize) -> String {
        let k = ((c + 1) as u64 * 40503 + i as u64 * 7919) % self.vertices;
        format!("MATCH (s:Node)-[:LINK]->(t) WHERE id(s) = {k} RETURN count(t)")
    }

    /// The `i`-th write: one more `LINK` edge between existing nodes, enough
    /// to dirty the delta buffers (what forced the legacy barrier to flush).
    fn write(&self, i: usize) -> String {
        let a = (i as u64 * 7919 + 13) % self.vertices;
        let b = (i as u64 * 40503 + 29) % self.vertices;
        format!(
            "MATCH (a:Node), (b:Node) WHERE id(a) = {a} AND id(b) = {b} CREATE (a)-[:LINK]->(b)"
        )
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let scale: u32 = arg(&argv, "--scale").unwrap_or(if smoke { 13 } else { 14 });
    let edge_factor: u32 = arg(&argv, "--edge-factor").unwrap_or(8);
    let readers: usize = arg(&argv, "--readers").unwrap_or(if smoke { 2 } else { 4 }).max(1);
    let analytics: usize = arg(&argv, "--analytics").unwrap_or(2).max(1);
    let duration_ms: u64 = arg(&argv, "--duration-ms").unwrap_or(if smoke { 800 } else { 3_000 });
    let pagerank_iters: u32 = arg(&argv, "--pagerank-iters").unwrap_or(100);
    let out_path: String = arg(&argv, "--out").unwrap_or_else(|| {
        if smoke {
            "BENCH_mixed_smoke.json".to_string()
        } else {
            "BENCH_mixed.json".to_string()
        }
    });

    let workload = Workload {
        vertices: 1u64 << scale,
        pagerank: format!(
            "CALL algo.pagerank(0.85, {pagerank_iters}) YIELD node, score RETURN count(node)"
        ),
    };
    let el = datagen::rmat::generate(&RmatConfig {
        scale,
        edge_factor,
        seed: 42,
        ..RmatConfig::default()
    });
    println!(
        "Mixed workload (scale {scale}, {} edges): {readers} point readers vs {analytics} \
         background pagerank({pagerank_iters} iters) threads + writer, {duration_ms}ms per mode\n",
        el.edges.len()
    );

    // Fresh server per mode so neither inherits the other's extra edges.
    let duration = Duration::from_millis(duration_ms);
    let legacy = {
        let server = new_loaded_server(readers, analytics, &el);
        run_mode(&server, &workload, readers, analytics, duration, false)
    };
    let epoch = {
        let server = new_loaded_server(readers, analytics, &el);
        run_mode(&server, &workload, readers, analytics, duration, true)
    };
    let speedup = epoch.qps / legacy.qps.max(f64::MIN_POSITIVE);

    let rows: Vec<Vec<String>> = [&legacy, &epoch]
        .iter()
        .map(|m| {
            vec![
                m.mode.to_string(),
                m.queries.to_string(),
                format!("{:.1}", m.wall_ms),
                format!("{:.0}", m.qps),
                m.rows.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&["mode", "queries", "wall (ms)", "reads/sec", "rows"], &rows));
    println!("point-read speedup (epoch_snapshot / legacy_read_barrier): {speedup:.1}x");

    std::fs::write(&out_path, to_json(scale, readers, duration_ms, speedup, &[&legacy, &epoch]))
        .expect("write benchmark report");
    println!("wrote {out_path}");
}

/// A server whose `bench` graph holds the RMAT edge list, with enough pool
/// workers that the background pagerank runs cannot starve the readers' jobs.
fn new_loaded_server(
    readers: usize,
    analytics: usize,
    el: &datagen::EdgeList,
) -> Arc<RedisGraphServer> {
    let server = Arc::new(RedisGraphServer::new(ServerConfig {
        thread_count: readers + analytics + 2,
        ..ServerConfig::default()
    }));
    server.graph("bench").write().bulk_load(el.num_vertices, &el.edges);
    server
}

/// Run one mode: `readers` point-read threads counting completions,
/// `analytics` background pagerank loops, one writer loop, all for
/// `duration`. The legacy branches route every lock acquisition through the
/// write-preferring [`FairGate`] (see the module docs for why).
fn run_mode(
    server: &Arc<RedisGraphServer>,
    workload: &Workload,
    readers: usize,
    analytics: usize,
    duration: Duration,
    epoch_mode: bool,
) -> Measurement {
    let stop = Arc::new(AtomicBool::new(false));
    let gate = Arc::new(FairGate::default());
    let graph = server.graph("bench");
    let start = Instant::now();

    // The old read barrier: flush any pending deltas (escalating from the
    // read side to the exclusive lock), leaving the gate read-held for the
    // query that follows.
    fn legacy_barrier_and_read_enter(
        gate: &FairGate,
        graph: &Arc<redisgraph_server::RwLock<redisgraph_core::Graph>>,
    ) {
        gate.read_enter();
        if graph.read().has_pending_deltas() {
            gate.read_exit();
            gate.write_enter();
            graph.write().sync_matrices(); // the old read barrier
            gate.write_exit();
            gate.read_enter();
        }
    }

    // Background pagerank runs: the long read-holds the legacy barrier
    // stalls behind. In epoch mode they flow through the real server
    // dispatch and execute on the shared sealed snapshot.
    let pagerank_threads: Vec<_> = (0..analytics)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let server = Arc::clone(server);
            let gate = Arc::clone(&gate);
            let graph = graph.clone();
            let query = workload.pagerank.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if epoch_mode {
                        submit(&server, &query);
                    } else {
                        legacy_barrier_and_read_enter(&gate, &graph);
                        graph.read().query_readonly(&query).expect("pagerank");
                        gate.read_exit();
                    }
                }
            })
        })
        .collect();
    // Steady writer: keeps the delta buffers dirty so every legacy read
    // must attempt the write-lock flush.
    let writer_thread = {
        let stop = Arc::clone(&stop);
        let server = Arc::clone(server);
        let gate = Arc::clone(&gate);
        let graph = graph.clone();
        let writes: Vec<String> = (0..4096).map(|i| workload.write(i)).collect();
        std::thread::spawn(move || {
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let q = &writes[i % writes.len()];
                if epoch_mode {
                    submit(&server, q);
                } else {
                    gate.write_enter();
                    graph.write().query(q).expect("write");
                    gate.write_exit();
                }
                i += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    let reader_threads: Vec<_> = (0..readers)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let server = Arc::clone(server);
            let gate = Arc::clone(&gate);
            let graph = graph.clone();
            let queries: Vec<String> = (0..4096).map(|i| workload.point_read(c, i)).collect();
            std::thread::spawn(move || {
                let (mut done, mut rows) = (0usize, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    let q = &queries[done % queries.len()];
                    let reply = if epoch_mode {
                        submit(&server, q)
                    } else {
                        legacy_barrier_and_read_enter(&gate, &graph);
                        // Legacy discipline: execute while holding the lock.
                        let rs = graph.read().query_readonly(q).expect("point read");
                        gate.read_exit();
                        resultset_count(&rs)
                    };
                    rows += reply;
                    done += 1;
                }
                (done, rows)
            })
        })
        .collect();

    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let mut queries = 0usize;
    let mut rows = 0u64;
    for handle in reader_threads {
        let (done, r) = handle.join().expect("reader thread");
        queries += done;
        rows += r;
    }
    for handle in pagerank_threads {
        handle.join().expect("pagerank thread");
    }
    writer_thread.join().expect("writer thread");
    // Wall includes any reads that were still stalled at the stop flag —
    // exactly the latency being measured.
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    Measurement {
        mode: if epoch_mode { "epoch_snapshot" } else { "legacy_read_barrier" },
        queries,
        wall_ms,
        qps: queries as f64 / (wall_ms / 1e3),
        rows,
    }
}

/// Dispatch one query through the real server path and await its reply,
/// returning the single integer a `RETURN count(...)` row carries.
fn submit(server: &Arc<RedisGraphServer>, query: &str) -> u64 {
    let (tx, rx) = bounded(1);
    server.submit_query("bench".to_string(), query.to_string(), tx);
    let reply = rx.recv().expect("query worker exited");
    if let RespValue::Array(sections) = &reply {
        if let Some(RespValue::Array(result_rows)) = sections.get(1) {
            if let Some(RespValue::Array(row)) = result_rows.first() {
                if let Some(RespValue::Integer(n)) = row.first() {
                    return u64::try_from(*n).unwrap_or(0);
                }
            }
        }
        // Write queries return header/rows/stats with no count row.
        return 0;
    }
    panic!("query failed: {reply}");
}

/// The same count extraction for the legacy in-process path.
fn resultset_count(rs: &redisgraph_core::ResultSet) -> u64 {
    match rs.rows.first().and_then(|row| row.first()) {
        Some(redisgraph_core::Value::Int(n)) => u64::try_from(*n).unwrap_or(0),
        _ => 0,
    }
}

/// Hand-rolled JSON (no serde in the offline build).
fn to_json(
    scale: u32,
    readers: usize,
    duration_ms: u64,
    speedup: f64,
    measurements: &[&Measurement],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"suite\": \"mixed\",");
    let _ = writeln!(out, "  \"scale\": {scale},");
    let _ = writeln!(out, "  \"readers\": {readers},");
    let _ = writeln!(out, "  \"duration_ms\": {duration_ms},");
    let _ = writeln!(out, "  \"speedup\": {speedup:.3},");
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 < measurements.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"queries\": {}, \"wall_ms\": {:.6}, \"qps\": {:.3}, \
             \"rows\": {}}}{comma}",
            m.mode, m.queries, m.wall_ms, m.qps, m.rows
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn arg<T: std::str::FromStr>(argv: &[String], name: &str) -> Option<T> {
    argv.iter().position(|a| a == name).and_then(|i| argv.get(i + 1)).and_then(|s| s.parse().ok())
}
