//! End-to-end network throughput benchmark: pipelined RESP traffic over a
//! real TCP loopback socket, through the full stack — framing loop → command
//! parse → planner → (batched-mxm) executor → delta store → RESP reply.
//!
//! Two workloads, the poles of the paper's serving story:
//!
//! * **point_read_1hop** — `MATCH (s:Node)-[:LINK]->(t) WHERE id(s) = k
//!   RETURN count(t)`: the cheap high-QPS shape where protocol + dispatch
//!   overhead dominates;
//! * **chain_2hop** — `MATCH (s:Node)-[:LINK]->()-[:LINK]->(t) …`: a real
//!   traversal per request, where worker-pool parallelism dominates.
//!
//! A third workload, **param_point**, sends the point-read as a parameterized
//! query (`CYPHER k=… WHERE id(s) = $k`) so every request shares one
//! normalized cache key. It runs twice — plan cache on (default) and off
//! (`GRAPH.CONFIG SET PLAN_CACHE_SIZE 0`) — and `scripts/bench_check.py`
//! fails the build if the cached run is meaningfully slower than the
//! uncached one.
//!
//! By default the bench spawns its own [`GraphServer`] on an ephemeral
//! loopback port and preloads an RMAT graph; `--addr HOST:PORT` points it at
//! an externally started `redisgraph-server` instead (CI's `network-e2e` job
//! does exactly that), in which case the server must already hold the graph
//! (`redisgraph-server --preload-scale N`).
//!
//! ```text
//! cargo run --release -p redisgraph-bench --bin network -- \
//!     --scale 12 --clients 8 --pipeline 32 --out BENCH_network.json
//! ```

use datagen::RmatConfig;
use redisgraph_bench::report::render_table;
use redisgraph_server::{
    GraphServer, RedisGraphServer, RespClient, RespValue, ServerConfig, DEFAULT_PLAN_CACHE_SIZE,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The committed full-run `point_read_1hop` throughput (BENCH_network.json)
/// from before the metrics registry existed: the reference the always-on
/// instrumentation is measured against (the acceptance gate is ≤3%
/// overhead). Smoke runs still *record* the comparison; only full runs on
/// the reference machine are meaningful against it.
const BASELINE_POINT_QPS: f64 = 41_696.0;

/// One measured workload.
struct Measurement {
    op: &'static str,
    queries: usize,
    wall_ms: f64,
    qps: f64,
    /// Sum of every returned count — a checksum proving the queries did real
    /// work and returned consistent data (0 would flag an empty graph).
    rows: u64,
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let scale: u32 = arg(&argv, "--scale").unwrap_or(if smoke { 8 } else { 12 });
    let edge_factor: u32 = arg(&argv, "--edge-factor").unwrap_or(8);
    let clients: usize = arg(&argv, "--clients").unwrap_or(if smoke { 2 } else { 8 });
    let pipeline: usize = arg(&argv, "--pipeline").unwrap_or(if smoke { 16 } else { 32 }).max(1);
    let point_queries: usize =
        arg(&argv, "--point-queries").unwrap_or(if smoke { 400 } else { 8_000 });
    let hop2_queries: usize =
        arg(&argv, "--hop2-queries").unwrap_or(if smoke { 100 } else { 1_000 });
    let threads: usize = arg(&argv, "--threads").unwrap_or(4);
    let graph_name: String = arg(&argv, "--graph").unwrap_or_else(|| "bench".to_string());
    let external: Option<String> = arg(&argv, "--addr");
    let out_path: String = arg(&argv, "--out").unwrap_or_else(|| {
        if smoke {
            "BENCH_network_smoke.json".to_string()
        } else {
            "BENCH_network.json".to_string()
        }
    });

    // Either point at an external server (which preloaded its own graph) or
    // spawn one in-process on an ephemeral loopback port and preload it.
    let (addr, mode, _own_server) = match external {
        Some(addr) => (addr, "external", None),
        None => {
            let server = Arc::new(RedisGraphServer::new(ServerConfig {
                thread_count: threads,
                ..ServerConfig::default()
            }));
            let el = datagen::rmat::generate(&RmatConfig {
                scale,
                edge_factor,
                seed: 42,
                ..RmatConfig::default()
            });
            server.graph(&graph_name).write().bulk_load(el.num_vertices, &el.edges);
            let net = GraphServer::bind_with("127.0.0.1:0", server).expect("bind loopback");
            (net.local_addr().to_string(), "loopback", Some(net))
        }
    };
    let vertices: u64 = 1u64 << scale;
    println!(
        "Network throughput over TCP ({mode} {addr}): graph `{graph_name}`, \
         {clients} clients, pipeline depth {pipeline}\n"
    );

    let before = fetch_info(&addr);
    let point =
        run_workload(&addr, &graph_name, clients, pipeline, point_queries, vertices, Shape::Point);
    let hop2 =
        run_workload(&addr, &graph_name, clients, pipeline, hop2_queries, vertices, Shape::TwoHop);

    // The parameterized point-read, cache on (the server default) then cache
    // off, with the default restored afterwards so an external server is
    // left the way the bench found it.
    let param_cached = run_workload(
        &addr,
        &graph_name,
        clients,
        pipeline,
        point_queries,
        vertices,
        Shape::ParamPointCached,
    );
    config_set(&addr, "PLAN_CACHE_SIZE", "0");
    let param_uncached = run_workload(
        &addr,
        &graph_name,
        clients,
        pipeline,
        point_queries,
        vertices,
        Shape::ParamPointUncached,
    );
    config_set(&addr, "PLAN_CACHE_SIZE", &DEFAULT_PLAN_CACHE_SIZE.to_string());

    let after = settle_and_fetch_info(&addr);
    let metrics = server_metrics(&before, &after);

    let rows: Vec<Vec<String>> = [&point, &hop2, &param_cached, &param_uncached]
        .iter()
        .map(|m| {
            vec![
                m.op.to_string(),
                m.queries.to_string(),
                format!("{:.1}", m.wall_ms),
                format!("{:.0}", m.qps),
                m.rows.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&["op", "queries", "wall (ms)", "queries/sec", "rows"], &rows));

    // Server-side view of the same run: GRAPH.INFO deltas across the two
    // workloads, so client-side qps can be cross-checked against what the
    // server actually executed and shipped.
    println!("server-side GRAPH.INFO deltas:");
    for (key, value) in &metrics {
        println!("  {key}: {value}");
    }
    let overhead_pct = (BASELINE_POINT_QPS - point.qps) / BASELINE_POINT_QPS * 100.0;
    println!(
        "\npoint_read_1hop vs committed pre-metrics baseline: {:.0} vs {BASELINE_POINT_QPS:.0} \
         qps ({overhead_pct:+.2}% overhead)",
        point.qps
    );
    println!(
        "param_point plan cache on vs off: {:.0} vs {:.0} qps ({:+.2}% from caching)\n",
        param_cached.qps,
        param_uncached.qps,
        (param_cached.qps - param_uncached.qps) / param_uncached.qps * 100.0
    );

    std::fs::write(
        &out_path,
        to_json(
            mode,
            scale,
            clients,
            pipeline,
            &[&point, &hop2, &param_cached, &param_uncached],
            &metrics,
            overhead_pct,
        ),
    )
    .expect("write benchmark report");
    println!("wrote {out_path}");
}

/// `GRAPH.CONFIG SET` against the server under test; a refusal is fatal —
/// the cache-on/cache-off comparison would silently measure the same thing
/// twice.
fn config_set(addr: &str, parameter: &str, value: &str) {
    let mut client = RespClient::connect(addr).expect("connect for GRAPH.CONFIG");
    let reply =
        client.command(&["GRAPH.CONFIG", "SET", parameter, value]).expect("GRAPH.CONFIG SET reply");
    assert!(
        matches!(reply, RespValue::SimpleString(ref s) if s == "OK"),
        "GRAPH.CONFIG SET {parameter} {value} refused: {reply}"
    );
}

/// Snapshot `GRAPH.INFO` as one flat `field -> integer` map (sections are
/// `[name, [k, v, …]]`; every value this bench consumes is an integer).
fn fetch_info(addr: &str) -> BTreeMap<String, i64> {
    let mut client = RespClient::connect(addr).expect("connect for GRAPH.INFO");
    let reply = client.command(&["GRAPH.INFO"]).expect("GRAPH.INFO");
    let RespValue::Array(sections) = reply else { panic!("GRAPH.INFO not an array: {reply}") };
    let mut fields = BTreeMap::new();
    for section in sections {
        let RespValue::Array(parts) = section else { continue };
        let Some(RespValue::Array(kvs)) = parts.get(1) else { continue };
        for pair in kvs.chunks(2) {
            if let (RespValue::BulkString(k), Some(RespValue::Integer(v))) = (&pair[0], pair.get(1))
            {
                fields.insert(k.clone(), *v);
            }
        }
    }
    fields
}

/// Fetch the post-run snapshot once the workload connections have released
/// their slots (the server reaps them within its read-timeout tick). The
/// polling connection itself is active while asking, so "no leak" reads as
/// `connections_active == 1`.
fn settle_and_fetch_info(addr: &str) -> BTreeMap<String, i64> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let info = fetch_info(addr);
        if info.get("connections_active") == Some(&1) || Instant::now() > deadline {
            return info;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The JSON `server_metrics` object: counter deltas across the run, plus the
/// absolute gauge values a leak would show up in.
fn server_metrics(
    before: &BTreeMap<String, i64>,
    after: &BTreeMap<String, i64>,
) -> BTreeMap<String, i64> {
    const DELTAS: &[&str] = &[
        "queries_executed",
        "queries_failed",
        "queries_readonly",
        "queries_write",
        "snapshot_hits",
        "snapshot_rebuilds",
        "plan_cache_hits",
        "plan_cache_misses",
        "plan_cache_evictions",
        "bytes_in",
        "bytes_out",
        "connections_accepted",
    ];
    const GAUGES: &[&str] = &["connections_active", "connections_refused", "query_p50_usec"];
    let mut out = BTreeMap::new();
    for key in DELTAS {
        let b = before.get(*key).copied().unwrap_or(0);
        let a = after.get(*key).copied().unwrap_or(0);
        out.insert((*key).to_string(), a - b);
    }
    for key in GAUGES {
        out.insert((*key).to_string(), after.get(*key).copied().unwrap_or(0));
    }
    out
}

/// Which query text each request carries.
#[derive(Clone, Copy)]
enum Shape {
    /// Literal 1-hop point read — a distinct text (and cache key) per seed.
    Point,
    /// Literal 2-hop traversal.
    TwoHop,
    /// Parameterized point read: one shared cache key, per-request binding.
    /// The two variants only differ in the server's `PLAN_CACHE_SIZE` at run
    /// time (set by the caller) and in the reported op name.
    ParamPointCached,
    ParamPointUncached,
}

impl Shape {
    fn op(self) -> &'static str {
        match self {
            Shape::Point => "point_read_1hop",
            Shape::TwoHop => "chain_2hop",
            Shape::ParamPointCached => "param_point_cached",
            Shape::ParamPointUncached => "param_point_uncached",
        }
    }

    fn query(self, k: u64) -> String {
        match self {
            Shape::Point => {
                format!("MATCH (s:Node)-[:LINK]->(t) WHERE id(s) = {k} RETURN count(t)")
            }
            Shape::TwoHop => {
                format!("MATCH (s:Node)-[:LINK]->()-[:LINK]->(t) WHERE id(s) = {k} RETURN count(t)")
            }
            Shape::ParamPointCached | Shape::ParamPointUncached => {
                format!("CYPHER k={k} MATCH (s:Node)-[:LINK]->(t) WHERE id(s) = $k RETURN count(t)")
            }
        }
    }
}

/// Drive one workload: `clients` threads, each pipelining `pipeline`
/// commands per burst over its own TCP connection.
fn run_workload(
    addr: &str,
    graph: &str,
    clients: usize,
    pipeline: usize,
    queries: usize,
    vertices: u64,
    shape: Shape,
) -> Measurement {
    let per_client = queries / clients.max(1);
    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let addr = addr.to_string();
        let graph = graph.to_string();
        handles.push(std::thread::spawn(move || {
            let mut client = RespClient::connect(&addr).expect("connect");
            let mut rows = 0u64;
            let mut sent = 0usize;
            while sent < per_client {
                let burst = pipeline.min(per_client - sent);
                let commands: Vec<RespValue> = (0..burst)
                    .map(|i| {
                        // Deterministic per-client seed rotation; 40503 is
                        // coprime with every power-of-two vertex count, so
                        // seeds sweep the whole id space.
                        let k = ((c + 1) as u64 * 40503 + ((sent + i) as u64) * 7919) % vertices;
                        RespValue::command(&["GRAPH.QUERY", &graph, &shape.query(k)])
                    })
                    .collect();
                let replies = client.pipeline(&commands).expect("pipelined replies");
                for reply in replies {
                    rows += extract_count(&reply);
                }
                sent += burst;
            }
            rows
        }));
    }
    let rows: u64 = handles.into_iter().map(|h| h.join().expect("client thread")).sum();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let queries = per_client * clients;
    Measurement { op: shape.op(), queries, wall_ms, qps: queries as f64 / (wall_ms / 1e3), rows }
}

/// Pull the single `count(t)` integer out of a `GRAPH.QUERY` reply.
fn extract_count(reply: &RespValue) -> u64 {
    if let RespValue::Array(sections) = reply {
        if let Some(RespValue::Array(rows)) = sections.get(1) {
            if let Some(RespValue::Array(row)) = rows.first() {
                if let Some(RespValue::Integer(n)) = row.first() {
                    return u64::try_from(*n).unwrap_or(0);
                }
            }
        }
    }
    panic!("query failed over the wire: {reply}");
}

/// Hand-rolled JSON (no serde in the offline build).
fn to_json(
    mode: &str,
    scale: u32,
    clients: usize,
    pipeline: usize,
    measurements: &[&Measurement],
    metrics: &BTreeMap<String, i64>,
    overhead_pct: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"suite\": \"network\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"scale\": {scale},");
    let _ = writeln!(out, "  \"clients\": {clients},");
    let _ = writeln!(out, "  \"pipeline\": {pipeline},");
    let _ = writeln!(out, "  \"baseline_point_qps\": {BASELINE_POINT_QPS:.3},");
    let _ = writeln!(out, "  \"point_overhead_vs_baseline_pct\": {overhead_pct:.3},");
    out.push_str("  \"server_metrics\": {\n");
    for (i, (key, value)) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{key}\": {value}{comma}");
    }
    out.push_str("  },\n");
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 < measurements.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"op\": \"{}\", \"queries\": {}, \"wall_ms\": {:.6}, \"qps\": {:.3}, \
             \"rows\": {}}}{comma}",
            m.op, m.queries, m.wall_ms, m.qps, m.rows
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn arg<T: std::str::FromStr>(argv: &[String], name: &str) -> Option<T> {
    argv.iter().position(|a| a == name).and_then(|i| argv.get(i + 1)).and_then(|s| s.parse().ok())
}
