//! Experiment E3/E4 harness: Fig. 1 of the paper — average 1-hop response time
//! on the Graph500 and Twitter datasets for RedisGraph versus other graph
//! databases — plus the conclusion's speedup summary.
//!
//! The figure mixes two kinds of rows:
//!
//! * **measured here**: the RedisGraph reproduction (both the library fast
//!   path and the full Cypher path) and the local adjacency-list baseline;
//! * **published**: the literature response times from the TigerGraph
//!   benchmark report for TigerGraph, Neo4j, Neptune, JanusGraph and ArangoDB,
//!   which cannot be run in this environment (see DESIGN.md substitutions).
//!
//! ```text
//! cargo run --release -p redisgraph-bench --bin fig1 -- --scale 13 --summary
//! ```

use baseline::literature::{literature_response_times, PAPER_SPEEDUP_RANGE, REDISGRAPH_PUBLISHED};
use datagen::{KhopWorkload, SeedSelection};
use redisgraph_bench::khop::measure_one_hop_cypher;
use redisgraph_bench::report::render_table;
use redisgraph_bench::{load_dataset, Dataset};
use std::time::Instant;

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let scale: u32 = argv
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| argv.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(13);
    let seeds_cap: usize = argv
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| argv.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let summary = argv.iter().any(|a| a == "--summary");

    println!("Fig. 1 — average response time (ms) for 1-hop k-hop-count queries\n");

    let mut measured: Vec<(String, String, f64)> = Vec::new();
    for dataset in [Dataset::Graph500, Dataset::Twitter] {
        let loaded = load_dataset(dataset, scale, 42);
        let degrees = loaded.edges.out_degrees();
        let mut workload = KhopWorkload::tigergraph(
            1,
            loaded.edges.num_vertices,
            &degrees,
            SeedSelection::NonIsolated,
            7,
        );
        workload.seeds.truncate(seeds_cap);

        // library fast path (matrix BFS)
        let start = Instant::now();
        let mut total = 0u64;
        for &s in &workload.seeds {
            total += loaded.redisgraph.khop_count(s, 1);
        }
        let fast_ms = start.elapsed().as_secs_f64() * 1e3 / workload.len() as f64;
        std::hint::black_box(total);

        // full Cypher path (parse → plan → execute)
        let cypher_ms = measure_one_hop_cypher(&loaded, &workload.seeds);

        // baseline engine
        let start = Instant::now();
        let mut total = 0u64;
        for &s in &workload.seeds {
            total += loaded.baseline.khop_count(s, 1);
        }
        let baseline_ms = start.elapsed().as_secs_f64() * 1e3 / workload.len() as f64;
        std::hint::black_box(total);

        measured.push((
            dataset.name().to_string(),
            "RedisGraph (repro, matrix BFS)".into(),
            fast_ms,
        ));
        measured.push((
            dataset.name().to_string(),
            "RedisGraph (repro, Cypher path)".into(),
            cypher_ms,
        ));
        measured.push((
            dataset.name().to_string(),
            "Adjacency-list baseline (measured)".into(),
            baseline_ms,
        ));
    }

    // Assemble the figure: measured rows + published rows.
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (dataset, system, ms) in &measured {
        rows.push(vec![
            system.clone(),
            dataset.clone(),
            format!("{ms:.3}"),
            "measured here".into(),
        ]);
    }
    for entry in REDISGRAPH_PUBLISHED {
        rows.push(vec![
            entry.system.to_string(),
            if entry.dataset == "graph500" { "Graph500".into() } else { "Twitter".into() },
            format!("{:.3}", entry.one_hop_ms),
            "published [paper]".into(),
        ]);
    }
    for entry in literature_response_times() {
        rows.push(vec![
            entry.system.to_string(),
            if entry.dataset == "graph500" { "Graph500".into() } else { "Twitter".into() },
            format!("{:.3}", entry.one_hop_ms),
            "published [TigerGraph benchmark]".into(),
        ]);
    }
    println!("{}", render_table(&["system", "dataset", "1-hop avg (ms)", "source"], &rows));

    if summary {
        println!(
            "\nE4 — speedup summary (paper conclusion: 36x to 15,000x vs non-TigerGraph systems)"
        );
        let mut rows = Vec::new();
        for dataset in ["Graph500", "Twitter"] {
            let repro = measured
                .iter()
                .find(|(d, s, _)| d == dataset && s.contains("matrix BFS"))
                .map(|(_, _, ms)| *ms)
                .unwrap_or(f64::NAN);
            let base = measured
                .iter()
                .find(|(d, s, _)| d == dataset && s.contains("baseline"))
                .map(|(_, _, ms)| *ms)
                .unwrap_or(f64::NAN);
            rows.push(vec![
                dataset.to_string(),
                "measured repro vs measured baseline".into(),
                format!("{:.2}x", base / repro),
            ]);
            for entry in literature_response_times()
                .iter()
                .filter(|e| e.dataset.eq_ignore_ascii_case(dataset) && e.system != "TigerGraph")
            {
                let published_rg = REDISGRAPH_PUBLISHED
                    .iter()
                    .find(|e2| e2.dataset.eq_ignore_ascii_case(dataset))
                    .unwrap()
                    .one_hop_ms;
                rows.push(vec![
                    dataset.to_string(),
                    format!("published RedisGraph vs published {}", entry.system),
                    format!("{:.0}x", entry.one_hop_ms / published_rg),
                ]);
            }
        }
        println!("{}", render_table(&["dataset", "comparison", "speedup"], &rows));
        println!("paper's reported range: {}x – {}x", PAPER_SPEEDUP_RANGE.0, PAPER_SPEEDUP_RANGE.1);
    }
}
