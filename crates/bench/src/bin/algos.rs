//! Algorithm-suite benchmark: runs the five `crates/algo` algorithms over the
//! generated Graph500 (RMAT) and Twitter-like (power-law) datasets and writes
//! a machine-readable `BENCH_algos.json` so the performance trajectory of the
//! analytics path has data points alongside the k-hop and throughput numbers.
//!
//! ```text
//! cargo run --release -p redisgraph-bench --bin algos -- --scale 12 --out BENCH_algos.json
//! ```

use algo::PageRankConfig;
use redisgraph_bench::report::render_table;
use redisgraph_bench::{load_dataset, Dataset};
use std::fmt::Write as _;
use std::time::Instant;

/// One timed algorithm run.
struct Measurement {
    dataset: &'static str,
    vertices: u64,
    edges: usize,
    algorithm: &'static str,
    wall_ms: f64,
    /// Rounds actually executed: BFS levels swept, Bellman–Ford relaxation
    /// rounds, label-propagation rounds, power-iteration steps; 1 for the
    /// single-pass triangle count.
    iterations: u32,
    /// A result fingerprint (reached count, component count, triangle count…)
    /// so regressions in output size are visible next to the timings.
    result: u64,
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let scale: u32 = arg(&argv, "--scale").unwrap_or(12);
    let out_path: String = arg(&argv, "--out").unwrap_or_else(|| "BENCH_algos.json".to_string());

    println!("Graph-algorithm suite over the paper's datasets (scale {scale})\n");
    let mut measurements = Vec::new();
    for dataset in [Dataset::Graph500, Dataset::Twitter] {
        let loaded = load_dataset(dataset, scale, 42);
        let graph = &loaded.redisgraph;
        let adj = graph.adjacency_matrix(); // Cow: borrows the flushed main matrix
        let nodes = graph.all_node_ids();
        let vertices = loaded.edges.num_vertices;
        let edges = graph.edge_count();
        let name = dataset.name();
        println!("{name}: {vertices} vertices, {edges} edges");

        // Source the traversals at the highest-out-degree vertex so the BFS
        // and SSSP runs cover a meaningful fraction of the graph on both
        // datasets (vertex 0 is a sink in the preferential-attachment graph).
        let source = nodes.iter().copied().max_by_key(|&v| adj.row_degree(v)).unwrap_or(0);

        let start = Instant::now();
        let levels = algo::bfs_levels(&adj, source);
        let bfs_rounds = levels.values().iter().copied().max().unwrap_or(0) as u32;
        measurements.push(Measurement {
            dataset: name,
            vertices,
            edges,
            algorithm: "bfs",
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            iterations: bfs_rounds,
            result: levels.nvals() as u64,
        });

        let weights = graph.weight_matrix("weight", 1.0);
        let start = Instant::now();
        let (dist, sssp_rounds) = algo::sssp_with_iterations(&weights, source);
        measurements.push(Measurement {
            dataset: name,
            vertices,
            edges,
            algorithm: "sssp",
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            iterations: sssp_rounds,
            result: dist.nvals() as u64,
        });

        let config = PageRankConfig::default();
        let start = Instant::now();
        let pr = algo::pagerank(&adj, &nodes, &config);
        measurements.push(Measurement {
            dataset: name,
            vertices,
            edges,
            algorithm: "pagerank",
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            iterations: pr.iterations,
            result: pr.scores.len() as u64,
        });

        let start = Instant::now();
        let (labels, wcc_rounds) = algo::wcc_with_iterations(&adj, &nodes);
        let mut components: Vec<u64> = labels.iter().map(|&(_, c)| c).collect();
        components.sort_unstable();
        components.dedup();
        measurements.push(Measurement {
            dataset: name,
            vertices,
            edges,
            algorithm: "wcc",
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            iterations: wcc_rounds,
            result: components.len() as u64,
        });

        let start = Instant::now();
        let triangles = algo::triangle_count(&adj);
        measurements.push(Measurement {
            dataset: name,
            vertices,
            edges,
            algorithm: "triangles",
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            iterations: 1,
            result: triangles,
        });
    }

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.dataset.to_string(),
                m.algorithm.to_string(),
                m.vertices.to_string(),
                m.edges.to_string(),
                format!("{:.3}", m.wall_ms),
                m.iterations.to_string(),
                m.result.to_string(),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &["dataset", "algorithm", "vertices", "edges", "wall (ms)", "iterations", "result"],
            &rows
        )
    );

    std::fs::write(&out_path, to_json(scale, &measurements)).expect("write benchmark report");
    println!("wrote {out_path}");
}

/// Hand-rolled JSON (no serde in the offline build): one object per run.
fn to_json(scale: u32, measurements: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"suite\": \"algos\",");
    let _ = writeln!(out, "  \"scale\": {scale},");
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 < measurements.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"dataset\": \"{}\", \"algorithm\": \"{}\", \"vertices\": {}, \
             \"edges\": {}, \"wall_ms\": {:.6}, \"iterations\": {}, \"result\": {}}}{comma}",
            m.dataset, m.algorithm, m.vertices, m.edges, m.wall_ms, m.iterations, m.result
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn arg<T: std::str::FromStr>(argv: &[String], name: &str) -> Option<T> {
    argv.iter().position(|a| a == name).and_then(|i| argv.get(i + 1)).and_then(|s| s.parse().ok())
}
