//! Experiment E1/E2/E7 harness: the k-hop neighbourhood-count response-time
//! table (k = 1, 2, 3, 6) on the Graph500 and Twitter-like datasets, for the
//! RedisGraph reproduction and the adjacency-list baseline.
//!
//! ```text
//! cargo run --release -p redisgraph-bench --bin khop_table -- \
//!     --dataset graph500 --scale 14 --seed-cap 50
//! ```
//!
//! * `--dataset graph500|twitter|both` (default `both`)
//! * `--scale N` — log2 of the vertex count (default 13)
//! * `--seed-cap N` — cap the per-k seed count (default: paper counts 300/10)
//! * `--max-k N` — limit the largest k (E7 uses 6, the default)

use redisgraph_bench::khop::run_khop_suite;
use redisgraph_bench::report::render_khop_table;
use redisgraph_bench::{load_dataset, Dataset};

struct Args {
    dataset: Option<Dataset>,
    scale: u32,
    seed_cap: Option<usize>,
    max_k: u32,
}

fn parse_args() -> Args {
    let mut args = Args { dataset: None, scale: 13, seed_cap: None, max_k: 6 };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--dataset" => {
                i += 1;
                let value = argv.get(i).map(|s| s.as_str()).unwrap_or("both");
                args.dataset = Dataset::parse(value);
                if args.dataset.is_none() && value != "both" {
                    eprintln!("unknown dataset `{value}`, expected graph500|twitter|both");
                    std::process::exit(2);
                }
            }
            "--scale" => {
                i += 1;
                args.scale = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or(13);
            }
            "--seed-cap" => {
                i += 1;
                args.seed_cap = argv.get(i).and_then(|s| s.parse().ok());
            }
            "--max-k" => {
                i += 1;
                args.max_k = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or(6);
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let datasets: Vec<Dataset> = match args.dataset {
        Some(d) => vec![d],
        None => vec![Dataset::Graph500, Dataset::Twitter],
    };

    println!("k-hop neighbourhood count benchmark (TigerGraph protocol, paper §III)");
    println!("scale = {} (2^{} vertices per dataset)\n", args.scale, args.scale);

    for dataset in datasets {
        let loaded = load_dataset(dataset, args.scale, 42);
        println!(
            "{}: {} vertices, {} edges",
            dataset.name(),
            loaded.redisgraph.node_count(),
            loaded.redisgraph.edge_count()
        );
        let mut results = run_khop_suite(&loaded, args.seed_cap, 7);
        results.retain(|m| m.k <= args.max_k);
        println!("{}", render_khop_table(&results));

        // E7: report that the largest-k queries completed (the paper notes no
        // timeouts and no out-of-memory conditions on the large dataset).
        let deepest = results.iter().filter(|m| m.k == args.max_k).count();
        println!(
            "E7 check: all {}-hop queries completed without timeout or OOM ({} engine rows)\n",
            args.max_k, deepest
        );
    }
}
