//! Experiment E5 harness: read-throughput scaling with the module threadpool
//! size — the architectural claim of §II ("this allows reads to scale and
//! handle large throughput easily") that motivates the one-query-one-thread
//! design.
//!
//! Concurrent clients issue 1-hop k-hop-count queries through the
//! single-threaded dispatcher; the pool size is swept and queries/second is
//! reported for each setting.
//!
//! ```text
//! cargo run --release -p redisgraph-bench --bin throughput -- --scale 12 --queries 200
//! ```

use crossbeam::channel::unbounded;
use datagen::{KhopWorkload, SeedSelection};
use redisgraph_bench::report::render_table;
use redisgraph_bench::{load_dataset, Dataset};
use redisgraph_server::server::Request;
use redisgraph_server::{RedisGraphServer, RespValue, ServerConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let scale: u32 = arg(&argv, "--scale").unwrap_or(12);
    let queries: usize = arg(&argv, "--queries").unwrap_or(200);
    let clients: usize = arg(&argv, "--clients").unwrap_or(8);
    // 2-hop queries by default: heavy enough that the worker threads, not the
    // dispatcher, are the bottleneck — which is the regime the paper's
    // architecture argument is about.
    let k: u32 = arg(&argv, "--k").unwrap_or(2);

    println!("Threadpool read-throughput scaling (paper §II architecture claim)\n");
    let loaded = load_dataset(Dataset::Graph500, scale, 42);
    let degrees = loaded.edges.out_degrees();
    let workload = KhopWorkload::with_seed_count(
        1,
        loaded.edges.num_vertices,
        &degrees,
        SeedSelection::NonIsolated,
        7,
        queries,
    );

    let mut rows = Vec::new();
    for pool_size in [1usize, 2, 4, 8] {
        let qps = run_with_pool(
            pool_size,
            clients,
            k,
            &loaded.edges.edges,
            loaded.edges.num_vertices,
            &workload,
        );
        rows.push(vec![
            pool_size.to_string(),
            clients.to_string(),
            queries.to_string(),
            format!("{qps:.0}"),
        ]);
    }
    println!("{}", render_table(&["pool threads", "clients", "queries", "queries/sec"], &rows));
    println!("Each query runs on exactly one pool thread; throughput should grow with the pool\nuntil the host's core count is reached, while single-query latency stays flat.");
}

fn arg<T: std::str::FromStr>(argv: &[String], name: &str) -> Option<T> {
    argv.iter().position(|a| a == name).and_then(|i| argv.get(i + 1)).and_then(|s| s.parse().ok())
}

fn run_with_pool(
    pool_size: usize,
    clients: usize,
    k: u32,
    edges: &[(u64, u64)],
    num_vertices: u64,
    workload: &KhopWorkload,
) -> f64 {
    let server = Arc::new(RedisGraphServer::new(ServerConfig {
        thread_count: pool_size,
        ..ServerConfig::default()
    }));
    // Load the graph through the server's keyspace once.
    {
        let graph = server.graph("bench");
        graph.write().bulk_load(num_vertices, edges);
    }
    let (tx, handle) = server.start_dispatcher();

    let queries_per_client = workload.len() / clients.max(1);
    let start = Instant::now();
    let mut client_handles = Vec::new();
    for c in 0..clients {
        let tx = tx.clone();
        let seeds: Vec<u64> = workload
            .seeds
            .iter()
            .skip(c * queries_per_client)
            .take(queries_per_client)
            .copied()
            .collect();
        client_handles.push(std::thread::spawn(move || {
            let (reply_tx, reply_rx) = unbounded();
            for seed in seeds {
                let query =
                    format!("MATCH (s:Node)-[*1..{k}]->(t) WHERE id(s) = {seed} RETURN count(t)");
                tx.send(Request {
                    command: RespValue::command(&["GRAPH.QUERY", "bench", &query]),
                    reply_to: reply_tx.clone(),
                })
                .expect("dispatcher alive");
                let reply = reply_rx.recv().expect("reply");
                assert!(!matches!(reply, RespValue::Error(_)), "query failed: {reply}");
            }
        }));
    }
    for h in client_handles {
        h.join().expect("client thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    drop(tx);
    handle.join().expect("dispatcher");
    (queries_per_client * clients) as f64 / elapsed
}
