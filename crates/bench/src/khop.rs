//! The k-hop neighbourhood-count experiment driver (experiments E1, E2, E7).
//!
//! Follows the TigerGraph benchmark protocol the paper used: for each k, a set
//! of seed vertices is queried **sequentially** (single-request latency) and
//! the average response time is reported. Both engines are driven on identical
//! graphs and identical seeds.

use crate::datasets::LoadedDataset;
use datagen::{KhopWorkload, SeedSelection};
use std::time::Instant;

/// The measured result of one (engine, dataset, k) cell.
#[derive(Debug, Clone)]
pub struct KhopMeasurement {
    /// Dataset name.
    pub dataset: String,
    /// Engine name (`"RedisGraph (repro)"` or `"Adjacency-list baseline"`).
    pub engine: String,
    /// Number of hops.
    pub k: u32,
    /// Number of seed queries executed.
    pub seeds: usize,
    /// Average response time in milliseconds.
    pub avg_ms: f64,
    /// Average neighbourhood size returned (sanity check that both engines
    /// agree on the answer).
    pub avg_count: f64,
}

/// Run the k-hop suite (k = 1, 2, 3, 6) on a loaded dataset for both engines.
///
/// `seed_cap` optionally truncates the per-k seed counts (300/300/10/10 in the
/// paper) so the suite finishes quickly at small scales; `None` uses the
/// paper's counts.
pub fn run_khop_suite(
    loaded: &LoadedDataset,
    seed_cap: Option<usize>,
    rng_seed: u64,
) -> Vec<KhopMeasurement> {
    let degrees = loaded.edges.out_degrees();
    let mut results = Vec::new();
    for k in [1u32, 2, 3, 6] {
        let mut workload = KhopWorkload::tigergraph(
            k,
            loaded.edges.num_vertices,
            &degrees,
            SeedSelection::NonIsolated,
            rng_seed,
        );
        if let Some(cap) = seed_cap {
            workload.seeds.truncate(cap.max(1));
        }

        // RedisGraph reproduction: algebraic BFS over the adjacency matrix.
        let (rg_ms, rg_count) = measure(&workload, |seed| loaded.redisgraph.khop_count(seed, k));
        results.push(KhopMeasurement {
            dataset: loaded.dataset.name().to_string(),
            engine: "RedisGraph (repro)".to_string(),
            k,
            seeds: workload.len(),
            avg_ms: rg_ms,
            avg_count: rg_count,
        });

        // Baseline: queue BFS over adjacency lists.
        let (bl_ms, bl_count) = measure(&workload, |seed| loaded.baseline.khop_count(seed, k));
        results.push(KhopMeasurement {
            dataset: loaded.dataset.name().to_string(),
            engine: "Adjacency-list baseline".to_string(),
            k,
            seeds: workload.len(),
            avg_ms: bl_ms,
            avg_count: bl_count,
        });
    }
    results
}

fn measure(workload: &KhopWorkload, mut f: impl FnMut(u64) -> u64) -> (f64, f64) {
    let mut total_ms = 0.0;
    let mut total_count = 0u64;
    for &seed in &workload.seeds {
        let start = Instant::now();
        let count = f(seed);
        total_ms += start.elapsed().as_secs_f64() * 1e3;
        total_count += count;
    }
    let n = workload.len().max(1) as f64;
    (total_ms / n, total_count as f64 / n)
}

/// End-to-end Cypher variant of the 1-hop measurement (goes through parse →
/// plan → execute, i.e. the full `GRAPH.QUERY` code path rather than the
/// library fast path). Used by the `fig1` binary to report both numbers.
pub fn measure_one_hop_cypher(loaded: &LoadedDataset, seeds: &[u64]) -> f64 {
    let mut total_ms = 0.0;
    for &seed in seeds {
        let query = format!("MATCH (s:Node)-[*1..1]->(t) WHERE id(s) = {seed} RETURN count(t)");
        let start = Instant::now();
        let rs = loaded.redisgraph.query_readonly(&query).expect("benchmark query must execute");
        total_ms += start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(rs);
    }
    total_ms / seeds.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load_dataset, Dataset};

    #[test]
    fn suite_produces_all_rows_and_engines_agree() {
        let loaded = load_dataset(Dataset::Graph500, 8, 3);
        let results = run_khop_suite(&loaded, Some(5), 7);
        // 4 values of k × 2 engines
        assert_eq!(results.len(), 8);
        for k in [1u32, 2, 3, 6] {
            let cells: Vec<&KhopMeasurement> = results.iter().filter(|m| m.k == k).collect();
            assert_eq!(cells.len(), 2);
            // identical workload → identical average neighbourhood size
            assert!(
                (cells[0].avg_count - cells[1].avg_count).abs() < 1e-9,
                "engines disagree at k={k}: {} vs {}",
                cells[0].avg_count,
                cells[1].avg_count
            );
            assert!(cells.iter().all(|c| c.avg_ms >= 0.0));
        }
    }

    #[test]
    fn cypher_path_matches_fast_path_on_one_hop() {
        let loaded = load_dataset(Dataset::Graph500, 7, 1);
        let seeds = [0u64, 1, 2];
        for &s in &seeds {
            let query = format!("MATCH (s:Node)-[*1..1]->(t) WHERE id(s) = {s} RETURN count(t)");
            let rs = loaded.redisgraph.query_readonly(&query).unwrap();
            let via_cypher = rs.scalar().and_then(|v| v.as_i64()).unwrap() as u64;
            assert_eq!(via_cypher, loaded.redisgraph.khop_count(s, 1));
        }
        let ms = measure_one_hop_cypher(&loaded, &seeds);
        assert!(ms >= 0.0);
    }
}
