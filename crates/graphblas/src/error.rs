//! Error handling mirroring the `GrB_Info` return codes of the C API.

use std::fmt;

/// Errors returned by fallible GraphBLAS operations.
///
/// The variants correspond to the `GrB_Info` error codes of the C API that are
/// reachable from safe Rust (out-of-memory and panic-level conditions surface
/// as ordinary Rust panics/aborts instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrbError {
    /// A row or column index is outside the dimensions of the object
    /// (`GrB_INDEX_OUT_OF_BOUNDS`).
    IndexOutOfBounds {
        /// The offending index.
        index: u64,
        /// The dimension it was checked against.
        bound: u64,
    },
    /// Dimensions of the operands do not conform (`GrB_DIMENSION_MISMATCH`).
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        what: String,
    },
    /// An output object was the same as an input where aliasing is not
    /// supported (`GrB_NOT_IMPLEMENTED` / aliasing restriction).
    InvalidValue(String),
    /// The requested entry does not exist (`GrB_NO_VALUE`).
    NoValue,
}

impl fmt::Display for GrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrbError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (dimension {bound})")
            }
            GrbError::DimensionMismatch { what } => write!(f, "dimension mismatch: {what}"),
            GrbError::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
            GrbError::NoValue => write!(f, "no stored value at the requested position"),
        }
    }
}

impl std::error::Error for GrbError {}

/// Result alias used by fallible GraphBLAS entry points.
pub type GrbResult<T> = Result<T, GrbError>;

/// Check that `index < bound`, returning `GrbError::IndexOutOfBounds` otherwise.
#[inline]
pub fn check_index(index: u64, bound: u64) -> GrbResult<()> {
    if index < bound {
        Ok(())
    } else {
        Err(GrbError::IndexOutOfBounds { index, bound })
    }
}

/// Check that two dimensions are equal, returning a mismatch error otherwise.
#[inline]
pub fn check_dims(a: u64, b: u64, what: &str) -> GrbResult<()> {
    if a == b {
        Ok(())
    } else {
        Err(GrbError::DimensionMismatch { what: format!("{what}: {a} != {b}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_index_accepts_in_bounds() {
        assert!(check_index(0, 1).is_ok());
        assert!(check_index(9, 10).is_ok());
    }

    #[test]
    fn check_index_rejects_out_of_bounds() {
        let err = check_index(10, 10).unwrap_err();
        assert_eq!(err, GrbError::IndexOutOfBounds { index: 10, bound: 10 });
    }

    #[test]
    fn check_dims_reports_mismatch() {
        assert!(check_dims(3, 3, "nrows").is_ok());
        let err = check_dims(3, 4, "ncols").unwrap_err();
        assert!(matches!(err, GrbError::DimensionMismatch { .. }));
        assert!(err.to_string().contains("ncols"));
    }

    #[test]
    fn errors_display_readably() {
        let e = GrbError::IndexOutOfBounds { index: 7, bound: 5 };
        assert!(e.to_string().contains('7'));
        assert_eq!(GrbError::NoValue.to_string(), "no stored value at the requested position");
    }
}
