//! `GrB_extract`: pull out submatrices, single rows, and single columns.
//!
//! RedisGraph extracts a row of the label matrix to enumerate the nodes of a
//! label, and extracts submatrices when resolving patterns against a subset of
//! already-bound nodes.

use crate::error::{check_index, GrbResult};
use crate::matrix::SparseMatrix;
use crate::types::Scalar;
use crate::vector::SparseVector;
use crate::Index;

/// Extract the submatrix `A[rows, cols]`. The output has dimensions
/// `rows.len() × cols.len()`; output position `(i, j)` holds `A[rows[i], cols[j]]`
/// if that entry is stored. Row and column index lists need not be sorted.
pub fn extract_submatrix<T: Scalar>(
    a: &SparseMatrix<T>,
    rows: &[Index],
    cols: &[Index],
) -> GrbResult<SparseMatrix<T>> {
    assert!(a.is_flushed(), "extract requires a flushed matrix");
    for &r in rows {
        check_index(r, a.nrows())?;
    }
    for &c in cols {
        check_index(c, a.ncols())?;
    }
    // Map original column -> output column (last occurrence wins, matching
    // GraphBLAS which allows duplicate indices in extract lists).
    let mut col_map: Vec<Option<Index>> = vec![None; a.ncols() as usize];
    for (out_j, &c) in cols.iter().enumerate() {
        col_map[c as usize] = Some(out_j as Index);
    }
    let mut triples = Vec::new();
    for (out_i, &r) in rows.iter().enumerate() {
        let (rc, rv) = a.row(r);
        for (&c, &v) in rc.iter().zip(rv.iter()) {
            if let Some(out_j) = col_map[c as usize] {
                triples.push((out_i as Index, out_j, v));
            }
        }
    }
    SparseMatrix::from_triples(rows.len() as Index, cols.len() as Index, &triples)
}

/// Extract row `i` of `A` as a sparse vector of length `A.ncols()`.
pub fn extract_row<T: Scalar>(a: &SparseMatrix<T>, i: Index) -> GrbResult<SparseVector<T>> {
    assert!(a.is_flushed(), "extract requires a flushed matrix");
    check_index(i, a.nrows())?;
    let (cols, vals) = a.row(i);
    Ok(SparseVector::from_sorted_parts(a.ncols(), cols.to_vec(), vals.to_vec()))
}

/// Extract column `j` of `A` as a sparse vector of length `A.nrows()`.
pub fn extract_col<T: Scalar>(a: &SparseMatrix<T>, j: Index) -> GrbResult<SparseVector<T>> {
    assert!(a.is_flushed(), "extract requires a flushed matrix");
    check_index(j, a.ncols())?;
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for r in 0..a.nrows() {
        if let Some(v) = a.extract_element(r, j) {
            indices.push(r);
            values.push(v);
        }
    }
    Ok(SparseVector::from_sorted_parts(a.nrows(), indices, values))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> SparseMatrix<i64> {
        SparseMatrix::from_triples(
            4,
            4,
            &[(0, 0, 1), (0, 3, 2), (1, 1, 3), (2, 0, 4), (3, 2, 5), (3, 3, 6)],
        )
        .unwrap()
    }

    #[test]
    fn submatrix_extraction_maps_indices() {
        let s = extract_submatrix(&m(), &[0, 3], &[0, 3]).unwrap();
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.ncols(), 2);
        assert_eq!(s.extract_element(0, 0), Some(1));
        assert_eq!(s.extract_element(0, 1), Some(2));
        assert_eq!(s.extract_element(1, 1), Some(6));
        assert_eq!(s.nvals(), 3);
    }

    #[test]
    fn submatrix_with_permuted_indices() {
        let s = extract_submatrix(&m(), &[3, 0], &[3, 0]).unwrap();
        // (0,0) of the output is A[3,3] = 6
        assert_eq!(s.extract_element(0, 0), Some(6));
        assert_eq!(s.extract_element(1, 1), Some(1));
    }

    #[test]
    fn extract_row_and_col() {
        let r = extract_row(&m(), 0).unwrap();
        assert_eq!(r.to_entries(), vec![(0, 1), (3, 2)]);
        let c = extract_col(&m(), 0).unwrap();
        assert_eq!(c.to_entries(), vec![(0, 1), (2, 4)]);
    }

    #[test]
    fn extract_rejects_out_of_bounds() {
        assert!(extract_row(&m(), 4).is_err());
        assert!(extract_col(&m(), 9).is_err());
        assert!(extract_submatrix(&m(), &[0, 4], &[0]).is_err());
    }

    #[test]
    fn empty_index_lists_give_empty_matrix() {
        let s = extract_submatrix(&m(), &[], &[]).unwrap();
        assert_eq!(s.nrows(), 0);
        assert_eq!(s.ncols(), 0);
        assert_eq!(s.nvals(), 0);
    }
}
