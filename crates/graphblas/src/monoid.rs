//! Monoids (`GrB_Monoid`): an associative, commutative binary operator with an
//! identity element, optionally with a *terminal* (annihilator) value that lets
//! kernels exit a reduction early (SuiteSparse's `GxB_Monoid_terminal_new`).

use crate::binary_op::{BinaryOp, OpApply};
use crate::types::Scalar;

/// An associative binary operator together with its identity value.
#[derive(Clone, Debug)]
pub struct Monoid<T: Scalar> {
    /// The combining operator.
    pub op: BinaryOp<T>,
    /// The identity of `op` (e.g. `0` for plus, `false` for lor).
    pub identity: T,
    /// Optional terminal value: once a partial reduction reaches this value the
    /// kernel may stop (e.g. `true` for the LOR monoid, `0` for TIMES over
    /// unsigned integers).
    pub terminal: Option<T>,
}

impl<T: Scalar + OpApply> Monoid<T> {
    /// Create a monoid from an operator and identity, with no terminal value.
    pub fn new(op: BinaryOp<T>, identity: T) -> Self {
        Monoid { op, identity, terminal: None }
    }

    /// Create a monoid with a terminal (annihilator) value.
    pub fn with_terminal(op: BinaryOp<T>, identity: T, terminal: T) -> Self {
        Monoid { op, identity, terminal: Some(terminal) }
    }

    /// Combine two values with the monoid operator.
    #[inline]
    pub fn combine(&self, x: T, y: T) -> T {
        T::apply(&self.op, x, y)
    }

    /// True if `v` equals the terminal value (reduction can stop early).
    #[inline]
    pub fn is_terminal(&self, v: T) -> bool {
        self.terminal.map(|t| t == v).unwrap_or(false)
    }

    /// Reduce a slice of values; returns the identity for an empty slice.
    pub fn reduce_slice(&self, values: &[T]) -> T {
        let mut acc = self.identity;
        for &v in values {
            acc = self.combine(acc, v);
            if self.is_terminal(acc) {
                break;
            }
        }
        acc
    }
}

/// The PLUS monoid over a numeric type.
pub fn plus_monoid<T: Scalar + OpApply>() -> Monoid<T> {
    Monoid::new(BinaryOp::Plus, T::zero())
}

/// The TIMES monoid over a numeric type.
pub fn times_monoid<T: Scalar + OpApply>() -> Monoid<T> {
    Monoid::new(BinaryOp::Times, T::one())
}

/// The MIN monoid with a caller-supplied identity (the type's "+infinity").
pub fn min_monoid<T: Scalar + OpApply>(identity: T) -> Monoid<T> {
    Monoid::new(BinaryOp::Min, identity)
}

/// The MAX monoid with a caller-supplied identity (the type's "-infinity").
pub fn max_monoid<T: Scalar + OpApply>(identity: T) -> Monoid<T> {
    Monoid::new(BinaryOp::Max, identity)
}

/// The LOR monoid over `bool` (identity `false`, terminal `true`).
pub fn lor_monoid() -> Monoid<bool> {
    Monoid::with_terminal(BinaryOp::LOr, false, true)
}

/// The LAND monoid over `bool` (identity `true`, terminal `false`).
pub fn land_monoid() -> Monoid<bool> {
    Monoid::with_terminal(BinaryOp::LAnd, true, false)
}

/// The ANY monoid: picks an arbitrary operand; every value is terminal, so a
/// reduction may stop at the first entry it sees. This is what makes the
/// ANY_PAIR semiring the cheapest possible structural traversal.
pub fn any_monoid<T: Scalar + OpApply>() -> Monoid<T> {
    Monoid { op: BinaryOp::Any, identity: T::zero(), terminal: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_monoid_reduces() {
        let m = plus_monoid::<i64>();
        assert_eq!(m.reduce_slice(&[1, 2, 3, 4]), 10);
        assert_eq!(m.reduce_slice(&[]), 0);
    }

    #[test]
    fn times_monoid_identity() {
        let m = times_monoid::<i64>();
        assert_eq!(m.reduce_slice(&[]), 1);
        assert_eq!(m.reduce_slice(&[2, 3, 4]), 24);
    }

    #[test]
    fn min_max_monoids() {
        let min = min_monoid(i64::MAX);
        let max = max_monoid(i64::MIN);
        assert_eq!(min.reduce_slice(&[5, 2, 8]), 2);
        assert_eq!(max.reduce_slice(&[5, 2, 8]), 8);
        assert_eq!(min.reduce_slice(&[]), i64::MAX);
    }

    #[test]
    fn lor_terminal_short_circuits() {
        let m = lor_monoid();
        assert!(m.is_terminal(true));
        assert!(!m.is_terminal(false));
        assert!(m.reduce_slice(&[false, true, false]));
        assert!(!m.reduce_slice(&[false, false]));
    }

    #[test]
    fn land_monoid_identity_true() {
        let m = land_monoid();
        assert!(m.reduce_slice(&[]));
        assert!(!m.reduce_slice(&[true, false, true]));
    }

    #[test]
    fn monoid_combine_is_associative_spot_check() {
        let m = plus_monoid::<i64>();
        let (a, b, c) = (3, 7, 11);
        assert_eq!(m.combine(m.combine(a, b), c), m.combine(a, m.combine(b, c)));
    }
}
