//! Element-wise operations: `eWiseAdd` (set union of patterns) and `eWiseMult`
//! (set intersection), for both matrices and vectors.
//!
//! RedisGraph uses `eWiseAdd` to maintain its combined adjacency matrix (the
//! union of all per-relation-type matrices) and `eWiseMult` to intersect
//! label constraints.

use crate::binary_op::{BinaryOp, OpApply};
use crate::matrix::SparseMatrix;
use crate::types::Scalar;
use crate::vector::SparseVector;
use crate::Index;

/// `w = u ⊕ v` over the union of the two patterns: positions present in only
/// one operand keep that operand's value; positions present in both are
/// combined with `op`.
pub fn ewise_add_vector<T: Scalar + OpApply>(
    u: &SparseVector<T>,
    v: &SparseVector<T>,
    op: &BinaryOp<T>,
) -> SparseVector<T> {
    assert_eq!(u.size(), v.size(), "eWiseAdd dimension mismatch");
    let mut indices = Vec::with_capacity(u.nvals() + v.nvals());
    let mut values = Vec::with_capacity(u.nvals() + v.nvals());
    let (ui, uv) = (u.indices(), u.values());
    let (vi, vv) = (v.indices(), v.values());
    let (mut a, mut b) = (0usize, 0usize);
    while a < ui.len() && b < vi.len() {
        match ui[a].cmp(&vi[b]) {
            std::cmp::Ordering::Less => {
                indices.push(ui[a]);
                values.push(uv[a]);
                a += 1;
            }
            std::cmp::Ordering::Greater => {
                indices.push(vi[b]);
                values.push(vv[b]);
                b += 1;
            }
            std::cmp::Ordering::Equal => {
                indices.push(ui[a]);
                values.push(T::apply(op, uv[a], vv[b]));
                a += 1;
                b += 1;
            }
        }
    }
    indices.extend_from_slice(&ui[a..]);
    values.extend_from_slice(&uv[a..]);
    indices.extend_from_slice(&vi[b..]);
    values.extend_from_slice(&vv[b..]);
    SparseVector::from_sorted_parts(u.size(), indices, values)
}

/// `w = u ⊗ v` over the intersection of the two patterns.
pub fn ewise_mult_vector<T: Scalar + OpApply>(
    u: &SparseVector<T>,
    v: &SparseVector<T>,
    op: &BinaryOp<T>,
) -> SparseVector<T> {
    assert_eq!(u.size(), v.size(), "eWiseMult dimension mismatch");
    let mut indices = Vec::new();
    let mut values = Vec::new();
    let (ui, uv) = (u.indices(), u.values());
    let (vi, vv) = (v.indices(), v.values());
    let (mut a, mut b) = (0usize, 0usize);
    while a < ui.len() && b < vi.len() {
        match ui[a].cmp(&vi[b]) {
            std::cmp::Ordering::Less => a += 1,
            std::cmp::Ordering::Greater => b += 1,
            std::cmp::Ordering::Equal => {
                indices.push(ui[a]);
                values.push(T::apply(op, uv[a], vv[b]));
                a += 1;
                b += 1;
            }
        }
    }
    SparseVector::from_sorted_parts(u.size(), indices, values)
}

/// `C = A ⊕ B` over the union of the two patterns (row-by-row merge).
pub fn ewise_add_matrix<T: Scalar + OpApply>(
    a: &SparseMatrix<T>,
    b: &SparseMatrix<T>,
    op: &BinaryOp<T>,
) -> SparseMatrix<T> {
    assert!(a.is_flushed() && b.is_flushed(), "eWiseAdd requires flushed matrices");
    assert_eq!(a.nrows(), b.nrows(), "eWiseAdd nrows mismatch");
    assert_eq!(a.ncols(), b.ncols(), "eWiseAdd ncols mismatch");
    merge_rows(a, b, op, true)
}

/// `C = A ⊗ B` over the intersection of the two patterns.
pub fn ewise_mult_matrix<T: Scalar + OpApply>(
    a: &SparseMatrix<T>,
    b: &SparseMatrix<T>,
    op: &BinaryOp<T>,
) -> SparseMatrix<T> {
    assert!(a.is_flushed() && b.is_flushed(), "eWiseMult requires flushed matrices");
    assert_eq!(a.nrows(), b.nrows(), "eWiseMult nrows mismatch");
    assert_eq!(a.ncols(), b.ncols(), "eWiseMult ncols mismatch");
    merge_rows(a, b, op, false)
}

fn merge_rows<T: Scalar + OpApply>(
    a: &SparseMatrix<T>,
    b: &SparseMatrix<T>,
    op: &BinaryOp<T>,
    union: bool,
) -> SparseMatrix<T> {
    let mut row_ptr = Vec::with_capacity(a.nrows() as usize + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<Index> = Vec::new();
    let mut values: Vec<T> = Vec::new();

    for r in 0..a.nrows() {
        let (ac, av) = a.row(r);
        let (bc, bv) = b.row(r);
        let (mut i, mut j) = (0usize, 0usize);
        while i < ac.len() && j < bc.len() {
            match ac[i].cmp(&bc[j]) {
                std::cmp::Ordering::Less => {
                    if union {
                        col_idx.push(ac[i]);
                        values.push(av[i]);
                    }
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    if union {
                        col_idx.push(bc[j]);
                        values.push(bv[j]);
                    }
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    col_idx.push(ac[i]);
                    values.push(T::apply(op, av[i], bv[j]));
                    i += 1;
                    j += 1;
                }
            }
        }
        if union {
            while i < ac.len() {
                col_idx.push(ac[i]);
                values.push(av[i]);
                i += 1;
            }
            while j < bc.len() {
                col_idx.push(bc[j]);
                values.push(bv[j]);
                j += 1;
            }
        }
        row_ptr.push(col_idx.len());
    }
    SparseMatrix::from_csr_parts(a.nrows(), a.ncols(), row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_add_is_union() {
        let u = SparseVector::from_entries(5, &[(0, 1i64), (2, 2)]).unwrap();
        let v = SparseVector::from_entries(5, &[(2, 10), (4, 4)]).unwrap();
        let w = ewise_add_vector(&u, &v, &BinaryOp::Plus);
        assert_eq!(w.to_entries(), vec![(0, 1), (2, 12), (4, 4)]);
    }

    #[test]
    fn vector_mult_is_intersection() {
        let u = SparseVector::from_entries(5, &[(0, 1i64), (2, 2), (3, 3)]).unwrap();
        let v = SparseVector::from_entries(5, &[(2, 10), (3, 10), (4, 4)]).unwrap();
        let w = ewise_mult_vector(&u, &v, &BinaryOp::Times);
        assert_eq!(w.to_entries(), vec![(2, 20), (3, 30)]);
    }

    #[test]
    fn matrix_add_union_of_relations() {
        // two relation matrices combined into one adjacency matrix
        let knows = SparseMatrix::from_triples(3, 3, &[(0, 1, true)]).unwrap();
        let likes = SparseMatrix::from_triples(3, 3, &[(0, 1, true), (1, 2, true)]).unwrap();
        let adj = ewise_add_matrix(&knows, &likes, &BinaryOp::LOr);
        assert_eq!(adj.nvals(), 2);
        assert_eq!(adj.extract_element(0, 1), Some(true));
        assert_eq!(adj.extract_element(1, 2), Some(true));
    }

    #[test]
    fn matrix_mult_intersection() {
        let a = SparseMatrix::from_triples(2, 2, &[(0, 0, 2i64), (0, 1, 3), (1, 1, 4)]).unwrap();
        let b = SparseMatrix::from_triples(2, 2, &[(0, 1, 5), (1, 1, 6)]).unwrap();
        let c = ewise_mult_matrix(&a, &b, &BinaryOp::Times);
        assert_eq!(c.nvals(), 2);
        assert_eq!(c.extract_element(0, 1), Some(15));
        assert_eq!(c.extract_element(1, 1), Some(24));
    }

    #[test]
    fn add_with_empty_operand_is_copy() {
        let a = SparseMatrix::from_triples(2, 2, &[(1, 0, 7i64)]).unwrap();
        let empty = SparseMatrix::<i64>::new(2, 2);
        assert_eq!(ewise_add_matrix(&a, &empty, &BinaryOp::Plus), a);
        assert_eq!(ewise_add_matrix(&empty, &a, &BinaryOp::Plus), a);
        assert_eq!(ewise_mult_matrix(&a, &empty, &BinaryOp::Times).nvals(), 0);
    }

    #[test]
    fn vector_empty_cases() {
        let u = SparseVector::<i64>::new(3);
        let v = SparseVector::from_entries(3, &[(1, 5)]).unwrap();
        assert_eq!(ewise_add_vector(&u, &v, &BinaryOp::Plus).to_entries(), vec![(1, 5)]);
        assert!(ewise_mult_vector(&u, &v, &BinaryOp::Times).is_empty());
    }
}
