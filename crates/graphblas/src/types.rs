//! Scalar element types storable in GraphBLAS matrices and vectors.
//!
//! The GraphBLAS C API defines a fixed set of built-in types (`GrB_BOOL`,
//! `GrB_INT64`, `GrB_UINT64`, `GrB_FP64`, …) plus user-defined types. In Rust we
//! express the same idea with the [`Scalar`] trait: any `Copy` type that is
//! `Send + Sync` and comparable can be stored. RedisGraph uses `bool` matrices
//! for label/relation membership and `u64` matrices that carry edge identifiers.

use std::fmt::Debug;

/// Trait bound for every element type stored in a [`crate::SparseMatrix`] or
/// [`crate::SparseVector`].
///
/// `zero()` provides the additive identity used when densifying accumulators;
/// it is *not* treated as an implicit stored value — GraphBLAS distinguishes
/// structural zeros (absent entries) from stored zeros.
pub trait Scalar: Copy + Send + Sync + PartialEq + Debug + 'static {
    /// The conventional "zero" for the type, used to initialise dense
    /// accumulators before the first `accum` application.
    fn zero() -> Self;
    /// The conventional "one" for the type (multiplicative identity).
    fn one() -> Self;
}

macro_rules! impl_scalar_num {
    ($($t:ty),*) => {
        $(impl Scalar for $t {
            #[inline]
            fn zero() -> Self { 0 as $t }
            #[inline]
            fn one() -> Self { 1 as $t }
        })*
    };
}

impl_scalar_num!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Scalar for f32 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
}

impl Scalar for bool {
    #[inline]
    fn zero() -> Self {
        false
    }
    #[inline]
    fn one() -> Self {
        true
    }
}

/// Unit type: useful for purely structural matrices where only the sparsity
/// pattern matters (the `ANY_PAIR` semiring over `()` is the cheapest possible
/// traversal semiring).
impl Scalar for () {
    #[inline]
    fn zero() -> Self {}
    #[inline]
    fn one() -> Self {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_one_are_distinct_for_numeric_types() {
        assert_ne!(i64::zero(), i64::one());
        assert_ne!(u64::zero(), u64::one());
        assert_ne!(f64::zero(), f64::one());
        assert_ne!(bool::zero(), bool::one());
    }

    #[test]
    fn unit_type_is_storable() {
        assert_eq!(<() as Scalar>::zero(), ());
        assert_eq!(<() as Scalar>::one(), ());
    }

    #[test]
    fn zero_is_additive_identity_numeric() {
        assert_eq!(5i64 + i64::zero(), 5);
        assert_eq!(5.5f64 + f64::zero(), 5.5);
    }
}
