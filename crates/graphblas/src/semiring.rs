//! Semirings (`GrB_Semiring`): an "add" monoid plus a "multiply" binary
//! operator. Choosing the semiring is how graph algorithms select their
//! traversal semantics:
//!
//! * `LOR_LAND` over `bool` — plain reachability / BFS,
//! * `ANY_PAIR` — structural traversal where only the pattern matters
//!   (RedisGraph's default for `MATCH` traversals),
//! * `PLUS_TIMES` — conventional linear algebra (e.g. counting paths),
//! * `MIN_PLUS` — shortest paths,
//! * `PLUS_PAIR` — neighbourhood counting (k-hop count queries).

use crate::binary_op::{BinaryOp, OpApply};
use crate::monoid::{self, Monoid};
use crate::types::Scalar;

/// A GraphBLAS semiring: `add` monoid ⊕ and `multiply` operator ⊗.
#[derive(Clone, Debug)]
pub struct Semiring<T: Scalar> {
    /// Additive monoid used to combine products landing on the same output
    /// entry.
    pub add: Monoid<T>,
    /// Multiplicative operator applied to each pair of matched entries.
    pub multiply: BinaryOp<T>,
    /// Descriptive name used in plan explanations.
    pub name: &'static str,
}

impl<T: Scalar + OpApply> Semiring<T> {
    /// Build a semiring from a monoid and a multiply operator.
    pub fn new(add: Monoid<T>, multiply: BinaryOp<T>, name: &'static str) -> Self {
        Semiring { add, multiply, name }
    }

    /// Apply the multiply operator.
    #[inline]
    pub fn mult(&self, a: T, b: T) -> T {
        T::apply(&self.multiply, a, b)
    }

    /// Apply the additive monoid.
    #[inline]
    pub fn add(&self, a: T, b: T) -> T {
        self.add.combine(a, b)
    }

    /// The additive identity.
    #[inline]
    pub fn zero(&self) -> T {
        self.add.identity
    }

    /// Conventional arithmetic semiring (⊕ = +, ⊗ = ×).
    pub fn plus_times() -> Self {
        Semiring::new(monoid::plus_monoid(), BinaryOp::Times, "plus_times")
    }

    /// Neighbourhood-count semiring (⊕ = +, ⊗ = pair): `C = A ⊕.⊗ B` counts,
    /// for every output entry, how many intermediate vertices connect the pair.
    pub fn plus_pair() -> Self {
        Semiring::new(monoid::plus_monoid(), BinaryOp::Pair, "plus_pair")
    }

    /// Shortest-path semiring (⊕ = min, ⊗ = +) with the supplied "infinity".
    pub fn min_plus(infinity: T) -> Self {
        Semiring::new(monoid::min_monoid(infinity), BinaryOp::Plus, "min_plus")
    }

    /// Structural traversal semiring (⊕ = any, ⊗ = pair). The cheapest semiring
    /// when only the output pattern matters; used by RedisGraph traversals.
    pub fn any_pair() -> Self {
        Semiring::new(monoid::any_monoid(), BinaryOp::Pair, "any_pair")
    }

    /// Keep-the-source semiring (⊕ = any, ⊗ = first): propagates the left
    /// operand's value along edges (RedisGraph uses this shape to carry edge
    /// identifiers through traversals).
    pub fn any_first() -> Self {
        Semiring::new(monoid::any_monoid(), BinaryOp::First, "any_first")
    }

    /// Keep-the-target semiring (⊕ = any, ⊗ = second).
    pub fn any_second() -> Self {
        Semiring::new(monoid::any_monoid(), BinaryOp::Second, "any_second")
    }
}

impl Semiring<bool> {
    /// Boolean reachability semiring (⊕ = ∨, ⊗ = ∧) — the classic BFS semiring.
    pub fn lor_land() -> Self {
        Semiring::new(monoid::lor_monoid(), BinaryOp::LAnd, "lor_land")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_behaves_like_arithmetic() {
        let s = Semiring::<i64>::plus_times();
        assert_eq!(s.mult(3, 4), 12);
        assert_eq!(s.add(3, 4), 7);
        assert_eq!(s.zero(), 0);
        assert_eq!(s.name, "plus_times");
    }

    #[test]
    fn lor_land_is_boolean_reachability() {
        let s = Semiring::lor_land();
        assert!(s.mult(true, true));
        assert!(!s.mult(true, false));
        assert!(s.add(false, true));
        assert!(!s.zero());
    }

    #[test]
    fn plus_pair_counts_matches() {
        let s = Semiring::<u64>::plus_pair();
        // every matched pair contributes exactly 1 regardless of stored values
        assert_eq!(s.mult(17, 99), 1);
        assert_eq!(s.add(1, 1), 2);
    }

    #[test]
    fn min_plus_shortest_path_algebra() {
        let s = Semiring::<i64>::min_plus(i64::MAX / 2);
        assert_eq!(s.mult(2, 3), 5);
        assert_eq!(s.add(7, 5), 5);
        assert_eq!(s.zero(), i64::MAX / 2);
    }

    #[test]
    fn any_first_propagates_left_value() {
        let s = Semiring::<u64>::any_first();
        assert_eq!(s.mult(42, 7), 42);
    }
}
