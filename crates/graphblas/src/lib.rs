//! # graphblas
//!
//! A pure-Rust reimplementation of the subset of the [GraphBLAS C API] /
//! SuiteSparse:GraphBLAS that RedisGraph relies on, plus the general typed
//! machinery (operators, monoids, semirings, masks, descriptors) needed to make
//! it a usable standalone sparse linear-algebra library.
//!
//! The central idea — exploited by RedisGraph and described in the paper this
//! repository reproduces — is the duality between graphs and sparse matrices:
//! a graph traversal step is a (masked) sparse matrix–vector or matrix–matrix
//! multiplication over a suitable semiring.
//!
//! ## Quick tour
//!
//! ```
//! use graphblas::prelude::*;
//!
//! // Build a 4x4 boolean adjacency matrix of a directed path 0→1→2→3.
//! let mut a = SparseMatrix::<bool>::new(4, 4);
//! for i in 0..3 {
//!     a.set_element(i, i + 1, true);
//! }
//! a.wait(); // flush pending tuples (SuiteSparse "non-blocking mode")
//!
//! // One BFS step from vertex 0: frontier × adjacency over the LOR-LAND semiring.
//! let mut frontier = SparseVector::<bool>::new(4);
//! frontier.set_element(0, true);
//! let next = vxm(&frontier, &a, &Semiring::lor_land(), None, &Descriptor::default());
//! assert_eq!(next.extract_element(1), Some(true));
//! assert_eq!(next.nvals(), 1);
//! ```
//!
//! [GraphBLAS C API]: https://graphblas.org

pub mod apply;
pub mod binary_op;
pub mod context;
pub mod delta;
pub mod descriptor;
pub mod error;
pub mod ewise;
pub mod extract;
pub mod frontier;
pub mod kron;
pub mod mask;
pub mod matrix;
pub mod monoid;
pub mod mxm;
pub mod mxv;
pub mod reduce;
pub mod select;
pub mod semiring;
pub mod transpose;
pub mod types;
pub mod unary_op;
pub mod vector;

pub use binary_op::BinaryOp;
pub use context::Context;
pub use delta::{DeltaMatrix, DEFAULT_FLUSH_THRESHOLD};
pub use descriptor::Descriptor;
pub use error::{GrbError, GrbResult};
pub use frontier::{frontier_matrix, probe_row};
pub use mask::{MatrixMask, VectorMask};
pub use matrix::SparseMatrix;
pub use monoid::Monoid;
pub use mxm::mxm;
pub use mxv::{mxv, vxm};
pub use semiring::Semiring;
pub use types::Scalar;
pub use unary_op::UnaryOp;
pub use vector::SparseVector;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::apply::{apply_matrix, apply_vector};
    pub use crate::binary_op::BinaryOp;
    pub use crate::context::Context;
    pub use crate::delta::{DeltaMatrix, DEFAULT_FLUSH_THRESHOLD};
    pub use crate::descriptor::Descriptor;
    pub use crate::error::{GrbError, GrbResult};
    pub use crate::ewise::{
        ewise_add_matrix, ewise_add_vector, ewise_mult_matrix, ewise_mult_vector,
    };
    pub use crate::extract::{extract_col, extract_row, extract_submatrix};
    pub use crate::frontier::{frontier_matrix, probe_row, structure};
    pub use crate::kron::kronecker;
    pub use crate::mask::{MatrixMask, VectorMask};
    pub use crate::matrix::SparseMatrix;
    pub use crate::monoid::Monoid;
    pub use crate::mxm::mxm;
    pub use crate::mxv::{mxv, vxm};
    pub use crate::reduce::{reduce_matrix_to_scalar, reduce_to_vector, reduce_vector_to_scalar};
    pub use crate::select::{select_matrix, SelectOp};
    pub use crate::semiring::Semiring;
    pub use crate::transpose::transpose;
    pub use crate::types::Scalar;
    pub use crate::unary_op::UnaryOp;
    pub use crate::vector::SparseVector;
}

/// Index type used throughout the library (matches `GrB_Index`).
pub type Index = u64;
