//! Matrix–vector (`GrB_mxv`) and vector–matrix (`GrB_vxm`) multiplication.
//!
//! `vxm` is the workhorse of level-synchronous BFS and of RedisGraph's
//! traversal operator when the current binding set is small: the frontier
//! vector is pushed through the adjacency matrix one semiring-multiply per
//! stored edge, with an optional (possibly complemented) mask filtering the
//! output — e.g. "…and not already visited".

use crate::binary_op::OpApply;
use crate::descriptor::Descriptor;
use crate::mask::VectorMask;
use crate::matrix::SparseMatrix;
use crate::semiring::Semiring;
use crate::types::Scalar;
use crate::vector::SparseVector;
use crate::Index;

/// Sparse accumulator (SPA) used by the push-style kernels: a dense flag/value
/// pair plus the list of touched positions, reused across rows.
struct Spa<T> {
    occupied: Vec<bool>,
    values: Vec<T>,
    touched: Vec<Index>,
}

impl<T: Scalar> Spa<T> {
    fn new(size: usize) -> Self {
        Spa { occupied: vec![false; size], values: vec![T::zero(); size], touched: Vec::new() }
    }

    #[inline]
    fn scatter<F: Fn(T, T) -> T>(&mut self, j: Index, v: T, combine: F) {
        let idx = j as usize;
        if self.occupied[idx] {
            self.values[idx] = combine(self.values[idx], v);
        } else {
            self.occupied[idx] = true;
            self.values[idx] = v;
            self.touched.push(j);
        }
    }

    /// Drain into a sorted sparse vector, applying an optional mask filter.
    fn gather(
        &mut self,
        size: Index,
        mask: Option<&VectorMask<'_>>,
        desc: &Descriptor,
    ) -> SparseVector<T> {
        self.touched.sort_unstable();
        let mut indices = Vec::with_capacity(self.touched.len());
        let mut values = Vec::with_capacity(self.touched.len());
        for &j in &self.touched {
            let keep = mask.map(|m| m.allows(j, desc)).unwrap_or(true);
            if keep {
                indices.push(j);
                values.push(self.values[j as usize]);
            }
            self.occupied[j as usize] = false;
        }
        self.touched.clear();
        SparseVector::from_sorted_parts(size, indices, values)
    }
}

/// `w = u ⊕.⊗ A` — multiply a row vector by a matrix (push traversal).
///
/// With the `lor_land` or `any_pair` semiring over an adjacency matrix this is
/// exactly "the set of vertices reachable in one hop from the set `u`".
///
/// # Panics
/// Panics if `u.size() != a.nrows()`. The matrix must be flushed
/// ([`SparseMatrix::wait`]).
pub fn vxm<T: Scalar + OpApply>(
    u: &SparseVector<T>,
    a: &SparseMatrix<T>,
    semiring: &Semiring<T>,
    mask: Option<&VectorMask<'_>>,
    desc: &Descriptor,
) -> SparseVector<T> {
    assert!(a.is_flushed(), "vxm requires a flushed matrix");
    if desc.transpose_b || desc.transpose_a {
        // vxm with a transposed matrix is mxv against the untransposed one.
        return mxv_internal(a, u, semiring, mask, desc, true);
    }
    assert_eq!(u.size(), a.nrows(), "vxm dimension mismatch: u.size != a.nrows");
    let mut spa = Spa::new(a.ncols() as usize);
    for (i, uv) in u.iter() {
        let (cols, vals) = a.row(i);
        for (&j, &av) in cols.iter().zip(vals.iter()) {
            let prod = semiring.mult(uv, av);
            spa.scatter(j, prod, |x, y| semiring.add(x, y));
        }
    }
    spa.gather(a.ncols(), mask, desc)
}

/// `w = A ⊕.⊗ u` — multiply a matrix by a column vector (pull traversal; with
/// an adjacency matrix this follows edges *backwards*).
///
/// # Panics
/// Panics if `u.size() != a.ncols()`. The matrix must be flushed.
pub fn mxv<T: Scalar + OpApply>(
    a: &SparseMatrix<T>,
    u: &SparseVector<T>,
    semiring: &Semiring<T>,
    mask: Option<&VectorMask<'_>>,
    desc: &Descriptor,
) -> SparseVector<T> {
    assert!(a.is_flushed(), "mxv requires a flushed matrix");
    if desc.transpose_a || desc.transpose_b {
        // mxv with Aᵀ is vxm against A.
        let plain = Descriptor { transpose_a: false, transpose_b: false, ..*desc };
        return vxm(u, a, semiring, mask, &plain);
    }
    mxv_internal(a, u, semiring, mask, desc, false)
}

/// Row-wise dot-product kernel shared by `mxv` and transposed `vxm`.
fn mxv_internal<T: Scalar + OpApply>(
    a: &SparseMatrix<T>,
    u: &SparseVector<T>,
    semiring: &Semiring<T>,
    mask: Option<&VectorMask<'_>>,
    desc: &Descriptor,
    u_on_left: bool,
) -> SparseVector<T> {
    assert_eq!(u.size(), a.ncols(), "mxv dimension mismatch: u.size != a.ncols");
    // Densify u once so each row does O(row_nnz) lookups.
    let mut dense_flag = vec![false; a.ncols() as usize];
    let mut dense_val = vec![T::zero(); a.ncols() as usize];
    for (j, v) in u.iter() {
        dense_flag[j as usize] = true;
        dense_val[j as usize] = v;
    }
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for i in 0..a.nrows() {
        if let Some(m) = mask {
            if !m.allows(i, desc) {
                continue;
            }
        }
        let (cols, vals) = a.row(i);
        let mut acc = semiring.zero();
        let mut any = false;
        for (&j, &av) in cols.iter().zip(vals.iter()) {
            if dense_flag[j as usize] {
                let prod = if u_on_left {
                    semiring.mult(dense_val[j as usize], av)
                } else {
                    semiring.mult(av, dense_val[j as usize])
                };
                acc = if any { semiring.add(acc, prod) } else { prod };
                any = true;
                if semiring.add.is_terminal(acc) {
                    break;
                }
            }
        }
        if any {
            indices.push(i);
            values.push(acc);
        }
    }
    SparseVector::from_sorted_parts(a.nrows(), indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::Semiring;

    /// Path graph 0→1→2→3 plus a branch 1→3.
    fn adj() -> SparseMatrix<bool> {
        SparseMatrix::from_triples(4, 4, &[(0, 1, true), (1, 2, true), (2, 3, true), (1, 3, true)])
            .unwrap()
    }

    #[test]
    fn vxm_single_hop() {
        let a = adj();
        let mut f = SparseVector::new(4);
        f.set_element(0, true);
        let next = vxm(&f, &a, &Semiring::lor_land(), None, &Descriptor::default());
        assert_eq!(next.to_entries(), vec![(1, true)]);
    }

    #[test]
    fn vxm_two_sources_union() {
        let a = adj();
        let f = SparseVector::from_entries(4, &[(0, true), (1, true)]).unwrap();
        let next = vxm(&f, &a, &Semiring::lor_land(), None, &Descriptor::default());
        assert_eq!(next.indices(), &[1, 2, 3]);
    }

    #[test]
    fn vxm_with_complement_mask_excludes_visited() {
        let a = adj();
        let f = SparseVector::from_entries(4, &[(1, true)]).unwrap();
        let visited = SparseVector::from_entries(4, &[(2, true)]).unwrap();
        let mask = VectorMask::new(&visited);
        let next = vxm(
            &f,
            &a,
            &Semiring::lor_land(),
            Some(&mask),
            &Descriptor::new().with_mask_complement(),
        );
        // 1 reaches {2,3}; 2 is masked out as visited.
        assert_eq!(next.indices(), &[3]);
    }

    #[test]
    fn mxv_pulls_backwards() {
        let a = adj();
        let f = SparseVector::from_entries(4, &[(3, true)]).unwrap();
        let prev = mxv(&a, &f, &Semiring::lor_land(), None, &Descriptor::default());
        // rows whose edges reach 3: vertices 1 and 2
        assert_eq!(prev.indices(), &[1, 2]);
    }

    #[test]
    fn vxm_transposed_equals_mxv() {
        let a = adj();
        let f = SparseVector::from_entries(4, &[(3, true)]).unwrap();
        let via_desc =
            vxm(&f, &a, &Semiring::lor_land(), None, &Descriptor::new().with_transpose_b());
        let via_mxv = mxv(&a, &f, &Semiring::lor_land(), None, &Descriptor::default());
        assert_eq!(via_desc, via_mxv);
    }

    #[test]
    fn plus_pair_counts_incoming_paths() {
        // two vertices both pointing at 2
        let a = SparseMatrix::from_triples(3, 3, &[(0, 2, 1u64), (1, 2, 1u64)]).unwrap();
        let f = SparseVector::from_entries(3, &[(0, 1u64), (1, 1u64)]).unwrap();
        let r = vxm(&f, &a, &Semiring::plus_pair(), None, &Descriptor::default());
        assert_eq!(r.extract_element(2), Some(2));
    }

    #[test]
    fn plus_times_matches_dense_arithmetic() {
        let a = SparseMatrix::from_triples(2, 3, &[(0, 0, 2.0), (0, 2, 3.0), (1, 1, 4.0)]).unwrap();
        let u = SparseVector::from_entries(2, &[(0, 10.0), (1, 100.0)]).unwrap();
        let w = vxm(&u, &a, &Semiring::plus_times(), None, &Descriptor::default());
        assert_eq!(w.extract_element(0), Some(20.0));
        assert_eq!(w.extract_element(1), Some(400.0));
        assert_eq!(w.extract_element(2), Some(30.0));
    }

    #[test]
    fn empty_frontier_gives_empty_result() {
        let a = adj();
        let f = SparseVector::<bool>::new(4);
        let next = vxm(&f, &a, &Semiring::lor_land(), None, &Descriptor::default());
        assert!(next.is_empty());
        let next = mxv(&a, &f, &Semiring::lor_land(), None, &Descriptor::default());
        assert!(next.is_empty());
    }
}
