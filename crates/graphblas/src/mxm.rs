//! Matrix–matrix multiplication (`GrB_mxm`) — masked, row-wise Gustavson
//! SpGEMM, optionally parallelised over row blocks with scoped threads.
//!
//! RedisGraph compiles a multi-hop `MATCH` pattern into a chain of `mxm`
//! calls over the per-relation adjacency matrices; the mask is used to
//! restrict the result to labelled nodes or to exclude already-bound ones.

use crate::binary_op::OpApply;
use crate::context::partition_ranges;
use crate::descriptor::Descriptor;
use crate::mask::MatrixMask;
use crate::matrix::SparseMatrix;
use crate::semiring::Semiring;
use crate::transpose::transpose;
use crate::types::Scalar;
use crate::Index;

/// One thread's slice of the output in CSR form: `(row_ptr, col_idx, values)`
/// with a local `row_ptr` starting at 0.
type CsrFragment<T> = (Vec<usize>, Vec<Index>, Vec<T>);

/// Minimum estimated multiply–add operations each worker thread must have
/// before the row-block split spawns scoped threads at all. Spawning an OS
/// thread costs tens of microseconds; a frontier-sized product (a few
/// thousand flops) finishes serially in less than that, so parallelising it
/// only adds overhead — on BENCH_traverse the un-thresholded split made
/// `threads=4` *slower* than `threads=1`. The requested thread count is
/// clamped so every spawned worker clears this floor.
pub const MXM_MIN_WORK_PER_THREAD: usize = 16_384;

/// Estimated flops of `A ⊕.⊗ B`: for every stored entry `(i,k)` of `A` the
/// inner loop touches `nnz(B(k,:))` pairs. Exact (not a bound) for the
/// Gustavson traversal below, and O(nnz(A)) to compute.
fn mxm_flops<T: Scalar, U: Scalar>(a: &SparseMatrix<T>, b: &SparseMatrix<U>) -> usize {
    a.col_indices().iter().map(|&k| b.row_degree(k)).sum()
}

/// `C = A ⊕.⊗ B` with an optional mask on the output.
///
/// Dimensions: `A` is `m×k`, `B` is `k×n`, the result is `m×n`. The descriptor
/// may request transposition of either input, mask complement / structural
/// interpretation, and a per-call thread count (`Descriptor::with_nthreads`);
/// the default thread count comes from [`crate::Context`], which RedisGraph
/// sets to 1 so a single query never occupies more than one core.
///
/// # Panics
/// Panics on dimension mismatch or if either input has pending updates.
pub fn mxm<T: Scalar + OpApply>(
    a: &SparseMatrix<T>,
    b: &SparseMatrix<T>,
    semiring: &Semiring<T>,
    mask: Option<&MatrixMask<'_>>,
    desc: &Descriptor,
) -> SparseMatrix<T> {
    assert!(a.is_flushed() && b.is_flushed(), "mxm requires flushed matrices");

    // Apply descriptor-requested transposes up front; correctness first, the
    // transposes are linear in nnz.
    let at;
    let bt;
    let a = if desc.transpose_a {
        at = transpose(a);
        &at
    } else {
        a
    };
    let b = if desc.transpose_b {
        bt = transpose(b);
        &bt
    } else {
        b
    };

    assert_eq!(a.ncols(), b.nrows(), "mxm dimension mismatch: a.ncols != b.nrows");
    let m = a.nrows();
    let n = b.ncols();
    // Thread budget: never hand a worker less than MXM_MIN_WORK_PER_THREAD
    // estimated flops, and never spawn more workers than the machine has
    // hardware threads — the kernel is CPU-bound, so oversubscribing cores
    // only adds scheduling overhead (on a 1-core host `threads=4` measured
    // *slower* than `threads=1` before this clamp). Small frontier products
    // collapse to the serial path (no scope, no spawns); large products still
    // fan out to the granted width.
    let requested =
        desc.effective_nthreads().min(m.max(1) as usize).min(crate::Context::hardware_threads());
    let nthreads = if requested > 1 {
        requested.min((mxm_flops(a, b) / MXM_MIN_WORK_PER_THREAD).max(1))
    } else {
        requested
    };

    if nthreads <= 1 {
        let (row_ptr, col_idx, values) = mxm_rows(a, b, semiring, mask, desc, 0..m as usize);
        return SparseMatrix::from_csr_parts(m, n, row_ptr, col_idx, values);
    }

    // Parallel over contiguous row blocks; each block produces an independent
    // CSR fragment which is stitched afterwards.
    let ranges = partition_ranges(m as usize, nthreads);
    let mut results: Vec<Option<CsrFragment<T>>> = Vec::new();
    results.resize_with(ranges.len(), || None);

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for range in ranges.iter().cloned() {
            let handle = scope.spawn(move |_| mxm_rows(a, b, semiring, mask, desc, range));
            handles.push(handle);
        }
        for (slot, handle) in results.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("mxm worker panicked"));
        }
    })
    .expect("mxm thread scope failed");

    // Stitch fragments.
    let mut row_ptr = Vec::with_capacity(m as usize + 1);
    row_ptr.push(0usize);
    let total_nnz: usize =
        results.iter().map(|r| r.as_ref().map(|(_, c, _)| c.len()).unwrap_or(0)).sum();
    let mut col_idx = Vec::with_capacity(total_nnz);
    let mut values = Vec::with_capacity(total_nnz);
    for frag in results.into_iter().flatten() {
        let (frag_ptr, frag_cols, frag_vals) = frag;
        let base = col_idx.len();
        // frag_ptr is local (starts at 0); skip its first element.
        for &p in &frag_ptr[1..] {
            row_ptr.push(base + p);
        }
        col_idx.extend(frag_cols);
        values.extend(frag_vals);
    }
    SparseMatrix::from_csr_parts(m, n, row_ptr, col_idx, values)
}

/// Compute a contiguous block of output rows with a per-thread SPA.
fn mxm_rows<T: Scalar + OpApply>(
    a: &SparseMatrix<T>,
    b: &SparseMatrix<T>,
    semiring: &Semiring<T>,
    mask: Option<&MatrixMask<'_>>,
    desc: &Descriptor,
    rows: std::ops::Range<usize>,
) -> CsrFragment<T> {
    let n = b.ncols() as usize;
    let mut occupied = vec![false; n];
    let mut acc = vec![T::zero(); n];
    let mut touched: Vec<Index> = Vec::new();

    let mut row_ptr = Vec::with_capacity(rows.len() + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();

    for i in rows {
        let i = i as Index;
        let (a_cols, a_vals) = a.row(i);
        for (&k, &av) in a_cols.iter().zip(a_vals.iter()) {
            let (b_cols, b_vals) = b.row(k);
            for (&j, &bv) in b_cols.iter().zip(b_vals.iter()) {
                let prod = semiring.mult(av, bv);
                let idx = j as usize;
                if occupied[idx] {
                    acc[idx] = semiring.add(acc[idx], prod);
                } else {
                    occupied[idx] = true;
                    acc[idx] = prod;
                    touched.push(j);
                }
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            let keep = mask.map(|mk| mk.allows(i, j, desc)).unwrap_or(true);
            if keep {
                col_idx.push(j);
                values.push(acc[j as usize]);
            }
            occupied[j as usize] = false;
        }
        touched.clear();
        row_ptr.push(col_idx.len());
    }
    (row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::Semiring;

    fn dense_mult(a: &[[f64; 3]; 3], b: &[[f64; 3]; 3]) -> [[f64; 3]; 3] {
        let mut c = [[0.0; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    c[i][j] += a[i][k] * b[k][j];
                }
            }
        }
        c
    }

    fn to_sparse(d: &[[f64; 3]; 3]) -> SparseMatrix<f64> {
        let mut t = Vec::new();
        for (i, row) in d.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    t.push((i as Index, j as Index, v));
                }
            }
        }
        SparseMatrix::from_triples(3, 3, &t).unwrap()
    }

    #[test]
    fn plus_times_matches_dense_reference() {
        let da = [[1.0, 0.0, 2.0], [0.0, 3.0, 0.0], [4.0, 0.0, 5.0]];
        let db = [[0.0, 1.0, 0.0], [2.0, 0.0, 0.0], [0.0, 0.0, 3.0]];
        let dc = dense_mult(&da, &db);
        let c = mxm(
            &to_sparse(&da),
            &to_sparse(&db),
            &Semiring::plus_times(),
            None,
            &Descriptor::default(),
        );
        for i in 0..3u64 {
            for j in 0..3u64 {
                let expect = dc[i as usize][j as usize];
                let got = c.extract_element(i, j).unwrap_or(0.0);
                assert_eq!(got, expect, "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn boolean_mxm_is_two_hop_reachability() {
        // 0→1→2, 1→3
        let a = SparseMatrix::from_triples(
            4,
            4,
            &[(0, 1, true), (1, 2, true), (1, 3, true), (2, 3, true)],
        )
        .unwrap();
        let c = mxm(&a, &a, &Semiring::lor_land(), None, &Descriptor::default());
        // 2-hop: 0→{2,3}, 1→3
        assert_eq!(c.extract_element(0, 2), Some(true));
        assert_eq!(c.extract_element(0, 3), Some(true));
        assert_eq!(c.extract_element(1, 3), Some(true));
        assert_eq!(c.extract_element(0, 1), None);
        assert_eq!(c.nvals(), 3);
    }

    #[test]
    fn mask_restricts_output() {
        let a = SparseMatrix::from_triples(2, 2, &[(0, 0, 1i64), (0, 1, 1), (1, 0, 1), (1, 1, 1)])
            .unwrap();
        let mask_m = SparseMatrix::from_triples(2, 2, &[(0, 0, true), (1, 1, true)]).unwrap();
        let mask = MatrixMask::new(&mask_m);
        let c = mxm(&a, &a, &Semiring::plus_times(), Some(&mask), &Descriptor::default());
        assert_eq!(c.nvals(), 2);
        assert_eq!(c.extract_element(0, 0), Some(2));
        assert_eq!(c.extract_element(0, 1), None);
    }

    #[test]
    fn complemented_mask_excludes_existing_edges() {
        // "two-hop neighbours that are not one-hop neighbours"
        let a =
            SparseMatrix::from_triples(3, 3, &[(0, 1, true), (1, 2, true), (0, 2, true)]).unwrap();
        let mask = MatrixMask::new(&a);
        let c = mxm(
            &a,
            &a,
            &Semiring::lor_land(),
            Some(&mask),
            &Descriptor::new().with_mask_complement().with_mask_structure(),
        );
        // two-hop 0→2 exists but is masked out because 0→2 is already an edge
        assert_eq!(c.nvals(), 0);
    }

    #[test]
    fn transpose_descriptor_matches_explicit_transpose() {
        let a = SparseMatrix::from_triples(3, 3, &[(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)]).unwrap();
        let b = SparseMatrix::from_triples(3, 3, &[(0, 2, 1.0), (2, 1, 5.0)]).unwrap();
        let via_desc =
            mxm(&a, &b, &Semiring::plus_times(), None, &Descriptor::new().with_transpose_a());
        let via_explicit =
            mxm(&transpose(&a), &b, &Semiring::plus_times(), None, &Descriptor::default());
        assert_eq!(via_desc, via_explicit);
    }

    #[test]
    fn parallel_matches_serial() {
        // random-ish 64x64 band matrix
        let mut triples = Vec::new();
        for i in 0..64u64 {
            for d in 1..=5u64 {
                triples.push((i, (i + d * 7) % 64, ((i + d) % 11 + 1) as i64));
            }
        }
        let a = SparseMatrix::from_triples(64, 64, &triples).unwrap();
        let serial =
            mxm(&a, &a, &Semiring::plus_times(), None, &Descriptor::new().with_nthreads(1));
        let parallel =
            mxm(&a, &a, &Semiring::plus_times(), None, &Descriptor::new().with_nthreads(4));
        assert_eq!(serial, parallel);
        assert_eq!(serial.nvals(), parallel.nvals());
    }

    #[test]
    fn flops_estimate_counts_inner_loop_pairs() {
        // A has entries in columns {1, 2}; B's row 1 has 2 entries, row 2 has 1.
        let a = SparseMatrix::from_triples(2, 3, &[(0, 1, 1i64), (1, 2, 1)]).unwrap();
        let b = SparseMatrix::from_triples(3, 3, &[(1, 0, 1i64), (1, 2, 1), (2, 1, 1)]).unwrap();
        assert_eq!(mxm_flops(&a, &b), 3);
        // A frontier-sized product stays under one thread's work quantum, so
        // a 4-thread request must not fan out (the thread-budget regression:
        // spawning workers for a few thousand flops made threads=4 slower
        // than serial on BENCH_traverse).
        assert!(mxm_flops(&a, &b) / MXM_MIN_WORK_PER_THREAD == 0);
    }

    #[test]
    fn rectangular_dimensions() {
        let a = SparseMatrix::from_triples(2, 3, &[(0, 0, 1.0), (1, 2, 2.0)]).unwrap();
        let b = SparseMatrix::from_triples(3, 4, &[(0, 3, 5.0), (2, 1, 7.0)]).unwrap();
        let c = mxm(&a, &b, &Semiring::plus_times(), None, &Descriptor::default());
        assert_eq!(c.nrows(), 2);
        assert_eq!(c.ncols(), 4);
        assert_eq!(c.extract_element(0, 3), Some(5.0));
        assert_eq!(c.extract_element(1, 1), Some(14.0));
        assert_eq!(c.nvals(), 2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = SparseMatrix::<f64>::new(2, 3);
        let b = SparseMatrix::<f64>::new(2, 3);
        let _ = mxm(&a, &b, &Semiring::plus_times(), None, &Descriptor::default());
    }
}
