//! Masks: write-control objects for GraphBLAS operations.
//!
//! A mask restricts which output positions an operation may write. RedisGraph
//! uses masks heavily — e.g. "all nodes with label L reachable in one hop but
//! not already visited" is a complemented-mask `vxm`.

use crate::descriptor::Descriptor;
use crate::matrix::SparseMatrix;
use crate::vector::SparseVector;
use crate::Index;

/// A mask over vector outputs: positions where the mask holds `true` (or, with
/// a structural descriptor, any stored entry) are writable.
#[derive(Debug, Clone, Copy)]
pub struct VectorMask<'a> {
    mask: &'a SparseVector<bool>,
}

impl<'a> VectorMask<'a> {
    /// Wrap a boolean vector as a mask.
    pub fn new(mask: &'a SparseVector<bool>) -> Self {
        VectorMask { mask }
    }

    /// Whether writing to position `i` is allowed under descriptor `desc`.
    #[inline]
    pub fn allows(&self, i: Index, desc: &Descriptor) -> bool {
        let present = if desc.mask_structure {
            self.mask.contains(i)
        } else {
            self.mask.extract_element(i).unwrap_or(false)
        };
        present != desc.mask_complement
    }

    /// The underlying mask vector.
    pub fn inner(&self) -> &SparseVector<bool> {
        self.mask
    }
}

/// A mask over matrix outputs.
#[derive(Debug, Clone, Copy)]
pub struct MatrixMask<'a> {
    mask: &'a SparseMatrix<bool>,
}

impl<'a> MatrixMask<'a> {
    /// Wrap a boolean matrix as a mask.
    pub fn new(mask: &'a SparseMatrix<bool>) -> Self {
        MatrixMask { mask }
    }

    /// Whether writing to position `(i, j)` is allowed under descriptor `desc`.
    #[inline]
    pub fn allows(&self, i: Index, j: Index, desc: &Descriptor) -> bool {
        let present = if desc.mask_structure {
            self.mask.contains(i, j)
        } else {
            self.mask.extract_element(i, j).unwrap_or(false)
        };
        present != desc.mask_complement
    }

    /// The underlying mask matrix.
    pub fn inner(&self) -> &SparseMatrix<bool> {
        self.mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_mask_value_semantics() {
        let m = SparseVector::from_entries(4, &[(0, true), (1, false)]).unwrap();
        let mask = VectorMask::new(&m);
        let d = Descriptor::default();
        assert!(mask.allows(0, &d));
        assert!(!mask.allows(1, &d)); // stored false does not allow
        assert!(!mask.allows(2, &d)); // absent does not allow
    }

    #[test]
    fn vector_mask_structural_semantics() {
        let m = SparseVector::from_entries(4, &[(1, false)]).unwrap();
        let mask = VectorMask::new(&m);
        let d = Descriptor::new().with_mask_structure();
        assert!(mask.allows(1, &d)); // stored entry counts, value ignored
        assert!(!mask.allows(2, &d));
    }

    #[test]
    fn vector_mask_complement() {
        let m = SparseVector::from_entries(4, &[(0, true)]).unwrap();
        let mask = VectorMask::new(&m);
        let d = Descriptor::new().with_mask_complement();
        assert!(!mask.allows(0, &d));
        assert!(mask.allows(3, &d));
    }

    #[test]
    fn matrix_mask_all_modes() {
        let m = SparseMatrix::from_triples(2, 2, &[(0, 0, true), (1, 1, false)]).unwrap();
        let mask = MatrixMask::new(&m);
        let plain = Descriptor::default();
        let comp = Descriptor::new().with_mask_complement();
        let stru = Descriptor::new().with_mask_structure();
        assert!(mask.allows(0, 0, &plain));
        assert!(!mask.allows(1, 1, &plain));
        assert!(mask.allows(1, 1, &stru));
        assert!(!mask.allows(0, 0, &comp));
        assert!(mask.allows(0, 1, &comp));
    }
}
