//! Delta matrices: RedisGraph's production answer to write amplification.
//!
//! A [`DeltaMatrix`] wraps a fully-flushed **main** CSR matrix together with
//! two small pending buffers:
//!
//! * **delta-plus** (`DP`) — entries inserted (or overwritten) since the last
//!   flush, keyed by coordinate;
//! * **delta-minus** (`DM`) — coordinates of main-matrix entries deleted since
//!   the last flush.
//!
//! Every read accessor presents the *merged* view `(M \ DM) ∪ DP` (with `DP`
//! taking precedence over `M` on overlap), so readers never observe a torn
//! state, while each write is an O(log pending) map update instead of a CSR
//! rebuild. [`DeltaMatrix::flush`] folds both buffers into the main matrix in
//! one rebuild; a configurable pending-count threshold triggers that flush
//! automatically so writes stay O(1) amortized under sustained load.
//!
//! Invariants (checked by [`DeltaMatrix::check_invariants`]):
//!
//! * the main matrix is always flushed (its own pending log is empty);
//! * `DM` only names coordinates that exist in the main matrix;
//! * `DP` and `DM` are disjoint — a delete of a pending insert simply drops
//!   the `DP` entry, and an insert over a pending delete drops the `DM` entry.
//!
//! ## Epochs
//!
//! The main matrix is held behind an [`Arc`]: each flushed CSR is an immutable
//! **epoch**. [`DeltaMatrix::main_shared`] hands out a reference-counted pin
//! on the current epoch; every mutation of the main matrix (flush, shrink,
//! clear) goes through [`Arc::make_mut`], so a pinned epoch is never modified
//! in place — the writer publishes the next epoch into a fresh allocation and
//! the old one is reclaimed when its last pin drops. When nothing pins the
//! epoch, `make_mut` mutates in place and flushing costs exactly what it did
//! before epochs existed. Cloning a `DeltaMatrix` is therefore cheap — an
//! `Arc` bump plus the pending buffers, which are bounded by the flush
//! threshold — and the clone is a consistent snapshot.

use crate::error::{check_index, GrbError, GrbResult};
use crate::matrix::SparseMatrix;
use crate::types::Scalar;
use crate::Index;
use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Default number of pending changes that triggers an automatic flush
/// (RedisGraph ships `DELTA_MAX_PENDING_CHANGES = 10000`).
pub const DEFAULT_FLUSH_THRESHOLD: usize = 10_000;

/// A sparse matrix with buffered mutations: main CSR + pending additions +
/// pending deletions, flushed in bulk.
#[derive(Clone, Debug)]
pub struct DeltaMatrix<T: Scalar> {
    /// The current epoch: an immutable, shareable, fully-flushed CSR.
    main: Arc<SparseMatrix<T>>,
    delta_plus: BTreeMap<(Index, Index), T>,
    delta_minus: BTreeSet<(Index, Index)>,
    /// Exact number of entries in the merged view, maintained incrementally.
    nvals: usize,
    flush_threshold: usize,
    /// Publication counter: bumped whenever the main matrix's *contents*
    /// change (flush, shrinking resize, clear).
    epoch: u64,
    /// Lifetime count of CSR rebuilds caused by folding pending buffers
    /// (the observability counter behind `GRAPH.INFO`'s `delta_flushes`).
    flush_count: u64,
}

impl<T: Scalar> PartialEq for DeltaMatrix<T> {
    fn eq(&self, other: &Self) -> bool {
        self.nrows() == other.nrows()
            && self.ncols() == other.ncols()
            && self.to_triples() == other.to_triples()
    }
}

impl<T: Scalar> DeltaMatrix<T> {
    /// Create an empty `nrows × ncols` delta matrix with the default flush
    /// threshold.
    pub fn new(nrows: Index, ncols: Index) -> Self {
        Self::from_matrix(SparseMatrix::new(nrows, ncols))
    }

    /// Wrap an existing matrix (flushed first) as the main matrix. This is the
    /// bulk-load path: construct the CSR directly from triples, then hand it
    /// over with empty pending buffers.
    pub fn from_matrix(mut main: SparseMatrix<T>) -> Self {
        main.wait();
        let nvals = main.nvals();
        DeltaMatrix {
            main: Arc::new(main),
            delta_plus: BTreeMap::new(),
            delta_minus: BTreeSet::new(),
            nvals,
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
            epoch: 0,
            flush_count: 0,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.main.nrows()
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.main.ncols()
    }

    /// Number of entries in the merged view (exact, O(1)).
    pub fn nvals(&self) -> usize {
        self.nvals
    }

    /// Number of buffered changes awaiting a flush.
    pub fn pending_count(&self) -> usize {
        self.delta_plus.len() + self.delta_minus.len()
    }

    /// True when both pending buffers are empty, i.e. the main matrix *is*
    /// the merged view.
    pub fn is_flushed(&self) -> bool {
        self.delta_plus.is_empty() && self.delta_minus.is_empty()
    }

    /// Number of buffer folds this matrix has performed over its lifetime
    /// (a clone inherits its source's count and diverges from there).
    pub fn flush_count(&self) -> u64 {
        self.flush_count
    }

    /// The pending-count threshold that triggers an automatic flush.
    pub fn flush_threshold(&self) -> usize {
        self.flush_threshold
    }

    /// Set the automatic-flush threshold. `1` makes every mutation flush
    /// immediately (the eager behaviour); large values batch more.
    /// A threshold of `0` is treated as `1`.
    pub fn set_flush_threshold(&mut self, threshold: usize) {
        self.flush_threshold = threshold.max(1);
        self.maybe_flush();
    }

    // ----------------------------------------------------------- mutation

    /// Insert or overwrite a single entry. O(log pending); never rebuilds the
    /// CSR (until the flush threshold trips).
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds; see
    /// [`DeltaMatrix::try_set_element`].
    pub fn set_element(&mut self, row: Index, col: Index, value: T) {
        self.try_set_element(row, col, value).expect("index out of bounds");
    }

    /// Fallible element assignment.
    pub fn try_set_element(&mut self, row: Index, col: Index, value: T) -> GrbResult<()> {
        check_index(row, self.nrows())?;
        check_index(col, self.ncols())?;
        if self.extract_element(row, col).is_none() {
            self.nvals += 1;
        }
        // An insert cancels a pending delete of the same coordinate; the new
        // value still has to shadow the (stale) main entry, so it goes to DP
        // unconditionally.
        self.delta_minus.remove(&(row, col));
        self.delta_plus.insert((row, col), value);
        self.maybe_flush();
        Ok(())
    }

    /// Delete an entry. Deleting an absent entry is a no-op. A delete of a
    /// pending insert just drops the buffered insert; only entries stored in
    /// the main matrix earn a delta-minus record.
    pub fn remove_element(&mut self, row: Index, col: Index) -> GrbResult<()> {
        check_index(row, self.nrows())?;
        check_index(col, self.ncols())?;
        if self.extract_element(row, col).is_some() {
            self.nvals -= 1;
        }
        self.delta_plus.remove(&(row, col));
        if self.main.contains(row, col) {
            self.delta_minus.insert((row, col));
        }
        self.maybe_flush();
        Ok(())
    }

    /// Resize the matrix. Growing keeps the pending buffers (all buffered
    /// coordinates stay in bounds); shrinking flushes first and lets the CSR
    /// rebuild drop out-of-range entries.
    pub fn resize(&mut self, nrows: Index, ncols: Index) {
        if nrows >= self.nrows() && ncols >= self.ncols() {
            // Growing changes no entry, so the epoch number stays; readers
            // pinning the old allocation keep the smaller dimensions.
            Arc::make_mut(&mut self.main).resize(nrows, ncols);
            return;
        }
        self.flush();
        Arc::make_mut(&mut self.main).resize(nrows, ncols);
        self.nvals = self.main.nvals();
        self.epoch += 1;
    }

    /// Remove every entry (and every pending change), keeping the dimensions.
    pub fn clear(&mut self) {
        self.delta_plus.clear();
        self.delta_minus.clear();
        Arc::make_mut(&mut self.main).clear();
        self.nvals = 0;
        self.epoch += 1;
    }

    /// Fold both pending buffers into the main matrix in one CSR rebuild,
    /// publishing a new epoch. Cheap no-op when nothing is pending.
    ///
    /// If a reader pins the current epoch (via [`DeltaMatrix::main_shared`]
    /// or a clone of this matrix), the fold copies into a fresh allocation and
    /// the pinned epoch stays untouched; otherwise it mutates in place.
    pub fn flush(&mut self) {
        if self.is_flushed() {
            return;
        }
        let main = Arc::make_mut(&mut self.main);
        for &(r, c) in &self.delta_minus {
            main.remove_element(r, c).expect("DM coordinates are in bounds");
        }
        for (&(r, c), &v) in &self.delta_plus {
            main.set_element(r, c, v);
        }
        self.delta_minus.clear();
        self.delta_plus.clear();
        main.wait();
        self.epoch += 1;
        self.flush_count += 1;
        debug_assert_eq!(self.main.nvals(), self.nvals, "flush changed the merged entry count");
    }

    fn maybe_flush(&mut self) {
        if self.pending_count() >= self.flush_threshold {
            self.flush();
        }
    }

    // ------------------------------------------------------------ readers

    /// Read a single entry through the merged view.
    pub fn extract_element(&self, row: Index, col: Index) -> Option<T> {
        if let Some(&v) = self.delta_plus.get(&(row, col)) {
            return Some(v);
        }
        if self.delta_minus.contains(&(row, col)) {
            return None;
        }
        self.main.extract_element(row, col)
    }

    /// Whether the merged view stores an entry at `(row, col)`.
    pub fn contains(&self, row: Index, col: Index) -> bool {
        self.extract_element(row, col).is_some()
    }

    /// Iterate one row of the merged view in ascending column order: the main
    /// row two-way-merged with this row's delta-plus range, minus the
    /// delta-minus coordinates.
    pub fn row_iter(&self, row: Index) -> impl Iterator<Item = (Index, T)> + '_ {
        let (cols, vals) = self.main.row(row);
        let mut main_iter = cols.iter().copied().zip(vals.iter().copied()).peekable();
        let mut plus_iter = self
            .delta_plus
            .range((row, 0)..=(row, Index::MAX))
            .map(|(&(_, c), &v)| (c, v))
            .peekable();
        std::iter::from_fn(move || loop {
            match (main_iter.peek().copied(), plus_iter.peek().copied()) {
                (None, None) => return None,
                (Some((mc, mv)), None) => {
                    main_iter.next();
                    if !self.delta_minus.contains(&(row, mc)) {
                        return Some((mc, mv));
                    }
                }
                (None, Some(p)) => {
                    plus_iter.next();
                    return Some(p);
                }
                (Some((mc, mv)), Some((pc, pv))) => {
                    if mc < pc {
                        main_iter.next();
                        if !self.delta_minus.contains(&(row, mc)) {
                            return Some((mc, mv));
                        }
                    } else {
                        if mc == pc {
                            main_iter.next(); // shadowed by the pending insert
                        }
                        plus_iter.next();
                        return Some((pc, pv));
                    }
                }
            }
        })
    }

    /// Iterate every merged entry in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, T)> + '_ {
        self.to_triples().into_iter()
    }

    /// Export the merged view as `(row, col, value)` triples: a single walk
    /// over the main CSR arrays merged with the (sorted) delta buffers, so the
    /// cost is O(nnz + pending) with a tight per-entry loop rather than
    /// per-row iterator machinery.
    pub fn to_triples(&self) -> Vec<(Index, Index, T)> {
        let mut out = Vec::with_capacity(self.nvals);
        let row_ptr = self.main.row_ptr();
        let cols = self.main.col_indices();
        let vals = self.main.raw_values();
        let mut row = 0usize;
        let mut plus = self.delta_plus.iter().peekable();
        for k in 0..cols.len() {
            while row_ptr[row + 1] <= k {
                row += 1;
            }
            let main_key = (row as Index, cols[k]);
            // Emit pending inserts that sort before this main entry.
            while let Some((&key, &v)) = plus.peek() {
                if key < main_key {
                    out.push((key.0, key.1, v));
                    plus.next();
                } else {
                    break;
                }
            }
            if let Some((&key, &v)) = plus.peek() {
                if key == main_key {
                    out.push((key.0, key.1, v)); // pending insert shadows main
                    plus.next();
                    continue;
                }
            }
            if self.delta_minus.is_empty() || !self.delta_minus.contains(&main_key) {
                out.push((main_key.0, main_key.1, vals[k]));
            }
        }
        out.extend(plus.map(|(&(r, c), &v)| (r, c, v)));
        debug_assert_eq!(out.len(), self.nvals);
        out
    }

    /// Materialise the merged view as a standalone flushed [`SparseMatrix`].
    pub fn export(&self) -> SparseMatrix<T> {
        if self.is_flushed() {
            return (*self.main).clone();
        }
        let mut merged = (*self.main).clone();
        for &(r, c) in &self.delta_minus {
            merged.remove_element(r, c).expect("in bounds");
        }
        for (&(r, c), &v) in &self.delta_plus {
            merged.set_element(r, c, v);
        }
        merged.wait();
        merged
    }

    /// The merged view as a [`SparseMatrix`] reference: a zero-cost borrow of
    /// the main matrix when nothing is pending, a materialised copy otherwise.
    /// Callers that can take `&mut self` should prefer a [`DeltaMatrix::flush`]
    /// read barrier, which pays the merge cost once instead of per read.
    pub fn view(&self) -> Cow<'_, SparseMatrix<T>> {
        if self.is_flushed() {
            Cow::Borrowed(&self.main)
        } else {
            Cow::Owned(self.export())
        }
    }

    /// Direct access to the main matrix (test/diagnostic use: readers should
    /// go through the merged view).
    pub fn main(&self) -> &SparseMatrix<T> {
        &self.main
    }

    /// The publication counter: how many times a new main matrix has been
    /// published (flush, shrinking resize, clear) since construction.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Pin the current epoch: a shared handle on the immutable main CSR.
    ///
    /// While the handle is alive, flushes publish the next epoch into a fresh
    /// allocation (copy-on-write) instead of mutating this one; the pinned
    /// allocation is reclaimed when its last handle drops. Note the handle is
    /// the *flushed* state only — pending buffers are not included (clone the
    /// whole `DeltaMatrix` for a merged-view snapshot).
    pub fn main_shared(&self) -> Arc<SparseMatrix<T>> {
        Arc::clone(&self.main)
    }

    /// Validate the delta-matrix invariants on top of the main CSR's own.
    pub fn check_invariants(&self) -> GrbResult<()> {
        self.main.check_invariants()?;
        if !self.main.is_flushed() {
            return Err(GrbError::InvalidValue("main matrix has its own pending log".into()));
        }
        for &(r, c) in &self.delta_minus {
            if !self.main.contains(r, c) {
                return Err(GrbError::InvalidValue(format!(
                    "delta-minus names ({r}, {c}) which is not in the main matrix"
                )));
            }
            if self.delta_plus.contains_key(&(r, c)) {
                return Err(GrbError::InvalidValue(format!(
                    "({r}, {c}) is in both delta-plus and delta-minus"
                )));
            }
        }
        let dp_new = self.delta_plus.keys().filter(|&&(r, c)| !self.main.contains(r, c)).count();
        let expected = self.main.nvals() - self.delta_minus.len() + dp_new;
        if expected != self.nvals {
            return Err(GrbError::InvalidValue(format!(
                "cached nvals {} != merged count {expected}",
                self.nvals
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> DeltaMatrix<i64> {
        let main = SparseMatrix::from_triples(4, 4, &[(0, 1, 10), (1, 2, 20), (3, 0, 30)]).unwrap();
        DeltaMatrix::from_matrix(main)
    }

    #[test]
    fn merged_view_overlays_pending_changes() {
        let mut m = seeded();
        m.set_element(2, 2, 99); // new entry
        m.set_element(0, 1, 11); // overwrite a main entry
        m.remove_element(1, 2).unwrap(); // delete a main entry
        assert_eq!(m.extract_element(2, 2), Some(99));
        assert_eq!(m.extract_element(0, 1), Some(11));
        assert_eq!(m.extract_element(1, 2), None);
        assert_eq!(m.extract_element(3, 0), Some(30));
        assert_eq!(m.nvals(), 3);
        assert!(!m.is_flushed());
        m.check_invariants().unwrap();
    }

    #[test]
    fn flush_folds_buffers_into_main() {
        let mut m = seeded();
        m.set_element(2, 2, 99);
        m.remove_element(0, 1).unwrap();
        let before = m.to_triples();
        m.flush();
        assert!(m.is_flushed());
        assert_eq!(m.to_triples(), before);
        assert_eq!(m.main().nvals(), 3);
        m.check_invariants().unwrap();
    }

    #[test]
    fn delete_of_pending_insert_leaves_no_trace() {
        let mut m = seeded();
        m.set_element(2, 3, 7);
        m.remove_element(2, 3).unwrap();
        assert_eq!(m.extract_element(2, 3), None);
        assert_eq!(m.pending_count(), 0, "insert+delete of a new entry must cancel out");
        assert_eq!(m.nvals(), 3);
        m.check_invariants().unwrap();
    }

    #[test]
    fn insert_over_pending_delete_cancels_the_delete() {
        let mut m = seeded();
        m.remove_element(0, 1).unwrap();
        m.set_element(0, 1, 42);
        assert_eq!(m.extract_element(0, 1), Some(42));
        assert_eq!(m.nvals(), 3);
        m.flush();
        assert_eq!(m.extract_element(0, 1), Some(42));
        m.check_invariants().unwrap();
    }

    #[test]
    fn threshold_triggers_automatic_flush() {
        let mut m = DeltaMatrix::<bool>::new(8, 8);
        m.set_flush_threshold(3);
        m.set_element(0, 0, true);
        m.set_element(1, 1, true);
        assert_eq!(m.pending_count(), 2);
        m.set_element(2, 2, true); // trips the threshold
        assert!(m.is_flushed());
        assert_eq!(m.main().nvals(), 3);
    }

    #[test]
    fn eager_threshold_flushes_every_mutation() {
        let mut m = DeltaMatrix::<i64>::new(4, 4);
        m.set_flush_threshold(1);
        m.set_element(1, 2, 5);
        assert!(m.is_flushed());
        m.remove_element(1, 2).unwrap();
        assert!(m.is_flushed());
        assert_eq!(m.nvals(), 0);
    }

    #[test]
    fn row_iter_merges_in_column_order() {
        let mut m = seeded();
        m.set_element(0, 0, 1);
        m.set_element(0, 3, 3);
        m.set_element(0, 1, 11);
        let row: Vec<_> = m.row_iter(0).collect();
        assert_eq!(row, vec![(0, 1), (1, 11), (3, 3)]);
        m.remove_element(0, 1).unwrap();
        let row: Vec<_> = m.row_iter(0).collect();
        assert_eq!(row, vec![(0, 1), (3, 3)]);
    }

    #[test]
    fn view_borrows_when_flushed_and_merges_when_not() {
        let mut m = seeded();
        assert!(matches!(m.view(), Cow::Borrowed(_)));
        m.set_element(2, 2, 1);
        let view = m.view();
        assert!(matches!(view, Cow::Owned(_)));
        assert_eq!(view.extract_element(2, 2), Some(1));
        assert_eq!(view.nvals(), m.nvals());
    }

    #[test]
    fn grow_resize_keeps_pending_buffers() {
        let mut m = seeded();
        m.set_element(2, 2, 99);
        m.remove_element(0, 1).unwrap();
        m.resize(10, 10);
        assert_eq!(m.nrows(), 10);
        assert!(!m.is_flushed(), "growing must not force a flush");
        assert_eq!(m.extract_element(2, 2), Some(99));
        assert_eq!(m.extract_element(0, 1), None);
        m.set_element(9, 9, 1);
        m.flush();
        m.check_invariants().unwrap();
        assert_eq!(m.nvals(), 4);
    }

    #[test]
    fn shrink_resize_drops_out_of_range_entries() {
        let mut m = seeded();
        m.set_element(3, 3, 99);
        m.resize(2, 3);
        assert!(m.is_flushed());
        assert_eq!(m.to_triples(), vec![(0, 1, 10), (1, 2, 20)]);
        assert_eq!(m.nvals(), 2);
        m.check_invariants().unwrap();
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let mut m = DeltaMatrix::<i64>::new(2, 2);
        assert!(m.try_set_element(2, 0, 1).is_err());
        assert!(m.remove_element(0, 2).is_err());
    }

    #[test]
    fn snapshot_pins_epoch_across_flush() {
        let mut m = seeded();
        let epoch0 = m.epoch();
        let pinned = m.main_shared();
        m.set_element(2, 2, 99);
        m.flush();
        assert_eq!(m.epoch(), epoch0 + 1);
        // The pinned epoch still shows the pre-flush state…
        assert_eq!(pinned.extract_element(2, 2), None);
        // …while the published epoch has the write.
        assert_eq!(m.main().extract_element(2, 2), Some(99));
        m.check_invariants().unwrap();
    }

    #[test]
    fn pinned_epoch_is_reclaimed_when_last_reader_drops() {
        let mut m = seeded();
        let pinned = m.main_shared();
        let weak = Arc::downgrade(&pinned);
        m.set_element(0, 0, 1);
        m.flush(); // publishes the next epoch; the old one lives via `pinned`
        assert!(weak.upgrade().is_some(), "a pinned epoch must stay alive");
        drop(pinned);
        assert!(weak.upgrade().is_none(), "the last reader drop reclaims the epoch");
    }

    #[test]
    fn write_heavy_loop_does_not_accumulate_epochs() {
        let mut m = DeltaMatrix::<i64>::new(64, 64);
        let pinned = m.main_shared(); // one long-lived reader on epoch 0
        let mut weaks = Vec::new();
        for i in 0..50u64 {
            m.set_element(i % 64, (i * 7) % 64, i as i64);
            m.flush();
            weaks.push(Arc::downgrade(&m.main_shared()));
        }
        let live = weaks.iter().filter(|w| w.upgrade().is_some()).count();
        assert_eq!(live, 1, "only the newest epoch may stay alive, not all 50");
        drop(pinned);
    }

    #[test]
    fn clone_is_a_consistent_snapshot() {
        let mut m = seeded();
        m.set_element(2, 2, 5); // leave a pending insert in the buffers
        let snap = m.clone();
        m.set_element(3, 3, 7);
        m.remove_element(0, 1).unwrap();
        m.flush();
        // The snapshot still sees exactly the state at clone time.
        assert_eq!(snap.extract_element(2, 2), Some(5));
        assert_eq!(snap.extract_element(3, 3), None);
        assert_eq!(snap.extract_element(0, 1), Some(10));
        snap.check_invariants().unwrap();
        m.check_invariants().unwrap();
    }

    #[test]
    fn equality_ignores_buffer_state() {
        let mut a = seeded();
        let mut b = seeded();
        a.set_element(2, 2, 5);
        b.set_element(2, 2, 5);
        b.flush();
        assert_eq!(a, b);
        b.remove_element(2, 2).unwrap();
        assert_ne!(a, b);
    }
}
