//! `GxB_select`: keep the entries of a matrix that satisfy a predicate on
//! their position and/or value (SuiteSparse extension used for triangle
//! counting, self-loop removal, and value filters).

use crate::matrix::SparseMatrix;
use crate::types::Scalar;
use crate::Index;
use std::sync::Arc;

/// Predicates accepted by [`select_matrix`].
#[derive(Clone)]
pub enum SelectOp<T: Scalar> {
    /// Keep strictly-lower-triangle entries (`col < row`), `GxB_TRIL` with offset -1.
    StrictLower,
    /// Keep strictly-upper-triangle entries (`col > row`).
    StrictUpper,
    /// Keep diagonal entries.
    Diag,
    /// Drop diagonal entries (remove self-loops).
    OffDiag,
    /// Keep entries whose value differs from the given constant.
    ValueNe(T),
    /// Keep entries whose value equals the given constant.
    ValueEq(T),
    /// Arbitrary predicate over `(row, col, value)`.
    Custom(Arc<dyn Fn(Index, Index, T) -> bool + Send + Sync>),
}

impl<T: Scalar> SelectOp<T> {
    /// Build a custom predicate.
    pub fn custom<F>(f: F) -> Self
    where
        F: Fn(Index, Index, T) -> bool + Send + Sync + 'static,
    {
        SelectOp::Custom(Arc::new(f))
    }

    #[inline]
    fn keep(&self, r: Index, c: Index, v: T) -> bool {
        match self {
            SelectOp::StrictLower => c < r,
            SelectOp::StrictUpper => c > r,
            SelectOp::Diag => c == r,
            SelectOp::OffDiag => c != r,
            SelectOp::ValueNe(x) => v != *x,
            SelectOp::ValueEq(x) => v == *x,
            SelectOp::Custom(f) => f(r, c, v),
        }
    }
}

/// Return a matrix containing only the entries of `a` selected by `op`.
pub fn select_matrix<T: Scalar>(a: &SparseMatrix<T>, op: &SelectOp<T>) -> SparseMatrix<T> {
    assert!(a.is_flushed(), "select requires a flushed matrix");
    let triples: Vec<_> = a.iter().filter(|&(r, c, v)| op.keep(r, c, v)).collect();
    SparseMatrix::from_triples(a.nrows(), a.ncols(), &triples).expect("pattern already valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> SparseMatrix<i64> {
        SparseMatrix::from_triples(3, 3, &[(0, 0, 1), (0, 2, 2), (1, 1, 0), (2, 0, 3), (2, 2, 4)])
            .unwrap()
    }

    #[test]
    fn triangle_selectors() {
        let lower = select_matrix(&m(), &SelectOp::StrictLower);
        assert_eq!(lower.to_triples(), vec![(2, 0, 3)]);
        let upper = select_matrix(&m(), &SelectOp::StrictUpper);
        assert_eq!(upper.to_triples(), vec![(0, 2, 2)]);
    }

    #[test]
    fn diag_and_offdiag_partition_entries() {
        let d = select_matrix(&m(), &SelectOp::Diag);
        let o = select_matrix(&m(), &SelectOp::OffDiag);
        assert_eq!(d.nvals() + o.nvals(), m().nvals());
        assert_eq!(d.nvals(), 3);
        assert_eq!(o.nvals(), 2);
    }

    #[test]
    fn value_filters() {
        let nz = select_matrix(&m(), &SelectOp::ValueNe(0));
        assert_eq!(nz.nvals(), 4);
        let zeros = select_matrix(&m(), &SelectOp::ValueEq(0));
        assert_eq!(zeros.to_triples(), vec![(1, 1, 0)]);
    }

    #[test]
    fn custom_predicate() {
        let big = select_matrix(&m(), &SelectOp::custom(|_, _, v| v >= 3));
        assert_eq!(big.nvals(), 2);
    }
}
