//! Unary operators (`GrB_UnaryOp`), used by [`crate::apply`].

use crate::types::Scalar;
use std::sync::Arc;

/// A unary operator `z = f(x)`.
#[derive(Clone)]
pub enum UnaryOp<T: Scalar> {
    /// `z = x`.
    Identity,
    /// `z = 1` (the scalar one of the type) — `GrB_ONE`.
    One,
    /// Logical negation: `z = !x` for `bool`, `z = (x == 0)` for numeric types.
    LNot,
    /// A user-defined unary operator.
    Custom(Arc<dyn Fn(T) -> T + Send + Sync>),
}

impl<T: Scalar> std::fmt::Debug for UnaryOp<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl<T: Scalar> UnaryOp<T> {
    /// Human-readable operator name.
    pub fn name(&self) -> &'static str {
        match self {
            UnaryOp::Identity => "identity",
            UnaryOp::One => "one",
            UnaryOp::LNot => "lnot",
            UnaryOp::Custom(_) => "custom",
        }
    }

    /// Construct a user-defined unary operator from a closure.
    pub fn custom<F>(f: F) -> Self
    where
        F: Fn(T) -> T + Send + Sync + 'static,
    {
        UnaryOp::Custom(Arc::new(f))
    }
}

/// Typed application of unary operators.
pub trait UnaryApply: Scalar {
    /// Apply the operator to a value.
    fn apply_unary(op: &UnaryOp<Self>, x: Self) -> Self;
}

macro_rules! impl_unary_num {
    ($($t:ty),*) => {$(
        impl UnaryApply for $t {
            #[inline]
            fn apply_unary(op: &UnaryOp<Self>, x: Self) -> Self {
                match op {
                    UnaryOp::Identity => x,
                    UnaryOp::One => Self::one(),
                    UnaryOp::LNot => (x == Self::zero()) as u8 as $t,
                    UnaryOp::Custom(f) => f(x),
                }
            }
        }
    )*};
}

impl_unary_num!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

impl UnaryApply for bool {
    #[inline]
    fn apply_unary(op: &UnaryOp<Self>, x: Self) -> Self {
        match op {
            UnaryOp::Identity => x,
            UnaryOp::One => true,
            UnaryOp::LNot => !x,
            UnaryOp::Custom(f) => f(x),
        }
    }
}

impl UnaryApply for () {
    #[inline]
    fn apply_unary(op: &UnaryOp<Self>, x: Self) -> Self {
        if let UnaryOp::Custom(f) = op {
            f(x)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_one() {
        assert_eq!(i64::apply_unary(&UnaryOp::Identity, 7), 7);
        assert_eq!(i64::apply_unary(&UnaryOp::One, 7), 1);
        assert_eq!(f64::apply_unary(&UnaryOp::One, 2.5), 1.0);
    }

    #[test]
    fn lnot_semantics() {
        assert!(!bool::apply_unary(&UnaryOp::LNot, true));
        assert_eq!(i64::apply_unary(&UnaryOp::LNot, 0), 1);
        assert_eq!(i64::apply_unary(&UnaryOp::LNot, 3), 0);
    }

    #[test]
    fn custom_unary() {
        let double = UnaryOp::custom(|x: i32| x * 2);
        assert_eq!(i32::apply_unary(&double, 21), 42);
        assert_eq!(double.name(), "custom");
    }
}
