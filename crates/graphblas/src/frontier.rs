//! Frontier matrices for batched algebraic traversal.
//!
//! RedisGraph evaluates a `MATCH` traversal for a *batch* of execution-plan
//! records at once: every record contributes one row to a **frontier matrix**
//! `F` (`batch × nodes`, one stored entry per row at the record's bound source
//! node), the relation step becomes `C = F ⊕.⊗ A` over the relation's
//! adjacency matrix, and row `i` of `C` holds exactly the destinations (and,
//! with an edge-id-valued `A` under an `any_second` semiring, the traversed
//! edge ids) reachable from record `i`'s source. This module provides the two
//! small helpers on either side of the `mxm`: building `F` from `(record,
//! node)` pairs and probing the result rows back out into records.

use crate::matrix::SparseMatrix;
use crate::types::Scalar;
use crate::Index;

/// Build a `nrows × ncols` frontier matrix with one stored `value` at each of
/// the given `(row, col)` coordinates. Rows without a coordinate stay empty
/// (a record whose source is unbound simply produces no output); duplicate
/// coordinates collapse to one entry. The result is fully flushed, ready to be
/// handed to [`crate::mxm`].
///
/// # Panics
/// Panics if any coordinate is out of bounds.
pub fn frontier_matrix<T: Scalar>(
    nrows: Index,
    ncols: Index,
    entries: &[(Index, Index)],
    value: T,
) -> SparseMatrix<T> {
    let triples: Vec<(Index, Index, T)> = entries.iter().map(|&(r, c)| (r, c, value)).collect();
    SparseMatrix::from_triples(nrows, ncols, &triples).expect("frontier coordinate out of bounds")
}

/// Probe one row of a traversal product: the `(column, value)` entries of row
/// `row` in ascending column order, as borrowed CSR slices. For `C = F ⊕.⊗ A`
/// the columns are the destination node ids reached by the record whose
/// frontier row this is, and the values carry whatever the semiring
/// propagated (edge ids under `any_second`, `true` under `lor_land`).
///
/// # Panics
/// Debug-panics if the matrix has pending updates (traversal products never
/// do).
pub fn probe_row<T: Scalar>(c: &SparseMatrix<T>, row: Index) -> (&[Index], &[T]) {
    c.row(row)
}

/// The boolean structure of a matrix: same pattern, every stored value `true`.
/// Used to fold several edge-id-valued relation matrices into one boolean
/// matrix for a variable-length (BFS) traversal, where only the pattern
/// matters. O(nnz), reuses the CSR arrays.
///
/// # Panics
/// Panics if the matrix has pending updates.
pub fn structure<T: Scalar>(m: &SparseMatrix<T>) -> SparseMatrix<bool> {
    assert!(m.is_flushed(), "structure() requires a flushed matrix");
    let nnz = m.nvals();
    SparseMatrix::from_csr_parts(
        m.nrows(),
        m.ncols(),
        m.row_ptr().to_vec(),
        m.col_indices().to_vec(),
        vec![true; nnz],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::Descriptor;
    use crate::mxm::mxm;
    use crate::semiring::Semiring;

    #[test]
    fn frontier_rows_hold_one_entry_per_record() {
        let f = frontier_matrix::<bool>(4, 8, &[(0, 3), (2, 5), (3, 3)], true);
        assert_eq!(f.nvals(), 3);
        assert_eq!(f.extract_element(0, 3), Some(true));
        assert_eq!(f.extract_element(1, 0), None);
        let (cols, _) = probe_row(&f, 2);
        assert_eq!(cols, &[5]);
    }

    #[test]
    fn frontier_mxm_carries_edge_ids_to_destinations() {
        // Edges (stored value = edge id): 0→1 (e7), 0→2 (e9), 1→2 (e4).
        let a = SparseMatrix::from_triples(4, 4, &[(0, 1, 7u64), (0, 2, 9), (1, 2, 4)]).unwrap();
        // Two records: record 0 at node 0, record 1 at node 1.
        let f = frontier_matrix::<u64>(2, 4, &[(0, 0), (1, 1)], 1);
        let c = mxm(&f, &a, &Semiring::any_second(), None, &Descriptor::default());
        let (cols, vals) = probe_row(&c, 0);
        assert_eq!(cols, &[1, 2]);
        assert_eq!(vals, &[7, 9]);
        let (cols, vals) = probe_row(&c, 1);
        assert_eq!(cols, &[2]);
        assert_eq!(vals, &[4]);
    }

    #[test]
    fn structure_preserves_pattern() {
        let a = SparseMatrix::from_triples(3, 3, &[(0, 1, 42u64), (2, 0, 7)]).unwrap();
        let s = structure(&a);
        assert_eq!(s.nvals(), 2);
        assert_eq!(s.extract_element(0, 1), Some(true));
        assert_eq!(s.extract_element(2, 0), Some(true));
        assert_eq!(s.extract_element(1, 1), None);
    }
}
