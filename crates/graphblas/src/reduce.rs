//! Reductions (`GrB_reduce`): matrix → vector (row-wise), matrix → scalar,
//! vector → scalar.
//!
//! With the PLUS monoid over the adjacency matrix these compute out-degrees
//! and edge counts; the k-hop count query in the paper's benchmark is a
//! reduction of the reached frontier to a scalar.

use crate::binary_op::OpApply;
use crate::matrix::SparseMatrix;
use crate::monoid::Monoid;
use crate::types::Scalar;
use crate::vector::SparseVector;

/// Reduce each row of `a` to a single value: `w[i] = ⊕_j a[i,j]`.
/// Rows with no entries produce no output entry.
pub fn reduce_to_vector<T: Scalar + OpApply>(
    a: &SparseMatrix<T>,
    monoid: &Monoid<T>,
) -> SparseVector<T> {
    assert!(a.is_flushed(), "reduce requires a flushed matrix");
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for i in 0..a.nrows() {
        let (_, vals) = a.row(i);
        if vals.is_empty() {
            continue;
        }
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = monoid.combine(acc, v);
            if monoid.is_terminal(acc) {
                break;
            }
        }
        indices.push(i);
        values.push(acc);
    }
    SparseVector::from_sorted_parts(a.nrows(), indices, values)
}

/// Reduce every stored entry of a matrix to a single scalar. Returns the
/// monoid identity for an empty matrix.
pub fn reduce_matrix_to_scalar<T: Scalar + OpApply>(a: &SparseMatrix<T>, monoid: &Monoid<T>) -> T {
    assert!(a.is_flushed(), "reduce requires a flushed matrix");
    let mut acc = monoid.identity;
    for &v in a.raw_values() {
        acc = monoid.combine(acc, v);
        if monoid.is_terminal(acc) {
            break;
        }
    }
    acc
}

/// Reduce every stored entry of a vector to a single scalar.
pub fn reduce_vector_to_scalar<T: Scalar + OpApply>(u: &SparseVector<T>, monoid: &Monoid<T>) -> T {
    let mut acc = monoid.identity;
    for &v in u.values() {
        acc = monoid.combine(acc, v);
        if monoid.is_terminal(acc) {
            break;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::{lor_monoid, max_monoid, plus_monoid};

    #[test]
    fn row_reduce_computes_out_degree() {
        let a = SparseMatrix::from_triples(3, 3, &[(0, 1, 1u64), (0, 2, 1), (2, 0, 1)]).unwrap();
        let deg = reduce_to_vector(&a, &plus_monoid());
        assert_eq!(deg.extract_element(0), Some(2));
        assert_eq!(deg.extract_element(1), None); // empty row → no entry
        assert_eq!(deg.extract_element(2), Some(1));
    }

    #[test]
    fn matrix_scalar_reduce_sums_all_entries() {
        let a = SparseMatrix::from_triples(2, 2, &[(0, 0, 1i64), (0, 1, 2), (1, 1, 3)]).unwrap();
        assert_eq!(reduce_matrix_to_scalar(&a, &plus_monoid()), 6);
        assert_eq!(reduce_matrix_to_scalar(&a, &max_monoid(i64::MIN)), 3);
    }

    #[test]
    fn empty_matrix_reduces_to_identity() {
        let a = SparseMatrix::<i64>::new(4, 4);
        assert_eq!(reduce_matrix_to_scalar(&a, &plus_monoid()), 0);
        let v = reduce_to_vector(&a, &plus_monoid());
        assert!(v.is_empty());
    }

    #[test]
    fn vector_scalar_reduce_counts_frontier() {
        // reduce with PLUS over a pattern of ones = neighbourhood size
        let f = SparseVector::from_entries(10, &[(1, 1u64), (4, 1), (7, 1)]).unwrap();
        assert_eq!(reduce_vector_to_scalar(&f, &plus_monoid()), 3);
    }

    #[test]
    fn boolean_reduce_short_circuits() {
        let f = SparseVector::from_entries(3, &[(0, false), (1, true), (2, false)]).unwrap();
        assert!(reduce_vector_to_scalar(&f, &lor_monoid()));
        let none = SparseVector::from_entries(3, &[(0, false)]).unwrap();
        assert!(!reduce_vector_to_scalar(&none, &lor_monoid()));
    }
}
