//! Kronecker product (`GrB_kronecker`). Included both for API completeness and
//! because the Graph500 RMAT generator used in the paper's benchmark is defined
//! as repeated Kronecker products of a small seed matrix; `datagen` uses the
//! streaming sampler, but tests cross-check it against this exact kernel on
//! small scales.

use crate::binary_op::{BinaryOp, OpApply};
use crate::matrix::SparseMatrix;
use crate::types::Scalar;

/// `C = A ⊗_kron B`: the output is `(a.nrows*b.nrows) × (a.ncols*b.ncols)` and
/// entry `((ia*bn + ib), (ja*bm + jb)) = op(A[ia,ja], B[ib,jb])`.
pub fn kronecker<T: Scalar + OpApply>(
    a: &SparseMatrix<T>,
    b: &SparseMatrix<T>,
    op: &BinaryOp<T>,
) -> SparseMatrix<T> {
    assert!(a.is_flushed() && b.is_flushed(), "kronecker requires flushed matrices");
    let bn = b.nrows();
    let bm = b.ncols();
    let mut triples = Vec::with_capacity(a.nvals() * b.nvals());
    for (ia, ja, va) in a.iter() {
        for (ib, jb, vb) in b.iter() {
            triples.push((ia * bn + ib, ja * bm + jb, T::apply(op, va, vb)));
        }
    }
    SparseMatrix::from_triples(a.nrows() * bn, a.ncols() * bm, &triples)
        .expect("kronecker indices are in range by construction")
}

/// Convenience: the `k`-fold Kronecker power of a square seed matrix, the
/// textbook definition of an RMAT/Kronecker graph.
pub fn kronecker_power<T: Scalar + OpApply>(
    seed: &SparseMatrix<T>,
    k: u32,
    op: &BinaryOp<T>,
) -> SparseMatrix<T> {
    assert!(k >= 1, "kronecker power requires k >= 1");
    let mut acc = seed.clone();
    for _ in 1..k {
        acc = kronecker(&acc, seed, op);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kronecker_dimensions_and_values() {
        let a = SparseMatrix::from_triples(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]).unwrap();
        let b = SparseMatrix::from_triples(2, 2, &[(0, 1, 5.0), (1, 0, 7.0)]).unwrap();
        let c = kronecker(&a, &b, &BinaryOp::Times);
        assert_eq!(c.nrows(), 4);
        assert_eq!(c.ncols(), 4);
        assert_eq!(c.nvals(), 4);
        assert_eq!(c.extract_element(0, 1), Some(10.0)); // 2*5 at (0*2+0, 0*2+1)
        assert_eq!(c.extract_element(3, 2), Some(21.0)); // 3*7 at (1*2+1, 1*2+0)
    }

    #[test]
    fn kronecker_power_grows_exponentially() {
        let seed = SparseMatrix::from_triples(2, 2, &[(0, 0, 1u64), (0, 1, 1), (1, 0, 1)]).unwrap();
        let k3 = kronecker_power(&seed, 3, &BinaryOp::Times);
        assert_eq!(k3.nrows(), 8);
        assert_eq!(k3.nvals(), 27); // 3^3 entries
        let k1 = kronecker_power(&seed, 1, &BinaryOp::Times);
        assert_eq!(k1, seed);
    }

    #[test]
    fn kronecker_with_empty_matrix_is_empty() {
        let a = SparseMatrix::from_triples(2, 2, &[(0, 0, 1i64)]).unwrap();
        let empty = SparseMatrix::<i64>::new(2, 2);
        let c = kronecker(&a, &empty, &BinaryOp::Times);
        assert_eq!(c.nvals(), 0);
        assert_eq!(c.nrows(), 4);
    }

    #[test]
    fn index_arithmetic_is_block_structured() {
        // A has a single entry at (1,0); C must be B shifted into block (1,0).
        let a = SparseMatrix::from_triples(2, 2, &[(1, 0, 1i64)]).unwrap();
        let b = SparseMatrix::from_triples(3, 3, &[(0, 2, 4), (2, 1, 5)]).unwrap();
        let c = kronecker(&a, &b, &BinaryOp::Times);
        assert_eq!(c.extract_element(3, 2), Some(4)); // (1*3+0, 0*3+2)
        assert_eq!(c.extract_element(5, 1), Some(5)); // (1*3+2, 0*3+1)
        assert_eq!(c.nvals(), 2);
    }
}
