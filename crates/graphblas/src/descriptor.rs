//! Operation descriptors (`GrB_Descriptor`).
//!
//! A descriptor modifies how an operation treats its mask, inputs and output:
//! complement the mask, use only the mask structure, clear (replace) the output
//! first, transpose either input, and optionally override the number of threads
//! for this one call.

/// Per-call modifiers for GraphBLAS operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Descriptor {
    /// Use the complement of the mask (`GrB_COMP`): entries *not* present (or
    /// false) in the mask are computed.
    pub mask_complement: bool,
    /// Use only the structure of the mask (`GrB_STRUCTURE`): any stored entry
    /// counts, regardless of its value.
    pub mask_structure: bool,
    /// Clear the output object before writing results (`GrB_REPLACE`).
    pub replace: bool,
    /// Transpose the first input (`GrB_TRAN` on `GrB_INP0`).
    pub transpose_a: bool,
    /// Transpose the second input (`GrB_TRAN` on `GrB_INP1`).
    pub transpose_b: bool,
    /// Override the context thread count for this call (`None` = use
    /// [`crate::Context::nthreads`]).
    pub nthreads: Option<usize>,
}

impl Descriptor {
    /// The default descriptor (no modifiers).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: complement the mask.
    pub fn with_mask_complement(mut self) -> Self {
        self.mask_complement = true;
        self
    }

    /// Builder: treat the mask structurally.
    pub fn with_mask_structure(mut self) -> Self {
        self.mask_structure = true;
        self
    }

    /// Builder: replace the output.
    pub fn with_replace(mut self) -> Self {
        self.replace = true;
        self
    }

    /// Builder: transpose the first input.
    pub fn with_transpose_a(mut self) -> Self {
        self.transpose_a = true;
        self
    }

    /// Builder: transpose the second input.
    pub fn with_transpose_b(mut self) -> Self {
        self.transpose_b = true;
        self
    }

    /// Builder: set a per-call thread count.
    pub fn with_nthreads(mut self, n: usize) -> Self {
        self.nthreads = Some(n.max(1));
        self
    }

    /// Effective thread count for this call.
    pub fn effective_nthreads(&self) -> usize {
        self.nthreads.unwrap_or_else(crate::context::Context::nthreads).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_descriptor_has_no_modifiers() {
        let d = Descriptor::default();
        assert!(!d.mask_complement && !d.replace && !d.transpose_a && !d.transpose_b);
        assert!(d.nthreads.is_none());
    }

    #[test]
    fn builders_compose() {
        let d = Descriptor::new()
            .with_mask_complement()
            .with_replace()
            .with_transpose_a()
            .with_nthreads(4);
        assert!(d.mask_complement);
        assert!(d.replace);
        assert!(d.transpose_a);
        assert!(!d.transpose_b);
        assert_eq!(d.effective_nthreads(), 4);
    }

    #[test]
    fn effective_threads_falls_back_to_context() {
        let d = Descriptor::default();
        assert!(d.effective_nthreads() >= 1);
        assert_eq!(Descriptor::new().with_nthreads(0).effective_nthreads(), 1);
    }
}
