//! Matrix transposition (`GrB_transpose`) via a linear-time counting sort.
//!
//! RedisGraph keeps the transposed adjacency matrix alongside the original so
//! that right-to-left traversals (`(a)<-[]-(b)`) are as cheap as forward ones;
//! this kernel is what maintains that pair.

use crate::matrix::SparseMatrix;
use crate::types::Scalar;
use crate::Index;

/// Return `Aᵀ`. The input must be flushed.
///
/// Runs in `O(nnz + nrows + ncols)` time using a counting sort over columns.
pub fn transpose<T: Scalar>(a: &SparseMatrix<T>) -> SparseMatrix<T> {
    assert!(a.is_flushed(), "transpose requires a flushed matrix");
    let nrows = a.nrows();
    let ncols = a.ncols();
    let nnz = a.nvals();

    // Count entries per output row (= input column).
    let mut counts = vec![0usize; ncols as usize + 1];
    for &c in a.col_indices() {
        counts[c as usize + 1] += 1;
    }
    for i in 0..ncols as usize {
        counts[i + 1] += counts[i];
    }
    let row_ptr = counts.clone();

    let mut col_idx = vec![0 as Index; nnz];
    let mut values = vec![T::zero(); nnz];
    let mut cursor = counts;
    for r in 0..nrows {
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            let pos = cursor[c as usize];
            col_idx[pos] = r;
            values[pos] = v;
            cursor[c as usize] += 1;
        }
    }
    SparseMatrix::from_csr_parts(ncols, nrows, row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_swaps_coordinates() {
        let a = SparseMatrix::from_triples(2, 3, &[(0, 2, 1i64), (1, 0, 2), (1, 1, 3)]).unwrap();
        let t = transpose(&a);
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.extract_element(2, 0), Some(1));
        assert_eq!(t.extract_element(0, 1), Some(2));
        assert_eq!(t.extract_element(1, 1), Some(3));
        assert_eq!(t.nvals(), 3);
        t.check_invariants().unwrap();
    }

    #[test]
    fn double_transpose_is_identity() {
        let a =
            SparseMatrix::from_triples(5, 4, &[(0, 0, 1.5), (2, 3, 2.5), (4, 1, 3.5), (4, 2, 4.5)])
                .unwrap();
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    fn transpose_of_empty_matrix() {
        let a = SparseMatrix::<bool>::new(3, 7);
        let t = transpose(&a);
        assert_eq!(t.nrows(), 7);
        assert_eq!(t.ncols(), 3);
        assert_eq!(t.nvals(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn transpose_preserves_entry_count_per_column() {
        let a =
            SparseMatrix::from_triples(3, 3, &[(0, 1, true), (1, 1, true), (2, 1, true)]).unwrap();
        let t = transpose(&a);
        assert_eq!(t.row_degree(1), 3);
        assert_eq!(t.row_degree(0), 0);
    }
}
