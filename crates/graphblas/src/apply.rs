//! `GrB_apply`: apply a unary operator to every stored entry.

use crate::matrix::SparseMatrix;
use crate::types::Scalar;
use crate::unary_op::{UnaryApply, UnaryOp};
use crate::vector::SparseVector;

/// Apply `op` to every stored entry of a matrix, preserving the pattern.
pub fn apply_matrix<T: Scalar + UnaryApply>(
    a: &SparseMatrix<T>,
    op: &UnaryOp<T>,
) -> SparseMatrix<T> {
    assert!(a.is_flushed(), "apply requires a flushed matrix");
    let triples: Vec<_> = a.iter().map(|(r, c, v)| (r, c, T::apply_unary(op, v))).collect();
    SparseMatrix::from_triples(a.nrows(), a.ncols(), &triples).expect("pattern already valid")
}

/// Apply `op` to every stored entry of a vector, preserving the pattern.
pub fn apply_vector<T: Scalar + UnaryApply>(
    u: &SparseVector<T>,
    op: &UnaryOp<T>,
) -> SparseVector<T> {
    let entries: Vec<_> = u.iter().map(|(i, v)| (i, T::apply_unary(op, v))).collect();
    SparseVector::from_entries(u.size(), &entries).expect("pattern already valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_one_flattens_values_keeps_pattern() {
        let a = SparseMatrix::from_triples(2, 2, &[(0, 0, 5i64), (1, 1, -3)]).unwrap();
        let ones = apply_matrix(&a, &UnaryOp::One);
        assert_eq!(ones.nvals(), 2);
        assert_eq!(ones.extract_element(0, 0), Some(1));
        assert_eq!(ones.extract_element(1, 1), Some(1));
        assert_eq!(ones.extract_element(0, 1), None);
    }

    #[test]
    fn apply_custom_to_vector() {
        let u = SparseVector::from_entries(4, &[(0, 2i32), (3, 5)]).unwrap();
        let sq = apply_vector(&u, &UnaryOp::custom(|x| x * x));
        assert_eq!(sq.extract_element(0), Some(4));
        assert_eq!(sq.extract_element(3), Some(25));
        assert_eq!(sq.nvals(), 2);
    }

    #[test]
    fn apply_identity_is_noop() {
        let a = SparseMatrix::from_triples(3, 3, &[(0, 2, 1.5), (2, 1, 2.5)]).unwrap();
        assert_eq!(apply_matrix(&a, &UnaryOp::Identity), a);
    }
}
