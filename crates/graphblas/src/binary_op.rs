//! Binary operators (`GrB_BinaryOp`).
//!
//! A binary operator combines two scalars into one. GraphBLAS uses them as the
//! "multiply" of a semiring, as the accumulator `accum` of masked assignments,
//! and inside element-wise operations. We model them as a small enum of named
//! built-ins plus an escape hatch for user-defined closures, so the hot kernels
//! can dispatch on the common cases without virtual calls.

use crate::types::Scalar;
use std::sync::Arc;

/// A binary operator `z = f(x, y)` over a single scalar type `T`.
///
/// Cloning is cheap (built-ins are unit variants; custom operators share an
/// `Arc`).
#[derive(Clone)]
pub enum BinaryOp<T: Scalar> {
    /// `z = x + y` (numeric addition / logical OR for `bool`).
    Plus,
    /// `z = x * y` (numeric multiplication / logical AND for `bool`).
    Times,
    /// `z = min(x, y)`.
    Min,
    /// `z = max(x, y)`.
    Max,
    /// `z = x` (the first operand).
    First,
    /// `z = y` (the second operand).
    Second,
    /// `z = x` or `z = y`, whichever is cheaper — GraphBLAS `GxB_ANY`, used by
    /// the ANY_PAIR traversal semiring where only structure matters.
    Any,
    /// `z = 1` whenever both operands exist — `GxB_PAIR`.
    Pair,
    /// Logical AND (meaningful for `bool`; for numeric types both operands must
    /// be non-zero).
    LAnd,
    /// Logical OR.
    LOr,
    /// `z = x - y`.
    Minus,
    /// A user-defined operator.
    Custom(Arc<dyn Fn(T, T) -> T + Send + Sync>),
}

impl<T: Scalar> std::fmt::Debug for BinaryOp<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl<T: Scalar> BinaryOp<T> {
    /// Human-readable operator name (used by `Debug` and plan explanations).
    pub fn name(&self) -> &'static str {
        match self {
            BinaryOp::Plus => "plus",
            BinaryOp::Times => "times",
            BinaryOp::Min => "min",
            BinaryOp::Max => "max",
            BinaryOp::First => "first",
            BinaryOp::Second => "second",
            BinaryOp::Any => "any",
            BinaryOp::Pair => "pair",
            BinaryOp::LAnd => "land",
            BinaryOp::LOr => "lor",
            BinaryOp::Minus => "minus",
            BinaryOp::Custom(_) => "custom",
        }
    }

    /// Construct a user-defined binary operator from a closure.
    pub fn custom<F>(f: F) -> Self
    where
        F: Fn(T, T) -> T + Send + Sync + 'static,
    {
        BinaryOp::Custom(Arc::new(f))
    }
}

/// Numeric application; implemented per concrete scalar kind through the
/// [`OpApply`] trait so that `bool` gets logical semantics and numeric types
/// get arithmetic semantics, matching the C API's typed operator families.
pub trait OpApply: Scalar {
    /// Apply a built-in or custom binary operator to two values.
    fn apply(op: &BinaryOp<Self>, x: Self, y: Self) -> Self;
}

macro_rules! impl_op_apply_num {
    ($($t:ty),*) => {$(
        impl OpApply for $t {
            #[inline]
            fn apply(op: &BinaryOp<Self>, x: Self, y: Self) -> Self {
                match op {
                    BinaryOp::Plus => x.wrapping_add(y),
                    BinaryOp::Times => x.wrapping_mul(y),
                    BinaryOp::Min => if x < y { x } else { y },
                    BinaryOp::Max => if x > y { x } else { y },
                    BinaryOp::First => x,
                    BinaryOp::Second => y,
                    BinaryOp::Any => x,
                    BinaryOp::Pair => 1 as $t,
                    BinaryOp::LAnd => ((x != 0) && (y != 0)) as $t,
                    BinaryOp::LOr => ((x != 0) || (y != 0)) as $t,
                    BinaryOp::Minus => x.wrapping_sub(y),
                    BinaryOp::Custom(f) => f(x, y),
                }
            }
        }
    )*};
}

impl_op_apply_num!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_op_apply_float {
    ($($t:ty),*) => {$(
        impl OpApply for $t {
            #[inline]
            fn apply(op: &BinaryOp<Self>, x: Self, y: Self) -> Self {
                match op {
                    BinaryOp::Plus => x + y,
                    BinaryOp::Times => x * y,
                    BinaryOp::Min => if x < y { x } else { y },
                    BinaryOp::Max => if x > y { x } else { y },
                    BinaryOp::First => x,
                    BinaryOp::Second => y,
                    BinaryOp::Any => x,
                    BinaryOp::Pair => 1.0,
                    BinaryOp::LAnd => (((x != 0.0) && (y != 0.0)) as u8) as $t,
                    BinaryOp::LOr => (((x != 0.0) || (y != 0.0)) as u8) as $t,
                    BinaryOp::Minus => x - y,
                    BinaryOp::Custom(f) => f(x, y),
                }
            }
        }
    )*};
}

impl_op_apply_float!(f32, f64);

impl OpApply for bool {
    #[inline]
    fn apply(op: &BinaryOp<Self>, x: Self, y: Self) -> Self {
        match op {
            BinaryOp::Plus | BinaryOp::LOr | BinaryOp::Max => x || y,
            BinaryOp::Times | BinaryOp::LAnd | BinaryOp::Min => x && y,
            BinaryOp::First | BinaryOp::Any => x,
            BinaryOp::Second => y,
            BinaryOp::Pair => true,
            BinaryOp::Minus => x != y,
            BinaryOp::Custom(f) => f(x, y),
        }
    }
}

impl OpApply for () {
    #[inline]
    fn apply(op: &BinaryOp<Self>, x: Self, y: Self) -> Self {
        if let BinaryOp::Custom(f) = op {
            f(x, y)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_builtins() {
        assert_eq!(i64::apply(&BinaryOp::Plus, 2, 3), 5);
        assert_eq!(i64::apply(&BinaryOp::Times, 2, 3), 6);
        assert_eq!(i64::apply(&BinaryOp::Min, 2, 3), 2);
        assert_eq!(i64::apply(&BinaryOp::Max, 2, 3), 3);
        assert_eq!(i64::apply(&BinaryOp::First, 2, 3), 2);
        assert_eq!(i64::apply(&BinaryOp::Second, 2, 3), 3);
        assert_eq!(i64::apply(&BinaryOp::Pair, 2, 3), 1);
        assert_eq!(i64::apply(&BinaryOp::Minus, 2, 3), -1);
    }

    #[test]
    fn boolean_builtins_use_logical_semantics() {
        assert!(bool::apply(&BinaryOp::Plus, true, false));
        assert!(!bool::apply(&BinaryOp::Times, true, false));
        assert!(bool::apply(&BinaryOp::Pair, false, false));
        assert!(bool::apply(&BinaryOp::LOr, false, true));
        assert!(!bool::apply(&BinaryOp::LAnd, false, true));
    }

    #[test]
    fn float_builtins() {
        assert_eq!(f64::apply(&BinaryOp::Plus, 0.5, 0.25), 0.75);
        assert_eq!(f64::apply(&BinaryOp::Times, 0.5, 0.25), 0.125);
        assert_eq!(f64::apply(&BinaryOp::LAnd, 1.0, 0.0), 0.0);
    }

    #[test]
    fn custom_operator_is_applied() {
        let saturating = BinaryOp::custom(|x: u8, y: u8| x.saturating_add(y));
        assert_eq!(u8::apply(&saturating, 200, 100), 255);
        assert_eq!(saturating.name(), "custom");
    }

    #[test]
    fn debug_prints_name() {
        assert_eq!(format!("{:?}", BinaryOp::<i64>::Plus), "plus");
        assert_eq!(format!("{:?}", BinaryOp::<bool>::LOr), "lor");
    }
}
