//! Sparse matrices (`GrB_Matrix`) in Compressed Sparse Row (CSR) form, with a
//! pending-update log reproducing SuiteSparse's *non-blocking mode*: single
//! element updates (`set_element` / `remove_element`) are buffered and folded
//! into the CSR structure on [`SparseMatrix::wait`], so a burst of writes (as
//! produced by a Cypher `CREATE` clause) costs one rebuild instead of many.

use crate::error::{check_index, GrbError, GrbResult};
use crate::types::Scalar;
use crate::Index;
use std::collections::HashMap;

/// A buffered single-element update.
#[derive(Clone, Debug, PartialEq)]
enum PendingOp<T> {
    Set(Index, Index, T),
    Remove(Index, Index),
}

/// A sparse matrix stored by row (CSR).
///
/// * `row_ptr[i]..row_ptr[i+1]` indexes the entries of row `i` inside
///   `col_idx` / `values`.
/// * Column indices within a row are strictly ascending.
/// * Element updates are buffered in a pending log and merged by
///   [`SparseMatrix::wait`]; read accessors observe the log so results are
///   always up to date, at a small cost until the next `wait`.
#[derive(Clone, Debug)]
pub struct SparseMatrix<T: Scalar> {
    nrows: Index,
    ncols: Index,
    row_ptr: Vec<usize>,
    col_idx: Vec<Index>,
    values: Vec<T>,
    pending: Vec<PendingOp<T>>,
}

impl<T: Scalar> PartialEq for SparseMatrix<T> {
    fn eq(&self, other: &Self) -> bool {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return false;
        }
        let mut a = self.to_triples();
        let mut b = other.to_triples();
        a.sort_by_key(|&(r, c, _)| (r, c));
        b.sort_by_key(|&(r, c, _)| (r, c));
        a == b
    }
}

impl<T: Scalar> SparseMatrix<T> {
    /// Create an empty `nrows × ncols` matrix.
    pub fn new(nrows: Index, ncols: Index) -> Self {
        SparseMatrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows as usize + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Build a matrix from `(row, col, value)` triples. Duplicate coordinates
    /// keep the last value supplied (use [`SparseMatrix::from_triples_dup`] to
    /// combine duplicates with an operator instead).
    pub fn from_triples(
        nrows: Index,
        ncols: Index,
        triples: &[(Index, Index, T)],
    ) -> GrbResult<Self> {
        Self::build(nrows, ncols, triples, None)
    }

    /// Build a matrix from triples, combining duplicates with `dup`.
    pub fn from_triples_dup(
        nrows: Index,
        ncols: Index,
        triples: &[(Index, Index, T)],
        dup: impl Fn(T, T) -> T,
    ) -> GrbResult<Self> {
        Self::build(nrows, ncols, triples, Some(&dup))
    }

    fn build(
        nrows: Index,
        ncols: Index,
        triples: &[(Index, Index, T)],
        dup: Option<&dyn Fn(T, T) -> T>,
    ) -> GrbResult<Self> {
        for &(r, c, _) in triples {
            check_index(r, nrows)?;
            check_index(c, ncols)?;
        }
        let mut sorted: Vec<(Index, Index, T)> = triples.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = vec![0usize; nrows as usize + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());

        let mut k = 0;
        while k < sorted.len() {
            let (r, c, mut v) = sorted[k];
            while k + 1 < sorted.len() && sorted[k + 1].0 == r && sorted[k + 1].1 == c {
                k += 1;
                v = match dup {
                    Some(f) => f(v, sorted[k].2),
                    None => sorted[k].2,
                };
            }
            col_idx.push(c);
            values.push(v);
            row_ptr[r as usize + 1] += 1;
            k += 1;
        }
        for i in 0..nrows as usize {
            row_ptr[i + 1] += row_ptr[i];
        }
        Ok(SparseMatrix { nrows, ncols, row_ptr, col_idx, values, pending: Vec::new() })
    }

    /// Construct directly from CSR parts produced by a kernel. The parts must
    /// already satisfy the CSR invariants (checked in debug builds).
    pub(crate) fn from_csr_parts(
        nrows: Index,
        ncols: Index,
        row_ptr: Vec<usize>,
        col_idx: Vec<Index>,
        values: Vec<T>,
    ) -> Self {
        let m = SparseMatrix { nrows, ncols, row_ptr, col_idx, values, pending: Vec::new() };
        debug_assert!(m.check_invariants().is_ok(), "kernel produced invalid CSR");
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// True when no pending updates are buffered.
    pub fn is_flushed(&self) -> bool {
        self.pending.is_empty()
    }

    /// Number of stored entries (forces an exact count even with a pending
    /// log; call [`SparseMatrix::wait`] first on hot paths).
    pub fn nvals(&self) -> usize {
        if self.pending.is_empty() {
            return self.values.len();
        }
        // Determine the net effect of the pending log per coordinate.
        let mut net: HashMap<(Index, Index), bool> = HashMap::new();
        for op in &self.pending {
            match *op {
                PendingOp::Set(r, c, _) => {
                    net.insert((r, c), true);
                }
                PendingOp::Remove(r, c) => {
                    net.insert((r, c), false);
                }
            }
        }
        let mut count = self.values.len() as isize;
        for (&(r, c), &present) in &net {
            let stored = self.csr_get(r, c).is_some();
            match (stored, present) {
                (false, true) => count += 1,
                (true, false) => count -= 1,
                _ => {}
            }
        }
        count.max(0) as usize
    }

    fn csr_get(&self, row: Index, col: Index) -> Option<T> {
        if row >= self.nrows {
            return None;
        }
        let (start, end) = (self.row_ptr[row as usize], self.row_ptr[row as usize + 1]);
        let cols = &self.col_idx[start..end];
        cols.binary_search(&col).ok().map(|p| self.values[start + p])
    }

    /// Set (insert or overwrite) a single entry. Buffered until
    /// [`SparseMatrix::wait`].
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds; see
    /// [`SparseMatrix::try_set_element`].
    pub fn set_element(&mut self, row: Index, col: Index, value: T) {
        self.try_set_element(row, col, value).expect("index out of bounds");
    }

    /// Fallible element assignment.
    pub fn try_set_element(&mut self, row: Index, col: Index, value: T) -> GrbResult<()> {
        check_index(row, self.nrows)?;
        check_index(col, self.ncols)?;
        self.pending.push(PendingOp::Set(row, col, value));
        Ok(())
    }

    /// Delete an entry (buffered). Deleting an absent entry is a no-op.
    pub fn remove_element(&mut self, row: Index, col: Index) -> GrbResult<()> {
        check_index(row, self.nrows)?;
        check_index(col, self.ncols)?;
        self.pending.push(PendingOp::Remove(row, col));
        Ok(())
    }

    /// Read a single entry, observing any pending updates.
    pub fn extract_element(&self, row: Index, col: Index) -> Option<T> {
        for op in self.pending.iter().rev() {
            match *op {
                PendingOp::Set(r, c, v) if r == row && c == col => return Some(v),
                PendingOp::Remove(r, c) if r == row && c == col => return None,
                _ => {}
            }
        }
        self.csr_get(row, col)
    }

    /// Whether an entry is stored at `(row, col)`.
    pub fn contains(&self, row: Index, col: Index) -> bool {
        self.extract_element(row, col).is_some()
    }

    /// Fold the pending update log into the CSR structure (GraphBLAS
    /// `GrB_wait`). Cheap no-op when nothing is pending.
    pub fn wait(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        // Net effect per coordinate, last operation wins.
        let mut net: HashMap<(Index, Index), Option<T>> = HashMap::new();
        for op in self.pending.drain(..) {
            match op {
                PendingOp::Set(r, c, v) => {
                    net.insert((r, c), Some(v));
                }
                PendingOp::Remove(r, c) => {
                    net.insert((r, c), None);
                }
            }
        }
        let mut changes: Vec<((Index, Index), Option<T>)> = net.into_iter().collect();
        changes.sort_by_key(|&((r, c), _)| (r, c));

        let old_nnz = self.values.len();
        let mut new_row_ptr = Vec::with_capacity(self.row_ptr.len());
        let mut new_col_idx = Vec::with_capacity(old_nnz + changes.len());
        let mut new_values = Vec::with_capacity(old_nnz + changes.len());
        new_row_ptr.push(0usize);

        let mut ch = 0usize; // cursor into `changes`
        for row in 0..self.nrows {
            let (start, end) = (self.row_ptr[row as usize], self.row_ptr[row as usize + 1]);
            let mut k = start;
            // Merge existing row entries with this row's changes.
            while ch < changes.len() && changes[ch].0 .0 == row {
                let ((_, col), ref val) = changes[ch];
                // copy existing entries with smaller column
                while k < end && self.col_idx[k] < col {
                    new_col_idx.push(self.col_idx[k]);
                    new_values.push(self.values[k]);
                    k += 1;
                }
                // skip an existing entry at the same column (it is replaced or removed)
                if k < end && self.col_idx[k] == col {
                    k += 1;
                }
                if let Some(v) = val {
                    new_col_idx.push(col);
                    new_values.push(*v);
                }
                ch += 1;
            }
            while k < end {
                new_col_idx.push(self.col_idx[k]);
                new_values.push(self.values[k]);
                k += 1;
            }
            new_row_ptr.push(new_col_idx.len());
        }
        self.row_ptr = new_row_ptr;
        self.col_idx = new_col_idx;
        self.values = new_values;
        debug_assert!(self.check_invariants().is_ok());
    }

    /// Column indices and values of one row. Requires a flushed matrix (call
    /// [`SparseMatrix::wait`] after updates); pending updates are *not*
    /// reflected here because the slices borrow the CSR arrays directly.
    pub fn row(&self, row: Index) -> (&[Index], &[T]) {
        debug_assert!(self.is_flushed(), "row() on a matrix with pending updates");
        let (start, end) = (self.row_ptr[row as usize], self.row_ptr[row as usize + 1]);
        (&self.col_idx[start..end], &self.values[start..end])
    }

    /// Number of stored entries in one row (flushed part only).
    pub fn row_degree(&self, row: Index) -> usize {
        self.row_ptr[row as usize + 1] - self.row_ptr[row as usize]
    }

    /// Iterate over all stored entries in row-major order (flushed part only).
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, T)> + '_ {
        debug_assert!(self.is_flushed(), "iter() on a matrix with pending updates");
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = {
                let (start, end) = (self.row_ptr[r as usize], self.row_ptr[r as usize + 1]);
                (&self.col_idx[start..end], &self.values[start..end])
            };
            cols.iter().copied().zip(vals.iter().copied()).map(move |(c, v)| (r, c, v))
        })
    }

    /// Export all stored entries as `(row, col, value)` triples, including the
    /// effect of pending updates.
    pub fn to_triples(&self) -> Vec<(Index, Index, T)> {
        if self.pending.is_empty() {
            return self.iter().collect();
        }
        let mut copy = self.clone();
        copy.wait();
        copy.iter().collect()
    }

    /// Remove every stored entry, keeping the dimensions.
    pub fn clear(&mut self) {
        self.pending.clear();
        self.col_idx.clear();
        self.values.clear();
        self.row_ptr = vec![0; self.nrows as usize + 1];
    }

    /// Resize the matrix (GraphBLAS `GxB_Matrix_resize`). Growing adds empty
    /// rows/columns; shrinking drops out-of-range entries.
    pub fn resize(&mut self, nrows: Index, ncols: Index) {
        self.wait();
        if nrows >= self.nrows && ncols >= self.ncols {
            self.row_ptr.resize(nrows as usize + 1, *self.row_ptr.last().unwrap_or(&0));
            self.nrows = nrows;
            self.ncols = ncols;
            return;
        }
        let triples: Vec<_> = self.iter().filter(|&(r, c, _)| r < nrows && c < ncols).collect();
        *self = SparseMatrix::from_triples(nrows, ncols, &triples).expect("resize rebuild");
    }

    /// Internal CSR row pointer array (for kernels and tests).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Internal CSR column index array.
    pub fn col_indices(&self) -> &[Index] {
        &self.col_idx
    }

    /// Internal CSR value array.
    pub fn raw_values(&self) -> &[T] {
        &self.values
    }

    /// Validate the CSR invariants: monotone row pointers, strictly ascending
    /// in-row columns, in-bounds indices, parallel arrays of equal length.
    pub fn check_invariants(&self) -> GrbResult<()> {
        if self.row_ptr.len() != self.nrows as usize + 1 {
            return Err(GrbError::InvalidValue("row_ptr length mismatch".into()));
        }
        if self.col_idx.len() != self.values.len() {
            return Err(GrbError::InvalidValue("col/value length mismatch".into()));
        }
        if *self.row_ptr.last().unwrap() != self.col_idx.len() {
            return Err(GrbError::InvalidValue("row_ptr end != nnz".into()));
        }
        for w in self.row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(GrbError::InvalidValue("row_ptr not monotone".into()));
            }
        }
        for r in 0..self.nrows as usize {
            let row = &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(GrbError::InvalidValue(format!(
                        "row {r} columns not strictly ascending"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                check_index(last, self.ncols)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SparseMatrix<i64> {
        SparseMatrix::from_triples(3, 4, &[(0, 1, 10), (0, 3, 30), (1, 0, 5), (2, 2, 7)]).unwrap()
    }

    #[test]
    fn from_triples_builds_valid_csr() {
        let m = small();
        m.check_invariants().unwrap();
        assert_eq!(m.nvals(), 4);
        assert_eq!(m.extract_element(0, 3), Some(30));
        assert_eq!(m.extract_element(2, 2), Some(7));
        assert_eq!(m.extract_element(2, 3), None);
        assert_eq!(m.row(0).0, &[1, 3]);
    }

    #[test]
    fn from_triples_last_wins_on_duplicates() {
        let m = SparseMatrix::from_triples(2, 2, &[(0, 0, 1), (0, 0, 2), (0, 0, 3)]).unwrap();
        assert_eq!(m.nvals(), 1);
        assert_eq!(m.extract_element(0, 0), Some(3));
    }

    #[test]
    fn from_triples_dup_combines() {
        let m =
            SparseMatrix::from_triples_dup(2, 2, &[(0, 0, 1), (0, 0, 2), (1, 1, 5)], |a, b| a + b)
                .unwrap();
        assert_eq!(m.extract_element(0, 0), Some(3));
        assert_eq!(m.extract_element(1, 1), Some(5));
    }

    #[test]
    fn from_triples_rejects_out_of_bounds() {
        assert!(SparseMatrix::from_triples(2, 2, &[(2, 0, 1)]).is_err());
        assert!(SparseMatrix::from_triples(2, 2, &[(0, 2, 1)]).is_err());
    }

    #[test]
    fn pending_set_is_visible_before_wait() {
        let mut m = small();
        m.set_element(2, 3, 99);
        assert!(!m.is_flushed());
        assert_eq!(m.extract_element(2, 3), Some(99));
        assert_eq!(m.nvals(), 5);
        m.wait();
        assert!(m.is_flushed());
        assert_eq!(m.extract_element(2, 3), Some(99));
        assert_eq!(m.nvals(), 5);
        m.check_invariants().unwrap();
    }

    #[test]
    fn pending_overwrite_does_not_grow_nvals() {
        let mut m = small();
        m.set_element(0, 1, 11);
        assert_eq!(m.nvals(), 4);
        m.wait();
        assert_eq!(m.nvals(), 4);
        assert_eq!(m.extract_element(0, 1), Some(11));
    }

    #[test]
    fn pending_remove_hides_entry() {
        let mut m = small();
        m.remove_element(0, 3).unwrap();
        assert_eq!(m.extract_element(0, 3), None);
        assert_eq!(m.nvals(), 3);
        m.wait();
        assert_eq!(m.nvals(), 3);
        assert_eq!(m.row(0).0, &[1]);
    }

    #[test]
    fn set_then_remove_then_set_last_wins() {
        let mut m = SparseMatrix::<bool>::new(2, 2);
        m.set_element(0, 0, true);
        m.remove_element(0, 0).unwrap();
        m.set_element(0, 0, true);
        assert_eq!(m.extract_element(0, 0), Some(true));
        m.wait();
        assert_eq!(m.nvals(), 1);
    }

    #[test]
    fn wait_merges_multiple_rows_in_order() {
        let mut m = SparseMatrix::<i64>::new(4, 4);
        for (r, c, v) in [(3u64, 1u64, 1i64), (0, 2, 2), (2, 0, 3), (0, 0, 4), (3, 3, 5)] {
            m.set_element(r, c, v);
        }
        m.wait();
        m.check_invariants().unwrap();
        assert_eq!(m.nvals(), 5);
        assert_eq!(m.row(0).0, &[0, 2]);
        assert_eq!(m.row(3).0, &[1, 3]);
    }

    #[test]
    fn resize_grow_and_shrink() {
        let mut m = small();
        m.resize(5, 5);
        assert_eq!(m.nrows(), 5);
        assert_eq!(m.nvals(), 4);
        m.set_element(4, 4, 1);
        m.resize(2, 2);
        assert_eq!(m.nvals(), 2); // only (0,1) and (1,0) survive
        assert_eq!(m.extract_element(0, 1), Some(10));
        assert_eq!(m.extract_element(1, 0), Some(5));
        m.check_invariants().unwrap();
    }

    #[test]
    fn clear_removes_everything() {
        let mut m = small();
        m.set_element(1, 1, 1);
        m.clear();
        assert_eq!(m.nvals(), 0);
        assert_eq!(m.nrows(), 3);
        m.check_invariants().unwrap();
    }

    #[test]
    fn equality_ignores_representation() {
        let a = small();
        let mut b = SparseMatrix::new(3, 4);
        for (r, c, v) in a.to_triples() {
            b.set_element(r, c, v);
        }
        assert_eq!(a, b); // b still has a pending log
    }

    #[test]
    fn iteration_is_row_major_sorted() {
        let m = small();
        let triples: Vec<_> = m.iter().collect();
        let mut sorted = triples.clone();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        assert_eq!(triples, sorted);
    }
}
