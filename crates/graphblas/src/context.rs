//! Global execution context (`GxB_Context` / `GxB_set(GxB_NTHREADS, …)`).
//!
//! SuiteSparse:GraphBLAS lets the caller cap the number of OpenMP threads its
//! kernels use. RedisGraph sets this to 1 so that every query runs on exactly
//! one core and concurrency comes from the module threadpool instead. We expose
//! the same knob: a process-wide default plus per-call overrides through
//! [`crate::Descriptor::nthreads`].

// The crossbeam shim resolves to std atomics in normal builds and to the
// model checker's instrumented atomics under `--features model`.
use crossbeam::atomic::{AtomicUsize, Ordering};

static GLOBAL_NTHREADS: AtomicUsize = AtomicUsize::new(1);

/// Handle for configuring library-wide execution parameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct Context;

impl Context {
    /// Set the default number of threads used by parallel kernels (mxm over
    /// large matrices). A value of `0` is clamped to `1`.
    ///
    /// RedisGraph loads the library with `nthreads = 1` — intra-query
    /// parallelism off — and scales throughput with its own threadpool.
    pub fn set_nthreads(n: usize) {
        GLOBAL_NTHREADS.store(n.max(1), Ordering::Relaxed);
    }

    /// Current default number of threads for parallel kernels.
    pub fn nthreads() -> usize {
        GLOBAL_NTHREADS.load(Ordering::Relaxed)
    }

    /// Number of hardware threads available on this machine (best effort).
    pub fn hardware_threads() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Split `0..n` into at most `parts` contiguous, nearly equal chunks.
/// Used by the parallel kernels to partition rows across worker threads.
pub fn partition_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len == 0 {
            continue;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_range_exactly() {
        for n in [0usize, 1, 5, 16, 17, 1000] {
            for parts in [1usize, 2, 3, 7, 8] {
                let ranges = partition_ranges(n, parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} parts={parts}");
                // contiguity
                let mut expected = 0;
                for r in &ranges {
                    assert_eq!(r.start, expected);
                    expected = r.end;
                }
            }
        }
    }

    #[test]
    fn partition_never_exceeds_requested_parts() {
        assert!(partition_ranges(3, 8).len() <= 3);
        assert_eq!(partition_ranges(8, 4).len(), 4);
    }

    #[test]
    fn nthreads_clamped_to_one() {
        Context::set_nthreads(0);
        assert_eq!(Context::nthreads(), 1);
        Context::set_nthreads(2);
        assert_eq!(Context::nthreads(), 2);
        Context::set_nthreads(1);
    }
}
