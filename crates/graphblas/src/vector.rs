//! Sparse vectors (`GrB_Vector`), stored as parallel sorted index/value arrays.

use crate::error::{check_index, GrbError, GrbResult};
use crate::types::Scalar;
use crate::Index;

/// A sparse vector of logical length `size` holding `nvals` stored entries.
///
/// Entries are kept in index-sorted order; `set_element` on an existing index
/// overwrites its value (GraphBLAS `GrB_Vector_setElement` semantics).
#[derive(Clone, Debug, PartialEq)]
pub struct SparseVector<T: Scalar> {
    size: Index,
    indices: Vec<Index>,
    values: Vec<T>,
}

impl<T: Scalar> SparseVector<T> {
    /// Create an empty sparse vector of logical length `size`.
    pub fn new(size: Index) -> Self {
        SparseVector { size, indices: Vec::new(), values: Vec::new() }
    }

    /// Create a vector from unsorted `(index, value)` pairs. Duplicate indices
    /// keep the *last* value supplied.
    pub fn from_entries(size: Index, entries: &[(Index, T)]) -> GrbResult<Self> {
        let mut v = SparseVector::new(size);
        let mut sorted: Vec<(Index, T)> = Vec::with_capacity(entries.len());
        for &(i, val) in entries {
            check_index(i, size)?;
            sorted.push((i, val));
        }
        // stable sort so that "last wins" can be resolved by taking the final
        // occurrence of each index
        sorted.sort_by_key(|&(i, _)| i);
        let mut k = 0;
        while k < sorted.len() {
            let i = sorted[k].0;
            let mut last = sorted[k].1;
            while k + 1 < sorted.len() && sorted[k + 1].0 == i {
                k += 1;
                last = sorted[k].1;
            }
            v.indices.push(i);
            v.values.push(last);
            k += 1;
        }
        Ok(v)
    }

    /// Build a vector directly from pre-sorted, duplicate-free parallel arrays.
    /// Intended for kernels that have already produced sorted output.
    pub(crate) fn from_sorted_parts(size: Index, indices: Vec<Index>, values: Vec<T>) -> Self {
        debug_assert_eq!(indices.len(), values.len());
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(indices.last().map(|&i| i < size).unwrap_or(true));
        SparseVector { size, indices, values }
    }

    /// Logical length of the vector.
    pub fn size(&self) -> Index {
        self.size
    }

    /// Number of stored entries.
    pub fn nvals(&self) -> usize {
        self.indices.len()
    }

    /// True if the vector holds no entries.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Remove all stored entries, keeping the logical size.
    pub fn clear(&mut self) {
        self.indices.clear();
        self.values.clear();
    }

    /// Set (insert or overwrite) a single entry.
    ///
    /// # Panics
    /// Panics if `index >= size()`; use [`SparseVector::try_set_element`] for a
    /// fallible variant.
    pub fn set_element(&mut self, index: Index, value: T) {
        self.try_set_element(index, value).expect("index out of bounds");
    }

    /// Fallible entry assignment.
    pub fn try_set_element(&mut self, index: Index, value: T) -> GrbResult<()> {
        check_index(index, self.size)?;
        match self.indices.binary_search(&index) {
            Ok(pos) => self.values[pos] = value,
            Err(pos) => {
                self.indices.insert(pos, index);
                self.values.insert(pos, value);
            }
        }
        Ok(())
    }

    /// Delete an entry if present; returns whether an entry was removed.
    pub fn remove_element(&mut self, index: Index) -> bool {
        match self.indices.binary_search(&index) {
            Ok(pos) => {
                self.indices.remove(pos);
                self.values.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Read an entry; `None` if it is not stored (a structural zero).
    pub fn extract_element(&self, index: Index) -> Option<T> {
        self.indices.binary_search(&index).ok().map(|pos| self.values[pos])
    }

    /// Whether the entry at `index` is stored.
    pub fn contains(&self, index: Index) -> bool {
        self.indices.binary_search(&index).is_ok()
    }

    /// Iterate over stored `(index, value)` pairs in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, T)> + '_ {
        self.indices.iter().copied().zip(self.values.iter().copied())
    }

    /// Stored indices (ascending).
    pub fn indices(&self) -> &[Index] {
        &self.indices
    }

    /// Stored values, parallel to [`SparseVector::indices`].
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Grow or shrink the logical size. Shrinking drops entries beyond the new
    /// size (GraphBLAS `GxB_Vector_resize` semantics).
    pub fn resize(&mut self, new_size: Index) {
        if new_size < self.size {
            let keep = self.indices.partition_point(|&i| i < new_size);
            self.indices.truncate(keep);
            self.values.truncate(keep);
        }
        self.size = new_size;
    }

    /// Densify into a `Vec<Option<T>>` of length `size` (for small vectors and
    /// tests; not used by the hot kernels).
    pub fn to_dense(&self) -> Vec<Option<T>> {
        let mut out = vec![None; self.size as usize];
        for (i, v) in self.iter() {
            out[i as usize] = Some(v);
        }
        out
    }

    /// Extract all stored entries as a vector of `(index, value)` tuples.
    pub fn to_entries(&self) -> Vec<(Index, T)> {
        self.iter().collect()
    }

    /// Fill every position `0..size` with `value` (a dense assignment,
    /// `GrB_Vector_assign` with `GrB_ALL`).
    pub fn assign_all(&mut self, value: T) {
        self.indices = (0..self.size).collect();
        self.values = vec![value; self.size as usize];
    }

    /// Validate internal invariants (sorted, unique, in-bounds). Used by tests
    /// and debug assertions.
    pub fn check_invariants(&self) -> GrbResult<()> {
        if self.indices.len() != self.values.len() {
            return Err(GrbError::InvalidValue("index/value length mismatch".into()));
        }
        for w in self.indices.windows(2) {
            if w[0] >= w[1] {
                return Err(GrbError::InvalidValue("indices not strictly ascending".into()));
            }
        }
        if let Some(&last) = self.indices.last() {
            check_index(last, self.size)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_vector_is_empty() {
        let v = SparseVector::<f64>::new(10);
        assert_eq!(v.size(), 10);
        assert_eq!(v.nvals(), 0);
        assert!(v.is_empty());
    }

    #[test]
    fn set_and_extract_roundtrip() {
        let mut v = SparseVector::new(8);
        v.set_element(3, 1.5);
        v.set_element(0, 2.5);
        v.set_element(7, 3.5);
        assert_eq!(v.nvals(), 3);
        assert_eq!(v.extract_element(3), Some(1.5));
        assert_eq!(v.extract_element(1), None);
        assert_eq!(v.indices(), &[0, 3, 7]);
        v.check_invariants().unwrap();
    }

    #[test]
    fn set_overwrites_existing_entry() {
        let mut v = SparseVector::new(4);
        v.set_element(2, 1);
        v.set_element(2, 9);
        assert_eq!(v.nvals(), 1);
        assert_eq!(v.extract_element(2), Some(9));
    }

    #[test]
    fn out_of_bounds_set_fails() {
        let mut v = SparseVector::new(4);
        assert!(v.try_set_element(4, 1.0).is_err());
        assert!(v.try_set_element(3, 1.0).is_ok());
    }

    #[test]
    fn from_entries_sorts_and_dedups_last_wins() {
        let v = SparseVector::from_entries(10, &[(5, 1), (2, 2), (5, 3), (9, 4)]).unwrap();
        assert_eq!(v.indices(), &[2, 5, 9]);
        assert_eq!(v.extract_element(5), Some(3));
        v.check_invariants().unwrap();
    }

    #[test]
    fn from_entries_rejects_out_of_bounds() {
        assert!(SparseVector::from_entries(3, &[(3, 1)]).is_err());
    }

    #[test]
    fn remove_element_works() {
        let mut v = SparseVector::from_entries(5, &[(1, 1), (3, 3)]).unwrap();
        assert!(v.remove_element(1));
        assert!(!v.remove_element(1));
        assert_eq!(v.nvals(), 1);
        assert_eq!(v.extract_element(3), Some(3));
    }

    #[test]
    fn resize_shrinks_and_drops_entries() {
        let mut v = SparseVector::from_entries(10, &[(1, 1), (8, 8)]).unwrap();
        v.resize(5);
        assert_eq!(v.size(), 5);
        assert_eq!(v.nvals(), 1);
        assert_eq!(v.extract_element(8), None);
        v.resize(20);
        assert_eq!(v.size(), 20);
        assert_eq!(v.nvals(), 1);
    }

    #[test]
    fn dense_conversion() {
        let v = SparseVector::from_entries(4, &[(0, true), (2, true)]).unwrap();
        assert_eq!(v.to_dense(), vec![Some(true), None, Some(true), None]);
    }

    #[test]
    fn assign_all_fills_vector() {
        let mut v = SparseVector::<i32>::new(5);
        v.assign_all(7);
        assert_eq!(v.nvals(), 5);
        assert!(v.iter().all(|(_, x)| x == 7));
    }
}
