//! Property-based tests for the GraphBLAS data structures and kernels.
//!
//! The properties mirror the algebraic identities the library is supposed to
//! satisfy: CSR invariants after arbitrary update sequences, agreement between
//! sparse kernels and dense reference implementations, transpose involution,
//! and semiring identities used by the traversal engine.

use graphblas::prelude::*;
use proptest::prelude::*;

const DIM: u64 = 12;
/// Rectangular dimensions for the transpose tests (shape must round-trip too).
const RDIM_ROWS: u64 = 9;
const RDIM_COLS: u64 = 13;

/// Strategy: a list of in-bounds (row, col, value) triples.
fn triples() -> impl Strategy<Value = Vec<(u64, u64, i64)>> {
    prop::collection::vec(((0..DIM), (0..DIM), -100i64..100), 0..80)
}

/// Strategy: triples in bounds for a rectangular `RDIM_ROWS × RDIM_COLS` matrix.
fn rect_triples() -> impl Strategy<Value = Vec<(u64, u64, i64)>> {
    prop::collection::vec(((0..RDIM_ROWS), (0..RDIM_COLS), -100i64..100), 0..80)
}

/// Dense reference multiply under plus_times.
fn dense_mxm(a: &SparseMatrix<i64>, b: &SparseMatrix<i64>) -> Vec<Vec<i64>> {
    let mut da = vec![vec![0i64; DIM as usize]; DIM as usize];
    let mut db = vec![vec![0i64; DIM as usize]; DIM as usize];
    for (r, c, v) in a.to_triples() {
        da[r as usize][c as usize] = v;
    }
    for (r, c, v) in b.to_triples() {
        db[r as usize][c as usize] = v;
    }
    let mut dc = vec![vec![0i64; DIM as usize]; DIM as usize];
    for i in 0..DIM as usize {
        for k in 0..DIM as usize {
            if da[i][k] == 0 {
                continue;
            }
            for j in 0..DIM as usize {
                dc[i][j] = dc[i][j].wrapping_add(da[i][k].wrapping_mul(db[k][j]));
            }
        }
    }
    dc
}

proptest! {
    #[test]
    fn matrix_invariants_hold_after_arbitrary_updates(ops in triples(), removals in prop::collection::vec(((0..DIM), (0..DIM)), 0..20)) {
        let mut m = SparseMatrix::<i64>::new(DIM, DIM);
        for &(r, c, v) in &ops {
            m.set_element(r, c, v);
        }
        for &(r, c) in &removals {
            m.remove_element(r, c).unwrap();
        }
        m.wait();
        prop_assert!(m.check_invariants().is_ok());
        // Every removed coordinate that was not re-set afterwards must be absent.
        for &(r, c) in &removals {
            if !ops.is_empty() {
                // (ordering: all sets happen before removals in this test)
                prop_assert!(m.extract_element(r, c).is_none());
            }
        }
    }

    #[test]
    fn set_then_get_roundtrip(ops in triples()) {
        let mut m = SparseMatrix::<i64>::new(DIM, DIM);
        let mut last = std::collections::HashMap::new();
        for &(r, c, v) in &ops {
            m.set_element(r, c, v);
            last.insert((r, c), v);
        }
        // visible both before and after wait()
        for (&(r, c), &v) in &last {
            prop_assert_eq!(m.extract_element(r, c), Some(v));
        }
        m.wait();
        prop_assert_eq!(m.nvals(), last.len());
        for (&(r, c), &v) in &last {
            prop_assert_eq!(m.extract_element(r, c), Some(v));
        }
    }

    #[test]
    fn transpose_is_an_involution(ts in triples()) {
        let m = SparseMatrix::from_triples(DIM, DIM, &ts).unwrap();
        let tt = transpose(&transpose(&m));
        prop_assert_eq!(tt, m);
    }

    #[test]
    fn transpose_swaps_every_entry(ts in triples()) {
        let m = SparseMatrix::from_triples(DIM, DIM, &ts).unwrap();
        let t = transpose(&m);
        for (r, c, v) in m.to_triples() {
            prop_assert_eq!(t.extract_element(c, r), Some(v));
        }
        prop_assert_eq!(t.nvals(), m.nvals());
    }

    #[test]
    fn mxm_plus_times_matches_dense_reference(ta in triples(), tb in triples()) {
        let a = SparseMatrix::from_triples_dup(DIM, DIM, &ta, |x, y| x.wrapping_add(y)).unwrap();
        let b = SparseMatrix::from_triples_dup(DIM, DIM, &tb, |x, y| x.wrapping_add(y)).unwrap();
        let c = mxm(&a, &b, &Semiring::plus_times(), None, &Descriptor::default());
        let dc = dense_mxm(&a, &b);
        for i in 0..DIM {
            for j in 0..DIM {
                let sparse = c.extract_element(i, j).unwrap_or(0);
                // A stored explicit zero is allowed; value must match the dense result.
                prop_assert_eq!(sparse, dc[i as usize][j as usize], "mismatch at ({}, {})", i, j);
            }
        }
    }

    #[test]
    fn parallel_mxm_equals_serial(ta in triples(), tb in triples()) {
        let a = SparseMatrix::from_triples(DIM, DIM, &ta).unwrap();
        let b = SparseMatrix::from_triples(DIM, DIM, &tb).unwrap();
        let serial = mxm(&a, &b, &Semiring::plus_times(), None, &Descriptor::new().with_nthreads(1));
        let parallel = mxm(&a, &b, &Semiring::plus_times(), None, &Descriptor::new().with_nthreads(3));
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn vxm_equals_row_of_mxm(ts in triples(), src in 0..DIM) {
        // Multiplying by an indicator vector e_src must equal extracting row src
        // of A (over any semiring; we use plus_times).
        let a = SparseMatrix::from_triples(DIM, DIM, &ts).unwrap();
        let mut e = SparseVector::<i64>::new(DIM);
        e.set_element(src, 1);
        let w = vxm(&e, &a, &Semiring::plus_times(), None, &Descriptor::default());
        let row = extract_row(&a, src).unwrap();
        prop_assert_eq!(w.to_entries(), row.to_entries());
    }

    #[test]
    fn ewise_add_is_commutative_and_counts_union(ta in triples(), tb in triples()) {
        let a = SparseMatrix::from_triples(DIM, DIM, &ta).unwrap();
        let b = SparseMatrix::from_triples(DIM, DIM, &tb).unwrap();
        let ab = ewise_add_matrix(&a, &b, &BinaryOp::Plus);
        let ba = ewise_add_matrix(&b, &a, &BinaryOp::Plus);
        prop_assert_eq!(&ab, &ba);
        // union pattern size
        let mut coords: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
        coords.extend(a.to_triples().iter().map(|&(r, c, _)| (r, c)));
        coords.extend(b.to_triples().iter().map(|&(r, c, _)| (r, c)));
        prop_assert_eq!(ab.nvals(), coords.len());
    }

    #[test]
    fn ewise_mult_pattern_is_intersection(ta in triples(), tb in triples()) {
        let a = SparseMatrix::from_triples(DIM, DIM, &ta).unwrap();
        let b = SparseMatrix::from_triples(DIM, DIM, &tb).unwrap();
        let m = ewise_mult_matrix(&a, &b, &BinaryOp::Times);
        let pa: std::collections::HashSet<_> = a.to_triples().iter().map(|&(r, c, _)| (r, c)).collect();
        let pb: std::collections::HashSet<_> = b.to_triples().iter().map(|&(r, c, _)| (r, c)).collect();
        prop_assert_eq!(m.nvals(), pa.intersection(&pb).count());
    }

    #[test]
    fn reduce_matrix_scalar_equals_sum_of_triples(ts in triples()) {
        let a = SparseMatrix::from_triples_dup(DIM, DIM, &ts, |x, y| x.wrapping_add(y)).unwrap();
        let total: i64 = a.to_triples().iter().map(|&(_, _, v)| v).sum();
        prop_assert_eq!(reduce_matrix_to_scalar(&a, &graphblas::monoid::plus_monoid()), total);
    }

    #[test]
    fn masked_mxm_is_subset_of_unmasked(ta in triples(), tb in triples(), tm in triples()) {
        let a = SparseMatrix::from_triples(DIM, DIM, &ta).unwrap();
        let b = SparseMatrix::from_triples(DIM, DIM, &tb).unwrap();
        let mask_pattern: Vec<_> = tm.iter().map(|&(r, c, _)| (r, c, true)).collect();
        let mask_m = SparseMatrix::from_triples(DIM, DIM, &mask_pattern).unwrap();
        let mask = MatrixMask::new(&mask_m);
        let unmasked = mxm(&a, &b, &Semiring::plus_times(), None, &Descriptor::default());
        let masked = mxm(&a, &b, &Semiring::plus_times(), Some(&mask), &Descriptor::default());
        prop_assert!(masked.nvals() <= unmasked.nvals());
        for (r, c, v) in masked.to_triples() {
            prop_assert_eq!(unmasked.extract_element(r, c), Some(v));
            prop_assert!(mask_m.contains(r, c));
        }
    }

    #[test]
    fn transpose_involution_holds_on_rectangular_matrices(ts in rect_triples()) {
        let m = SparseMatrix::from_triples(RDIM_ROWS, RDIM_COLS, &ts).unwrap();
        let t = transpose(&m);
        prop_assert_eq!(t.nrows(), RDIM_COLS);
        prop_assert_eq!(t.ncols(), RDIM_ROWS);
        prop_assert!(t.check_invariants().is_ok());
        let tt = transpose(&t);
        prop_assert_eq!(tt, m);
    }

    #[test]
    fn mxv_matches_dense_reference(ts in triples(), entries in prop::collection::vec(((0..DIM), -50i64..50), 0..24)) {
        let a = SparseMatrix::from_triples(DIM, DIM, &ts).unwrap();
        let mut u = SparseVector::<i64>::new(DIM);
        for &(j, x) in &entries {
            u.set_element(j, x);
        }
        let w = mxv(&a, &u, &Semiring::plus_times(), None, &Descriptor::default());
        // Dense reference: w[i] = Σ_j a[i][j] * u[j], absent ⇔ no stored a[i][j]
        // meets a stored u[j] (GraphBLAS keeps structural zeros out of the result).
        let dense_u: Vec<Option<i64>> = u.to_dense();
        for i in 0..DIM {
            let (cols, vals) = a.row(i);
            let mut acc: Option<i64> = None;
            for (&j, &av) in cols.iter().zip(vals.iter()) {
                if let Some(uv) = dense_u[j as usize] {
                    acc = Some(acc.unwrap_or(0).wrapping_add(av.wrapping_mul(uv)));
                }
            }
            prop_assert_eq!(w.extract_element(i), acc, "row {}", i);
        }
    }

    #[test]
    fn mxv_agrees_with_mxm_columns(ta in triples(), tb in triples()) {
        // Multiplying A by each column of B must reproduce the corresponding
        // column of A ⊕.⊗ B — the defining relation between mxv and mxm.
        let a = SparseMatrix::from_triples(DIM, DIM, &ta).unwrap();
        let b = SparseMatrix::from_triples(DIM, DIM, &tb).unwrap();
        let c = mxm(&a, &b, &Semiring::plus_times(), None, &Descriptor::default());
        for j in 0..DIM {
            let b_col = extract_col(&b, j).unwrap();
            let w = mxv(&a, &b_col, &Semiring::plus_times(), None, &Descriptor::default());
            let c_col = extract_col(&c, j).unwrap();
            prop_assert_eq!(w.to_entries(), c_col.to_entries(), "column {}", j);
        }
    }

    #[test]
    fn mxv_on_explicit_transpose_equals_vxm(ts in triples(), entries in prop::collection::vec(((0..DIM), -50i64..50), 0..24)) {
        // Pull traversal over Aᵀ and push traversal over A are the same map:
        // Aᵀ ⊕.⊗ u == u ⊕.⊗ A.
        let a = SparseMatrix::from_triples(DIM, DIM, &ts).unwrap();
        let mut u = SparseVector::<i64>::new(DIM);
        for &(j, x) in &entries {
            u.set_element(j, x);
        }
        let pull = mxv(&transpose(&a), &u, &Semiring::plus_times(), None, &Descriptor::default());
        let push = vxm(&u, &a, &Semiring::plus_times(), None, &Descriptor::default());
        prop_assert_eq!(pull.to_entries(), push.to_entries());
    }

    #[test]
    fn mxv_indicator_extracts_matrix_columns(ts in triples(), col in 0..DIM) {
        // A ⊕.⊗ e_col over plus_times is exactly column `col` of A.
        let a = SparseMatrix::from_triples(DIM, DIM, &ts).unwrap();
        let mut e = SparseVector::<i64>::new(DIM);
        e.set_element(col, 1);
        let w = mxv(&a, &e, &Semiring::plus_times(), None, &Descriptor::default());
        let column = extract_col(&a, col).unwrap();
        prop_assert_eq!(w.to_entries(), column.to_entries());
    }

    #[test]
    fn vector_updates_preserve_invariants(entries in prop::collection::vec(((0..DIM), -50i64..50), 0..40)) {
        let mut v = SparseVector::<i64>::new(DIM);
        let mut last = std::collections::HashMap::new();
        for &(i, x) in &entries {
            v.set_element(i, x);
            last.insert(i, x);
        }
        v.check_invariants().unwrap();
        prop_assert_eq!(v.nvals(), last.len());
        for (&i, &x) in &last {
            prop_assert_eq!(v.extract_element(i), Some(x));
        }
    }
}
