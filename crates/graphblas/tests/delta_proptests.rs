//! Differential property tests for [`graphblas::DeltaMatrix`].
//!
//! Every test drives a delta matrix with a random interleaving of
//! set / delete / flush operations and checks it element-for-element against
//! eager application of the same sequence:
//!
//! * a dense `HashMap` reference (the simplest possible oracle);
//! * an eagerly-flushed [`SparseMatrix`] (`wait()` after every mutation);
//! * an eager `DeltaMatrix` with `flush_threshold = 1`.
//!
//! Flushes are injected at arbitrary points in the sequence, and small
//! auto-flush thresholds force additional flushes mid-stream, so the
//! delete-of-pending-insert / insert-over-pending-delete transitions are all
//! exercised with every possible buffer state.

use graphblas::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

const DIM: u64 = 10;

/// One scripted operation: `kind` 0–3 = set, 4–5 = remove, 6 = explicit flush
/// (sets are over-weighted so matrices actually fill up).
type ScriptedOp = (u8, u64, u64, i64);

fn ops() -> impl Strategy<Value = Vec<ScriptedOp>> {
    prop::collection::vec((0u8..7, 0..DIM, 0..DIM, -50i64..50), 0..120)
}

/// Apply one scripted op to the delta matrix under test and to the oracles.
fn apply(
    op: ScriptedOp,
    delta: &mut DeltaMatrix<i64>,
    dense: &mut HashMap<(u64, u64), i64>,
    eager: &mut SparseMatrix<i64>,
) {
    let (kind, r, c, v) = op;
    match kind {
        0..=3 => {
            delta.set_element(r, c, v);
            dense.insert((r, c), v);
            eager.set_element(r, c, v);
        }
        4 | 5 => {
            delta.remove_element(r, c).unwrap();
            dense.remove(&(r, c));
            eager.remove_element(r, c).unwrap();
        }
        _ => delta.flush(),
    }
    eager.wait();
}

/// Assert the delta matrix's merged view equals the dense reference,
/// element-wise over the full index space.
fn assert_matches_dense(
    delta: &DeltaMatrix<i64>,
    dense: &HashMap<(u64, u64), i64>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(delta.nvals(), dense.len());
    for r in 0..DIM {
        for c in 0..DIM {
            prop_assert_eq!(
                delta.extract_element(r, c),
                dense.get(&(r, c)).copied(),
                "mismatch at ({}, {})",
                r,
                c
            );
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn interleaved_ops_match_dense_reference(script in ops(), threshold in 1usize..40) {
        let mut delta = DeltaMatrix::<i64>::new(DIM, DIM);
        delta.set_flush_threshold(threshold);
        let mut dense = HashMap::new();
        let mut eager = SparseMatrix::<i64>::new(DIM, DIM);
        for &op in &script {
            apply(op, &mut delta, &mut dense, &mut eager);
            delta.check_invariants().map_err(|e| TestCaseError::fail(format!("{e}")))?;
        }
        // Merged view agrees with both oracles at the end of the script…
        assert_matches_dense(&delta, &dense)?;
        prop_assert_eq!(delta.to_triples(), eager.to_triples());
        // …and still does after a final flush collapses the buffers.
        delta.flush();
        assert_matches_dense(&delta, &dense)?;
        prop_assert_eq!(delta.main().to_triples(), eager.to_triples());
    }

    #[test]
    fn flush_at_arbitrary_point_is_transparent(script in ops(), cut in 0usize..120) {
        // Two runs of the same script: one flushes at an arbitrary mid-point,
        // the other never flushes (huge threshold). Readers must not be able
        // to tell them apart.
        let mut flushed = DeltaMatrix::<i64>::new(DIM, DIM);
        let mut buffered = DeltaMatrix::<i64>::new(DIM, DIM);
        flushed.set_flush_threshold(usize::MAX);
        buffered.set_flush_threshold(usize::MAX);
        let mut dense = HashMap::new();
        let mut eager = SparseMatrix::<i64>::new(DIM, DIM);
        for (i, &op) in script.iter().enumerate() {
            apply(op, &mut flushed, &mut dense, &mut eager);
            let (kind, r, c, v) = op;
            match kind {
                0..=3 => buffered.set_element(r, c, v),
                4 | 5 => buffered.remove_element(r, c).unwrap(),
                _ => {} // explicit flush: a no-op difference by design
            }
            if i == cut {
                flushed.flush();
            }
        }
        assert_matches_dense(&flushed, &dense)?;
        prop_assert_eq!(flushed.to_triples(), buffered.to_triples());
        prop_assert_eq!(flushed.nvals(), buffered.nvals());
    }

    #[test]
    fn delete_of_pending_insert_cases(coords in prop::collection::vec((0..DIM, 0..DIM), 1..20)) {
        // For every coordinate: insert while absent, delete while pending,
        // re-insert, flush, delete while stored, re-insert over the pending
        // delete — the full transition diagram of one cell.
        let mut delta = DeltaMatrix::<i64>::new(DIM, DIM);
        delta.set_flush_threshold(usize::MAX);
        let mut dense = HashMap::new();
        for (i, &(r, c)) in coords.iter().enumerate() {
            let v = i as i64;
            delta.set_element(r, c, v);
            dense.insert((r, c), v);
            delta.remove_element(r, c).unwrap();
            dense.remove(&(r, c));
            delta.set_element(r, c, v + 1);
            dense.insert((r, c), v + 1);
            delta.check_invariants().map_err(|e| TestCaseError::fail(format!("{e}")))?;
        }
        delta.flush();
        for &(r, c) in &coords {
            delta.remove_element(r, c).unwrap();
            dense.remove(&(r, c));
            delta.set_element(r, c, -1);
            dense.insert((r, c), -1);
        }
        delta.check_invariants().map_err(|e| TestCaseError::fail(format!("{e}")))?;
        assert_matches_dense(&delta, &dense)?;
    }

    #[test]
    fn row_iter_matches_dense_rows(script in ops()) {
        let mut delta = DeltaMatrix::<i64>::new(DIM, DIM);
        delta.set_flush_threshold(usize::MAX);
        let mut dense = HashMap::new();
        let mut eager = SparseMatrix::<i64>::new(DIM, DIM);
        for &op in &script {
            apply(op, &mut delta, &mut dense, &mut eager);
        }
        for r in 0..DIM {
            let merged: Vec<(u64, i64)> = delta.row_iter(r).collect();
            let mut expected: Vec<(u64, i64)> = dense
                .iter()
                .filter(|&(&(row, _), _)| row == r)
                .map(|(&(_, c), &v)| (c, v))
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(merged, expected, "row {} diverged", r);
        }
    }

    #[test]
    fn export_and_view_match_merged_state(script in ops(), threshold in 1usize..60) {
        let mut delta = DeltaMatrix::<i64>::new(DIM, DIM);
        delta.set_flush_threshold(threshold);
        let mut dense = HashMap::new();
        let mut eager = SparseMatrix::<i64>::new(DIM, DIM);
        for &op in &script {
            apply(op, &mut delta, &mut dense, &mut eager);
        }
        let exported = delta.export();
        exported.check_invariants().map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(&exported, &eager);
        prop_assert_eq!(delta.view().to_triples(), eager.to_triples());
    }
}
