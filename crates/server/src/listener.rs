//! The TCP front door: a [`GraphServer`] binds a listener, accepts
//! connections up to the configured cap, and hands each socket to the
//! framing loop in [`crate::conn`]. This is the layer that turns the
//! in-process reproduction into what the paper actually describes — a
//! server RedisGraph clients reach over a real socket.
//!
//! Shutdown protocol (triggered by [`GraphServer::shutdown`], a client's
//! `SHUTDOWN` command, or the binary's signal handler):
//!
//! 1. the shutdown flag flips; the accept loop stops accepting;
//! 2. every connection thread notices within its read-timeout tick,
//!    finishes writing the replies of any batch it already dispatched
//!    (in-flight queries drain — nothing is dropped mid-pipeline), and
//!    closes its socket;
//! 3. the accept thread joins the connection threads, the worker pool is
//!    drained, and `shutdown` returns.

use crate::conn::serve_connection;
use crate::metrics::Metrics;
use crate::resp::RespValue;
use crate::server::{RedisGraphServer, ServerConfig};
use crossbeam::atomic::{AtomicBool, Ordering};
use crossbeam::thread::JoinHandle;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// How long [`GraphServer::shutdown`] waits for the worker pool to drain
/// queries whose connections died before collecting their replies.
const POOL_DRAIN_TIMEOUT: Duration = Duration::from_secs(30);

/// A running TCP server: accept loop + per-connection framing threads in
/// front of a [`RedisGraphServer`].
pub struct GraphServer {
    server: Arc<RedisGraphServer>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl GraphServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting connections for a freshly created [`RedisGraphServer`].
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> io::Result<GraphServer> {
        GraphServer::bind_with(addr, Arc::new(RedisGraphServer::new(config)))
    }

    /// Bind `addr` and serve an existing [`RedisGraphServer`] — the hook for
    /// preloading graphs (benchmarks, the binary's `--preload-scale`) through
    /// the in-process API before the first client connects.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        server: Arc<RedisGraphServer>,
    ) -> io::Result<GraphServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking accept, polled: the loop stays responsive to the
        // shutdown flag without signals or a self-connect wakeup.
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let max_connections = server.config().max_connections.max(1);

        let accept_thread = {
            let server = server.clone();
            let shutdown = shutdown.clone();
            // Spawn failure (thread exhaustion) surfaces as the bind error it
            // is, instead of taking the process down.
            crossbeam::thread::Builder::new()
                .name("redisgraph-accept".to_string())
                .spawn(move || accept_loop(listener, server, shutdown, max_connections))?
        };

        Ok(GraphServer { server, addr, shutdown, accept_thread: Some(accept_thread) })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying command server (keyspace, config, pool) — used to
    /// preload graphs or inspect state from the owning process.
    pub fn server(&self) -> &Arc<RedisGraphServer> {
        &self.server
    }

    /// Number of currently served connections (the metrics registry's
    /// `connections_active` gauge, which also backs the `maxclients` cap).
    pub fn active_connections(&self) -> usize {
        self.server.metrics().connections_active.load(Ordering::SeqCst) as usize
    }

    /// Whether a shutdown has been requested (by [`GraphServer::shutdown`],
    /// a client's `SHUTDOWN` command, or a signal handler flipping the flag).
    pub fn is_shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Request a graceful stop without blocking for it (signal-handler safe
    /// via the returned flag: clone it and store `true` from anywhere).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// Gracefully stop: refuse new connections, let every connection finish
    /// the pipeline batch it is serving (in-flight queries drain), close all
    /// sockets, drain the worker pool, and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Block until someone requests shutdown (`SHUTDOWN` command over the
    /// wire, or the flag from [`GraphServer::shutdown_flag`] flipped by a
    /// signal handler), then perform the graceful stop.
    pub fn wait(mut self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            crossbeam::thread::sleep(Duration::from_millis(50));
        }
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Belt and braces: queries whose connection died before reading the
        // reply may still be executing; do not tear state down under them.
        self.server.pool().wait_idle(POOL_DRAIN_TIMEOUT);
    }
}

impl Drop for GraphServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Accept until shutdown; join every connection thread before returning so
/// the drain in [`GraphServer::shutdown`] is complete when the accept thread
/// is joined.
fn accept_loop(
    listener: TcpListener,
    server: Arc<RedisGraphServer>,
    shutdown: Arc<AtomicBool>,
    max_connections: usize,
) {
    let metrics = Arc::clone(server.metrics());
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Reap finished connection threads so the handle list does
                // not grow with the total connection count.
                conn_threads.retain(|h| !h.is_finished());
                // Claim a slot atomically (compare-exchange in the metrics
                // registry): a load-then-add here would let two admissions
                // race past the cap.
                if !metrics.try_acquire_connection(max_connections as u64) {
                    // Over the cap: greet with an error and hang up, like
                    // Redis' `maxclients` behaviour.
                    metrics.connections_refused.fetch_add(1, Ordering::SeqCst);
                    refuse_connection(stream);
                    continue;
                }
                /// Releases the connection slot (the registry's
                /// `connections_active` gauge) on drop, so a panic escaping
                /// `serve_connection` cannot permanently leak it.
                struct SlotGuard(Arc<Metrics>);
                impl Drop for SlotGuard {
                    fn drop(&mut self) {
                        self.0.release_connection();
                    }
                }
                metrics.connections_accepted.fetch_add(1, Ordering::SeqCst);
                let slot = SlotGuard(Arc::clone(&metrics));
                let server = server.clone();
                let shutdown = shutdown.clone();
                // On spawn failure (thread exhaustion) the unspawned closure
                // is dropped, which drops the slot guard (slot released) and
                // the stream (client sees a plain close). Keep accepting.
                if let Ok(handle) = crossbeam::thread::Builder::new()
                    .name("redisgraph-conn".to_string())
                    .spawn(move || {
                        let _slot = slot;
                        serve_connection(stream, server, shutdown);
                    })
                {
                    conn_threads.push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                crossbeam::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    for handle in conn_threads {
        let _ = handle.join();
    }
}

/// Refuse an over-cap client without destroying the refusal: dropping a
/// socket with unread input makes the kernel send RST, which discards the
/// error reply in flight (redis-cli writes its command immediately on
/// connect, so that input is usually there). Half-close the write side and
/// briefly drain what the client sent so the reply survives to be read —
/// on a short-lived detached thread, so a burst of refusals (the cheapest
/// possible hostile traffic) cannot stall the accept loop behind drain
/// timeouts.
fn refuse_connection(mut stream: std::net::TcpStream) {
    let _ =
        crossbeam::thread::Builder::new().name("redisgraph-refuse".to_string()).spawn(move || {
            let _ = stream.write_all(
                &RespValue::Error("ERR max number of clients reached".to_string()).encode(),
            );
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
            let mut sink = [0u8; 1024];
            // Bounded drain: a handful of reads covers any sane greeting; a
            // hostile flood just gets its RST.
            for _ in 0..16 {
                match stream.read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
        });
}
