//! The server-wide metrics registry behind `GRAPH.INFO`, plus the per-graph
//! slow-query log behind `GRAPH.SLOWLOG`.
//!
//! Dependency-free by design (the build is offline): plain atomic counters
//! and gauges, and a log-bucketed histogram for latencies and pipeline
//! depths. Everything is lock-free on the record path — one `fetch_add` per
//! counter, four per histogram sample — so instrumenting the 40k+-qps
//! point-read path costs nanoseconds, not a mutex.

use std::collections::VecDeque;
use std::time::{Duration, SystemTime};

// Routed through the crossbeam shim (std atomics in normal builds) so the
// admission accounting below runs under the deterministic model checker.
use crossbeam::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: bucket `i` counts samples whose value has
/// bit width `i` (so bucket 0 holds exactly the value 0, bucket 64 holds
/// values ≥ 2⁶³). Power-of-two bucketing keeps the record path to a
/// `leading_zeros` and gives quantiles with ≤ 2× relative error — plenty for
/// "where does the time go" questions.
const BUCKETS: usize = 65;

/// A log-bucketed histogram of `u64` samples (nanoseconds for latencies,
/// plain counts for pipeline depth). Quantiles report the upper bound of the
/// bucket containing the requested rank, clamped to the exact observed max.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, value: u64) {
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.load(Ordering::Relaxed).checked_div(self.count()).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`): the upper bound of the bucket the
    /// rank falls in, clamped to the observed max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let upper = match i {
                    0 => 0,
                    64 => u64::MAX,
                    width => (1u64 << width) - 1,
                };
                return upper.min(self.max());
            }
        }
        self.max()
    }
}

/// Every command the server understands, as a dense index for the
/// per-command counters (`GRAPH.INFO`'s `commands` section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// `PING`
    Ping,
    /// `SHUTDOWN`
    Shutdown,
    /// `GRAPH.QUERY`
    GraphQuery,
    /// `GRAPH.PROFILE`
    GraphProfile,
    /// `GRAPH.EXPLAIN`
    GraphExplain,
    /// `GRAPH.DELETE`
    GraphDelete,
    /// `GRAPH.LIST`
    GraphList,
    /// `GRAPH.CONFIG GET`
    GraphConfigGet,
    /// `GRAPH.CONFIG SET`
    GraphConfigSet,
    /// `GRAPH.SLOWLOG`
    GraphSlowlog,
    /// `GRAPH.INFO`
    GraphInfo,
}

impl CommandKind {
    /// Every kind, in the order `GRAPH.INFO` reports them.
    pub const ALL: [CommandKind; 11] = [
        CommandKind::Ping,
        CommandKind::Shutdown,
        CommandKind::GraphQuery,
        CommandKind::GraphProfile,
        CommandKind::GraphExplain,
        CommandKind::GraphDelete,
        CommandKind::GraphList,
        CommandKind::GraphConfigGet,
        CommandKind::GraphConfigSet,
        CommandKind::GraphSlowlog,
        CommandKind::GraphInfo,
    ];

    /// The wire name (`GRAPH.INFO` key).
    pub fn name(self) -> &'static str {
        match self {
            CommandKind::Ping => "ping",
            CommandKind::Shutdown => "shutdown",
            CommandKind::GraphQuery => "graph.query",
            CommandKind::GraphProfile => "graph.profile",
            CommandKind::GraphExplain => "graph.explain",
            CommandKind::GraphDelete => "graph.delete",
            CommandKind::GraphList => "graph.list",
            CommandKind::GraphConfigGet => "graph.config.get",
            CommandKind::GraphConfigSet => "graph.config.set",
            CommandKind::GraphSlowlog => "graph.slowlog",
            CommandKind::GraphInfo => "graph.info",
        }
    }
}

/// The server-wide registry: one instance per [`crate::RedisGraphServer`],
/// shared by the dispatch path, the connection loops, and the accept loop.
/// All fields are plain atomics — `GRAPH.INFO` reads are as racy as any
/// monitoring endpoint and exactly as cheap.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Queries that completed successfully (`GRAPH.QUERY` + `GRAPH.PROFILE`).
    pub queries_executed: AtomicU64,
    /// Queries that returned an error (parse, plan, or execution).
    pub queries_failed: AtomicU64,
    /// Read-only queries (served from an epoch snapshot, lock-free).
    pub queries_readonly: AtomicU64,
    /// Write queries (served under the graph's write lock).
    pub queries_write: AtomicU64,
    /// Reads answered by the cached epoch snapshot as-is.
    pub snapshot_hits: AtomicU64,
    /// Reads that found a stale cache and rebuilt the epoch snapshot.
    pub snapshot_rebuilds: AtomicU64,
    /// Plan-cache lookups answered with a cached skeleton (no parse, no
    /// plan; parameters bound per execution).
    pub plan_cache_hits: AtomicU64,
    /// Plan-cache lookups that parsed and planned from scratch.
    pub plan_cache_misses: AtomicU64,
    /// Plans evicted by the cache's LRU bound (`PLAN_CACHE_SIZE`).
    pub plan_cache_evictions: AtomicU64,
    /// Per-command invocation counts, indexed by [`CommandKind`].
    commands: [AtomicU64; CommandKind::ALL.len()],
    /// Connections the accept loop admitted.
    pub connections_accepted: AtomicU64,
    /// Currently served connections (gauge; also the `maxclients` counter).
    pub connections_active: AtomicU64,
    /// Connections refused over the `MAX_CONNECTIONS` cap.
    pub connections_refused: AtomicU64,
    /// Bytes read from client sockets.
    pub bytes_in: AtomicU64,
    /// Bytes written to client sockets.
    pub bytes_out: AtomicU64,
    /// End-to-end query latency (dispatch to reply), nanoseconds.
    pub query_latency: Histogram,
    /// Commands decoded per socket read (pipeline depth).
    pub pipeline_depth: Histogram,
}

impl Metrics {
    /// Count one invocation of `kind`.
    pub fn count_command(&self, kind: CommandKind) {
        self.commands[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Invocations of `kind` so far.
    pub fn command_count(&self, kind: CommandKind) -> u64 {
        self.commands[kind as usize].load(Ordering::Relaxed)
    }

    /// Claim one connection slot against the `MAX_CONNECTIONS` cap.
    ///
    /// `connections_active` is the single source of truth for maxclients, so
    /// admission must be a single atomic decision: a compare-exchange loop
    /// with `AcqRel` success ordering (the acquire pairs with the release of
    /// a slot in [`Metrics::release_connection`]; a load-then-add would let
    /// two racing acceptors both pass the check and over-admit — the
    /// modelcheck `maxclients` suite pins this). Returns `false` with the
    /// gauge untouched when the cap is reached.
    pub fn try_acquire_connection(&self, max: u64) -> bool {
        // `xmut_relaxed_admission` is a seeded mutant for the model-checker
        // CI smoke test: the check-then-act version must make the
        // `maxclients` suite fail.
        #[cfg(xmut_relaxed_admission)]
        {
            if self.connections_active.load(Ordering::Relaxed) >= max {
                return false;
            }
            self.connections_active.fetch_add(1, Ordering::Relaxed);
            true
        }
        #[cfg(not(xmut_relaxed_admission))]
        {
            let mut current = self.connections_active.load(Ordering::Acquire);
            loop {
                if current >= max {
                    return false;
                }
                match self.connections_active.compare_exchange(
                    current,
                    current + 1,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return true,
                    Err(actual) => current = actual,
                }
            }
        }
    }

    /// Return a connection slot claimed by [`Metrics::try_acquire_connection`].
    /// `AcqRel` so the release pairs with the next successful acquisition.
    pub fn release_connection(&self) {
        self.connections_active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Entries the slow-query ring buffer keeps; the oldest entry is evicted
/// when a new one arrives at capacity (RedisGraph keeps a bounded window,
/// not an unbounded log).
pub const SLOWLOG_CAPACITY: usize = 128;

/// One slow query.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowLogEntry {
    /// Unix timestamp (seconds) when the query finished.
    pub unix_time: u64,
    /// The command that ran it (`GRAPH.QUERY` or `GRAPH.PROFILE`).
    pub command: &'static str,
    /// The query text.
    pub query: String,
    /// Total wall time, dispatch to reply, in milliseconds.
    pub millis: f64,
    /// Number of arguments the command carried (graph name + query).
    pub args: usize,
}

impl SlowLogEntry {
    /// Build an entry stamped with the current wall-clock time.
    pub fn now(command: &'static str, query: String, elapsed: Duration) -> SlowLogEntry {
        let unix_time = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        SlowLogEntry { unix_time, command, query, millis: elapsed.as_secs_f64() * 1e3, args: 2 }
    }
}

/// A fixed-capacity ring buffer of slow queries, one per graph
/// (`GRAPH.SLOWLOG <graph> [GET|RESET]`). The mutex around it lives in the
/// keyspace entry; queries under the threshold never touch it.
#[derive(Debug, Default)]
pub struct SlowLog {
    entries: VecDeque<SlowLogEntry>,
}

impl SlowLog {
    /// Append an entry, evicting the oldest at capacity.
    pub fn record(&mut self, entry: SlowLogEntry) {
        if self.entries.len() == SLOWLOG_CAPACITY {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }

    /// The logged entries, most recent first.
    pub fn entries_newest_first(&self) -> Vec<SlowLogEntry> {
        self.entries.iter().rev().cloned().collect()
    }

    /// Number of logged entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been logged (or everything was reset).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry (`GRAPH.SLOWLOG <graph> RESET`).
    pub fn reset(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = Histogram::default();
        for v in [100u64, 200, 300, 400, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 100_000);
        // p50 falls in the bucket of 200–300 (width-9 values, upper 511).
        let p50 = h.quantile(0.5);
        assert!((200..=511).contains(&p50), "p50 = {p50}");
        // p99 is clamped to the exact max, never the bucket's loose bound.
        assert_eq!(h.quantile(0.99), 100_000);
        assert_eq!(h.quantile(1.0), 100_000);
        assert!(h.mean() >= 20_000);
    }

    #[test]
    fn histogram_handles_zero_and_empty() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.99), 0);
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn slowlog_is_a_ring() {
        let mut log = SlowLog::default();
        for i in 0..(SLOWLOG_CAPACITY + 10) {
            log.record(SlowLogEntry {
                unix_time: i as u64,
                command: "GRAPH.QUERY",
                query: format!("q{i}"),
                millis: 1.0,
                args: 2,
            });
        }
        assert_eq!(log.len(), SLOWLOG_CAPACITY);
        let newest = log.entries_newest_first();
        assert_eq!(newest[0].query, format!("q{}", SLOWLOG_CAPACITY + 9));
        // The 10 oldest were evicted.
        assert_eq!(newest.last().unwrap().query, "q10");
        log.reset();
        assert!(log.is_empty());
    }

    #[test]
    fn command_counters_are_per_kind() {
        let m = Metrics::default();
        m.count_command(CommandKind::GraphQuery);
        m.count_command(CommandKind::GraphQuery);
        m.count_command(CommandKind::Ping);
        assert_eq!(m.command_count(CommandKind::GraphQuery), 2);
        assert_eq!(m.command_count(CommandKind::Ping), 1);
        assert_eq!(m.command_count(CommandKind::GraphInfo), 0);
    }
}
