//! The per-connection framing loop: socket bytes in, RESP replies out.
//!
//! Each accepted connection gets one OS thread running [`serve_connection`]
//! (Redis proper multiplexes on one thread; a thread per connection keeps
//! the reproduction simple while preserving the architecture that matters —
//! queries still execute on the module threadpool, never on the connection
//! thread). The loop enforces the protocol contract
//! [`RespValue::decode_pipeline_strict`] documents:
//!
//! * the retained buffer of unparsed bytes is **bounded** by the live
//!   `MAX_QUERY_BUFFER` config — a client that declares a huge bulk string
//!   (or never completes a frame) is disconnected at the bound, not buffered
//!   without limit;
//! * a **malformed** prefix (garbage that can never become RESP) closes the
//!   connection immediately with a `-ERR Protocol error` reply, since a
//!   length-prefixed stream cannot resynchronise;
//! * pipelined commands execute **strictly in order**, exactly like Redis: a
//!   pipeline saves network round-trips, it does not reorder execution — a
//!   `CREATE` pipelined before a `MATCH` is visible to it. Each query still
//!   runs on a pool worker (the connection thread blocks on its reply);
//!   cross-**connection** concurrency is what the pool parallelises, per the
//!   paper's one-query-one-thread model. Replies of a batch are encoded into
//!   one buffer and written with a single syscall.

use crate::commands::Command;
use crate::resp::{DecodeStop, RespValue, StreamDecoder};
use crate::server::RedisGraphServer;
use crossbeam::atomic::{AtomicBool, Ordering};
use crossbeam::channel::bounded;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// How long a blocked read waits before rechecking the shutdown flag.
const SHUTDOWN_POLL: Duration = Duration::from_millis(50);

/// How long one reply write may stall before the connection is declared
/// dead. Bounds the damage of a client that stops reading (and with it the
/// time a graceful shutdown can be held hostage by such a client); a client
/// draining at any rate keeps completing individual writes well within it.
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(10);

/// Read chunk size (bytes appended to the retained buffer per `read`).
const READ_CHUNK: usize = 16 * 1024;

/// Serve one client connection until EOF, protocol error, buffer overflow,
/// write failure, or server shutdown. Runs on its own thread; queries run on
/// the module threadpool.
pub(crate) fn serve_connection(
    mut stream: TcpStream,
    server: Arc<RedisGraphServer>,
    shutdown: Arc<AtomicBool>,
) {
    // Replies are small and latency matters for point reads; queries are
    // where the time goes, not segment coalescing.
    let _ = stream.set_nodelay(true);
    // A bounded read timeout doubles as the shutdown poll interval, so a
    // connection parked in `read` notices a graceful stop promptly.
    let _ = stream.set_read_timeout(Some(SHUTDOWN_POLL));
    let _ = stream.set_write_timeout(Some(WRITE_STALL_TIMEOUT));

    let mut retained: Vec<u8> = Vec::new();
    // Resumable parse state: a frame arriving across many reads is scanned
    // once, not re-decoded from byte zero per read (which would be quadratic
    // for a large pipelined burst or a slowly-arriving big bulk).
    let mut decoder = StreamDecoder::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            // Graceful stop: every command read so far had its reply written
            // below before we came back around; just close.
            return;
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return, // client closed its end
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        retained.extend_from_slice(&chunk[..n]);
        server.metrics().bytes_in.fetch_add(n as u64, Ordering::Relaxed);

        let (frames, consumed, stop) = decoder.feed(&retained);
        retained.drain(..consumed);

        if !frames.is_empty() {
            // Execute in submission order — Redis semantics: a pipelined
            // write is visible to every later command of the same pipeline.
            // Replies accumulate into one buffer, written once per batch.
            server.metrics().pipeline_depth.record(frames.len() as u64);
            let mut out = Vec::new();
            let mut close_after_replies = false;
            for frame in &frames {
                let reply = execute_frame(&server, frame, &shutdown, &mut close_after_replies);
                reply.encode_into(&mut out);
            }
            server.metrics().bytes_out.fetch_add(out.len() as u64, Ordering::Relaxed);
            if stream.write_all(&out).is_err() {
                return;
            }
            let _ = stream.flush();
            if close_after_replies {
                return;
            }
        }

        if stop == DecodeStop::Malformed {
            // The stream can never resynchronise; tell the client why and
            // hang up (same contract as Redis' protocol errors).
            write_error_and_close(&mut stream, "ERR Protocol error: malformed RESP frame");
            return;
        }
        let cap = server.max_query_buffer();
        if retained.len() > cap {
            write_error_and_close(
                &mut stream,
                &format!(
                    "ERR Protocol error: unparsed query buffer exceeded MAX_QUERY_BUFFER \
                     ({cap} bytes)"
                ),
            );
            return;
        }
    }
}

/// Execute one decoded frame to completion: queries go to the pool and are
/// awaited (one worker, this connection blocked — the pool parallelises
/// across connections), admin commands run inline, `SHUTDOWN` flips the
/// listener's flag.
fn execute_frame(
    server: &Arc<RedisGraphServer>,
    frame: &RespValue,
    shutdown: &Arc<AtomicBool>,
    close_after_replies: &mut bool,
) -> RespValue {
    let parsed = match Command::parse(frame) {
        Ok(c) => c,
        Err(e) => return RespValue::Error(format!("ERR {e}")),
    };
    match parsed {
        Command::Shutdown => {
            // Acknowledge, finish writing this pipeline's replies, then let
            // the listener drain every connection and exit. (Counted here:
            // this arm never reaches `RedisGraphServer::execute`.)
            server.metrics().count_command(crate::metrics::CommandKind::Shutdown);
            shutdown.store(true, Ordering::SeqCst);
            *close_after_replies = true;
            RespValue::SimpleString("OK".to_string())
        }
        Command::GraphQuery { graph, query } => {
            let (tx, rx) = bounded(1);
            server.submit_query(graph, query, tx);
            rx.recv().unwrap_or_else(|_| RespValue::Error("ERR query worker exited".to_string()))
        }
        other => server.execute(other),
    }
}

/// Best-effort error reply before closing (the peer may already be gone).
fn write_error_and_close(stream: &mut TcpStream, message: &str) {
    let _ = stream.write_all(&RespValue::Error(message.to_string()).encode());
    let _ = stream.flush();
}
