//! The `GRAPH.*` module commands and their RESP encodings.

use crate::resp::RespValue;
use redisgraph_core::{format_profile, OpProfile, ResultSet, Value};

/// A parsed client command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `PING`
    Ping,
    /// `SHUTDOWN` — ask the network server for a graceful stop: in-flight
    /// queries drain, every connection closes, the listener exits. Only
    /// meaningful over TCP; the in-process façade rejects it.
    Shutdown,
    /// `GRAPH.QUERY <graph> <cypher>`
    GraphQuery {
        /// Graph key name.
        graph: String,
        /// Cypher query text.
        query: String,
    },
    /// `GRAPH.EXPLAIN <graph> <cypher>`
    GraphExplain {
        /// Graph key name.
        graph: String,
        /// Cypher query text.
        query: String,
    },
    /// `GRAPH.PROFILE <graph> <cypher>` — execute the query (writes mutate,
    /// exactly like `GRAPH.QUERY`) and return the `GRAPH.EXPLAIN` tree with
    /// per-operator records-produced and wall-time annotations.
    GraphProfile {
        /// Graph key name.
        graph: String,
        /// Cypher query text.
        query: String,
    },
    /// `GRAPH.SLOWLOG <graph> [GET|RESET]` — read or clear the graph's
    /// slow-query ring buffer (`GET` is the default).
    GraphSlowlog {
        /// Graph key name.
        graph: String,
        /// True for `RESET`, false for `GET`.
        reset: bool,
    },
    /// `GRAPH.INFO` — the server-wide metrics registry as a sectioned
    /// key-value reply.
    GraphInfo,
    /// `GRAPH.DELETE <graph>`
    GraphDelete {
        /// Graph key name.
        graph: String,
    },
    /// `GRAPH.LIST`
    GraphList,
    /// `GRAPH.CONFIG GET <parameter>`
    GraphConfigGet {
        /// Parameter name (`DELTA_MAX_PENDING_CHANGES`, case-insensitive).
        parameter: String,
    },
    /// `GRAPH.CONFIG SET <parameter> <value>`
    GraphConfigSet {
        /// Parameter name.
        parameter: String,
        /// New value (validated by the server when applied).
        value: String,
    },
}

impl Command {
    /// Parse a command from a RESP array of bulk strings, as sent by clients.
    pub fn parse(value: &RespValue) -> Result<Command, String> {
        let RespValue::Array(items) = value else {
            return Err("expected a RESP array".to_string());
        };
        let parts: Vec<&str> = items
            .iter()
            .map(|v| match v {
                RespValue::BulkString(s) | RespValue::SimpleString(s) => Ok(s.as_str()),
                _ => Err("command arguments must be strings".to_string()),
            })
            .collect::<Result<_, _>>()?;
        let Some((&name, args)) = parts.split_first() else {
            return Err("empty command".to_string());
        };
        match name.to_ascii_uppercase().as_str() {
            "PING" => Ok(Command::Ping),
            "SHUTDOWN" => Ok(Command::Shutdown),
            "GRAPH.QUERY" => match args {
                [graph, query] => {
                    Ok(Command::GraphQuery { graph: graph.to_string(), query: query.to_string() })
                }
                _ => Err("GRAPH.QUERY takes exactly 2 arguments".to_string()),
            },
            "GRAPH.EXPLAIN" => match args {
                [graph, query] => {
                    Ok(Command::GraphExplain { graph: graph.to_string(), query: query.to_string() })
                }
                _ => Err("GRAPH.EXPLAIN takes exactly 2 arguments".to_string()),
            },
            "GRAPH.PROFILE" => match args {
                [graph, query] => {
                    Ok(Command::GraphProfile { graph: graph.to_string(), query: query.to_string() })
                }
                _ => Err("GRAPH.PROFILE takes exactly 2 arguments".to_string()),
            },
            "GRAPH.SLOWLOG" => match args {
                [graph] => Ok(Command::GraphSlowlog { graph: graph.to_string(), reset: false }),
                [graph, action] if action.eq_ignore_ascii_case("GET") => {
                    Ok(Command::GraphSlowlog { graph: graph.to_string(), reset: false })
                }
                [graph, action] if action.eq_ignore_ascii_case("RESET") => {
                    Ok(Command::GraphSlowlog { graph: graph.to_string(), reset: true })
                }
                _ => Err("GRAPH.SLOWLOG takes <graph> [GET|RESET]".to_string()),
            },
            "GRAPH.INFO" => match args {
                [] => Ok(Command::GraphInfo),
                _ => Err("GRAPH.INFO takes no arguments".to_string()),
            },
            "GRAPH.DELETE" => match args {
                [graph] => Ok(Command::GraphDelete { graph: graph.to_string() }),
                _ => Err("GRAPH.DELETE takes exactly 1 argument".to_string()),
            },
            "GRAPH.LIST" => Ok(Command::GraphList),
            "GRAPH.CONFIG" => match args {
                [action, parameter] if action.eq_ignore_ascii_case("GET") => {
                    Ok(Command::GraphConfigGet { parameter: parameter.to_string() })
                }
                [action, parameter, value] if action.eq_ignore_ascii_case("SET") => {
                    Ok(Command::GraphConfigSet {
                        parameter: parameter.to_string(),
                        value: value.to_string(),
                    })
                }
                _ => Err("GRAPH.CONFIG takes GET <param> or SET <param> <value>".to_string()),
            },
            other => Err(format!("unknown command `{other}`")),
        }
    }
}

/// Encode profiled operators as the `GRAPH.PROFILE` reply: the
/// `GRAPH.EXPLAIN` tree, one bulk string per operator, each annotated with
/// its records-produced count and wall time.
pub fn profile_to_resp(profiles: &[OpProfile]) -> RespValue {
    RespValue::Array(format_profile(profiles).into_iter().map(RespValue::BulkString).collect())
}

/// Encode a runtime value as a RESP reply element (the same flattening the C
/// module performs).
pub fn value_to_resp(value: &Value) -> RespValue {
    match value {
        Value::Null => RespValue::Null,
        Value::Bool(b) => RespValue::BulkString(if *b { "true".into() } else { "false".into() }),
        Value::Int(i) => RespValue::Integer(*i),
        Value::Float(f) => RespValue::BulkString(format!("{f}")),
        Value::Str(s) => RespValue::BulkString(s.clone()),
        Value::Node(id) => RespValue::BulkString(format!("(node:{id})")),
        Value::Edge(id) => RespValue::BulkString(format!("[edge:{id}]")),
        Value::List(items) => RespValue::Array(items.iter().map(value_to_resp).collect()),
    }
}

/// Encode a [`ResultSet`] as the three-section reply `GRAPH.QUERY` returns:
/// header, rows, statistics.
pub fn resultset_to_resp(rs: &ResultSet) -> RespValue {
    let header =
        RespValue::Array(rs.columns.iter().map(|c| RespValue::BulkString(c.clone())).collect());
    let rows = RespValue::Array(
        rs.rows
            .iter()
            .map(|row| RespValue::Array(row.iter().map(value_to_resp).collect()))
            .collect(),
    );
    let stats = RespValue::Array(vec![
        RespValue::BulkString(format!("Nodes created: {}", rs.stats.nodes_created)),
        RespValue::BulkString(format!("Relationships created: {}", rs.stats.relationships_created)),
        RespValue::BulkString(format!("Properties set: {}", rs.stats.properties_set)),
        RespValue::BulkString(format!("Nodes deleted: {}", rs.stats.nodes_deleted)),
        RespValue::BulkString(format!("Relationships deleted: {}", rs.stats.relationships_deleted)),
        // Placeholder until the plan cache lands (ROADMAP): every query is
        // currently parsed and planned from scratch.
        RespValue::BulkString("Cached: false".to_string()),
        RespValue::BulkString(format!(
            "Query internal execution time: {:.6} milliseconds",
            rs.stats.execution_time.as_secs_f64() * 1e3
        )),
    ]);
    RespValue::Array(vec![header, rows, stats])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_graph_query() {
        let cmd = Command::parse(&RespValue::command(&["graph.query", "g", "MATCH (n) RETURN n"]))
            .unwrap();
        assert_eq!(
            cmd,
            Command::GraphQuery { graph: "g".into(), query: "MATCH (n) RETURN n".into() }
        );
    }

    #[test]
    fn parses_other_commands_case_insensitively() {
        assert_eq!(Command::parse(&RespValue::command(&["PING"])).unwrap(), Command::Ping);
        assert_eq!(Command::parse(&RespValue::command(&["shutdown"])).unwrap(), Command::Shutdown);
        assert_eq!(
            Command::parse(&RespValue::command(&["Graph.Delete", "g"])).unwrap(),
            Command::GraphDelete { graph: "g".into() }
        );
        assert_eq!(
            Command::parse(&RespValue::command(&["GRAPH.LIST"])).unwrap(),
            Command::GraphList
        );
    }

    #[test]
    fn parses_graph_config_get_and_set() {
        assert_eq!(
            Command::parse(&RespValue::command(&[
                "GRAPH.CONFIG",
                "GET",
                "DELTA_MAX_PENDING_CHANGES"
            ]))
            .unwrap(),
            Command::GraphConfigGet { parameter: "DELTA_MAX_PENDING_CHANGES".into() }
        );
        assert_eq!(
            Command::parse(&RespValue::command(&["graph.config", "set", "delta_max", "64"]))
                .unwrap(),
            Command::GraphConfigSet { parameter: "delta_max".into(), value: "64".into() }
        );
        assert!(Command::parse(&RespValue::command(&["GRAPH.CONFIG", "GET"])).is_err());
        assert!(Command::parse(&RespValue::command(&["GRAPH.CONFIG", "FROB", "X", "1"])).is_err());
    }

    #[test]
    fn parses_observability_commands() {
        assert_eq!(
            Command::parse(&RespValue::command(&["GRAPH.PROFILE", "g", "MATCH (n) RETURN n"]))
                .unwrap(),
            Command::GraphProfile { graph: "g".into(), query: "MATCH (n) RETURN n".into() }
        );
        assert_eq!(
            Command::parse(&RespValue::command(&["graph.slowlog", "g"])).unwrap(),
            Command::GraphSlowlog { graph: "g".into(), reset: false }
        );
        assert_eq!(
            Command::parse(&RespValue::command(&["GRAPH.SLOWLOG", "g", "get"])).unwrap(),
            Command::GraphSlowlog { graph: "g".into(), reset: false }
        );
        assert_eq!(
            Command::parse(&RespValue::command(&["GRAPH.SLOWLOG", "g", "RESET"])).unwrap(),
            Command::GraphSlowlog { graph: "g".into(), reset: true }
        );
        assert_eq!(
            Command::parse(&RespValue::command(&["GRAPH.INFO"])).unwrap(),
            Command::GraphInfo
        );
        assert!(Command::parse(&RespValue::command(&["GRAPH.PROFILE", "g"])).is_err());
        assert!(Command::parse(&RespValue::command(&["GRAPH.SLOWLOG"])).is_err());
        assert!(Command::parse(&RespValue::command(&["GRAPH.SLOWLOG", "g", "FROB"])).is_err());
        assert!(Command::parse(&RespValue::command(&["GRAPH.INFO", "x"])).is_err());
    }

    #[test]
    fn stats_footer_reports_cache_placeholder() {
        let rs = ResultSet::empty();
        let RespValue::Array(sections) = resultset_to_resp(&rs) else { panic!() };
        let RespValue::Array(stats) = &sections[2] else { panic!() };
        let lines: Vec<String> = stats.iter().map(|v| v.to_string()).collect();
        assert!(lines.iter().any(|l| l.contains("Cached: false")), "stats were {lines:?}");
        assert!(
            lines.last().unwrap().contains("Query internal execution time"),
            "stats were {lines:?}"
        );
    }

    #[test]
    fn rejects_malformed_commands() {
        assert!(Command::parse(&RespValue::command(&["GRAPH.QUERY", "g"])).is_err());
        assert!(Command::parse(&RespValue::command(&["FLUSHALL"])).is_err());
        assert!(Command::parse(&RespValue::Integer(1)).is_err());
        assert!(Command::parse(&RespValue::Array(vec![])).is_err());
    }

    #[test]
    fn resultset_reply_has_three_sections() {
        let rs = ResultSet {
            columns: vec!["count(t)".into()],
            rows: vec![vec![Value::Int(9)]],
            stats: Default::default(),
        };
        let reply = resultset_to_resp(&rs);
        let RespValue::Array(sections) = reply else { panic!() };
        assert_eq!(sections.len(), 3);
        let RespValue::Array(rows) = &sections[1] else { panic!() };
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn value_conversion_covers_all_kinds() {
        assert_eq!(value_to_resp(&Value::Int(3)), RespValue::Integer(3));
        assert_eq!(value_to_resp(&Value::Null), RespValue::Null);
        assert_eq!(value_to_resp(&Value::Bool(true)), RespValue::BulkString("true".into()));
        assert!(matches!(value_to_resp(&Value::List(vec![Value::Int(1)])), RespValue::Array(_)));
    }
}
