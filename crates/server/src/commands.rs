//! The `GRAPH.*` module commands and their RESP encodings.

use crate::resp::RespValue;
use cypher::{Expr, Lexer, Literal, Token, TokenKind};
use redisgraph_core::{format_profile, OpProfile, Params, ResultSet, Value};

/// A parsed client command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `PING`
    Ping,
    /// `SHUTDOWN` — ask the network server for a graceful stop: in-flight
    /// queries drain, every connection closes, the listener exits. Only
    /// meaningful over TCP; the in-process façade rejects it.
    Shutdown,
    /// `GRAPH.QUERY <graph> <cypher>`
    GraphQuery {
        /// Graph key name.
        graph: String,
        /// Cypher query text (optionally prefixed with a `CYPHER name=value`
        /// parameter header; see [`split_cypher_params`]).
        query: String,
    },
    /// `GRAPH.EXPLAIN <graph> <cypher>`
    GraphExplain {
        /// Graph key name.
        graph: String,
        /// Cypher query text.
        query: String,
    },
    /// `GRAPH.PROFILE <graph> <cypher>` — execute the query (writes mutate,
    /// exactly like `GRAPH.QUERY`) and return the `GRAPH.EXPLAIN` tree with
    /// per-operator records-produced and wall-time annotations.
    GraphProfile {
        /// Graph key name.
        graph: String,
        /// Cypher query text.
        query: String,
    },
    /// `GRAPH.SLOWLOG <graph> [GET|RESET]` — read or clear the graph's
    /// slow-query ring buffer (`GET` is the default).
    GraphSlowlog {
        /// Graph key name.
        graph: String,
        /// True for `RESET`, false for `GET`.
        reset: bool,
    },
    /// `GRAPH.INFO` — the server-wide metrics registry as a sectioned
    /// key-value reply.
    GraphInfo,
    /// `GRAPH.DELETE <graph>`
    GraphDelete {
        /// Graph key name.
        graph: String,
    },
    /// `GRAPH.LIST`
    GraphList,
    /// `GRAPH.CONFIG GET <parameter>`
    GraphConfigGet {
        /// Parameter name (`DELTA_MAX_PENDING_CHANGES`, case-insensitive).
        parameter: String,
    },
    /// `GRAPH.CONFIG SET <parameter> <value>`
    GraphConfigSet {
        /// Parameter name.
        parameter: String,
        /// New value (validated by the server when applied).
        value: String,
    },
}

/// A typed cursor over one command's arguments, shared by every `GRAPH.*`
/// parser arm so arity and subcommand mistakes all phrase their errors the
/// way Redis does (`wrong number of arguments for 'graph.query' command`)
/// instead of each arm inventing its own wording.
struct Args<'a> {
    /// Canonical lower-case command name, for error messages.
    command: &'a str,
    parts: &'a [&'a str],
    pos: usize,
}

impl<'a> Args<'a> {
    fn new(command: &'a str, parts: &'a [&'a str]) -> Args<'a> {
        Args { command, parts, pos: 0 }
    }

    fn wrong_arity(&self) -> String {
        format!("wrong number of arguments for '{}' command", self.command)
    }

    /// The next argument, or the Redis arity error if exhausted.
    fn required(&mut self) -> Result<&'a str, String> {
        let arg = self.parts.get(self.pos).ok_or_else(|| self.wrong_arity())?;
        self.pos += 1;
        Ok(arg)
    }

    /// The next argument matched case-insensitively against `options`,
    /// returning the canonical spelling.
    fn keyword(&mut self, options: &[&'static str]) -> Result<&'static str, String> {
        let arg = self.required()?;
        options.iter().find(|o| arg.eq_ignore_ascii_case(o)).copied().ok_or_else(|| {
            format!(
                "unknown subcommand '{arg}' for '{}'; expected {}",
                self.command,
                options.join(" or ")
            )
        })
    }

    /// Like [`Args::keyword`], but absence is `None` rather than an error.
    fn optional_keyword(
        &mut self,
        options: &[&'static str],
    ) -> Result<Option<&'static str>, String> {
        if self.pos >= self.parts.len() {
            return Ok(None);
        }
        self.keyword(options).map(Some)
    }

    /// Finish parsing: any unconsumed argument is an arity error.
    fn finish(self, command: Command) -> Result<Command, String> {
        if self.pos == self.parts.len() {
            Ok(command)
        } else {
            Err(self.wrong_arity())
        }
    }
}

impl Command {
    /// Parse a command from a RESP array of bulk strings, as sent by clients.
    pub fn parse(value: &RespValue) -> Result<Command, String> {
        let RespValue::Array(items) = value else {
            return Err("expected a RESP array".to_string());
        };
        let parts: Vec<&str> = items
            .iter()
            .map(|v| match v {
                RespValue::BulkString(s) | RespValue::SimpleString(s) => Ok(s.as_str()),
                _ => Err("command arguments must be strings".to_string()),
            })
            .collect::<Result<_, _>>()?;
        let Some((&name, rest)) = parts.split_first() else {
            return Err("empty command".to_string());
        };
        let canonical = name.to_ascii_lowercase();
        let mut args = Args::new(&canonical, rest);
        match canonical.as_str() {
            "ping" => args.finish(Command::Ping),
            "shutdown" => args.finish(Command::Shutdown),
            "graph.query" => {
                let graph = args.required()?.to_string();
                let query = args.required()?.to_string();
                args.finish(Command::GraphQuery { graph, query })
            }
            "graph.explain" => {
                let graph = args.required()?.to_string();
                let query = args.required()?.to_string();
                args.finish(Command::GraphExplain { graph, query })
            }
            "graph.profile" => {
                let graph = args.required()?.to_string();
                let query = args.required()?.to_string();
                args.finish(Command::GraphProfile { graph, query })
            }
            "graph.slowlog" => {
                let graph = args.required()?.to_string();
                let reset = matches!(args.optional_keyword(&["GET", "RESET"])?, Some("RESET"));
                args.finish(Command::GraphSlowlog { graph, reset })
            }
            "graph.info" => args.finish(Command::GraphInfo),
            "graph.delete" => {
                let graph = args.required()?.to_string();
                args.finish(Command::GraphDelete { graph })
            }
            "graph.list" => args.finish(Command::GraphList),
            "graph.config" => match args.keyword(&["GET", "SET"])? {
                "GET" => {
                    let parameter = args.required()?.to_string();
                    args.finish(Command::GraphConfigGet { parameter })
                }
                _ => {
                    let parameter = args.required()?.to_string();
                    let value = args.required()?.to_string();
                    args.finish(Command::GraphConfigSet { parameter, value })
                }
            },
            _ => Err(format!("unknown command `{name}`")),
        }
    }
}

/// Split the optional `CYPHER name=value [name=value …]` parameter header
/// off a query, returning the typed parameters and the query body that
/// follows the header.
///
/// Values are literals only — `null`, booleans, integers, floats (each with
/// an optional leading `-`), quoted strings, and flat lists thereof — parsed
/// with the Cypher lexer, so quoting and escaping behave exactly as they do
/// inside a query. The header ends at the first token that is not the start
/// of a `name=` pair (typically the body's opening clause keyword). A query
/// with no header comes back untouched with an empty parameter map.
pub fn split_cypher_params(query: &str) -> Result<(Params, &str), String> {
    let (tokens, _) = Lexer::tokenize_recovering(query);
    let has_header = matches!(
        tokens.first().map(|t| &t.kind),
        Some(TokenKind::Ident(word)) if word.eq_ignore_ascii_case("CYPHER")
    );
    if !has_header {
        return Ok((Params::new(), query));
    }
    let mut params = Params::new();
    let mut i = 1;
    while let (TokenKind::Ident(name), Some(TokenKind::Eq)) =
        (&tokens[i].kind, tokens.get(i + 1).map(|t| &t.kind))
    {
        let name = name.clone();
        i += 2;
        let value = parse_param_literal(&tokens, &mut i, &name)?;
        params.insert(name, value);
    }
    let body_start = tokens.get(i).map_or(query.len(), |t| t.offset);
    Ok((params, &query[body_start..]))
}

/// One literal value in a `CYPHER` parameter header, starting at `tokens[*i]`
/// (which is advanced past the value). The token stream always ends with
/// `Eof`, so indexing stays in bounds: every arm either consumes a real
/// token or errors out on whatever it found instead.
fn parse_param_literal(tokens: &[Token], i: &mut usize, name: &str) -> Result<Expr, String> {
    let unexpected = |found: &TokenKind| {
        format!(
            "invalid value for parameter `{name}`: expected a literal \
             (null, boolean, number, string, or list), found {found}"
        )
    };
    let kind = &tokens[*i].kind;
    *i += 1;
    match kind {
        TokenKind::Integer(v) => Ok(Expr::Literal(Literal::Integer(*v))),
        TokenKind::Float(v) => Ok(Expr::Literal(Literal::Float(*v))),
        TokenKind::Str(s) => Ok(Expr::Literal(Literal::Str(s.clone()))),
        TokenKind::Keyword(k) if k == "TRUE" => Ok(Expr::Literal(Literal::Bool(true))),
        TokenKind::Keyword(k) if k == "FALSE" => Ok(Expr::Literal(Literal::Bool(false))),
        TokenKind::Keyword(k) if k == "NULL" => Ok(Expr::Literal(Literal::Null)),
        TokenKind::Dash => {
            let negated = &tokens[*i].kind;
            *i += 1;
            match negated {
                TokenKind::Integer(v) => Ok(Expr::Literal(Literal::Integer(-v))),
                TokenKind::Float(v) => Ok(Expr::Literal(Literal::Float(-v))),
                other => Err(unexpected(other)),
            }
        }
        TokenKind::LBracket => {
            let mut items = Vec::new();
            if tokens[*i].kind == TokenKind::RBracket {
                *i += 1;
                return Ok(Expr::List(items));
            }
            loop {
                items.push(parse_param_literal(tokens, i, name)?);
                let sep = &tokens[*i].kind;
                *i += 1;
                match sep {
                    TokenKind::Comma => {}
                    TokenKind::RBracket => return Ok(Expr::List(items)),
                    other => {
                        return Err(format!(
                            "invalid value for parameter `{name}`: expected `,` or `]` \
                             in list, found {other}"
                        ))
                    }
                }
            }
        }
        other => Err(unexpected(other)),
    }
}

/// Encode profiled operators as the `GRAPH.PROFILE` reply: the
/// `GRAPH.EXPLAIN` tree, one bulk string per operator, each annotated with
/// its records-produced count and wall time.
pub fn profile_to_resp(profiles: &[OpProfile]) -> RespValue {
    RespValue::Array(format_profile(profiles).into_iter().map(RespValue::BulkString).collect())
}

/// Encode a runtime value as a RESP reply element (the same flattening the C
/// module performs).
pub fn value_to_resp(value: &Value) -> RespValue {
    match value {
        Value::Null => RespValue::Null,
        Value::Bool(b) => RespValue::BulkString(if *b { "true".into() } else { "false".into() }),
        Value::Int(i) => RespValue::Integer(*i),
        Value::Float(f) => RespValue::BulkString(format!("{f}")),
        Value::Str(s) => RespValue::BulkString(s.clone()),
        Value::Node(id) => RespValue::BulkString(format!("(node:{id})")),
        Value::Edge(id) => RespValue::BulkString(format!("[edge:{id}]")),
        Value::List(items) => RespValue::Array(items.iter().map(value_to_resp).collect()),
    }
}

/// Encode a [`ResultSet`] as the three-section reply `GRAPH.QUERY` returns:
/// header, rows, statistics.
pub fn resultset_to_resp(rs: &ResultSet) -> RespValue {
    let header =
        RespValue::Array(rs.columns.iter().map(|c| RespValue::BulkString(c.clone())).collect());
    let rows = RespValue::Array(
        rs.rows
            .iter()
            .map(|row| RespValue::Array(row.iter().map(value_to_resp).collect()))
            .collect(),
    );
    let stats = RespValue::Array(vec![
        RespValue::BulkString(format!("Nodes created: {}", rs.stats.nodes_created)),
        RespValue::BulkString(format!("Relationships created: {}", rs.stats.relationships_created)),
        RespValue::BulkString(format!("Properties set: {}", rs.stats.properties_set)),
        RespValue::BulkString(format!("Nodes deleted: {}", rs.stats.nodes_deleted)),
        RespValue::BulkString(format!("Relationships deleted: {}", rs.stats.relationships_deleted)),
        RespValue::BulkString(format!("Cached: {}", rs.stats.cached)),
        RespValue::BulkString(format!(
            "Query internal execution time: {:.6} milliseconds",
            rs.stats.execution_time.as_secs_f64() * 1e3
        )),
    ]);
    RespValue::Array(vec![header, rows, stats])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_graph_query() {
        let cmd = Command::parse(&RespValue::command(&["graph.query", "g", "MATCH (n) RETURN n"]))
            .unwrap();
        assert_eq!(
            cmd,
            Command::GraphQuery { graph: "g".into(), query: "MATCH (n) RETURN n".into() }
        );
    }

    #[test]
    fn parses_other_commands_case_insensitively() {
        assert_eq!(Command::parse(&RespValue::command(&["PING"])).unwrap(), Command::Ping);
        assert_eq!(Command::parse(&RespValue::command(&["shutdown"])).unwrap(), Command::Shutdown);
        assert_eq!(
            Command::parse(&RespValue::command(&["Graph.Delete", "g"])).unwrap(),
            Command::GraphDelete { graph: "g".into() }
        );
        assert_eq!(
            Command::parse(&RespValue::command(&["GRAPH.LIST"])).unwrap(),
            Command::GraphList
        );
    }

    #[test]
    fn parses_graph_config_get_and_set() {
        assert_eq!(
            Command::parse(&RespValue::command(&[
                "GRAPH.CONFIG",
                "GET",
                "DELTA_MAX_PENDING_CHANGES"
            ]))
            .unwrap(),
            Command::GraphConfigGet { parameter: "DELTA_MAX_PENDING_CHANGES".into() }
        );
        assert_eq!(
            Command::parse(&RespValue::command(&["graph.config", "set", "delta_max", "64"]))
                .unwrap(),
            Command::GraphConfigSet { parameter: "delta_max".into(), value: "64".into() }
        );
        assert!(Command::parse(&RespValue::command(&["GRAPH.CONFIG", "GET"])).is_err());
        assert!(Command::parse(&RespValue::command(&["GRAPH.CONFIG", "FROB", "X", "1"])).is_err());
    }

    #[test]
    fn parses_observability_commands() {
        assert_eq!(
            Command::parse(&RespValue::command(&["GRAPH.PROFILE", "g", "MATCH (n) RETURN n"]))
                .unwrap(),
            Command::GraphProfile { graph: "g".into(), query: "MATCH (n) RETURN n".into() }
        );
        assert_eq!(
            Command::parse(&RespValue::command(&["graph.slowlog", "g"])).unwrap(),
            Command::GraphSlowlog { graph: "g".into(), reset: false }
        );
        assert_eq!(
            Command::parse(&RespValue::command(&["GRAPH.SLOWLOG", "g", "get"])).unwrap(),
            Command::GraphSlowlog { graph: "g".into(), reset: false }
        );
        assert_eq!(
            Command::parse(&RespValue::command(&["GRAPH.SLOWLOG", "g", "RESET"])).unwrap(),
            Command::GraphSlowlog { graph: "g".into(), reset: true }
        );
        assert_eq!(
            Command::parse(&RespValue::command(&["GRAPH.INFO"])).unwrap(),
            Command::GraphInfo
        );
        assert!(Command::parse(&RespValue::command(&["GRAPH.PROFILE", "g"])).is_err());
        assert!(Command::parse(&RespValue::command(&["GRAPH.SLOWLOG"])).is_err());
        assert!(Command::parse(&RespValue::command(&["GRAPH.SLOWLOG", "g", "FROB"])).is_err());
        assert!(Command::parse(&RespValue::command(&["GRAPH.INFO", "x"])).is_err());
    }

    #[test]
    fn argument_errors_use_redis_phrasing() {
        let err = Command::parse(&RespValue::command(&["GRAPH.QUERY", "g"])).unwrap_err();
        assert_eq!(err, "wrong number of arguments for 'graph.query' command");
        let err =
            Command::parse(&RespValue::command(&["Graph.Query", "g", "q", "extra"])).unwrap_err();
        assert_eq!(err, "wrong number of arguments for 'graph.query' command");
        let err = Command::parse(&RespValue::command(&["PING", "x"])).unwrap_err();
        assert_eq!(err, "wrong number of arguments for 'ping' command");
        let err = Command::parse(&RespValue::command(&["GRAPH.CONFIG", "FROB", "X"])).unwrap_err();
        assert!(err.contains("unknown subcommand 'FROB' for 'graph.config'"), "got {err:?}");
        let err = Command::parse(&RespValue::command(&["GRAPH.INFO", "x"])).unwrap_err();
        assert_eq!(err, "wrong number of arguments for 'graph.info' command");
    }

    #[test]
    fn cypher_header_parses_typed_parameters() {
        let (params, body) = split_cypher_params(
            "CYPHER src=7 name='Ann' ratio=0.5 neg=-3 ok=true gone=null \
             MATCH (s) WHERE id(s) = $src RETURN s",
        )
        .unwrap();
        assert_eq!(body, "MATCH (s) WHERE id(s) = $src RETURN s");
        assert_eq!(params["src"], Expr::Literal(Literal::Integer(7)));
        assert_eq!(params["name"], Expr::Literal(Literal::Str("Ann".into())));
        assert_eq!(params["ratio"], Expr::Literal(Literal::Float(0.5)));
        assert_eq!(params["neg"], Expr::Literal(Literal::Integer(-3)));
        assert_eq!(params["ok"], Expr::Literal(Literal::Bool(true)));
        assert_eq!(params["gone"], Expr::Literal(Literal::Null));
        assert_eq!(params.len(), 6);
    }

    #[test]
    fn cypher_header_parses_lists_and_is_case_insensitive() {
        let (params, body) =
            split_cypher_params("cypher xs=[1, 2, 3] empty=[] UNWIND $xs AS x RETURN x").unwrap();
        assert_eq!(body, "UNWIND $xs AS x RETURN x");
        assert_eq!(
            params["xs"],
            Expr::List(vec![
                Expr::Literal(Literal::Integer(1)),
                Expr::Literal(Literal::Integer(2)),
                Expr::Literal(Literal::Integer(3)),
            ])
        );
        assert_eq!(params["empty"], Expr::List(vec![]));
    }

    #[test]
    fn queries_without_a_header_pass_through_untouched() {
        let (params, body) = split_cypher_params("MATCH (n) RETURN n").unwrap();
        assert!(params.is_empty());
        assert_eq!(body, "MATCH (n) RETURN n");
        // `CYPHER` is only a header introducer in first position; a node
        // variable of that name elsewhere is untouched.
        let (params, body) = split_cypher_params("MATCH (cypher) RETURN cypher").unwrap();
        assert!(params.is_empty());
        assert_eq!(body, "MATCH (cypher) RETURN cypher");
    }

    #[test]
    fn malformed_headers_are_rejected() {
        let err = split_cypher_params("CYPHER k=MATCH (n) RETURN n").unwrap_err();
        assert!(err.contains("invalid value for parameter `k`"), "got {err:?}");
        let err = split_cypher_params("CYPHER k=[1, MATCH (n) RETURN n").unwrap_err();
        assert!(err.contains("parameter `k`"), "got {err:?}");
        let err = split_cypher_params("CYPHER k=-'x' RETURN 1").unwrap_err();
        assert!(err.contains("parameter `k`"), "got {err:?}");
    }

    #[test]
    fn stats_footer_reports_cache_status() {
        let mut rs = ResultSet::empty();
        let footer_lines = |rs: &ResultSet| -> Vec<String> {
            let RespValue::Array(sections) = resultset_to_resp(rs) else { panic!() };
            let RespValue::Array(stats) = &sections[2] else { panic!() };
            stats.iter().map(|v| v.to_string()).collect()
        };
        let lines = footer_lines(&rs);
        assert!(lines.iter().any(|l| l.contains("Cached: false")), "stats were {lines:?}");
        assert!(
            lines.last().unwrap().contains("Query internal execution time"),
            "stats were {lines:?}"
        );
        rs.stats.cached = true;
        let lines = footer_lines(&rs);
        assert!(lines.iter().any(|l| l.contains("Cached: true")), "stats were {lines:?}");
    }

    #[test]
    fn rejects_malformed_commands() {
        assert!(Command::parse(&RespValue::command(&["GRAPH.QUERY", "g"])).is_err());
        assert!(Command::parse(&RespValue::command(&["FLUSHALL"])).is_err());
        assert!(Command::parse(&RespValue::Integer(1)).is_err());
        assert!(Command::parse(&RespValue::Array(vec![])).is_err());
    }

    #[test]
    fn resultset_reply_has_three_sections() {
        let rs = ResultSet {
            columns: vec!["count(t)".into()],
            rows: vec![vec![Value::Int(9)]],
            stats: Default::default(),
        };
        let reply = resultset_to_resp(&rs);
        let RespValue::Array(sections) = reply else { panic!() };
        assert_eq!(sections.len(), 3);
        let RespValue::Array(rows) = &sections[1] else { panic!() };
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn value_conversion_covers_all_kinds() {
        assert_eq!(value_to_resp(&Value::Int(3)), RespValue::Integer(3));
        assert_eq!(value_to_resp(&Value::Null), RespValue::Null);
        assert_eq!(value_to_resp(&Value::Bool(true)), RespValue::BulkString("true".into()));
        assert!(matches!(value_to_resp(&Value::List(vec![Value::Int(1)])), RespValue::Array(_)));
    }
}
