//! The in-process RedisGraph server: a single-threaded command dispatcher in
//! front of the module threadpool, plus the keyspace of named graphs.
//!
//! Concurrency model (paper §II):
//!
//! * all commands funnel through the single main thread ([`RedisGraphServer::handle`]
//!   or the dispatcher thread started by [`RedisGraphServer::start_dispatcher`]);
//! * each `GRAPH.QUERY` is executed by **one** worker of the threadpool;
//! * queries are parsed **once**, at dispatch: a parse error answers
//!   immediately without occupying a pool worker or touching any graph lock;
//! * read-only queries pin an epoch snapshot ([`redisgraph_core::GraphSnapshot`])
//!   under a momentary read lock and then execute entirely lock-free, so a
//!   heavy procedure call or a burst of writers can never stall point reads;
//! * write queries take the graph's write lock for exclusive access.

use crate::commands::{profile_to_resp, resultset_to_resp, split_cypher_params, Command};
use crate::metrics::{CommandKind, Metrics, SlowLog, SlowLogEntry};
use crate::plan_cache::{normalize, CachedPlan, Lookup, PlanCache};
use crate::pool::ThreadPool;
use crate::resp::RespValue;
use crossbeam::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crossbeam::channel::{unbounded, Receiver, Sender};
use crossbeam::thread::JoinHandle;
use parking_lot::{Mutex, RwLock};
use redisgraph_core::{ExecutionPlan, Graph, GraphSnapshot, QueryError};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Server configuration (the module load-time options).
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Number of worker threads in the query pool (`THREAD_COUNT` module arg).
    pub thread_count: usize,
    /// Per-matrix pending-change count at which delta buffers are folded into
    /// the main matrices (`DELTA_MAX_PENDING_CHANGES`; runtime-tunable with
    /// `GRAPH.CONFIG SET`).
    pub delta_max_pending_changes: usize,
    /// Intra-query thread count for GraphBLAS kernels (`QUERY_THREADS`
    /// module arg, the paper's `GxB_set(GxB_NTHREADS, …)`): the batched
    /// traversal `mxm` parallelises over frontier row blocks with this many
    /// threads. `None` leaves the process-wide [`graphblas::Context`]
    /// untouched (it defaults to 1 — inter-query concurrency comes from the
    /// module threadpool, as RedisGraph ships). Runtime-tunable with
    /// `GRAPH.CONFIG SET QUERY_THREADS`.
    pub query_threads: Option<usize>,
    /// Per-connection cap on the retained query buffer (`MAX_QUERY_BUFFER`,
    /// Redis' `client-query-buffer-limit`): a connection whose unparsed
    /// bytes exceed this is closed with a protocol error, so a client that
    /// declares a huge bulk and streams it slowly — or never finishes a
    /// frame at all — cannot hold server memory hostage. Runtime-tunable
    /// with `GRAPH.CONFIG SET MAX_QUERY_BUFFER`.
    pub max_query_buffer: usize,
    /// Cap on concurrently served TCP connections (Redis' `maxclients`):
    /// connection number `max_connections + 1` is greeted with an error and
    /// closed instead of accepted.
    pub max_connections: usize,
    /// Queries whose total wall time (dispatch to reply) reaches this many
    /// milliseconds are recorded in their graph's slow-query ring buffer
    /// (`GRAPH.SLOWLOG`). `0` logs every query. Runtime-tunable with
    /// `GRAPH.CONFIG SET SLOWLOG_TIME_THRESHOLD`.
    pub slowlog_time_threshold_ms: u64,
    /// Per-graph cap on cached execution-plan skeletons (`PLAN_CACHE_SIZE`).
    /// `GRAPH.QUERY` / `GRAPH.PROFILE` / `GRAPH.EXPLAIN` cache the parsed and
    /// planned form of each whitespace-normalized query body and re-bind
    /// `CYPHER` header parameters per execution. `0` disables caching.
    /// Runtime-tunable with `GRAPH.CONFIG SET PLAN_CACHE_SIZE` (resizing
    /// clears existing caches).
    pub plan_cache_size: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            thread_count: 4,
            delta_max_pending_changes: graphblas::DEFAULT_FLUSH_THRESHOLD,
            query_threads: None,
            max_query_buffer: DEFAULT_MAX_QUERY_BUFFER,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            slowlog_time_threshold_ms: DEFAULT_SLOWLOG_TIME_THRESHOLD_MS,
            plan_cache_size: DEFAULT_PLAN_CACHE_SIZE,
        }
    }
}

/// Default `PLAN_CACHE_SIZE` (cached plan skeletons per graph). RedisGraph's
/// query cache defaults to 25 entries per graph; a larger bound costs only
/// retained plans (small) and keeps benchmark workloads with many distinct
/// shapes entirely cache-resident.
pub const DEFAULT_PLAN_CACHE_SIZE: usize = 256;

/// Default `SLOWLOG_TIME_THRESHOLD` (milliseconds; Redis' slowlog default is
/// 10000 µs). Point reads finish far under it, so the hot path's only cost
/// is one integer compare.
pub const DEFAULT_SLOWLOG_TIME_THRESHOLD_MS: u64 = 10;

/// Ceiling for `QUERY_THREADS` (a sanity cap, not a hardware probe).
const MAX_QUERY_THREADS: usize = 1024;

/// Default `MAX_QUERY_BUFFER` (1GB, Redis' `client-query-buffer-limit`).
pub const DEFAULT_MAX_QUERY_BUFFER: usize = 1 << 30;

/// Floor for `MAX_QUERY_BUFFER`: below one RESP header line the server could
/// not even parse a `PING`, so smaller settings are rejected.
pub const MIN_QUERY_BUFFER: usize = 1024;

/// Default cap on concurrent TCP connections.
pub const DEFAULT_MAX_CONNECTIONS: usize = 128;

/// Canonical names of every `GRAPH.CONFIG` parameter, in the order
/// `GRAPH.CONFIG GET *` reports them. The first five are runtime-settable;
/// `THREAD_COUNT` and `MAX_CONNECTIONS` are fixed at module load.
const CONFIG_PARAMETERS: [&str; 7] = [
    "DELTA_MAX_PENDING_CHANGES",
    "QUERY_THREADS",
    "MAX_QUERY_BUFFER",
    "SLOWLOG_TIME_THRESHOLD",
    "PLAN_CACHE_SIZE",
    "THREAD_COUNT",
    "MAX_CONNECTIONS",
];

/// The metrics-registry index of a parsed command.
fn command_kind(command: &Command) -> CommandKind {
    match command {
        Command::Ping => CommandKind::Ping,
        Command::Shutdown => CommandKind::Shutdown,
        Command::GraphQuery { .. } => CommandKind::GraphQuery,
        Command::GraphProfile { .. } => CommandKind::GraphProfile,
        Command::GraphExplain { .. } => CommandKind::GraphExplain,
        Command::GraphDelete { .. } => CommandKind::GraphDelete,
        Command::GraphList => CommandKind::GraphList,
        Command::GraphConfigGet { .. } => CommandKind::GraphConfigGet,
        Command::GraphConfigSet { .. } => CommandKind::GraphConfigSet,
        Command::GraphSlowlog { .. } => CommandKind::GraphSlowlog,
        Command::GraphInfo => CommandKind::GraphInfo,
    }
}

/// A request travelling from a client to the dispatcher thread.
pub struct Request {
    /// The already-framed command.
    pub command: RespValue,
    /// Where to deliver the reply.
    pub reply_to: Sender<RespValue>,
}

/// One keyspace slot: the graph plus its delete tombstone.
///
/// Queries dispatched before a `GRAPH.DELETE` may still hold this entry's
/// `Arc` when the delete lands; the flag makes the delete observable to them
/// (a queued write aborts instead of mutating the orphan), while a later
/// lookup of the same name creates a *fresh* entry.
#[derive(Clone)]
struct GraphEntry {
    graph: Arc<RwLock<Graph>>,
    deleted: Arc<AtomicBool>,
    /// The sealed snapshot serving the current epoch's reads, rebuilt at the
    /// first read after a publication; every later read of the same epoch
    /// just clones the `Arc`. A `GRAPH.DELETE` drops the whole entry, and
    /// the stale cache with it.
    snapshot_cache: Arc<Mutex<Option<Arc<GraphSnapshot>>>>,
    /// The graph's slow-query ring buffer (`GRAPH.SLOWLOG`). Per graph, like
    /// RedisGraph: a `GRAPH.DELETE` drops the log with the entry.
    slowlog: Arc<Mutex<SlowLog>>,
    /// Cached plan skeletons keyed on the normalized query body; parameters
    /// bind per execution. Per graph, so a `GRAPH.DELETE` drops the cache
    /// with the entry and one graph's churn cannot evict another's plans.
    plan_cache: Arc<PlanCache>,
}

impl GraphEntry {
    /// The sealed snapshot of the graph's current epoch.
    ///
    /// The epoch check and the clone backing a rebuild happen under the
    /// *same* read-lock acquisition, so the cached snapshot can never be
    /// installed for an epoch it does not represent. The cache mutex is held
    /// across the rebuild (single-flight): concurrent first-readers of a
    /// fresh epoch briefly queue for one structural clone instead of each
    /// paying their own, and nobody holds the graph lock while they wait —
    /// a writer is never blocked.
    fn snapshot(&self, metrics: &Metrics) -> Arc<GraphSnapshot> {
        let mut cache = self.snapshot_cache.lock();
        let pending = {
            let g = self.graph.read();
            if let Some(cached) = cache.as_ref() {
                if cached.epoch() == g.epoch() {
                    metrics.snapshot_hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(cached);
                }
            }
            g.clone()
        };
        metrics.snapshot_rebuilds.fetch_add(1, Ordering::Relaxed);
        let sealed = Arc::new(GraphSnapshot::seal(pending));
        *cache = Some(Arc::clone(&sealed));
        sealed
    }

    /// Finish resolving a plan skeleton after a [`PlanCache::lookup`]:
    /// validate that a hit was built under the graph's current optimizer
    /// setting, or parse + plan + insert on a miss. `ast` carries the
    /// pre-parsed body when the dispatch path already paid for the parse;
    /// otherwise the body is re-derived from `query_text` here. Returns the
    /// skeleton and whether it came from the cache.
    fn resolve_plan(
        &self,
        key: &str,
        looked_up: Lookup,
        ast: Option<cypher::Query>,
        query_text: &str,
        metrics: &Metrics,
    ) -> Result<(Arc<CachedPlan>, bool), QueryError> {
        let generation = match looked_up {
            Lookup::Hit(cached) => {
                if cached.optimized == self.graph.read().optimizer_enabled() {
                    return Ok((cached, true));
                }
                // The optimizer was toggled since this plan was built: every
                // plan of the old regime is stale, so clear them all and
                // rebuild (the generation bump also rejects in-flight
                // inserts that observed the old setting).
                self.plan_cache.invalidate();
                match self.plan_cache.lookup(key, metrics) {
                    Lookup::Miss(generation) => generation,
                    Lookup::Hit(cached) => return Ok((cached, true)),
                }
            }
            Lookup::Miss(generation) => generation,
        };
        let ast = match ast {
            Some(ast) => ast,
            None => {
                let (_, body) = split_cypher_params(query_text).map_err(QueryError::Syntax)?;
                cypher::parse(body)?
            }
        };
        let (plan, optimized) = {
            let g = self.graph.read();
            (g.build_plan(&ast)?, g.optimizer_enabled())
        };
        let skeleton = Arc::new(CachedPlan {
            read_only: ast.is_read_only(),
            has_params: plan.has_params(),
            plan: Arc::new(plan),
            optimized,
        });
        self.plan_cache.insert(key.to_string(), Arc::clone(&skeleton), generation, metrics);
        Ok((skeleton, false))
    }
}

/// The in-process server.
pub struct RedisGraphServer {
    graphs: Arc<RwLock<HashMap<String, GraphEntry>>>,
    pool: Arc<ThreadPool>,
    config: ServerConfig,
    /// Live value of `DELTA_MAX_PENDING_CHANGES` (`GRAPH.CONFIG SET` updates
    /// it at runtime; new graphs pick it up on creation, existing graphs are
    /// retuned in place).
    delta_max_pending_changes: AtomicUsize,
    /// Live value of `MAX_QUERY_BUFFER`: connection loops reload it before
    /// every bound check, so `GRAPH.CONFIG SET` applies to open connections.
    max_query_buffer: AtomicUsize,
    /// Live value of `SLOWLOG_TIME_THRESHOLD` in milliseconds (0 = log every
    /// query).
    slowlog_time_threshold_ms: AtomicU64,
    /// Live value of `PLAN_CACHE_SIZE` (cached plans per graph; 0 disables):
    /// new graphs size their cache from it, `GRAPH.CONFIG SET` resizes
    /// existing caches in place.
    plan_cache_size: AtomicUsize,
    /// The server-wide metrics registry (`GRAPH.INFO`), shared with the
    /// network layer's accept and connection loops.
    metrics: Arc<Metrics>,
}

impl RedisGraphServer {
    /// Create a server with the given module configuration.
    ///
    /// # Panics
    /// Panics if `query_threads` is out of range — a bad module argument
    /// fails the load, with the same `1..=1024` validation that
    /// `GRAPH.CONFIG SET QUERY_THREADS` applies at runtime.
    pub fn new(config: ServerConfig) -> Self {
        if let Some(n) = config.query_threads {
            assert!(
                (1..=MAX_QUERY_THREADS).contains(&n),
                "QUERY_THREADS must be in 1..={MAX_QUERY_THREADS}, got {n}"
            );
            graphblas::Context::set_nthreads(n);
        }
        RedisGraphServer {
            graphs: Arc::new(RwLock::new(HashMap::new())),
            pool: Arc::new(ThreadPool::new(config.thread_count)),
            config,
            delta_max_pending_changes: AtomicUsize::new(config.delta_max_pending_changes.max(1)),
            max_query_buffer: AtomicUsize::new(config.max_query_buffer.max(MIN_QUERY_BUFFER)),
            slowlog_time_threshold_ms: AtomicU64::new(config.slowlog_time_threshold_ms),
            plan_cache_size: AtomicUsize::new(config.plan_cache_size),
            metrics: Arc::new(Metrics::default()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> ServerConfig {
        self.config
    }

    /// The live `DELTA_MAX_PENDING_CHANGES` value.
    pub fn delta_max_pending_changes(&self) -> usize {
        self.delta_max_pending_changes.load(Ordering::Relaxed)
    }

    /// The live `MAX_QUERY_BUFFER` value (per-connection retained-bytes cap).
    pub fn max_query_buffer(&self) -> usize {
        self.max_query_buffer.load(Ordering::Relaxed)
    }

    /// The live `SLOWLOG_TIME_THRESHOLD` value in milliseconds.
    pub fn slowlog_time_threshold_ms(&self) -> u64 {
        self.slowlog_time_threshold_ms.load(Ordering::Relaxed)
    }

    /// The live `PLAN_CACHE_SIZE` value (cached plans per graph; 0 disables
    /// the plan cache).
    pub fn plan_cache_size(&self) -> usize {
        self.plan_cache_size.load(Ordering::Relaxed)
    }

    /// The server-wide metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The module threadpool (the network layer dispatches queries onto it).
    pub(crate) fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// Fetch (or create) the graph stored under `name`.
    pub fn graph(&self, name: &str) -> Arc<RwLock<Graph>> {
        self.entry(name).graph
    }

    /// Fetch (or create) the keyspace entry stored under `name`.
    fn entry(&self, name: &str) -> GraphEntry {
        if let Some(e) = self.graphs.read().get(name) {
            return e.clone();
        }
        let mut graphs = self.graphs.write();
        graphs
            .entry(name.to_string())
            .or_insert_with(|| {
                let mut g = Graph::new(name);
                // Threshold is read under the map's write lock so a racing
                // `GRAPH.CONFIG SET` (which retunes the map's graphs under
                // the same lock) cannot leave this graph on a stale value.
                g.set_flush_threshold(self.delta_max_pending_changes());
                GraphEntry {
                    graph: Arc::new(RwLock::new(g)),
                    deleted: Arc::new(AtomicBool::new(false)),
                    snapshot_cache: Arc::new(Mutex::new(None)),
                    slowlog: Arc::new(Mutex::new(SlowLog::default())),
                    plan_cache: Arc::new(PlanCache::new(self.plan_cache_size())),
                }
            })
            .clone()
    }

    /// Names of the graphs currently stored.
    pub fn graph_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.graphs.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Handle one framed command synchronously: the calling thread plays the
    /// role of the main Redis thread, the query itself runs on a pool worker.
    pub fn handle(&self, command: &RespValue) -> RespValue {
        let parsed = match Command::parse(command) {
            Ok(c) => c,
            Err(e) => return RespValue::Error(format!("ERR {e}")),
        };
        self.execute(parsed)
    }

    /// Convenience wrapper: run a Cypher query against a named graph.
    pub fn query(&self, graph: &str, query: &str) -> RespValue {
        self.handle(&RespValue::command(&["GRAPH.QUERY", graph, query]))
    }

    /// Submit a `GRAPH.QUERY` to the module threadpool: one query, one worker
    /// thread (the paper's execution model). The reply is delivered on
    /// `reply_to` when the worker finishes — this is the single dispatch path
    /// shared by the synchronous façade, the dispatcher thread, and the TCP
    /// connection loops, so locking discipline lives in exactly one place.
    ///
    /// The query is parsed exactly once, here: a parse error replies
    /// immediately without creating the graph, occupying a worker, or
    /// touching any lock (an unparseable query used to be classified as a
    /// write and took the exclusive lock just to fail), and the AST rides
    /// along to the worker so execution never re-parses the text.
    pub fn submit_query(&self, graph: String, query: String, reply_to: Sender<RespValue>) {
        self.submit(graph, query, false, reply_to);
    }

    /// Submit a `GRAPH.PROFILE`: same dispatch, locking, and mutation
    /// semantics as [`RedisGraphServer::submit_query`], but the reply is the
    /// per-operator profile tree instead of the result set.
    pub fn submit_profile(&self, graph: String, query: String, reply_to: Sender<RespValue>) {
        self.submit(graph, query, true, reply_to);
    }

    fn submit(&self, graph: String, query: String, profile: bool, reply_to: Sender<RespValue>) {
        // The one wall-clock anchor for this query: the statistics footer,
        // the profile totals, the latency histogram, and the slowlog all
        // derive from it, so the layers can never disagree about a query's
        // duration.
        let started = Instant::now();
        let metrics = Arc::clone(&self.metrics);
        metrics.count_command(if profile {
            CommandKind::GraphProfile
        } else {
            CommandKind::GraphQuery
        });
        // Split the `CYPHER name=value …` parameter header off the body
        // first: the cache key is the normalized *body*, so the same query
        // shape with different parameter values shares one cached plan.
        let (params, body) = match split_cypher_params(&query) {
            Ok(split) => split,
            Err(e) => {
                metrics.queries_failed.fetch_add(1, Ordering::Relaxed);
                let _ = reply_to.send(RespValue::Error(format!("ERR {e}")));
                return;
            }
        };
        let key = normalize(body);
        // Plan-cache lookup before parsing: a hit skips both the parser and
        // the planner. The keyspace entry is only *read* here — like parse
        // errors, a cache miss on an unknown graph must not create it.
        let existing = self.graphs.read().get(&graph).cloned();
        let looked_up = match &existing {
            Some(entry) => entry.plan_cache.lookup(&key, &metrics),
            None => {
                metrics.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
                // A fresh entry's cache starts at generation 0, so the
                // worker's insert against this observation still lands.
                Lookup::Miss(0)
            }
        };
        // On a miss, parse at dispatch: a syntax error answers immediately
        // without creating the graph, occupying a worker, or touching any
        // lock. The AST rides along so the worker never re-parses.
        let ast = match &looked_up {
            Lookup::Hit(_) => None,
            Lookup::Miss(_) => match cypher::parse(body) {
                Ok(ast) => Some(ast),
                Err(e) => {
                    metrics.queries_failed.fetch_add(1, Ordering::Relaxed);
                    let _ = reply_to.send(RespValue::Error(format!("ERR {}", QueryError::from(e))));
                    return;
                }
            },
        };
        let entry = existing.unwrap_or_else(|| self.entry(&graph));
        let slowlog_threshold_ms = self.slowlog_time_threshold_ms();
        self.pool.execute(move || {
            // Resolve the skeleton (cache hit, or build + insert), then bind
            // parameters into a private copy when the plan references any.
            let reply = match entry.resolve_plan(&key, looked_up, ast, &query, &metrics) {
                Err(e) => RespValue::Error(format!("ERR {e}")),
                Ok((skeleton, was_cached)) => (|| {
                    let bound;
                    let plan: &ExecutionPlan = if skeleton.has_params {
                        match skeleton.plan.bind(&params) {
                            Ok(p) => {
                                bound = p;
                                &bound
                            }
                            Err(e) => return RespValue::Error(format!("ERR {e}")),
                        }
                    } else {
                        &skeleton.plan
                    };
                    if skeleton.read_only {
                        // Pin the current epoch's sealed snapshot (cached per
                        // epoch, rebuilt outside every lock on a miss), then
                        // execute with no lock held at all: a heavy query
                        // cannot queue a flush's write-lock request in front
                        // of us, and we cannot stall a writer. The live
                        // graph's deltas stay buffered — the seal folded the
                        // snapshot's private COW copies once per epoch.
                        metrics.queries_readonly.fetch_add(1, Ordering::Relaxed);
                        let snapshot = entry.snapshot(&metrics);
                        if profile {
                            match snapshot.profile_plan_at(plan, started) {
                                Ok((_rs, profiles)) => profile_to_resp(&profiles),
                                Err(e) => RespValue::Error(format!("ERR {e}")),
                            }
                        } else {
                            match snapshot.execute_plan_at(plan, started) {
                                Ok(mut rs) => {
                                    rs.stats.cached = was_cached;
                                    resultset_to_resp(&rs)
                                }
                                Err(e) => RespValue::Error(format!("ERR {e}")),
                            }
                        }
                    } else {
                        metrics.queries_write.fetch_add(1, Ordering::Relaxed);
                        let mut g = entry.graph.write();
                        // A `GRAPH.DELETE` that landed after dispatch marked
                        // the entry; abort rather than mutate the orphan.
                        if entry.deleted.load(Ordering::SeqCst) {
                            RespValue::Error(format!("ERR graph `{}` was deleted", g.name()))
                        } else if profile {
                            match plan.profile(&mut g, started) {
                                Ok((_rs, profiles)) => profile_to_resp(&profiles),
                                Err(e) => RespValue::Error(format!("ERR {e}")),
                            }
                        } else {
                            match plan.execute_at(&mut g, started) {
                                Ok(mut rs) => {
                                    rs.stats.cached = was_cached;
                                    resultset_to_resp(&rs)
                                }
                                Err(e) => RespValue::Error(format!("ERR {e}")),
                            }
                        }
                    }
                })(),
            };
            let elapsed = started.elapsed();
            metrics.query_latency.record_duration(elapsed);
            if matches!(reply, RespValue::Error(_)) {
                metrics.queries_failed.fetch_add(1, Ordering::Relaxed);
            } else {
                metrics.queries_executed.fetch_add(1, Ordering::Relaxed);
            }
            if elapsed.as_millis() as u64 >= slowlog_threshold_ms {
                let command = if profile { "GRAPH.PROFILE" } else { "GRAPH.QUERY" };
                entry.slowlog.lock().record(SlowLogEntry::now(command, query, elapsed));
            }
            let _ = reply_to.send(reply);
        });
    }

    /// Execute a parsed command.
    pub fn execute(&self, command: Command) -> RespValue {
        // `GRAPH.QUERY` / `GRAPH.PROFILE` are counted at their single
        // dispatch point (`submit`), which every route — including the arms
        // below — funnels through; counting them here too would double-count
        // the in-process façade.
        match &command {
            Command::GraphQuery { .. } | Command::GraphProfile { .. } => {}
            other => self.metrics.count_command(command_kind(other)),
        }
        match command {
            Command::Ping => RespValue::SimpleString("PONG".to_string()),
            // Only the network listener can wind the process down; the
            // in-process façade has nothing to shut.
            Command::Shutdown => {
                RespValue::Error("ERR SHUTDOWN is only supported by the network server".to_string())
            }
            Command::GraphList => RespValue::Array(
                self.graph_names().into_iter().map(RespValue::BulkString).collect(),
            ),
            Command::GraphDelete { graph } => {
                let removed = self.graphs.write().remove(&graph);
                match removed {
                    Some(entry) => {
                        // Queries dispatched before the delete still hold
                        // this entry's Arc. Mark it first so a not-yet-run
                        // write aborts instead of mutating the orphan, then
                        // briefly take the write lock: once it is granted,
                        // every query that was executing against the old
                        // graph has finished — so when OK goes out, the
                        // delete is fully observable and later commands on
                        // the name get a fresh, empty graph.
                        entry.deleted.store(true, Ordering::SeqCst);
                        // The cache dies with the entry; invalidating also
                        // stops an in-flight query that dispatched before
                        // the delete from installing a plan in the orphan.
                        entry.plan_cache.invalidate();
                        drop(entry.graph.write());
                        RespValue::SimpleString("OK".to_string())
                    }
                    None => RespValue::Error(format!("ERR graph `{graph}` does not exist")),
                }
            }
            Command::GraphConfigGet { parameter } => {
                if parameter == "*" {
                    // RedisGraph parity: every parameter as a name/value pair.
                    return RespValue::Array(
                        CONFIG_PARAMETERS
                            .iter()
                            .map(|name| {
                                RespValue::Array(vec![
                                    RespValue::BulkString(name.to_string()),
                                    RespValue::Integer(
                                        self.config_value(name).expect("listed parameter"),
                                    ),
                                ])
                            })
                            .collect(),
                    );
                }
                let canonical =
                    CONFIG_PARAMETERS.iter().find(|name| parameter.eq_ignore_ascii_case(name));
                match canonical {
                    Some(name) => RespValue::Array(vec![
                        RespValue::BulkString(name.to_string()),
                        RespValue::Integer(self.config_value(name).expect("listed parameter")),
                    ]),
                    None => RespValue::Error(format!(
                        "ERR unknown configuration parameter `{parameter}`"
                    )),
                }
            }
            Command::GraphConfigSet { parameter, value } => {
                if parameter.eq_ignore_ascii_case("DELTA_MAX_PENDING_CHANGES") {
                    let Some(threshold) = value.parse::<usize>().ok().filter(|&v| v >= 1) else {
                        return RespValue::Error(format!(
                            "ERR DELTA_MAX_PENDING_CHANGES must be a positive integer (1 = flush \
                             every mutation), got `{value}`"
                        ));
                    };
                    self.delta_max_pending_changes.store(threshold, Ordering::Relaxed);
                    // Retune every existing graph in place.
                    let graphs: Vec<Arc<RwLock<Graph>>> =
                        self.graphs.read().values().map(|e| e.graph.clone()).collect();
                    for graph in graphs {
                        graph.write().set_flush_threshold(threshold);
                    }
                    RespValue::SimpleString("OK".to_string())
                } else if parameter.eq_ignore_ascii_case("QUERY_THREADS") {
                    // Feeds the process-wide GraphBLAS context — the paper's
                    // `GxB_set(GxB_NTHREADS, …)` — which every traversal
                    // descriptor inherits.
                    let Some(threads) = value
                        .parse::<usize>()
                        .ok()
                        .filter(|&v| (1..=MAX_QUERY_THREADS).contains(&v))
                    else {
                        return RespValue::Error(format!(
                            "ERR QUERY_THREADS must be an integer in 1..={MAX_QUERY_THREADS} \
                             (1 = one core per query, as the paper configures), got `{value}`"
                        ));
                    };
                    graphblas::Context::set_nthreads(threads);
                    // Plans capture the thread budget at build time, so every
                    // cached skeleton is now stale. The generation bump also
                    // rejects in-flight builds that observed the old setting.
                    for entry in self.graphs.read().values() {
                        entry.plan_cache.invalidate();
                    }
                    RespValue::SimpleString("OK".to_string())
                } else if parameter.eq_ignore_ascii_case("PLAN_CACHE_SIZE") {
                    let Ok(size) = value.parse::<usize>() else {
                        return RespValue::Error(format!(
                            "ERR PLAN_CACHE_SIZE must be a non-negative integer (cached plans \
                             per graph; 0 disables the plan cache), got `{value}`"
                        ));
                    };
                    self.plan_cache_size.store(size, Ordering::Relaxed);
                    // Resize every existing cache in place (which clears it —
                    // resizing is an invalidation); new graphs pick the value
                    // up on creation.
                    for entry in self.graphs.read().values() {
                        entry.plan_cache.set_capacity(size);
                    }
                    RespValue::SimpleString("OK".to_string())
                } else if parameter.eq_ignore_ascii_case("MAX_QUERY_BUFFER") {
                    let Some(bytes) =
                        value.parse::<usize>().ok().filter(|&v| v >= MIN_QUERY_BUFFER)
                    else {
                        return RespValue::Error(format!(
                            "ERR MAX_QUERY_BUFFER must be an integer >= {MIN_QUERY_BUFFER} \
                             (bytes of unparsed input a connection may retain), got `{value}`"
                        ));
                    };
                    self.max_query_buffer.store(bytes, Ordering::Relaxed);
                    RespValue::SimpleString("OK".to_string())
                } else if parameter.eq_ignore_ascii_case("SLOWLOG_TIME_THRESHOLD") {
                    let Some(ms) = value.parse::<u64>().ok() else {
                        return RespValue::Error(format!(
                            "ERR SLOWLOG_TIME_THRESHOLD must be a non-negative integer \
                             (milliseconds; 0 logs every query), got `{value}`"
                        ));
                    };
                    self.slowlog_time_threshold_ms.store(ms, Ordering::Relaxed);
                    RespValue::SimpleString("OK".to_string())
                } else {
                    RespValue::Error(format!("ERR unknown configuration parameter `{parameter}`"))
                }
            }
            Command::GraphExplain { graph, query } => {
                // EXPLAIN resolves through the same per-graph plan cache as
                // QUERY/PROFILE: explaining a hot query is free, and an
                // EXPLAIN warms the cache for the executions that follow.
                let (_params, body) = match split_cypher_params(&query) {
                    Ok(split) => split,
                    Err(e) => return RespValue::Error(format!("ERR {e}")),
                };
                let key = normalize(body);
                let entry = self.entry(&graph);
                let looked_up = entry.plan_cache.lookup(&key, &self.metrics);
                match entry.resolve_plan(&key, looked_up, None, &query, &self.metrics) {
                    Ok((skeleton, _)) => RespValue::Array(
                        skeleton.plan.describe().into_iter().map(RespValue::BulkString).collect(),
                    ),
                    Err(e) => RespValue::Error(format!("ERR {e}")),
                }
            }
            Command::GraphQuery { graph, query } => {
                let (tx, rx) = crossbeam::channel::bounded(1);
                self.submit_query(graph, query, tx);
                rx.recv()
                    .unwrap_or_else(|_| RespValue::Error("ERR query worker exited".to_string()))
            }
            Command::GraphProfile { graph, query } => {
                let (tx, rx) = crossbeam::channel::bounded(1);
                self.submit_profile(graph, query, tx);
                rx.recv()
                    .unwrap_or_else(|_| RespValue::Error("ERR query worker exited".to_string()))
            }
            Command::GraphSlowlog { graph, reset } => {
                // Unlike queries, SLOWLOG never creates the graph: asking for
                // the log of a graph that does not exist is an error.
                let Some(entry) = self.graphs.read().get(&graph).cloned() else {
                    return RespValue::Error(format!("ERR graph `{graph}` does not exist"));
                };
                if reset {
                    entry.slowlog.lock().reset();
                    RespValue::SimpleString("OK".to_string())
                } else {
                    RespValue::Array(
                        entry
                            .slowlog
                            .lock()
                            .entries_newest_first()
                            .into_iter()
                            .map(|e| {
                                RespValue::Array(vec![
                                    RespValue::Integer(e.unix_time as i64),
                                    RespValue::BulkString(e.command.to_string()),
                                    RespValue::BulkString(e.query),
                                    RespValue::BulkString(format!("{:.3}", e.millis)),
                                    RespValue::Integer(e.args as i64),
                                ])
                            })
                            .collect(),
                    )
                }
            }
            Command::GraphInfo => self.info_resp(),
        }
    }

    /// The current value of a canonical configuration parameter name.
    fn config_value(&self, name: &str) -> Option<i64> {
        match name {
            "DELTA_MAX_PENDING_CHANGES" => Some(self.delta_max_pending_changes() as i64),
            "QUERY_THREADS" => Some(graphblas::Context::nthreads() as i64),
            "MAX_QUERY_BUFFER" => Some(self.max_query_buffer() as i64),
            "SLOWLOG_TIME_THRESHOLD" => Some(self.slowlog_time_threshold_ms() as i64),
            "PLAN_CACHE_SIZE" => Some(self.plan_cache_size() as i64),
            "THREAD_COUNT" => Some(self.config.thread_count as i64),
            "MAX_CONNECTIONS" => Some(self.config.max_connections as i64),
            _ => None,
        }
    }

    /// Build the `GRAPH.INFO` reply: sections of flat key/value arrays, the
    /// RESP-consumable shape of the metrics registry plus per-store counters.
    fn info_resp(&self) -> RespValue {
        let m = &self.metrics;
        let load = |a: &AtomicU64| RespValue::Integer(a.load(Ordering::Relaxed) as i64);
        let int = |v: u64| RespValue::Integer(v as i64);
        let section = |name: &str, pairs: Vec<(&str, RespValue)>| {
            RespValue::Array(vec![
                RespValue::BulkString(name.to_string()),
                RespValue::Array(
                    pairs
                        .into_iter()
                        .flat_map(|(k, v)| [RespValue::BulkString(k.to_string()), v])
                        .collect(),
                ),
            ])
        };

        let queries = section(
            "queries",
            vec![
                ("queries_executed", load(&m.queries_executed)),
                ("queries_failed", load(&m.queries_failed)),
                ("queries_readonly", load(&m.queries_readonly)),
                ("queries_write", load(&m.queries_write)),
                ("snapshot_hits", load(&m.snapshot_hits)),
                ("snapshot_rebuilds", load(&m.snapshot_rebuilds)),
                ("plan_cache_hits", load(&m.plan_cache_hits)),
                ("plan_cache_misses", load(&m.plan_cache_misses)),
                ("plan_cache_evictions", load(&m.plan_cache_evictions)),
                ("slowlog_time_threshold_ms", int(self.slowlog_time_threshold_ms())),
            ],
        );
        let commands = section(
            "commands",
            CommandKind::ALL.iter().map(|k| (k.name(), int(m.command_count(*k)))).collect(),
        );
        // Histogram samples are nanoseconds; report microseconds (Redis'
        // LATENCY unit) so the integers stay readable.
        let latency = section(
            "latency",
            vec![
                ("query_p50_usec", int(m.query_latency.quantile(0.50) / 1_000)),
                ("query_p99_usec", int(m.query_latency.quantile(0.99) / 1_000)),
                ("query_max_usec", int(m.query_latency.max() / 1_000)),
                ("query_mean_usec", int(m.query_latency.mean() / 1_000)),
                ("query_samples", int(m.query_latency.count())),
            ],
        );
        let clients = section(
            "clients",
            vec![
                ("connections_accepted", load(&m.connections_accepted)),
                ("connections_active", load(&m.connections_active)),
                ("connections_refused", load(&m.connections_refused)),
                ("bytes_in", load(&m.bytes_in)),
                ("bytes_out", load(&m.bytes_out)),
                ("pipeline_depth_p50", int(m.pipeline_depth.quantile(0.50))),
                ("pipeline_depth_p99", int(m.pipeline_depth.quantile(0.99))),
                ("pipeline_depth_max", int(m.pipeline_depth.max())),
            ],
        );
        // Store totals walk the keyspace under momentary read locks — the
        // same order a read query would take them, so INFO cannot deadlock
        // against queries.
        let (mut nodes, mut edges, mut pending, mut flushes) = (0u64, 0u64, 0u64, 0u64);
        let mut plan_cache_entries = 0u64;
        let entries: Vec<GraphEntry> = self.graphs.read().values().cloned().collect();
        let graph_count = entries.len();
        for entry in entries {
            plan_cache_entries += entry.plan_cache.len() as u64;
            let g = entry.graph.read();
            nodes += g.node_count() as u64;
            edges += g.edge_count() as u64;
            pending += g.pending_delta_count() as u64;
            flushes += g.delta_flush_count();
        }
        let store = section(
            "store",
            vec![
                ("graphs", int(graph_count as u64)),
                ("nodes", int(nodes)),
                ("edges", int(edges)),
                ("pending_deltas", int(pending)),
                ("delta_flushes", int(flushes)),
                ("plan_cache_entries", int(plan_cache_entries)),
            ],
        );
        RespValue::Array(vec![queries, commands, latency, clients, store])
    }

    /// Start the single-threaded dispatcher loop used by the throughput
    /// benchmark: clients push [`Request`]s onto the returned channel; the
    /// dispatcher (one thread, like Redis) forwards each to the pool and the
    /// reply is sent back on the request's own channel. Dropping the sender
    /// shuts the dispatcher down.
    pub fn start_dispatcher(self: &Arc<Self>) -> (Sender<Request>, JoinHandle<()>) {
        let (tx, rx): (Sender<Request>, Receiver<Request>) = unbounded();
        let server = self.clone();
        let handle = crossbeam::thread::Builder::new()
            .name("redis-main-thread".to_string())
            .spawn(move || {
                while let Ok(request) = rx.recv() {
                    // Parse on the main thread, execute on the pool, reply
                    // asynchronously so the main thread is never blocked by a
                    // long query.
                    let parsed = match Command::parse(&request.command) {
                        Ok(c) => c,
                        Err(e) => {
                            let _ = request.reply_to.send(RespValue::Error(format!("ERR {e}")));
                            continue;
                        }
                    };
                    match parsed {
                        Command::GraphQuery { graph, query } => {
                            server.submit_query(graph, query, request.reply_to);
                        }
                        Command::GraphProfile { graph, query } => {
                            server.submit_profile(graph, query, request.reply_to);
                        }
                        other => {
                            let _ = request.reply_to.send(server.execute(other));
                        }
                    }
                }
            })
            .expect("failed to start dispatcher thread");
        (tx, handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_and_graph_lifecycle() {
        let server =
            RedisGraphServer::new(ServerConfig { thread_count: 2, ..ServerConfig::default() });
        assert_eq!(
            server.handle(&RespValue::command(&["PING"])),
            RespValue::SimpleString("PONG".into())
        );
        server.query("g1", "CREATE (:A)");
        server.query("g2", "CREATE (:B)");
        assert_eq!(server.graph_names(), vec!["g1", "g2"]);
        let del = server.handle(&RespValue::command(&["GRAPH.DELETE", "g1"]));
        assert_eq!(del, RespValue::SimpleString("OK".into()));
        assert_eq!(server.graph_names(), vec!["g2"]);
        assert!(matches!(
            server.handle(&RespValue::command(&["GRAPH.DELETE", "nope"])),
            RespValue::Error(_)
        ));
    }

    #[test]
    fn query_roundtrip_through_resp() {
        let server = RedisGraphServer::new(ServerConfig::default());
        server.query("social", "CREATE (:Person {name: 'Ann'})-[:KNOWS]->(:Person {name: 'Bob'})");
        let reply = server.query("social", "MATCH (a)-[:KNOWS]->(b) RETURN b.name");
        let RespValue::Array(sections) = reply else { panic!("expected array reply") };
        let RespValue::Array(rows) = &sections[1] else { panic!() };
        assert_eq!(rows.len(), 1);
        let RespValue::Array(row) = &rows[0] else { panic!() };
        assert_eq!(row[0], RespValue::BulkString("Bob".into()));
    }

    #[test]
    fn algo_procedures_work_over_the_wire() {
        let server = RedisGraphServer::new(ServerConfig::default());
        // A star: Hub is pointed at by three spokes, so PageRank must rank it
        // first through the full RESP round-trip.
        server.query(
            "g",
            "CREATE (hub:Node {name: 'Hub'}), (a:Node), (b:Node), (c:Node), \
             (a)-[:LINK]->(hub), (b)-[:LINK]->(hub), (c)-[:LINK]->(hub)",
        );
        let reply = server.handle(&RespValue::command(&[
            "GRAPH.QUERY",
            "g",
            "CALL algo.pagerank() YIELD node, score \
             RETURN node, score ORDER BY score DESC LIMIT 5",
        ]));
        let RespValue::Array(sections) = reply else { panic!("expected array reply") };
        let RespValue::Array(header) = &sections[0] else { panic!() };
        assert_eq!(header[0], RespValue::BulkString("node".into()));
        assert_eq!(header[1], RespValue::BulkString("score".into()));
        let RespValue::Array(rows) = &sections[1] else { panic!() };
        assert_eq!(rows.len(), 4);
        let RespValue::Array(top) = &rows[0] else { panic!() };
        assert_eq!(top[0], RespValue::BulkString("(node:0)".into()));

        // Unknown procedures surface as RESP errors.
        assert!(matches!(
            server.query("g", "CALL algo.nope() YIELD x RETURN x"),
            RespValue::Error(_)
        ));
    }

    #[test]
    fn graph_config_knob_tunes_delta_flushing() {
        let server = RedisGraphServer::new(ServerConfig::default());
        // Existing graphs are retuned in place, new graphs inherit the value.
        server.query("g", "CREATE (:Node)");
        let reply = server.handle(&RespValue::command(&[
            "GRAPH.CONFIG",
            "SET",
            "DELTA_MAX_PENDING_CHANGES",
            "17",
        ]));
        assert_eq!(reply, RespValue::SimpleString("OK".into()));
        assert_eq!(server.graph("g").read().flush_threshold(), 17);
        assert_eq!(server.graph("fresh").read().flush_threshold(), 17);

        let reply = server.handle(&RespValue::command(&[
            "GRAPH.CONFIG",
            "GET",
            "delta_max_pending_changes",
        ]));
        assert_eq!(
            reply,
            RespValue::Array(vec![
                RespValue::BulkString("DELTA_MAX_PENDING_CHANGES".into()),
                RespValue::Integer(17),
            ])
        );

        // 0, junk, and unknown parameters are rejected (1 is the eager floor).
        assert!(matches!(
            server.handle(&RespValue::command(&[
                "GRAPH.CONFIG",
                "SET",
                "DELTA_MAX_PENDING_CHANGES",
                "0",
            ])),
            RespValue::Error(_)
        ));
        assert_eq!(server.delta_max_pending_changes(), 17, "rejected SET must not change state");
        assert!(matches!(
            server.handle(&RespValue::command(&[
                "GRAPH.CONFIG",
                "SET",
                "DELTA_MAX_PENDING_CHANGES",
                "lots"
            ])),
            RespValue::Error(_)
        ));
        assert!(matches!(
            server.handle(&RespValue::command(&["GRAPH.CONFIG", "GET", "NO_SUCH_PARAMETER"])),
            RespValue::Error(_)
        ));
    }

    #[test]
    fn config_get_star_lists_every_parameter() {
        let server = RedisGraphServer::new(ServerConfig {
            thread_count: 3,
            max_connections: 77,
            ..ServerConfig::default()
        });
        let reply = server.handle(&RespValue::command(&["GRAPH.CONFIG", "GET", "*"]));
        let RespValue::Array(pairs) = reply else { panic!("expected array, got {reply}") };
        assert_eq!(pairs.len(), 7);
        let mut seen = std::collections::HashMap::new();
        for pair in &pairs {
            let RespValue::Array(kv) = pair else { panic!("expected [name, value] pair") };
            let (RespValue::BulkString(name), RespValue::Integer(value)) = (&kv[0], &kv[1]) else {
                panic!("expected name/value, got {pair}")
            };
            seen.insert(name.clone(), *value);
        }
        assert_eq!(seen["THREAD_COUNT"], 3);
        assert_eq!(seen["MAX_CONNECTIONS"], 77);
        assert_eq!(seen["SLOWLOG_TIME_THRESHOLD"], DEFAULT_SLOWLOG_TIME_THRESHOLD_MS as i64);
        assert_eq!(seen["PLAN_CACHE_SIZE"], DEFAULT_PLAN_CACHE_SIZE as i64);
        assert!(seen.contains_key("DELTA_MAX_PENDING_CHANGES"));
        assert!(seen.contains_key("QUERY_THREADS"));
        assert!(seen.contains_key("MAX_QUERY_BUFFER"));

        // Read-only singles resolve too, case-insensitively.
        let reply = server.handle(&RespValue::command(&["GRAPH.CONFIG", "GET", "thread_count"]));
        assert_eq!(
            reply,
            RespValue::Array(vec![
                RespValue::BulkString("THREAD_COUNT".into()),
                RespValue::Integer(3),
            ])
        );
    }

    #[test]
    fn slowlog_records_over_threshold_and_resets() {
        let server = RedisGraphServer::new(ServerConfig {
            slowlog_time_threshold_ms: 0, // log everything
            ..ServerConfig::default()
        });
        // Missing graph: SLOWLOG must not create it.
        assert!(matches!(
            server.handle(&RespValue::command(&["GRAPH.SLOWLOG", "nope"])),
            RespValue::Error(_)
        ));
        assert!(server.graph_names().is_empty());

        server.query("g", "CREATE (:A)-[:R]->(:B)");
        server.query("g", "MATCH (a)-[:R]->(b) RETURN count(b)");
        let reply = server.handle(&RespValue::command(&["GRAPH.SLOWLOG", "g"]));
        let RespValue::Array(entries) = reply else { panic!("expected array, got {reply}") };
        assert_eq!(entries.len(), 2, "threshold 0 must log every query");
        // Newest first: the MATCH is entry 0; each row is
        // [timestamp, command, query, ms, args].
        let RespValue::Array(row) = &entries[0] else { panic!() };
        assert_eq!(row.len(), 5);
        assert_eq!(row[1], RespValue::BulkString("GRAPH.QUERY".into()));
        assert_eq!(row[2], RespValue::BulkString("MATCH (a)-[:R]->(b) RETURN count(b)".into()));
        assert_eq!(row[4], RespValue::Integer(2));

        // Raise the threshold: fast queries stop being logged.
        server.handle(&RespValue::command(&[
            "GRAPH.CONFIG",
            "SET",
            "SLOWLOG_TIME_THRESHOLD",
            "3600000",
        ]));
        server.query("g", "MATCH (a)-[:R]->(b) RETURN count(b)");
        let reply = server.handle(&RespValue::command(&["GRAPH.SLOWLOG", "g", "GET"]));
        let RespValue::Array(entries) = reply else { panic!() };
        assert_eq!(entries.len(), 2, "a fast query must not be logged over a huge threshold");

        // RESET clears.
        let reply = server.handle(&RespValue::command(&["GRAPH.SLOWLOG", "g", "RESET"]));
        assert_eq!(reply, RespValue::SimpleString("OK".into()));
        let reply = server.handle(&RespValue::command(&["GRAPH.SLOWLOG", "g"]));
        assert_eq!(reply, RespValue::Array(vec![]));

        // Junk threshold values are rejected.
        assert!(matches!(
            server.handle(&RespValue::command(&[
                "GRAPH.CONFIG",
                "SET",
                "SLOWLOG_TIME_THRESHOLD",
                "-3"
            ])),
            RespValue::Error(_)
        ));
    }

    #[test]
    fn profile_reports_per_operator_records_and_time() {
        let server = RedisGraphServer::new(ServerConfig::default());
        server.query(
            "g",
            "CREATE (:Person {name: 'Ann'})-[:KNOWS]->(:Person {name: 'Bob'})-[:KNOWS]->\
             (:Person {name: 'Cy'})",
        );
        let reply = server.handle(&RespValue::command(&[
            "GRAPH.PROFILE",
            "g",
            "MATCH (a:Person)-[:KNOWS]->(b) RETURN b.name",
        ]));
        let RespValue::Array(lines) = reply else { panic!("expected array, got {reply}") };
        let lines: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        assert!(
            lines[0].contains("Node By Label Scan")
                && lines[0].contains("Records produced: 3")
                && lines[0].contains("Execution time:"),
            "profile was {lines:#?}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.contains("Conditional Traverse") && l.contains("Records produced: 2")),
            "profile was {lines:#?}"
        );
        assert!(lines.last().unwrap().contains("Project"), "profile was {lines:#?}");

        // A profiled write executes its mutations, like RedisGraph.
        let reply = server.handle(&RespValue::command(&[
            "GRAPH.PROFILE",
            "g",
            "CREATE (:Person {name: 'Dee'})",
        ]));
        let RespValue::Array(lines) = reply else { panic!("expected array, got {reply}") };
        assert!(lines.iter().any(|l| l.to_string().contains("Create")));
        let reply = server.query("g", "MATCH (p:Person) RETURN count(p)");
        let RespValue::Array(sections) = reply else { panic!() };
        let RespValue::Array(rows) = &sections[1] else { panic!() };
        let RespValue::Array(row) = &rows[0] else { panic!() };
        assert_eq!(row[0], RespValue::Integer(4), "profiled CREATE must have mutated");

        // Parse errors surface as RESP errors, same as GRAPH.QUERY.
        assert!(matches!(
            server.handle(&RespValue::command(&["GRAPH.PROFILE", "g", "MATCH (a RETURN a"])),
            RespValue::Error(_)
        ));
    }

    #[test]
    fn graph_info_sections_track_activity() {
        let server = RedisGraphServer::new(ServerConfig::default());
        let info = |server: &RedisGraphServer| -> std::collections::HashMap<String, i64> {
            let RespValue::Array(sections) = server.handle(&RespValue::command(&["GRAPH.INFO"]))
            else {
                panic!("expected array")
            };
            let mut flat = std::collections::HashMap::new();
            for s in &sections {
                let RespValue::Array(parts) = s else { panic!() };
                let RespValue::Array(kv) = &parts[1] else { panic!() };
                for pair in kv.chunks(2) {
                    let (RespValue::BulkString(k), RespValue::Integer(v)) = (&pair[0], &pair[1])
                    else {
                        panic!("expected string/int pair, got {pair:?}")
                    };
                    flat.insert(k.clone(), *v);
                }
            }
            flat
        };

        let before = info(&server);
        assert_eq!(before["queries_executed"], 0);
        assert_eq!(before["graphs"], 0);

        server.query("g", "CREATE (:A)-[:R]->(:B)");
        server.query("g", "MATCH (a)-[:R]->(b) RETURN count(b)");
        server.query("g", "MATCH (a RETURN"); // parse error
        let after = info(&server);
        assert_eq!(after["queries_executed"], 2);
        assert_eq!(after["queries_failed"], 1);
        assert_eq!(after["queries_write"], 1);
        assert_eq!(after["queries_readonly"], 1);
        assert_eq!(after["graph.query"], 3);
        assert_eq!(after["graphs"], 1);
        assert_eq!(after["nodes"], 2);
        assert_eq!(after["edges"], 1);
        assert!(after["query_samples"] == 2 && after["query_max_usec"] >= 0);
        assert_eq!(after["snapshot_rebuilds"], 1, "first read of the epoch rebuilds");
        // All three lookups missed (the parse error still looked up first);
        // only the two parseable queries left a plan behind.
        assert_eq!(after["plan_cache_misses"], 3);
        assert_eq!(after["plan_cache_hits"], 0);
        assert_eq!(after["plan_cache_entries"], 2);
        assert_eq!(after["plan_cache_evictions"], 0);

        // A second read of the same epoch hits the snapshot cache — and the
        // repeated text hits the plan cache.
        server.query("g", "MATCH (a)-[:R]->(b) RETURN count(b)");
        let third = info(&server);
        assert_eq!(third["snapshot_hits"], 1);
        assert_eq!(third["plan_cache_hits"], 1);
    }

    /// Pull the `Cached: true|false` line out of a query reply's stats footer.
    fn cached_flag(reply: &RespValue) -> bool {
        let RespValue::Array(sections) = reply else { panic!("expected array, got {reply}") };
        let RespValue::Array(stats) = &sections[2] else { panic!("no stats footer in {reply}") };
        stats
            .iter()
            .find_map(|l| match l {
                RespValue::BulkString(s) => s.strip_prefix("Cached: ").map(|v| v == "true"),
                _ => None,
            })
            .expect("stats footer must carry a Cached line")
    }

    #[test]
    fn repeated_query_text_is_served_from_the_plan_cache() {
        let server = RedisGraphServer::new(ServerConfig::default());
        server.query("g", "CREATE (:Node {name: 'Ann'})");
        let cold = server.query("g", "MATCH (n:Node) RETURN n.name");
        assert!(!cached_flag(&cold), "first execution must plan from scratch");
        // Whitespace differences normalize to the same cache key.
        let warm = server.query("g", "MATCH (n:Node)   RETURN \t n.name");
        assert!(cached_flag(&warm), "second execution must reuse the cached plan");
    }

    #[test]
    fn parameterized_queries_share_one_cached_plan_shape() {
        let server = RedisGraphServer::new(ServerConfig::default());
        server.query("g", "CREATE (:Person {name: 'Ann'}), (:Person {name: 'Bob'})");
        let first_cell = |reply: &RespValue| -> RespValue {
            let RespValue::Array(sections) = reply else { panic!("expected array, got {reply}") };
            let RespValue::Array(rows) = &sections[1] else { panic!() };
            let RespValue::Array(row) = &rows[0] else { panic!("no rows in {reply}") };
            row[0].clone()
        };
        let ann = server
            .query("g", "CYPHER who='Ann' MATCH (p:Person) WHERE p.name = $who RETURN p.name");
        assert_eq!(first_cell(&ann), RespValue::BulkString("Ann".into()));
        assert!(!cached_flag(&ann));
        // Different binding, same shape: the skeleton is reused and the new
        // value is substituted at execution time, not spliced into the text.
        let bob = server
            .query("g", "CYPHER who='Bob' MATCH (p:Person) WHERE p.name = $who RETURN p.name");
        assert_eq!(first_cell(&bob), RespValue::BulkString("Bob".into()));
        assert!(cached_flag(&bob));
        // Referencing a parameter the header never bound is an error, even
        // though the body itself hits the same cached skeleton.
        let missing = server.query("g", "MATCH (p:Person) WHERE p.name = $who RETURN p.name");
        let RespValue::Error(msg) = missing else { panic!("expected error, got {missing}") };
        assert!(msg.contains("missing query parameter `$who`"), "got {msg}");
    }

    #[test]
    fn plan_cache_size_knob_resizes_and_disables() {
        let server = RedisGraphServer::new(ServerConfig::default());
        assert_eq!(server.plan_cache_size(), DEFAULT_PLAN_CACHE_SIZE);
        server.query("g", "CREATE (:Node)");
        server.query("g", "MATCH (n) RETURN count(n)");
        assert!(cached_flag(&server.query("g", "MATCH (n) RETURN count(n)")));

        // Resizing flushes cached plans; 0 disables caching entirely.
        let reply =
            server.handle(&RespValue::command(&["GRAPH.CONFIG", "SET", "PLAN_CACHE_SIZE", "0"]));
        assert_eq!(reply, RespValue::SimpleString("OK".into()));
        assert_eq!(server.plan_cache_size(), 0);
        for _ in 0..2 {
            let reply = server.query("g", "MATCH (n) RETURN count(n)");
            assert!(!cached_flag(&reply), "capacity 0 must never serve a cached plan");
        }

        let reply =
            server.handle(&RespValue::command(&["GRAPH.CONFIG", "SET", "PLAN_CACHE_SIZE", "8"]));
        assert_eq!(reply, RespValue::SimpleString("OK".into()));
        server.query("g", "MATCH (n) RETURN count(n)");
        assert!(cached_flag(&server.query("g", "MATCH (n) RETURN count(n)")));

        for bad in ["-1", "junk"] {
            assert!(matches!(
                server.handle(&RespValue::command(&[
                    "GRAPH.CONFIG",
                    "SET",
                    "PLAN_CACHE_SIZE",
                    bad
                ])),
                RespValue::Error(_)
            ));
        }
        assert_eq!(server.plan_cache_size(), 8, "rejected SET must not change state");
    }

    #[test]
    fn graph_delete_drops_the_graphs_cached_plans() {
        let server = RedisGraphServer::new(ServerConfig::default());
        server.query("g", "CREATE (:Node)");
        server.query("g", "MATCH (n) RETURN count(n)");
        assert!(cached_flag(&server.query("g", "MATCH (n) RETURN count(n)")));
        server.handle(&RespValue::command(&["GRAPH.DELETE", "g"]));
        // The recreated graph starts cold; the old entry's plans are gone.
        server.query("g", "CREATE (:Node)");
        assert!(!cached_flag(&server.query("g", "MATCH (n) RETURN count(n)")));
        assert!(cached_flag(&server.query("g", "MATCH (n) RETURN count(n)")));
    }

    #[test]
    fn optimizer_toggle_demotes_stale_cached_plans() {
        let server = RedisGraphServer::new(ServerConfig::default());
        server.query("g", "CREATE (:A {v: 1})-[:R]->(:B {v: 2})");
        server.query("g", "MATCH (a:A)-[:R]->(b:B) RETURN b.v");
        assert!(cached_flag(&server.query("g", "MATCH (a:A)-[:R]->(b:B) RETURN b.v")));
        // A skeleton built with the optimizer on must not be served once the
        // graph's optimizer is switched off — the hit is demoted to a rebuild.
        server.graph("g").write().set_optimizer(false);
        let reply = server.query("g", "MATCH (a:A)-[:R]->(b:B) RETURN b.v");
        assert!(!cached_flag(&reply), "stale optimizer flag must force a rebuild");
        assert!(cached_flag(&server.query("g", "MATCH (a:A)-[:R]->(b:B) RETURN b.v")));
    }

    #[test]
    fn max_query_buffer_knob_is_runtime_tunable() {
        let server = RedisGraphServer::new(ServerConfig::default());
        assert_eq!(server.max_query_buffer(), DEFAULT_MAX_QUERY_BUFFER);
        let reply = server.handle(&RespValue::command(&[
            "GRAPH.CONFIG",
            "SET",
            "MAX_QUERY_BUFFER",
            "65536",
        ]));
        assert_eq!(reply, RespValue::SimpleString("OK".into()));
        assert_eq!(server.max_query_buffer(), 65536);
        let reply =
            server.handle(&RespValue::command(&["GRAPH.CONFIG", "GET", "max_query_buffer"]));
        assert_eq!(
            reply,
            RespValue::Array(vec![
                RespValue::BulkString("MAX_QUERY_BUFFER".into()),
                RespValue::Integer(65536),
            ])
        );
        // Below the floor, junk, and negative values are rejected unchanged.
        for bad in ["0", "1023", "-1", "junk"] {
            assert!(matches!(
                server.handle(&RespValue::command(&[
                    "GRAPH.CONFIG",
                    "SET",
                    "MAX_QUERY_BUFFER",
                    bad
                ])),
                RespValue::Error(_)
            ));
        }
        assert_eq!(server.max_query_buffer(), 65536);
        // The module-load floor clamps rather than panics.
        let tiny =
            RedisGraphServer::new(ServerConfig { max_query_buffer: 1, ..ServerConfig::default() });
        assert_eq!(tiny.max_query_buffer(), MIN_QUERY_BUFFER);
    }

    #[test]
    fn shutdown_is_rejected_in_process() {
        let server = RedisGraphServer::new(ServerConfig::default());
        assert!(matches!(server.handle(&RespValue::command(&["SHUTDOWN"])), RespValue::Error(_)));
    }

    #[test]
    fn query_threads_knob_feeds_the_graphblas_context() {
        // The only test in this binary that touches the process-wide
        // GraphBLAS context, so the assertions cannot race another test.
        let server = RedisGraphServer::new(ServerConfig {
            query_threads: Some(2),
            ..ServerConfig::default()
        });
        assert_eq!(graphblas::Context::nthreads(), 2, "module arg must seed the context");

        let reply =
            server.handle(&RespValue::command(&["GRAPH.CONFIG", "SET", "QUERY_THREADS", "3"]));
        assert_eq!(reply, RespValue::SimpleString("OK".into()));
        assert_eq!(graphblas::Context::nthreads(), 3);
        let reply = server.handle(&RespValue::command(&["GRAPH.CONFIG", "GET", "query_threads"]));
        assert_eq!(
            reply,
            RespValue::Array(vec![
                RespValue::BulkString("QUERY_THREADS".into()),
                RespValue::Integer(3),
            ])
        );

        // Queries still answer correctly with intra-query parallelism on.
        server.query("g", "CREATE (:A {v: 1})-[:R]->(:A {v: 2})-[:R]->(:A {v: 3})");
        let reply = server.query("g", "MATCH (a:A)-[:R]->(b:A) RETURN count(b)");
        let RespValue::Array(sections) = reply else { panic!("expected array reply") };
        let RespValue::Array(rows) = &sections[1] else { panic!() };
        let RespValue::Array(row) = &rows[0] else { panic!() };
        assert_eq!(row[0], RespValue::Integer(2));

        // 0, junk, and out-of-range values are rejected without changing state.
        for bad in ["0", "nope", "-4", "1000000"] {
            assert!(matches!(
                server.handle(&RespValue::command(&["GRAPH.CONFIG", "SET", "QUERY_THREADS", bad])),
                RespValue::Error(_)
            ));
        }
        assert_eq!(graphblas::Context::nthreads(), 3);

        // Cached skeletons capture the thread budget at build time, so
        // changing QUERY_THREADS flushes every graph's plan cache. (This also
        // restores the library default so no other state leaks out.)
        assert!(cached_flag(&server.query("g", "MATCH (a:A)-[:R]->(b:A) RETURN count(b)")));
        server.handle(&RespValue::command(&["GRAPH.CONFIG", "SET", "QUERY_THREADS", "1"]));
        assert_eq!(graphblas::Context::nthreads(), 1);
        let reply = server.query("g", "MATCH (a:A)-[:R]->(b:A) RETURN count(b)");
        assert!(!cached_flag(&reply), "QUERY_THREADS change must rebuild cached plans");
    }

    #[test]
    fn read_queries_run_on_snapshots_and_never_flush_the_live_graph() {
        let server = RedisGraphServer::new(ServerConfig {
            delta_max_pending_changes: 1_000_000, // never auto-flush
            ..ServerConfig::default()
        });
        server.query("g", "CREATE (:A)-[:R]->(:B)");
        {
            let graph = server.graph("g");
            assert!(graph.read().has_pending_deltas(), "writes should buffer, not flush");
        }
        // Reads answer from an epoch snapshot; the old read barrier would
        // have taken the write lock here and flushed the live graph.
        let reply = server.query("g", "MATCH (a)-[:R]->(b) RETURN count(b)");
        assert!(matches!(reply, RespValue::Array(_)));
        // Even a whole-matrix plan (procedure call) folds only its private
        // snapshot, never the shared state.
        let reply = server.query("g", "CALL algo.wcc() YIELD node, component RETURN count(node)");
        assert!(matches!(reply, RespValue::Array(_)), "unexpected reply {reply}");
        let graph = server.graph("g");
        assert!(graph.read().has_pending_deltas(), "snapshot reads must not flush the live graph");
    }

    #[test]
    fn read_path_acquires_no_write_lock_even_for_malformed_floods() {
        let server = RedisGraphServer::new(ServerConfig {
            thread_count: 4,
            delta_max_pending_changes: 1_000_000, // keep deltas pending
            ..ServerConfig::default()
        });
        server.query("g", "CREATE (:A {v: 1})-[:R]->(:B {v: 2})");
        let graph = server.graph("g");
        assert!(graph.read().has_pending_deltas());

        // Hold a read lock for the whole test. Any write-lock acquisition on
        // the dispatch or read path — the old behaviour both for the read
        // barrier (pending deltas!) and for parse errors, which were
        // classified as writes — would block behind this guard forever and
        // trip the recv timeout below.
        let _guard = graph.read();

        let (tx, rx) = unbounded();
        for _ in 0..100 {
            server.submit_query("g".into(), "MATCH (a RETURN a".into(), tx.clone());
        }
        for _ in 0..50 {
            server.submit_query(
                "g".into(),
                "MATCH (a)-[:R]->(b) RETURN count(b)".into(),
                tx.clone(),
            );
        }
        let (mut errors, mut results) = (0, 0);
        for _ in 0..150 {
            let reply = rx
                .recv_timeout(std::time::Duration::from_secs(30))
                .expect("a query stalled: something on the read path wants the write lock");
            match reply {
                RespValue::Error(e) => {
                    assert!(e.contains("syntax error"), "unexpected error: {e}");
                    errors += 1;
                }
                RespValue::Array(_) => results += 1,
                other => panic!("unexpected reply {other}"),
            }
        }
        assert_eq!((errors, results), (100, 50));
        drop(_guard);
        assert!(graph.read().has_pending_deltas(), "reads must leave the buffers alone");
    }

    #[test]
    fn delete_aborts_queued_writes_instead_of_mutating_the_orphan() {
        let server = Arc::new(RedisGraphServer::new(ServerConfig {
            thread_count: 1, // one worker: the queued write cannot jump ahead
            ..ServerConfig::default()
        }));
        server.query("g", "CREATE (:Keep {id: 1})");

        // Stall the worker by holding the graph's write lock, then queue a
        // write query: its keyspace entry is captured at dispatch, before the
        // delete below, exactly the in-flight case the tombstone exists for.
        let graph = server.graph("g");
        let guard = graph.write();
        let (tx, rx) = crossbeam::channel::bounded(1);
        server.submit_query("g".into(), "CREATE (:Late)".into(), tx);

        // Delete on another thread: it removes the map entry and sets the
        // tombstone immediately, then blocks on the write lock to serialize
        // with in-flight queries.
        let del_server = server.clone();
        let deleter = std::thread::spawn(move || {
            del_server.handle(&RespValue::command(&["GRAPH.DELETE", "g"]))
        });
        // The map entry disappearing proves the tombstone is set (the delete
        // marks before it blocks on the lock).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !server.graph_names().is_empty() {
            assert!(std::time::Instant::now() < deadline, "GRAPH.DELETE never removed the entry");
            std::thread::yield_now();
        }
        drop(guard);

        assert_eq!(deleter.join().unwrap(), RespValue::SimpleString("OK".into()));
        let reply = rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        match reply {
            RespValue::Error(e) => assert!(e.contains("was deleted"), "unexpected error: {e}"),
            other => panic!("queued write must abort after the delete, got {other}"),
        }
        // The name resolves to a fresh, empty graph — no resurrection.
        let reply = server.query("g", "MATCH (n) RETURN count(n)");
        let RespValue::Array(sections) = reply else { panic!("expected array reply") };
        let RespValue::Array(rows) = &sections[1] else { panic!() };
        let RespValue::Array(row) = &rows[0] else { panic!() };
        assert_eq!(row[0], RespValue::Integer(0));
    }

    #[test]
    fn errors_are_resp_errors() {
        let server = RedisGraphServer::new(ServerConfig::default());
        assert!(matches!(server.query("g", "MATCH (a RETURN a"), RespValue::Error(_)));
        assert!(matches!(
            server.handle(&RespValue::command(&["NOT.A.COMMAND"])),
            RespValue::Error(_)
        ));
    }

    #[test]
    fn explain_returns_plan_lines() {
        let server = RedisGraphServer::new(ServerConfig::default());
        server.query("g", "CREATE (:Node)");
        let reply =
            server.handle(&RespValue::command(&["GRAPH.EXPLAIN", "g", "MATCH (a:Node) RETURN a"]));
        let RespValue::Array(lines) = reply else { panic!() };
        assert!(lines.iter().any(|l| l.to_string().contains("Node By Label Scan")));
    }

    #[test]
    fn dispatcher_serves_concurrent_clients() {
        let server = Arc::new(RedisGraphServer::new(ServerConfig {
            thread_count: 4,
            ..ServerConfig::default()
        }));
        server.query("g", "CREATE (:Node {id: 0})-[:LINK]->(:Node {id: 1})");
        let (tx, handle) = server.start_dispatcher();

        let mut clients = Vec::new();
        for _ in 0..8 {
            let tx = tx.clone();
            clients.push(std::thread::spawn(move || {
                let (reply_tx, reply_rx) = unbounded();
                for _ in 0..5 {
                    tx.send(Request {
                        command: RespValue::command(&[
                            "GRAPH.QUERY",
                            "g",
                            "MATCH (a)-[:LINK]->(b) RETURN count(b)",
                        ]),
                        reply_to: reply_tx.clone(),
                    })
                    .unwrap();
                    let reply = reply_rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
                    assert!(matches!(reply, RespValue::Array(_)), "unexpected reply {reply}");
                }
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
        drop(tx);
        handle.join().unwrap();
    }
}
