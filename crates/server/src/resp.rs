//! A minimal RESP (REdis Serialization Protocol) v2 encoder/decoder — enough
//! to frame `GRAPH.*` commands and their replies the way a Redis client would
//! see them.

use std::fmt;

/// A RESP protocol value.
#[derive(Debug, Clone, PartialEq)]
pub enum RespValue {
    /// `+OK\r\n`
    SimpleString(String),
    /// `-ERR …\r\n`
    Error(String),
    /// `:42\r\n`
    Integer(i64),
    /// `$5\r\nhello\r\n`
    BulkString(String),
    /// `*N\r\n…`
    Array(Vec<RespValue>),
    /// `$-1\r\n`
    Null,
}

impl fmt::Display for RespValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RespValue::SimpleString(s) | RespValue::BulkString(s) => write!(f, "{s}"),
            RespValue::Error(e) => write!(f, "(error) {e}"),
            RespValue::Integer(i) => write!(f, "{i}"),
            RespValue::Array(items) => {
                let rendered: Vec<String> = items.iter().map(|v| v.to_string()).collect();
                write!(f, "[{}]", rendered.join(", "))
            }
            RespValue::Null => write!(f, "(nil)"),
        }
    }
}

impl RespValue {
    /// Encode to the RESP wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            RespValue::SimpleString(s) => {
                out.extend_from_slice(b"+");
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Error(e) => {
                out.extend_from_slice(b"-");
                out.extend_from_slice(e.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Integer(i) => {
                out.extend_from_slice(format!(":{i}\r\n").as_bytes());
            }
            RespValue::BulkString(s) => {
                out.extend_from_slice(format!("${}\r\n", s.len()).as_bytes());
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Array(items) => {
                out.extend_from_slice(format!("*{}\r\n", items.len()).as_bytes());
                for item in items {
                    item.encode_into(out);
                }
            }
            RespValue::Null => out.extend_from_slice(b"$-1\r\n"),
        }
    }

    /// Decode one RESP value from the front of `input`, returning the value and
    /// the number of bytes consumed. Returns `None` on incomplete or malformed
    /// input.
    pub fn decode(input: &[u8]) -> Option<(RespValue, usize)> {
        let (line, consumed) = read_line(input)?;
        let kind = *line.first()?;
        let body = &line[1..];
        match kind {
            b'+' => Some((
                RespValue::SimpleString(String::from_utf8_lossy(body).into_owned()),
                consumed,
            )),
            b'-' => Some((RespValue::Error(String::from_utf8_lossy(body).into_owned()), consumed)),
            b':' => {
                let i: i64 = std::str::from_utf8(body).ok()?.parse().ok()?;
                Some((RespValue::Integer(i), consumed))
            }
            b'$' => {
                let len: i64 = std::str::from_utf8(body).ok()?.parse().ok()?;
                if len < 0 {
                    return Some((RespValue::Null, consumed));
                }
                let len = len as usize;
                let start = consumed;
                if input.len() < start + len + 2 {
                    return None;
                }
                let s = String::from_utf8_lossy(&input[start..start + len]).into_owned();
                Some((RespValue::BulkString(s), start + len + 2))
            }
            b'*' => {
                let count: i64 = std::str::from_utf8(body).ok()?.parse().ok()?;
                let mut items = Vec::new();
                let mut offset = consumed;
                for _ in 0..count {
                    let (item, used) = RespValue::decode(&input[offset..])?;
                    items.push(item);
                    offset += used;
                }
                Some((RespValue::Array(items), offset))
            }
            _ => None,
        }
    }

    /// Convenience: build a RESP array of bulk strings (how clients send
    /// commands).
    pub fn command(parts: &[&str]) -> RespValue {
        RespValue::Array(parts.iter().map(|p| RespValue::BulkString(p.to_string())).collect())
    }
}

fn read_line(input: &[u8]) -> Option<(&[u8], usize)> {
    let pos = input.windows(2).position(|w| w == b"\r\n")?;
    Some((&input[..pos], pos + 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_all_kinds() {
        let values = vec![
            RespValue::SimpleString("OK".into()),
            RespValue::Error("ERR boom".into()),
            RespValue::Integer(-42),
            RespValue::BulkString("hello world".into()),
            RespValue::Null,
            RespValue::Array(vec![
                RespValue::Integer(1),
                RespValue::BulkString("two".into()),
                RespValue::Array(vec![RespValue::Null]),
            ]),
        ];
        for v in values {
            let bytes = v.encode();
            let (decoded, used) = RespValue::decode(&bytes).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn command_builder_produces_bulk_array() {
        let cmd = RespValue::command(&["GRAPH.QUERY", "social", "MATCH (n) RETURN n"]);
        let encoded = cmd.encode();
        assert!(encoded.starts_with(b"*3\r\n$11\r\nGRAPH.QUERY"));
    }

    #[test]
    fn incomplete_input_returns_none() {
        assert!(RespValue::decode(b"$10\r\nshort\r\n").is_none());
        assert!(RespValue::decode(b"*2\r\n:1\r\n").is_none());
        assert!(RespValue::decode(b"").is_none());
    }

    #[test]
    fn display_renders_human_readable() {
        assert_eq!(RespValue::Integer(5).to_string(), "5");
        assert_eq!(RespValue::Null.to_string(), "(nil)");
        assert_eq!(
            RespValue::Array(vec![RespValue::Integer(1), RespValue::BulkString("a".into())])
                .to_string(),
            "[1, a]"
        );
    }
}
