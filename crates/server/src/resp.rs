//! A minimal RESP (REdis Serialization Protocol) v2 encoder/decoder — enough
//! to frame `GRAPH.*` commands and their replies the way a Redis client would
//! see them.
//!
//! Besides RESP frames, the socket-facing [`StreamDecoder`] accepts Redis'
//! *inline command* form: a bare `PING\r\n` typed into `telnet`/`netcat`,
//! split on whitespace with Redis' quoting rules (`"\xHH"` escapes inside
//! double quotes, `\'` inside single quotes). Inline commands are only
//! recognised at the top level of the stream — never inside an array frame —
//! and the one-shot [`RespValue::decode_strict`] stays strict RESP, since it
//! also parses server *replies*, where an inline fallback would mask
//! corruption.

use std::fmt;

/// A RESP protocol value.
#[derive(Debug, Clone, PartialEq)]
pub enum RespValue {
    /// `+OK\r\n`
    SimpleString(String),
    /// `-ERR …\r\n`
    Error(String),
    /// `:42\r\n`
    Integer(i64),
    /// `$5\r\nhello\r\n`
    BulkString(String),
    /// `*N\r\n…`
    Array(Vec<RespValue>),
    /// `$-1\r\n`
    Null,
}

impl fmt::Display for RespValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RespValue::SimpleString(s) | RespValue::BulkString(s) => write!(f, "{s}"),
            RespValue::Error(e) => write!(f, "(error) {e}"),
            RespValue::Integer(i) => write!(f, "{i}"),
            RespValue::Array(items) => {
                let rendered: Vec<String> = items.iter().map(|v| v.to_string()).collect();
                write!(f, "[{}]", rendered.join(", "))
            }
            RespValue::Null => write!(f, "(nil)"),
        }
    }
}

impl RespValue {
    /// Encode to the RESP wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Encode to the RESP wire format, appending to `out` (pipelined writers
    /// batch many frames into one buffer, one syscall).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            RespValue::SimpleString(s) => {
                out.extend_from_slice(b"+");
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Error(e) => {
                out.extend_from_slice(b"-");
                out.extend_from_slice(e.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Integer(i) => {
                out.extend_from_slice(format!(":{i}\r\n").as_bytes());
            }
            RespValue::BulkString(s) => {
                out.extend_from_slice(format!("${}\r\n", s.len()).as_bytes());
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Array(items) => {
                out.extend_from_slice(format!("*{}\r\n", items.len()).as_bytes());
                for item in items {
                    item.encode_into(out);
                }
            }
            RespValue::Null => out.extend_from_slice(b"$-1\r\n"),
        }
    }

    /// Decode one RESP value from the front of `input`, returning the value and
    /// the number of bytes consumed. Returns `None` on incomplete or malformed
    /// input; use [`RespValue::decode_strict`] to tell the two apart.
    ///
    /// The parser tracks an absolute scan offset through the whole frame
    /// (nested values included) instead of re-slicing the buffer per element,
    /// so decoding a pipelined buffer of `N` commands is `O(total bytes)`:
    /// each byte is visited once, never rescanned from the front.
    pub fn decode(input: &[u8]) -> Option<(RespValue, usize)> {
        RespValue::decode_strict(input).ok()
    }

    /// Decode one RESP value from the front of `input`, distinguishing a
    /// prefix that may still complete ([`DecodeStop::Incomplete`] — keep it
    /// buffered and read more) from one no further input can repair
    /// ([`DecodeStop::Malformed`] — a socket loop must close the connection).
    pub fn decode_strict(input: &[u8]) -> Result<(RespValue, usize), DecodeStop> {
        let mut pos = 0usize;
        let value = decode_at(input, &mut pos, 0)?;
        Ok((value, pos))
    }

    /// Decode every complete RESP value at the front of `input` (a client
    /// pipeline), returning the values and the total number of bytes
    /// consumed. Stops at the first frame that does not decode — either
    /// *incomplete* (more bytes may complete it; keep `input[consumed..]`
    /// buffered) or *malformed* (no amount of further input will fix it).
    /// The two are not distinguished here, so a caller owning a real socket
    /// loop should use [`RespValue::decode_pipeline_strict`] instead, bound
    /// the retained buffer, and treat hitting that bound as a protocol error
    /// rather than waiting forever.
    pub fn decode_pipeline(input: &[u8]) -> (Vec<RespValue>, usize) {
        let (values, consumed, _) = RespValue::decode_pipeline_strict(input);
        (values, consumed)
    }

    /// [`RespValue::decode_pipeline`] with the stop reason: after the decoded
    /// frames, reports whether the undecoded tail is merely incomplete (keep
    /// `input[consumed..]` buffered and read more) or malformed (the
    /// connection owning this byte stream is unrecoverable — the docs of
    /// [`RespValue::decode_strict`] require closing it). The tail of a fully
    /// consumed buffer is the empty prefix, which is `Incomplete`.
    pub fn decode_pipeline_strict(input: &[u8]) -> (Vec<RespValue>, usize, DecodeStop) {
        let mut values = Vec::new();
        let mut pos = 0usize;
        loop {
            let mut next = pos;
            match decode_at(input, &mut next, 0) {
                Ok(value) => {
                    values.push(value);
                    pos = next;
                }
                Err(stop) => return (values, pos, stop),
            }
        }
    }

    /// Convenience: build a RESP array of bulk strings (how clients send
    /// commands).
    pub fn command(parts: &[&str]) -> RespValue {
        RespValue::Array(parts.iter().map(|p| RespValue::BulkString(p.to_string())).collect())
    }
}

/// Why a decode stopped before producing a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeStop {
    /// The prefix is a proper prefix of some valid frame: more bytes may
    /// complete it, so a socket loop should keep it buffered and read on.
    Incomplete,
    /// The prefix can never become a valid frame no matter what arrives
    /// next: the byte stream is desynchronised and the connection must be
    /// closed (resynchronising on a length-prefixed protocol is hopeless).
    Malformed,
}

/// Upper bound on a declared bulk-string payload (Redis' default
/// `proto-max-bulk-len`): a client-supplied `$<len>` beyond this is treated
/// as malformed rather than trusted into a buffer-length computation.
const MAX_BULK_LEN: usize = 512 * 1024 * 1024;

/// Upper bound on a declared array element count (Redis caps multibulk
/// headers at 1M elements).
const MAX_ARRAY_LEN: usize = 1024 * 1024;

/// Maximum array nesting depth, so a hostile frame of `*1\r\n` repeated
/// cannot exhaust the stack through recursion.
const MAX_DEPTH: usize = 32;

/// Upper bound on a single header line (type byte to CRLF). Real headers are
/// a type byte plus a short integer; a simple string or error line gets the
/// same generous 64KB Redis grants inline commands. Beyond it, a stream that
/// still has no CRLF is declared malformed rather than buffered forever.
const MAX_LINE_LEN: usize = 64 * 1024;

/// One shallow decode step: either a finished value (scalar, null, bulk) or
/// the header of an array whose elements follow.
enum Shallow {
    Value(RespValue),
    /// `*n\r\n` with `n >= 0`: the next `n` frames are the elements.
    ArrayHeader(usize),
}

/// Decode one value starting at `*pos`, advancing `*pos` past it. On `Err`
/// (incomplete or malformed input) `*pos` is unspecified.
fn decode_at(input: &[u8], pos: &mut usize, depth: usize) -> Result<RespValue, DecodeStop> {
    if depth > MAX_DEPTH {
        return Err(DecodeStop::Malformed);
    }
    match decode_shallow(input, pos)? {
        Shallow::Value(v) => Ok(v),
        Shallow::ArrayHeader(count) => {
            let mut items = Vec::with_capacity(count.min(64));
            for _ in 0..count {
                items.push(decode_at(input, pos, depth + 1)?);
            }
            Ok(RespValue::Array(items))
        }
    }
}

/// Decode one non-recursive step starting at `*pos`, advancing `*pos` past
/// it. On `Err` (incomplete or malformed input) `*pos` is unchanged.
fn decode_shallow(input: &[u8], pos: &mut usize) -> Result<Shallow, DecodeStop> {
    let line_start = *pos;
    // The type byte alone classifies a garbage prefix before its CRLF ever
    // arrives (a TLS ClientHello is rejected on byte one, not buffered until
    // the line cap). `StreamDecoder` layers the inline-command fallback on
    // top of this *before* calling here, and only at the top level; inside an
    // array frame, or through the strict one-shot decoders, a non-type byte
    // is final desynchronisation.
    let Some(&kind) = input.get(line_start) else {
        return Err(DecodeStop::Incomplete);
    };
    if !matches!(kind, b'+' | b'-' | b':' | b'$' | b'*') {
        return Err(DecodeStop::Malformed);
    }
    let Some(line_end) = find_crlf(input, line_start) else {
        // A complete line may span up to MAX_LINE_LEN bytes plus its CRLF,
        // so only a CRLF-free run strictly longer than MAX_LINE_LEN + 1
        // (line + `\r`) can no longer be a proper prefix of a legal frame.
        return Err(if input.len() - line_start > MAX_LINE_LEN + 1 {
            DecodeStop::Malformed
        } else {
            DecodeStop::Incomplete
        });
    };
    if line_end - line_start > MAX_LINE_LEN {
        return Err(DecodeStop::Malformed);
    }
    let after_line = line_end + 2;
    let body = &input[line_start + 1..line_end];
    // A header line is complete through its CRLF, so any parse failure from
    // here on is final: more input cannot change what the line says.
    match kind {
        b'+' => {
            *pos = after_line;
            Ok(Shallow::Value(RespValue::SimpleString(String::from_utf8_lossy(body).into_owned())))
        }
        b'-' => {
            *pos = after_line;
            Ok(Shallow::Value(RespValue::Error(String::from_utf8_lossy(body).into_owned())))
        }
        b':' => {
            let text = std::str::from_utf8(body).map_err(|_| DecodeStop::Malformed)?;
            let i: i64 = text.parse().map_err(|_| DecodeStop::Malformed)?;
            *pos = after_line;
            Ok(Shallow::Value(RespValue::Integer(i)))
        }
        b'$' => {
            let text = std::str::from_utf8(body).map_err(|_| DecodeStop::Malformed)?;
            let len: i64 = text.parse().map_err(|_| DecodeStop::Malformed)?;
            // `$-1\r\n` is the null bulk string.
            if len < 0 {
                *pos = after_line;
                return Ok(Shallow::Value(RespValue::Null));
            }
            let len = usize::try_from(len)
                .ok()
                .filter(|&l| l <= MAX_BULK_LEN)
                .ok_or(DecodeStop::Malformed)?;
            // Overflow-checked frame extent: `start + len + 2` on an
            // unvalidated length must never wrap.
            let payload_end = after_line.checked_add(len).ok_or(DecodeStop::Malformed)?;
            let frame_end = payload_end.checked_add(2).ok_or(DecodeStop::Malformed)?;
            if input.len() < frame_end {
                // NB a frame split inside the payload — or exactly between
                // the two trailer bytes — is *incomplete*, never malformed:
                // the trailer can only be judged once both bytes are here.
                return Err(DecodeStop::Incomplete);
            }
            // The declared length must be terminated by CRLF exactly.
            if &input[payload_end..frame_end] != b"\r\n" {
                return Err(DecodeStop::Malformed);
            }
            let s = String::from_utf8_lossy(&input[after_line..payload_end]).into_owned();
            *pos = frame_end;
            Ok(Shallow::Value(RespValue::BulkString(s)))
        }
        b'*' => {
            let text = std::str::from_utf8(body).map_err(|_| DecodeStop::Malformed)?;
            let count: i64 = text.parse().map_err(|_| DecodeStop::Malformed)?;
            // `*-1\r\n` is the null array, not an empty one.
            if count < 0 {
                *pos = after_line;
                return Ok(Shallow::Value(RespValue::Null));
            }
            let count = usize::try_from(count)
                .ok()
                .filter(|&c| c <= MAX_ARRAY_LEN)
                .ok_or(DecodeStop::Malformed)?;
            *pos = after_line;
            Ok(Shallow::ArrayHeader(count))
        }
        _ => unreachable!("kind was validated above"),
    }
}

/// Decode one inline command starting at `*pos` (which must sit at the top
/// level of the stream, on a byte that is not a RESP type byte), advancing
/// `*pos` past the terminating newline. Returns `Ok(None)` for a blank line
/// (consumed and skipped, like Redis), `Ok(Some(array-of-bulk-strings))`
/// for a command, and the usual [`DecodeStop`] split otherwise: no newline
/// yet is `Incomplete` up to the 64KB line cap, while an over-long line,
/// non-UTF-8 bytes, or unbalanced quotes are `Malformed`. On `Err`, `*pos`
/// is unchanged.
fn decode_inline(input: &[u8], pos: &mut usize) -> Result<Option<RespValue>, DecodeStop> {
    let start = *pos;
    // Inline commands terminate on `\n` (Redis accepts a bare newline from
    // interactive clients); a trailing `\r` is stripped.
    let Some(nl) = input[start..].iter().position(|&b| b == b'\n') else {
        return Err(if input.len() - start > MAX_LINE_LEN {
            DecodeStop::Malformed
        } else {
            DecodeStop::Incomplete
        });
    };
    let nl = start + nl;
    let mut line_end = nl;
    if line_end > start && input[line_end - 1] == b'\r' {
        line_end -= 1;
    }
    if line_end - start > MAX_LINE_LEN {
        return Err(DecodeStop::Malformed);
    }
    let line = std::str::from_utf8(&input[start..line_end]).map_err(|_| DecodeStop::Malformed)?;
    let args = split_inline_args(line).ok_or(DecodeStop::Malformed)?;
    *pos = nl + 1;
    if args.is_empty() {
        return Ok(None);
    }
    Ok(Some(RespValue::Array(args.into_iter().map(RespValue::BulkString).collect())))
}

/// Split an inline command line into arguments with Redis' `sdssplitargs`
/// rules: whitespace separates bare words; double quotes group a word and
/// honour `\xHH` hex escapes plus `\n` `\r` `\t` `\b` `\a`; single quotes
/// group verbatim except `\'`; a closing quote must be followed by
/// whitespace or end-of-line. Returns `None` on unbalanced quotes or a
/// dangling closing quote — the line is malformed, not retryable.
fn split_inline_args(line: &str) -> Option<Vec<String>> {
    fn hex_val(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let bytes = line.as_bytes();
    let mut args = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        // Escapes can produce arbitrary bytes, so the argument accumulates
        // as bytes and converts lossily at the end (RespValue carries String).
        let mut current: Vec<u8> = Vec::new();
        let mut in_double = false;
        let mut in_single = false;
        loop {
            if in_double {
                let &b = bytes.get(i)?; // unterminated quotes: malformed
                if b == b'\\' && i + 3 < bytes.len() && bytes[i + 1] == b'x' {
                    if let (Some(hi), Some(lo)) = (hex_val(bytes[i + 2]), hex_val(bytes[i + 3])) {
                        current.push(hi * 16 + lo);
                        i += 4;
                        continue;
                    }
                }
                if b == b'\\' && i + 1 < bytes.len() {
                    current.push(match bytes[i + 1] {
                        b'n' => b'\n',
                        b'r' => b'\r',
                        b't' => b'\t',
                        b'b' => 0x08,
                        b'a' => 0x07,
                        other => other,
                    });
                    i += 2;
                } else if b == b'"' {
                    // The closing quote must end the argument.
                    if let Some(&next) = bytes.get(i + 1) {
                        if !next.is_ascii_whitespace() {
                            return None;
                        }
                    }
                    i += 1;
                    break;
                } else {
                    current.push(b);
                    i += 1;
                }
            } else if in_single {
                let &b = bytes.get(i)?;
                if b == b'\\' && bytes.get(i + 1) == Some(&b'\'') {
                    current.push(b'\'');
                    i += 2;
                } else if b == b'\'' {
                    if let Some(&next) = bytes.get(i + 1) {
                        if !next.is_ascii_whitespace() {
                            return None;
                        }
                    }
                    i += 1;
                    break;
                } else {
                    current.push(b);
                    i += 1;
                }
            } else {
                let Some(&b) = bytes.get(i) else { break };
                match b {
                    b if b.is_ascii_whitespace() => break,
                    b'"' => {
                        in_double = true;
                        i += 1;
                    }
                    b'\'' => {
                        in_single = true;
                        i += 1;
                    }
                    other => {
                        current.push(other);
                        i += 1;
                    }
                }
            }
        }
        args.push(String::from_utf8_lossy(&current).into_owned());
    }
    Some(args)
}

/// A **resumable** pipeline decoder for socket loops: where
/// [`RespValue::decode_pipeline_strict`] restarts from byte zero of the
/// retained buffer on every call — quadratic when a large frame arrives in
/// many small reads — `StreamDecoder` remembers how far it got (scan
/// offset + the stack of partially filled arrays, the same trick as Redis'
/// incremental multibulk parser), so every buffered byte is scanned once
/// across any number of `feed` calls.
///
/// Protocol: append new bytes to your retained buffer, call
/// [`StreamDecoder::feed`] on the whole buffer, then drain the returned
/// `consumed` bytes from its front — `feed` has already rebased its internal
/// offsets. Bytes belonging to a partially decoded frame stay in the buffer
/// (bounded by the caller, per the [`DecodeStop`] contract) but are not
/// rescanned.
#[derive(Default)]
pub struct StreamDecoder {
    /// Absolute offset into the caller's retained buffer: everything before
    /// it has been folded into `stack` / emitted values.
    pos: usize,
    /// Enclosing arrays still waiting for elements, outermost first.
    stack: Vec<PartialArray>,
}

/// An array header whose elements are still arriving.
struct PartialArray {
    remaining: usize,
    items: Vec<RespValue>,
}

impl StreamDecoder {
    /// A decoder with no partial state.
    pub fn new() -> StreamDecoder {
        StreamDecoder::default()
    }

    /// Decode every frame that completed, scanning only bytes this decoder
    /// has not seen before. Returns the completed frames, the number of
    /// bytes the caller must drain from the front of `input` (always a whole
    /// number of top-level frames, so a partial frame's bytes stay retained
    /// and the caller's buffer bound keeps meaning "bytes of the frame in
    /// progress"), and the stop reason for the remainder
    /// ([`DecodeStop::Malformed`] is sticky: the stream is unrecoverable and
    /// the connection must close).
    pub fn feed(&mut self, input: &[u8]) -> (Vec<RespValue>, usize, DecodeStop) {
        let mut values = Vec::new();
        // Offset just past the last *completed top-level* frame of this call.
        let mut emit_pos = 0usize;
        let stop = loop {
            // Same depth budget as the recursive decoder: any frame whose
            // depth (== the number of enclosing arrays) exceeds MAX_DEPTH is
            // rejected before it is even scanned.
            if self.stack.len() > MAX_DEPTH {
                break DecodeStop::Malformed;
            }
            // Redis' inline command form: at the *top level* of the stream, a
            // byte that is not a RESP type byte starts an inline line
            // (`PING\r\n` from netcat) rather than desynchronisation. Inside
            // an array frame the strict rule stands — a stray byte there can
            // never be repaired.
            if self.stack.is_empty() {
                if let Some(&first) = input.get(self.pos) {
                    if !matches!(first, b'+' | b'-' | b':' | b'$' | b'*') {
                        match decode_inline(input, &mut self.pos) {
                            Ok(Some(command)) => {
                                values.push(command);
                                emit_pos = self.pos;
                                continue;
                            }
                            // A blank line is consumed and skipped (Redis
                            // ignores empty inline lines).
                            Ok(None) => {
                                emit_pos = self.pos;
                                continue;
                            }
                            Err(stop) => break stop,
                        }
                    }
                }
            }
            match decode_shallow(input, &mut self.pos) {
                Ok(Shallow::ArrayHeader(count)) => {
                    if count == 0 {
                        if self.complete(RespValue::Array(Vec::new()), &mut values) {
                            emit_pos = self.pos;
                        }
                    } else {
                        self.stack.push(PartialArray {
                            remaining: count,
                            items: Vec::with_capacity(count.min(64)),
                        });
                    }
                }
                Ok(Shallow::Value(value)) => {
                    if self.complete(value, &mut values) {
                        emit_pos = self.pos;
                    }
                }
                Err(stop) => break stop,
            }
        };
        // Rebase the scan offset to the post-drain buffer.
        self.pos -= emit_pos;
        (values, emit_pos, stop)
    }

    /// Fold a finished value into the innermost pending array (cascading as
    /// arrays fill up), or emit it as a completed top-level frame. Returns
    /// `true` when a top-level frame was emitted.
    fn complete(&mut self, mut value: RespValue, out: &mut Vec<RespValue>) -> bool {
        loop {
            let Some(top) = self.stack.last_mut() else {
                out.push(value);
                return true;
            };
            top.items.push(value);
            top.remaining -= 1;
            if top.remaining > 0 {
                return false;
            }
            let finished = self.stack.pop().expect("non-empty stack");
            value = RespValue::Array(finished.items);
        }
    }
}

/// Find the next `\r\n` at or after `from`, scanning forward only.
fn find_crlf(input: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i + 1 < input.len() {
        if input[i] == b'\r' && input[i + 1] == b'\n' {
            return Some(i);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_all_kinds() {
        let values = vec![
            RespValue::SimpleString("OK".into()),
            RespValue::Error("ERR boom".into()),
            RespValue::Integer(-42),
            RespValue::BulkString("hello world".into()),
            RespValue::Null,
            RespValue::Array(vec![
                RespValue::Integer(1),
                RespValue::BulkString("two".into()),
                RespValue::Array(vec![RespValue::Null]),
            ]),
        ];
        for v in values {
            let bytes = v.encode();
            let (decoded, used) = RespValue::decode(&bytes).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn command_builder_produces_bulk_array() {
        let cmd = RespValue::command(&["GRAPH.QUERY", "social", "MATCH (n) RETURN n"]);
        let encoded = cmd.encode();
        assert!(encoded.starts_with(b"*3\r\n$11\r\nGRAPH.QUERY"));
    }

    #[test]
    fn incomplete_input_returns_none() {
        assert!(RespValue::decode(b"$10\r\nshort\r\n").is_none());
        assert!(RespValue::decode(b"*2\r\n:1\r\n").is_none());
        assert!(RespValue::decode(b"").is_none());
    }

    #[test]
    fn negative_array_count_is_null_not_empty_array() {
        // Regression: `*-1\r\n` (the RESP null array) used to decode as
        // `Array([])`, silently conflating "no reply" with "empty reply".
        let (v, used) = RespValue::decode(b"*-1\r\n").unwrap();
        assert_eq!(v, RespValue::Null);
        assert_eq!(used, 5);
        // Any negative count is null, and an explicit empty array still works.
        assert_eq!(RespValue::decode(b"*-7\r\n").unwrap().0, RespValue::Null);
        assert_eq!(RespValue::decode(b"*0\r\n").unwrap().0, RespValue::Array(vec![]));
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // Unknown type byte.
        assert!(RespValue::decode(b"?what\r\n").is_none());
        // Non-numeric lengths / counts.
        assert!(RespValue::decode(b"$abc\r\nxyz\r\n").is_none());
        assert!(RespValue::decode(b"*abc\r\n").is_none());
        assert!(RespValue::decode(b":notanint\r\n").is_none());
        // A bulk payload must be terminated by CRLF exactly where declared.
        assert!(RespValue::decode(b"$3\r\nabcdef\r\n").is_none());
        assert!(RespValue::decode(b"$3\r\nabcXY").is_none());
        // Empty line (no type byte).
        assert!(RespValue::decode(b"\r\n").is_none());
    }

    #[test]
    fn hostile_lengths_cannot_overflow_or_allocate() {
        // A declared length near usize::MAX used to feed `start + len + 2`
        // unchecked; it must be rejected, not wrapped.
        let frame = format!("${}\r\n", u64::MAX);
        assert!(RespValue::decode(frame.as_bytes()).is_none());
        let frame = format!("${}\r\n", i64::MAX);
        assert!(RespValue::decode(frame.as_bytes()).is_none());
        // Over the bulk cap (512MB) and over the array cap (1M elements).
        assert!(RespValue::decode(b"$536870913\r\n").is_none());
        assert!(RespValue::decode(b"*1048577\r\n").is_none());
        // Deep nesting is bounded rather than recursing unboundedly.
        let bomb = b"*1\r\n".repeat(100);
        assert!(RespValue::decode(&bomb).is_none());
    }

    #[test]
    fn pipelined_commands_decode_in_one_linear_pass() {
        // A large pipeline: every byte should be visited once. (With the old
        // per-frame rescan this test still passed, just quadratically slower;
        // the shape of the API — absolute offsets, `decode_pipeline` — is
        // what this pins.)
        let n = 5_000;
        let mut buf = Vec::new();
        for i in 0..n {
            let cmd = RespValue::command(&["GRAPH.QUERY", "g", &format!("RETURN {i}")]);
            buf.extend_from_slice(&cmd.encode());
        }
        // Leave a trailing incomplete frame in the buffer.
        let complete_len = buf.len();
        buf.extend_from_slice(b"*2\r\n$5\r\nhel");

        let (values, consumed) = RespValue::decode_pipeline(&buf);
        assert_eq!(values.len(), n);
        assert_eq!(consumed, complete_len);
        assert_eq!(values[0], RespValue::command(&["GRAPH.QUERY", "g", "RETURN 0"]));
        let last = RespValue::command(&["GRAPH.QUERY", "g", &format!("RETURN {}", n - 1)]);
        assert_eq!(values[n - 1], last);

        // One-by-one decoding with a caller-tracked offset agrees.
        let mut pos = 0usize;
        let mut count = 0usize;
        while let Some((v, used)) = RespValue::decode(&buf[pos..]) {
            assert_eq!(v, values[count]);
            pos += used;
            count += 1;
        }
        assert_eq!(count, n);
        assert_eq!(pos, complete_len);
    }

    #[test]
    fn every_proper_prefix_is_incomplete_never_malformed() {
        // The connection loop's contract: while a client is mid-frame — even
        // split exactly between the `\r` and `\n` of a bulk trailer — the
        // strict decoder must answer `Incomplete` (keep buffering), and only
        // the full frame decodes. A `Malformed` here would make the server
        // drop a slow-but-honest client; a spurious `Ok` would misparse.
        let frames: Vec<Vec<u8>> = vec![
            RespValue::command(&["GRAPH.QUERY", "g", "MATCH (n) RETURN n"]).encode(),
            RespValue::BulkString("payload with \r\n inside".into()).encode(),
            RespValue::BulkString(String::new()).encode(), // `$0\r\n\r\n`
            RespValue::Null.encode(),
            RespValue::Integer(-12345).encode(),
            RespValue::SimpleString("OK".into()).encode(),
            RespValue::Array(vec![
                RespValue::Array(vec![RespValue::BulkString("deep".into())]),
                RespValue::Integer(7),
            ])
            .encode(),
        ];
        for frame in frames {
            for cut in 0..frame.len() {
                assert_eq!(
                    RespValue::decode_strict(&frame[..cut]),
                    Err(DecodeStop::Incomplete),
                    "prefix of {} bytes (of {}) misclassified: {:?}",
                    cut,
                    frame.len(),
                    String::from_utf8_lossy(&frame[..cut])
                );
            }
            let (value, used) = RespValue::decode_strict(&frame).unwrap();
            assert_eq!(used, frame.len());
            assert_eq!(value.encode(), frame);
        }
    }

    #[test]
    fn garbage_prefix_is_malformed_on_byte_one() {
        // An inline command / random binary never becomes RESP: the strict
        // decoder flags it from the first byte so the socket loop can close
        // immediately instead of buffering up to the cap.
        assert_eq!(RespValue::decode_strict(b"G"), Err(DecodeStop::Malformed));
        assert_eq!(RespValue::decode_strict(b"GET foo\r\n"), Err(DecodeStop::Malformed));
        assert_eq!(RespValue::decode_strict(b"\x16\x03\x01"), Err(DecodeStop::Malformed));
        // ... including as the element of an array that decoded fine so far.
        assert_eq!(RespValue::decode_strict(b"*2\r\n:1\r\nxyz"), Err(DecodeStop::Malformed));
    }

    #[test]
    fn strict_classification_of_malformed_frames() {
        // Complete-but-invalid header lines are final (`Malformed`), not
        // retryable (`Incomplete`).
        for bad in [
            &b"$abc\r\n"[..],
            b"*abc\r\n",
            b":notanint\r\n",
            b"$3\r\nabcdef\r\n", // trailer where CRLF must sit is `de`
            b"\r\n",
            b"$536870913\r\n", // over the 512MB bulk cap
            b"*1048577\r\n",   // over the 1M element cap
        ] {
            assert_eq!(RespValue::decode_strict(bad), Err(DecodeStop::Malformed));
        }
        let bomb = b"*1\r\n".repeat(100);
        assert_eq!(RespValue::decode_strict(&bomb), Err(DecodeStop::Malformed));
        // A CRLF-free header line is incomplete only up to the 64KB line cap.
        let mut line = vec![b'+'];
        line.resize(1024, b'a');
        assert_eq!(RespValue::decode_strict(&line), Err(DecodeStop::Incomplete));
        line.resize(MAX_LINE_LEN + 2, b'a');
        assert_eq!(RespValue::decode_strict(&line), Err(DecodeStop::Malformed));
    }

    #[test]
    fn pipeline_strict_reports_the_stop_reason() {
        let mut buf = RespValue::command(&["PING"]).encode();
        let clean = buf.len();
        buf.extend_from_slice(b"*1\r\n$4\r\nPI");
        let (values, consumed, stop) = RespValue::decode_pipeline_strict(&buf);
        assert_eq!(values.len(), 1);
        assert_eq!(consumed, clean);
        assert_eq!(stop, DecodeStop::Incomplete);

        let mut buf = RespValue::command(&["PING"]).encode();
        buf.extend_from_slice(b"junk");
        let (values, consumed, stop) = RespValue::decode_pipeline_strict(&buf);
        assert_eq!((values.len(), consumed), (1, clean));
        assert_eq!(stop, DecodeStop::Malformed);

        // A fully drained buffer stops at the empty (incomplete) prefix.
        let buf = RespValue::command(&["PING"]).encode();
        let (_, consumed, stop) = RespValue::decode_pipeline_strict(&buf);
        assert_eq!(consumed, buf.len());
        assert_eq!(stop, DecodeStop::Incomplete);
    }

    #[test]
    fn stream_decoder_matches_oneshot_at_every_chunking() {
        // The resumable decoder must emit exactly what decode_pipeline_strict
        // emits, regardless of how the byte stream is chopped up.
        let mut wire = Vec::new();
        wire.extend_from_slice(&RespValue::command(&["GRAPH.QUERY", "g", "RETURN 1"]).encode());
        wire.extend_from_slice(&RespValue::Null.encode());
        wire.extend_from_slice(
            &RespValue::Array(vec![
                RespValue::Array(vec![RespValue::Integer(-3), RespValue::BulkString("x".into())]),
                RespValue::SimpleString("OK".into()),
                RespValue::Array(vec![]),
            ])
            .encode(),
        );
        wire.extend_from_slice(&RespValue::BulkString("tail with \r\n inside".into()).encode());
        let (expected, expected_len, _) = RespValue::decode_pipeline_strict(&wire);
        assert_eq!(expected_len, wire.len());

        for chunk_size in [1usize, 2, 3, 7, 16, wire.len()] {
            let mut decoder = StreamDecoder::new();
            let mut retained: Vec<u8> = Vec::new();
            let mut got = Vec::new();
            for chunk in wire.chunks(chunk_size) {
                retained.extend_from_slice(chunk);
                let (values, consumed, stop) = decoder.feed(&retained);
                assert_ne!(stop, DecodeStop::Malformed, "chunk size {chunk_size}");
                retained.drain(..consumed);
                got.extend(values);
            }
            assert_eq!(got, expected, "chunk size {chunk_size}");
            assert!(retained.is_empty(), "chunk size {chunk_size} left {} bytes", retained.len());
        }
    }

    #[test]
    fn stream_decoder_scans_each_byte_once() {
        // The whole point of the resumable decoder: a large frame arriving
        // in many reads is not rescanned from the start each time. 64k
        // elements in 64-byte chunks would take ~minutes quadratically; the
        // linear path finishes instantly. (A wall-clock bound would flake in
        // CI, so assert the invariant structurally instead: the scan offset
        // never moves backwards across feeds.)
        let n = 64 * 1024;
        let parts: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
        let refs: Vec<&str> = parts.iter().map(|s| s.as_str()).collect();
        let wire = RespValue::command(&refs).encode();
        let mut decoder = StreamDecoder::new();
        let mut retained: Vec<u8> = Vec::new();
        let mut emitted = Vec::new();
        let mut max_seen_pos = 0usize;
        let mut drained = 0usize;
        for chunk in wire.chunks(64) {
            retained.extend_from_slice(chunk);
            let (values, consumed, stop) = decoder.feed(&retained);
            assert_ne!(stop, DecodeStop::Malformed);
            // `pos` (absolute across the whole stream) must be monotone: a
            // rescan would rewind it.
            let absolute_pos = drained + consumed + decoder.pos;
            assert!(absolute_pos >= max_seen_pos, "decoder rescanned earlier bytes");
            max_seen_pos = absolute_pos;
            drained += consumed;
            retained.drain(..consumed);
            emitted.extend(values);
        }
        assert_eq!(emitted.len(), 1);
        let RespValue::Array(items) = &emitted[0] else { panic!() };
        assert_eq!(items.len(), n);
        assert_eq!(items[0], RespValue::BulkString("e0".into()));
        assert_eq!(items[n - 1], RespValue::BulkString(format!("e{}", n - 1)));
    }

    #[test]
    fn stream_decoder_flags_malformed_and_depth_bombs() {
        // Binary garbage (a TLS ClientHello with a newline in range) is not
        // UTF-8, so the inline fallback rejects it too.
        let mut decoder = StreamDecoder::new();
        let (_, _, stop) = decoder.feed(b"\x16\x03\x01\xff\n");
        assert_eq!(stop, DecodeStop::Malformed);

        let mut decoder = StreamDecoder::new();
        let bomb = b"*1\r\n".repeat(100);
        let (_, _, stop) = decoder.feed(&bomb);
        assert_eq!(stop, DecodeStop::Malformed);

        // A malformed element inside a well-formed array is caught mid-frame.
        let mut decoder = StreamDecoder::new();
        let (_, _, stop) = decoder.feed(b"*2\r\n:1\r\n?bad\r\n");
        assert_eq!(stop, DecodeStop::Malformed);
    }

    #[test]
    fn inline_commands_decode_at_top_level() {
        // `PING` typed into netcat arrives as `PING\r\n` — no RESP framing.
        let mut decoder = StreamDecoder::new();
        let (values, consumed, stop) = decoder.feed(b"PING\r\n");
        assert_eq!(values, vec![RespValue::command(&["PING"])]);
        assert_eq!(consumed, 6);
        assert_eq!(stop, DecodeStop::Incomplete);

        // A bare `\n` terminator works too, and inline mixes freely with
        // RESP-framed commands on the same stream.
        let mut wire = b"GET foo\n".to_vec();
        wire.extend_from_slice(&RespValue::command(&["PING"]).encode());
        wire.extend_from_slice(b"GRAPH.QUERY g RETURN 1\r\n");
        let mut decoder = StreamDecoder::new();
        let (values, consumed, _) = decoder.feed(&wire);
        assert_eq!(
            values,
            vec![
                RespValue::command(&["GET", "foo"]),
                RespValue::command(&["PING"]),
                RespValue::command(&["GRAPH.QUERY", "g", "RETURN", "1"]),
            ]
        );
        assert_eq!(consumed, wire.len());

        // An inline line split across reads stays buffered until the newline.
        let mut decoder = StreamDecoder::new();
        let (values, consumed, stop) = decoder.feed(b"PI");
        assert!(values.is_empty());
        assert_eq!((consumed, stop), (0, DecodeStop::Incomplete));
        let (values, consumed, _) = decoder.feed(b"PING\r\n");
        assert_eq!(values, vec![RespValue::command(&["PING"])]);
        assert_eq!(consumed, 6);
    }

    #[test]
    fn inline_blank_lines_are_skipped_not_fatal() {
        // Redis ignores empty inline lines (a newline-happy human in a
        // terminal); they are consumed without emitting a frame.
        let mut decoder = StreamDecoder::new();
        let (values, consumed, stop) = decoder.feed(b"\r\n\nPING\r\n");
        assert_eq!(values, vec![RespValue::command(&["PING"])]);
        assert_eq!(consumed, 9);
        assert_eq!(stop, DecodeStop::Incomplete);
    }

    #[test]
    fn inline_quoting_follows_redis_rules() {
        let split = split_inline_args;
        // Double quotes group words and honour escapes.
        assert_eq!(
            split(r#"GRAPH.QUERY g "MATCH (n) RETURN n""#).unwrap(),
            vec!["GRAPH.QUERY", "g", "MATCH (n) RETURN n"]
        );
        assert_eq!(split(r#"SET k "a\x21b""#).unwrap(), vec!["SET", "k", "a!b"]);
        assert_eq!(split(r#"SET k "a\tb\nc""#).unwrap(), vec!["SET", "k", "a\tb\nc"]);
        // Unknown escapes pass the escaped byte through (Redis behaviour).
        assert_eq!(split(r#"SET k "a\qb""#).unwrap(), vec!["SET", "k", "aqb"]);
        // Single quotes are verbatim except `\'`.
        assert_eq!(split(r#"SET k 'it\'s \n raw'"#).unwrap(), vec!["SET", "k", r"it's \n raw"]);
        // Empty quoted argument and repeated whitespace.
        assert_eq!(split(r#"SET k """#).unwrap(), vec!["SET", "k", ""]);
        assert_eq!(split("  PING\t ").unwrap(), vec!["PING"]);
        // Unbalanced quotes / a closing quote glued to the next word: fatal.
        assert!(split(r#"SET k "unterminated"#).is_none());
        assert!(split(r#"SET k 'unterminated"#).is_none());
        assert!(split(r#"SET k "x"y"#).is_none());
        assert!(split(r#"SET k 'x'y"#).is_none());

        // And through the decoder: unbalanced quotes are Malformed (close the
        // connection), matching Redis' `unbalanced quotes in request`.
        let mut decoder = StreamDecoder::new();
        let (_, _, stop) = decoder.feed(b"SET k \"oops\n");
        assert_eq!(stop, DecodeStop::Malformed);
    }

    #[test]
    fn inline_line_cap_bounds_hostile_clients() {
        // A newline-free flood larger than the line cap can never become a
        // legal inline command: Malformed, not buffered forever.
        let mut decoder = StreamDecoder::new();
        let flood = vec![b'a'; MAX_LINE_LEN + 2];
        let (_, _, stop) = decoder.feed(&flood);
        assert_eq!(stop, DecodeStop::Malformed);
        // Just under the cap it is still a prefix a newline could complete.
        let mut decoder = StreamDecoder::new();
        let below = vec![b'a'; MAX_LINE_LEN];
        let (_, consumed, stop) = decoder.feed(&below);
        assert_eq!((consumed, stop), (0, DecodeStop::Incomplete));
        // An over-long line *with* its newline present is also rejected.
        let mut decoder = StreamDecoder::new();
        let mut long_line = vec![b'a'; MAX_LINE_LEN + 1];
        long_line.extend_from_slice(b"\r\n");
        let (_, _, stop) = decoder.feed(&long_line);
        assert_eq!(stop, DecodeStop::Malformed);
    }

    #[test]
    fn inline_is_not_recognised_inside_array_frames() {
        // The fallback applies only at the top level: a stray non-type byte
        // where an array element should start is still desynchronisation.
        let mut decoder = StreamDecoder::new();
        let (_, _, stop) = decoder.feed(b"*2\r\n:1\r\nGET foo\r\n");
        assert_eq!(stop, DecodeStop::Malformed);
        // And the one-shot strict decoder (reply parsing) stays strict RESP.
        assert_eq!(RespValue::decode_strict(b"PING\r\n"), Err(DecodeStop::Malformed));
    }

    #[test]
    fn line_of_exactly_max_line_len_decodes_and_its_prefixes_stay_incomplete() {
        // Boundary pinned by review: a legal maximum-length line must not be
        // condemned while split just before its trailing `\n`.
        let mut frame = vec![b'+'];
        frame.resize(MAX_LINE_LEN, b'a');
        frame.extend_from_slice(b"\r\n");
        let (value, used) = RespValue::decode_strict(&frame).expect("legal maximal line");
        assert_eq!(used, frame.len());
        let RespValue::SimpleString(s) = value else { panic!() };
        assert_eq!(s.len(), MAX_LINE_LEN - 1);
        // Every proper prefix — including through the `\r` — is Incomplete.
        for cut in [frame.len() - 1, frame.len() - 2, MAX_LINE_LEN] {
            assert_eq!(RespValue::decode_strict(&frame[..cut]), Err(DecodeStop::Incomplete));
        }
        // One byte longer (no CRLF in range) is hopeless.
        let mut too_long = vec![b'+'];
        too_long.resize(MAX_LINE_LEN + 3, b'a');
        assert_eq!(RespValue::decode_strict(&too_long), Err(DecodeStop::Malformed));
    }

    #[test]
    fn display_renders_human_readable() {
        assert_eq!(RespValue::Integer(5).to_string(), "5");
        assert_eq!(RespValue::Null.to_string(), "(nil)");
        assert_eq!(
            RespValue::Array(vec![RespValue::Integer(1), RespValue::BulkString("a".into())])
                .to_string(),
            "[1, a]"
        );
    }
}
