//! A minimal RESP (REdis Serialization Protocol) v2 encoder/decoder — enough
//! to frame `GRAPH.*` commands and their replies the way a Redis client would
//! see them.

use std::fmt;

/// A RESP protocol value.
#[derive(Debug, Clone, PartialEq)]
pub enum RespValue {
    /// `+OK\r\n`
    SimpleString(String),
    /// `-ERR …\r\n`
    Error(String),
    /// `:42\r\n`
    Integer(i64),
    /// `$5\r\nhello\r\n`
    BulkString(String),
    /// `*N\r\n…`
    Array(Vec<RespValue>),
    /// `$-1\r\n`
    Null,
}

impl fmt::Display for RespValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RespValue::SimpleString(s) | RespValue::BulkString(s) => write!(f, "{s}"),
            RespValue::Error(e) => write!(f, "(error) {e}"),
            RespValue::Integer(i) => write!(f, "{i}"),
            RespValue::Array(items) => {
                let rendered: Vec<String> = items.iter().map(|v| v.to_string()).collect();
                write!(f, "[{}]", rendered.join(", "))
            }
            RespValue::Null => write!(f, "(nil)"),
        }
    }
}

impl RespValue {
    /// Encode to the RESP wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            RespValue::SimpleString(s) => {
                out.extend_from_slice(b"+");
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Error(e) => {
                out.extend_from_slice(b"-");
                out.extend_from_slice(e.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Integer(i) => {
                out.extend_from_slice(format!(":{i}\r\n").as_bytes());
            }
            RespValue::BulkString(s) => {
                out.extend_from_slice(format!("${}\r\n", s.len()).as_bytes());
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Array(items) => {
                out.extend_from_slice(format!("*{}\r\n", items.len()).as_bytes());
                for item in items {
                    item.encode_into(out);
                }
            }
            RespValue::Null => out.extend_from_slice(b"$-1\r\n"),
        }
    }

    /// Decode one RESP value from the front of `input`, returning the value and
    /// the number of bytes consumed. Returns `None` on incomplete or malformed
    /// input.
    ///
    /// The parser tracks an absolute scan offset through the whole frame
    /// (nested values included) instead of re-slicing the buffer per element,
    /// so decoding a pipelined buffer of `N` commands is `O(total bytes)`:
    /// each byte is visited once, never rescanned from the front.
    pub fn decode(input: &[u8]) -> Option<(RespValue, usize)> {
        let mut pos = 0usize;
        let value = decode_at(input, &mut pos, 0)?;
        Some((value, pos))
    }

    /// Decode every complete RESP value at the front of `input` (a client
    /// pipeline), returning the values and the total number of bytes
    /// consumed. Stops at the first frame that does not decode — either
    /// *incomplete* (more bytes may complete it; keep `input[consumed..]`
    /// buffered) or *malformed* (no amount of further input will fix it).
    /// The two are not distinguished here, so a caller owning a real socket
    /// loop must bound the retained buffer and treat hitting that bound as a
    /// protocol error rather than waiting forever.
    pub fn decode_pipeline(input: &[u8]) -> (Vec<RespValue>, usize) {
        let mut values = Vec::new();
        let mut pos = 0usize;
        loop {
            let mut next = pos;
            match decode_at(input, &mut next, 0) {
                Some(value) => {
                    values.push(value);
                    pos = next;
                }
                None => break,
            }
        }
        (values, pos)
    }

    /// Convenience: build a RESP array of bulk strings (how clients send
    /// commands).
    pub fn command(parts: &[&str]) -> RespValue {
        RespValue::Array(parts.iter().map(|p| RespValue::BulkString(p.to_string())).collect())
    }
}

/// Upper bound on a declared bulk-string payload (Redis' default
/// `proto-max-bulk-len`): a client-supplied `$<len>` beyond this is treated
/// as malformed rather than trusted into a buffer-length computation.
const MAX_BULK_LEN: usize = 512 * 1024 * 1024;

/// Upper bound on a declared array element count (Redis caps multibulk
/// headers at 1M elements).
const MAX_ARRAY_LEN: usize = 1024 * 1024;

/// Maximum array nesting depth, so a hostile frame of `*1\r\n` repeated
/// cannot exhaust the stack through recursion.
const MAX_DEPTH: usize = 32;

/// Decode one value starting at `*pos`, advancing `*pos` past it. `None`
/// means incomplete or malformed input; `*pos` is then unspecified.
fn decode_at(input: &[u8], pos: &mut usize, depth: usize) -> Option<RespValue> {
    if depth > MAX_DEPTH {
        return None;
    }
    let line_start = *pos;
    let line_end = find_crlf(input, line_start)?;
    *pos = line_end + 2;
    let line = &input[line_start..line_end];
    let kind = *line.first()?;
    let body = &line[1..];
    match kind {
        b'+' => Some(RespValue::SimpleString(String::from_utf8_lossy(body).into_owned())),
        b'-' => Some(RespValue::Error(String::from_utf8_lossy(body).into_owned())),
        b':' => {
            let i: i64 = std::str::from_utf8(body).ok()?.parse().ok()?;
            Some(RespValue::Integer(i))
        }
        b'$' => {
            let len: i64 = std::str::from_utf8(body).ok()?.parse().ok()?;
            // `$-1\r\n` is the null bulk string.
            if len < 0 {
                return Some(RespValue::Null);
            }
            let len = usize::try_from(len).ok().filter(|&l| l <= MAX_BULK_LEN)?;
            // Overflow-checked frame extent: `start + len + 2` on an
            // unvalidated length must never wrap.
            let start = *pos;
            let payload_end = start.checked_add(len)?;
            let frame_end = payload_end.checked_add(2)?;
            if input.len() < frame_end {
                return None;
            }
            // The declared length must be terminated by CRLF exactly.
            if &input[payload_end..frame_end] != b"\r\n" {
                return None;
            }
            let s = String::from_utf8_lossy(&input[start..payload_end]).into_owned();
            *pos = frame_end;
            Some(RespValue::BulkString(s))
        }
        b'*' => {
            let count: i64 = std::str::from_utf8(body).ok()?.parse().ok()?;
            // `*-1\r\n` is the null array, not an empty one.
            if count < 0 {
                return Some(RespValue::Null);
            }
            let count = usize::try_from(count).ok().filter(|&c| c <= MAX_ARRAY_LEN)?;
            let mut items = Vec::with_capacity(count.min(64));
            for _ in 0..count {
                items.push(decode_at(input, pos, depth + 1)?);
            }
            Some(RespValue::Array(items))
        }
        _ => None,
    }
}

/// Find the next `\r\n` at or after `from`, scanning forward only.
fn find_crlf(input: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i + 1 < input.len() {
        if input[i] == b'\r' && input[i + 1] == b'\n' {
            return Some(i);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_all_kinds() {
        let values = vec![
            RespValue::SimpleString("OK".into()),
            RespValue::Error("ERR boom".into()),
            RespValue::Integer(-42),
            RespValue::BulkString("hello world".into()),
            RespValue::Null,
            RespValue::Array(vec![
                RespValue::Integer(1),
                RespValue::BulkString("two".into()),
                RespValue::Array(vec![RespValue::Null]),
            ]),
        ];
        for v in values {
            let bytes = v.encode();
            let (decoded, used) = RespValue::decode(&bytes).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn command_builder_produces_bulk_array() {
        let cmd = RespValue::command(&["GRAPH.QUERY", "social", "MATCH (n) RETURN n"]);
        let encoded = cmd.encode();
        assert!(encoded.starts_with(b"*3\r\n$11\r\nGRAPH.QUERY"));
    }

    #[test]
    fn incomplete_input_returns_none() {
        assert!(RespValue::decode(b"$10\r\nshort\r\n").is_none());
        assert!(RespValue::decode(b"*2\r\n:1\r\n").is_none());
        assert!(RespValue::decode(b"").is_none());
    }

    #[test]
    fn negative_array_count_is_null_not_empty_array() {
        // Regression: `*-1\r\n` (the RESP null array) used to decode as
        // `Array([])`, silently conflating "no reply" with "empty reply".
        let (v, used) = RespValue::decode(b"*-1\r\n").unwrap();
        assert_eq!(v, RespValue::Null);
        assert_eq!(used, 5);
        // Any negative count is null, and an explicit empty array still works.
        assert_eq!(RespValue::decode(b"*-7\r\n").unwrap().0, RespValue::Null);
        assert_eq!(RespValue::decode(b"*0\r\n").unwrap().0, RespValue::Array(vec![]));
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // Unknown type byte.
        assert!(RespValue::decode(b"?what\r\n").is_none());
        // Non-numeric lengths / counts.
        assert!(RespValue::decode(b"$abc\r\nxyz\r\n").is_none());
        assert!(RespValue::decode(b"*abc\r\n").is_none());
        assert!(RespValue::decode(b":notanint\r\n").is_none());
        // A bulk payload must be terminated by CRLF exactly where declared.
        assert!(RespValue::decode(b"$3\r\nabcdef\r\n").is_none());
        assert!(RespValue::decode(b"$3\r\nabcXY").is_none());
        // Empty line (no type byte).
        assert!(RespValue::decode(b"\r\n").is_none());
    }

    #[test]
    fn hostile_lengths_cannot_overflow_or_allocate() {
        // A declared length near usize::MAX used to feed `start + len + 2`
        // unchecked; it must be rejected, not wrapped.
        let frame = format!("${}\r\n", u64::MAX);
        assert!(RespValue::decode(frame.as_bytes()).is_none());
        let frame = format!("${}\r\n", i64::MAX);
        assert!(RespValue::decode(frame.as_bytes()).is_none());
        // Over the bulk cap (512MB) and over the array cap (1M elements).
        assert!(RespValue::decode(b"$536870913\r\n").is_none());
        assert!(RespValue::decode(b"*1048577\r\n").is_none());
        // Deep nesting is bounded rather than recursing unboundedly.
        let bomb = b"*1\r\n".repeat(100);
        assert!(RespValue::decode(&bomb).is_none());
    }

    #[test]
    fn pipelined_commands_decode_in_one_linear_pass() {
        // A large pipeline: every byte should be visited once. (With the old
        // per-frame rescan this test still passed, just quadratically slower;
        // the shape of the API — absolute offsets, `decode_pipeline` — is
        // what this pins.)
        let n = 5_000;
        let mut buf = Vec::new();
        for i in 0..n {
            let cmd = RespValue::command(&["GRAPH.QUERY", "g", &format!("RETURN {i}")]);
            buf.extend_from_slice(&cmd.encode());
        }
        // Leave a trailing incomplete frame in the buffer.
        let complete_len = buf.len();
        buf.extend_from_slice(b"*2\r\n$5\r\nhel");

        let (values, consumed) = RespValue::decode_pipeline(&buf);
        assert_eq!(values.len(), n);
        assert_eq!(consumed, complete_len);
        assert_eq!(values[0], RespValue::command(&["GRAPH.QUERY", "g", "RETURN 0"]));
        let last = RespValue::command(&["GRAPH.QUERY", "g", &format!("RETURN {}", n - 1)]);
        assert_eq!(values[n - 1], last);

        // One-by-one decoding with a caller-tracked offset agrees.
        let mut pos = 0usize;
        let mut count = 0usize;
        while let Some((v, used)) = RespValue::decode(&buf[pos..]) {
            assert_eq!(v, values[count]);
            pos += used;
            count += 1;
        }
        assert_eq!(count, n);
        assert_eq!(pos, complete_len);
    }

    #[test]
    fn display_renders_human_readable() {
        assert_eq!(RespValue::Integer(5).to_string(), "5");
        assert_eq!(RespValue::Null.to_string(), "(nil)");
        assert_eq!(
            RespValue::Array(vec![RespValue::Integer(1), RespValue::BulkString("a".into())])
                .to_string(),
            "[1, a]"
        );
    }
}
