//! A tiny blocking RESP client — just enough of `redis-cli` to drive the
//! TCP server from tests, benchmarks, and examples: frame commands, write
//! them (optionally pipelined), and decode replies from a retained buffer.

use crate::resp::{DecodeStop, RespValue};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Read chunk size for reply buffering.
const READ_CHUNK: usize = 16 * 1024;

/// A blocking RESP connection to a [`crate::GraphServer`] (or any RESP
/// server).
pub struct RespClient {
    stream: TcpStream,
    /// Unparsed reply bytes retained across reads (a TCP segment can end
    /// mid-frame, or carry the tails of several pipelined replies).
    buf: Vec<u8>,
}

impl RespClient {
    /// Connect to `addr` (e.g. `"127.0.0.1:6380"`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<RespClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(RespClient { stream, buf: Vec::new() })
    }

    /// Wrap an already-connected stream (hostile-client tests build their
    /// own sockets and hand them over once done misbehaving).
    pub fn from_stream(stream: TcpStream) -> RespClient {
        RespClient { stream, buf: Vec::new() }
    }

    /// Send one command and block for its reply.
    pub fn command(&mut self, parts: &[&str]) -> io::Result<RespValue> {
        self.send(&RespValue::command(parts))?;
        self.read_reply()
    }

    /// Convenience: `GRAPH.QUERY <graph> <cypher>`.
    pub fn query(&mut self, graph: &str, cypher: &str) -> io::Result<RespValue> {
        self.command(&["GRAPH.QUERY", graph, cypher])
    }

    /// Write one frame without waiting for a reply (pipelining).
    pub fn send(&mut self, frame: &RespValue) -> io::Result<()> {
        self.stream.write_all(&frame.encode())
    }

    /// Write raw bytes (hostile tests send deliberately broken frames).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Send a whole pipeline in one write, then collect exactly one reply
    /// per command, in order.
    pub fn pipeline(&mut self, commands: &[RespValue]) -> io::Result<Vec<RespValue>> {
        let mut out = Vec::new();
        for c in commands {
            c.encode_into(&mut out);
        }
        self.stream.write_all(&out)?;
        let mut replies = Vec::with_capacity(commands.len());
        for _ in 0..commands.len() {
            replies.push(self.read_reply()?);
        }
        Ok(replies)
    }

    /// Block until one complete reply frame is decoded. `UnexpectedEof`
    /// means the server closed the connection (e.g. after a protocol
    /// violation); `InvalidData` means the server itself sent malformed RESP.
    pub fn read_reply(&mut self) -> io::Result<RespValue> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match RespValue::decode_strict(&self.buf) {
                Ok((value, used)) => {
                    self.buf.drain(..used);
                    return Ok(value);
                }
                Err(DecodeStop::Malformed) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "server sent malformed RESP",
                    ));
                }
                Err(DecodeStop::Incomplete) => {}
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// The underlying stream (tests tweak timeouts on it).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}
