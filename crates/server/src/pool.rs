//! The RedisGraph module threadpool.
//!
//! The pool size is fixed at construction ("a configurable number of threads
//! at the module's loading time", §II). The main Redis thread pushes each
//! query as one job; one worker executes it to completion on a single core.

use crossbeam::atomic::{AtomicUsize, Ordering};
use crossbeam::channel::{unbounded, Sender};
use crossbeam::thread::JoinHandle;
use std::sync::Arc;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads consuming jobs from a shared queue.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
    /// Jobs submitted but not yet finished (queued + executing). Graceful
    /// shutdown drains this to zero before tearing the listener down.
    in_flight: Arc<AtomicUsize>,
}

impl ThreadPool {
    /// Create a pool with `size` workers (clamped to at least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = unbounded::<Job>();
        let mut workers = Vec::with_capacity(size);
        for i in 0..size {
            let rx = receiver.clone();
            let handle = crossbeam::thread::Builder::new()
                .name(format!("redisgraph-worker-{i}"))
                .spawn(move || {
                    // Workers exit when the channel disconnects (pool dropped).
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("failed to spawn worker thread");
            workers.push(handle);
        }
        ThreadPool { sender: Some(sender), workers, size, in_flight: Arc::new(AtomicUsize::new(0)) }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Jobs submitted but not yet completed (queued + executing).
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Block until every submitted job has finished, or `timeout` elapses.
    /// Returns `true` if the pool drained. New submissions during the wait
    /// extend it — callers drain after they stop feeding the pool.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.in_flight() > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            crossbeam::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Submit a job; it will run on exactly one worker thread.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        /// Decrements on drop, so a panicking job (which unwinds its worker
        /// thread) still comes off the in-flight count instead of wedging
        /// `wait_idle` forever.
        struct InFlightGuard(Arc<AtomicUsize>);
        impl Drop for InFlightGuard {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let guard = InFlightGuard(self.in_flight.clone());
        self.sender
            .as_ref()
            .expect("pool is shutting down")
            .send(Box::new(move || {
                let _guard = guard;
                job();
            }))
            .expect("worker threads have exited");
    }

    /// Submit a job and block until it completes, returning its result.
    /// This is how the single-threaded command loop serves a synchronous
    /// client call while still running the query on a pool thread.
    pub fn execute_blocking<F, R>(&self, job: F) -> R
    where
        F: FnOnce() -> R + Send + 'static,
        R: Send + 'static,
    {
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.execute(move || {
            let result = job();
            let _ = tx.send(result);
        });
        rx.recv().expect("worker dropped the result")
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Disconnect the channel so workers drain and exit, then join them.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_all_submitted_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = crossbeam::channel::unbounded();
        for _ in 0..100 {
            let counter = counter.clone();
            let tx = tx.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(());
            });
        }
        for _ in 0..100 {
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn execute_blocking_returns_result() {
        let pool = ThreadPool::new(2);
        let result = pool.execute_blocking(|| 21 * 2);
        assert_eq!(result, 42);
    }

    #[test]
    fn size_is_clamped_to_one() {
        assert_eq!(ThreadPool::new(0).size(), 1);
        assert_eq!(ThreadPool::new(8).size(), 8);
    }

    #[test]
    fn jobs_run_on_worker_threads_not_the_caller() {
        let pool = ThreadPool::new(1);
        let caller = std::thread::current().id();
        let worker = pool.execute_blocking(move || std::thread::current().id());
        assert_ne!(caller, worker);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = ThreadPool::new(3);
        pool.execute(|| {});
        drop(pool); // must not hang or panic
    }

    #[test]
    fn panicking_job_still_leaves_in_flight() {
        // A panic unwinds its worker thread; the in-flight count must come
        // back down anyway or every later drain waits out its full timeout.
        let pool = ThreadPool::new(2);
        pool.execute(|| panic!("job blew up (expected in this test)"));
        assert!(pool.wait_idle(Duration::from_secs(5)), "panicked job leaked in_flight");
        // The surviving worker still serves jobs.
        assert_eq!(pool.execute_blocking(|| 7), 7);
    }

    #[test]
    fn wait_idle_drains_and_times_out() {
        let pool = ThreadPool::new(2);
        let (release_tx, release_rx) = crossbeam::channel::bounded::<()>(1);
        pool.execute(move || {
            release_rx.recv().unwrap();
        });
        assert_eq!(pool.in_flight(), 1);
        // The job is parked on the channel: the wait must time out...
        assert!(!pool.wait_idle(Duration::from_millis(50)));
        // ...and drain promptly once it is released.
        release_tx.send(()).unwrap();
        assert!(pool.wait_idle(Duration::from_secs(5)));
        assert_eq!(pool.in_flight(), 0);
    }
}
