//! # redisgraph-server
//!
//! The Redis substrate of the reproduction: an in-process, single-threaded
//! command loop speaking (a subset of) the RESP protocol, with the RedisGraph
//! module's **worker threadpool** bolted on exactly as §II of the paper
//! describes:
//!
//! * every command arrives on the single main thread (Redis is
//!   single-threaded);
//! * `GRAPH.QUERY` work is handed to one thread of a pool whose size is fixed
//!   when the module is loaded;
//! * each query runs on exactly **one** thread — reads scale with concurrent
//!   clients because many pool threads can serve different queries at once,
//!   not because one query uses many cores.
//!
//! The crate provides three entry points:
//!
//! * a synchronous façade ([`server::RedisGraphServer`]) used by the
//!   examples and in-process tests;
//! * an asynchronous dispatch path ([`server::RedisGraphServer::start_dispatcher`])
//!   used by the throughput benchmark (experiment E5) to measure
//!   queries/second as the pool grows;
//! * the **real network server** ([`listener::GraphServer`]): a TCP accept
//!   loop whose per-connection framing loops ([`conn`]) consume
//!   [`resp::RespValue::decode_pipeline_strict`] under a bounded retained
//!   buffer and dispatch queries onto the same worker pool — the byte-level
//!   interface RedisGraph clients actually speak, plus a small blocking
//!   client ([`client::RespClient`]) to drive it.

pub mod client;
pub mod commands;
mod conn;
pub mod listener;
pub mod metrics;
pub mod plan_cache;
pub mod pool;
pub mod resp;
pub mod server;

pub use client::RespClient;
pub use commands::{split_cypher_params, Command};
pub use listener::GraphServer;
pub use metrics::{CommandKind, Histogram, Metrics, SlowLog, SlowLogEntry};
pub use plan_cache::{normalize, CachedPlan, Lookup, PlanCache};
// The lock type `RedisGraphServer::graph` hands out, so embedders can name
// `Arc<RwLock<Graph>>` without depending on the lock crate directly.
pub use parking_lot::RwLock;
pub use pool::ThreadPool;
pub use resp::{DecodeStop, RespValue, StreamDecoder};
pub use server::{RedisGraphServer, ServerConfig, DEFAULT_PLAN_CACHE_SIZE};
