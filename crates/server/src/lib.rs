//! # redisgraph-server
//!
//! The Redis substrate of the reproduction: an in-process, single-threaded
//! command loop speaking (a subset of) the RESP protocol, with the RedisGraph
//! module's **worker threadpool** bolted on exactly as §II of the paper
//! describes:
//!
//! * every command arrives on the single main thread (Redis is
//!   single-threaded);
//! * `GRAPH.QUERY` work is handed to one thread of a pool whose size is fixed
//!   when the module is loaded;
//! * each query runs on exactly **one** thread — reads scale with concurrent
//!   clients because many pool threads can serve different queries at once,
//!   not because one query uses many cores.
//!
//! The crate provides both a synchronous façade ([`server::RedisGraphServer`])
//! used by the examples and an asynchronous dispatch path
//! ([`server::RedisGraphServer::dispatch`]) used by the throughput benchmark
//! (experiment E5) to measure queries/second as the pool grows.

pub mod commands;
pub mod pool;
pub mod resp;
pub mod server;

pub use commands::Command;
pub use pool::ThreadPool;
pub use resp::RespValue;
pub use server::{RedisGraphServer, ServerConfig};
