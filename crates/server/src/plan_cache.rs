//! The per-graph execution-plan cache behind parameterized queries.
//!
//! `GRAPH.QUERY` used to parse and plan every query text from scratch. With
//! parameterized queries (`CYPHER k=7 … WHERE id(s) = $k …`) the same query
//! *shape* arrives thousands of times with different values, so the server
//! now caches the parsed-and-planned skeleton keyed on the
//! whitespace-normalized body text and re-binds parameters per execution.
//!
//! Correctness under concurrency rests on a **generation counter**: a lookup
//! miss records the generation it observed, and the insert that follows (the
//! caller parses and plans in between, without holding the cache lock) is
//! dropped if an invalidation bumped the generation in the meantime. Without
//! that check, this interleaving serves a stale plan forever:
//!
//! ```text
//! worker: lookup(miss)            — plan built for QUERY_THREADS=1
//! main:   GRAPH.CONFIG SET QUERY_THREADS 4 → invalidate()
//! worker: insert(stale plan)      — REJECTED by the generation check
//! ```
//!
//! The `crates/modelcheck` `plan_cache` suite explores exactly this race; the
//! seeded mutant `xmut_no_cache_invalidation` removes the check and must make
//! that suite fail.
//!
//! The cache is bounded (`PLAN_CACHE_SIZE`, least-recently-used eviction) and
//! scoped per graph: `GRAPH.DELETE` drops the keyspace entry and the cache
//! with it. Plans are compiled from the AST alone — no graph contents — so
//! writes never invalidate; only config changes that affect planning do
//! (`QUERY_THREADS` feeds the plan's thread budget, the optimizer toggle
//! selects fused vs unfused plans, `PLAN_CACHE_SIZE` resizes the cache).

use crate::metrics::Metrics;
use crossbeam::atomic::Ordering;
use parking_lot::Mutex;
use redisgraph_core::ExecutionPlan;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// A parsed-and-planned query skeleton, shared by every execution of the
/// same normalized query text.
#[derive(Debug)]
pub struct CachedPlan {
    /// The compiled plan. Parameter references (`$name`) are still symbolic;
    /// executions with parameters bind a private copy first
    /// ([`ExecutionPlan::bind`]).
    pub plan: Arc<ExecutionPlan>,
    /// Whether the query is read-only (epoch-snapshot path) or a write
    /// (exclusive-lock path) — classified once, at plan time.
    pub read_only: bool,
    /// True if the plan contains `$name` references and must be bound before
    /// executing. False lets parameter-free hits skip the bind clone.
    pub has_params: bool,
    /// The graph's optimizer setting when the plan was built. A hit whose
    /// flag no longer matches the graph is treated as a miss, so toggling
    /// the optimizer never serves a plan of the wrong shape.
    pub optimized: bool,
}

/// The outcome of a cache lookup.
#[derive(Debug)]
pub enum Lookup {
    /// The skeleton for this key, LRU-refreshed.
    Hit(Arc<CachedPlan>),
    /// No entry; the payload is the generation observed under the lock —
    /// pass it to [`PlanCache::insert`] so a concurrent invalidation can
    /// reject the late insert.
    Miss(u64),
}

#[derive(Debug)]
struct CacheInner {
    map: HashMap<String, Arc<CachedPlan>>,
    /// Recency order over the keys of `map`: front = least recently used.
    lru: VecDeque<String>,
    /// Bumped by every invalidation; inserts carrying an older generation
    /// are dropped.
    generation: u64,
    /// Maximum entries (`PLAN_CACHE_SIZE`); 0 disables caching entirely.
    capacity: usize,
}

/// A bounded, generation-counted, LRU plan cache. One per keyspace entry.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<CacheInner>,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans (0 = disabled).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                lru: VecDeque::new(),
                generation: 0,
                capacity,
            }),
        }
    }

    /// Look up the plan for a normalized query key, counting the hit or miss
    /// and refreshing the entry's recency on a hit.
    pub fn lookup(&self, key: &str, metrics: &Metrics) -> Lookup {
        let mut inner = self.inner.lock();
        if let Some(cached) = inner.map.get(key).cloned() {
            metrics.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(pos) = inner.lru.iter().position(|k| k == key) {
                let k = inner.lru.remove(pos).expect("position came from iter");
                inner.lru.push_back(k);
            }
            Lookup::Hit(cached)
        } else {
            metrics.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
            Lookup::Miss(inner.generation)
        }
    }

    /// Install a freshly built plan, evicting the least-recently-used entry
    /// over capacity. `seen_generation` must be the value returned by the
    /// [`Lookup::Miss`] that triggered the build: if an invalidation landed
    /// between the miss and this insert, the plan was built against retired
    /// planning config (a stale thread budget, the old optimizer setting)
    /// and is dropped instead of cached.
    pub fn insert(
        &self,
        key: String,
        plan: Arc<CachedPlan>,
        seen_generation: u64,
        metrics: &Metrics,
    ) {
        let mut inner = self.inner.lock();
        if inner.capacity == 0 {
            return;
        }
        // `xmut_no_cache_invalidation` is a seeded mutant for the
        // model-checker CI smoke test: skipping the generation check must
        // make the `plan_cache` suite fail (a stale plan outlives its
        // invalidation).
        #[cfg(not(xmut_no_cache_invalidation))]
        if inner.generation != seen_generation {
            return;
        }
        #[cfg(xmut_no_cache_invalidation)]
        let _ = seen_generation;
        if inner.map.insert(key.clone(), plan).is_none() {
            inner.lru.push_back(key);
        } else if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
            let k = inner.lru.remove(pos).expect("position came from iter");
            inner.lru.push_back(k);
        }
        while inner.map.len() > inner.capacity {
            let Some(oldest) = inner.lru.pop_front() else { break };
            inner.map.remove(&oldest);
            metrics.plan_cache_evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drop every entry and bump the generation, so in-flight builds that
    /// missed before the invalidation cannot install their now-stale plans.
    pub fn invalidate(&self) {
        let mut inner = self.inner.lock();
        inner.generation += 1;
        inner.map.clear();
        inner.lru.clear();
    }

    /// Change the capacity (`GRAPH.CONFIG SET PLAN_CACHE_SIZE`). Resizing is
    /// an invalidation: plans cached under the old setting are dropped and
    /// in-flight inserts rejected, which keeps the config change atomic from
    /// a client's point of view.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.lock();
        inner.generation += 1;
        inner.map.clear();
        inner.lru.clear();
        inner.capacity = capacity;
    }

    /// Number of cached plans (the `plan_cache_entries` gauge).
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current generation (exposed for the model-check suite's
    /// invariants).
    pub fn generation(&self) -> u64 {
        self.inner.lock().generation
    }
}

/// Normalize a query body into its cache key: collapse every run of
/// whitespace outside string/backquote literals to one space and trim the
/// ends, so formatting differences (`MATCH  (n)` vs `MATCH (n)`) share one
/// cached plan while string contents stay significant. The `CYPHER …` header
/// is stripped before this is called — parameter *values* never reach the
/// key, only the shape.
pub fn normalize(body: &str) -> String {
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars().peekable();
    let mut pending_space = false;
    while let Some(c) = chars.next() {
        match c {
            c if c.is_whitespace() => {
                if !out.is_empty() {
                    pending_space = true;
                }
            }
            '\'' | '"' | '`' => {
                if pending_space {
                    out.push(' ');
                    pending_space = false;
                }
                out.push(c);
                // Copy the literal verbatim: whitespace inside is data. The
                // lexer supports doubled-quote escapes (`''` / `""`), which
                // read here as close-then-reopen — harmless for a cache key,
                // since the doubled quote is itself copied verbatim.
                for inner in chars.by_ref() {
                    out.push(inner);
                    if inner == c {
                        break;
                    }
                }
            }
            c => {
                if pending_space {
                    out.push(' ');
                    pending_space = false;
                }
                out.push(c);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use redisgraph_core::Graph;

    fn plan_for(query: &str) -> Arc<CachedPlan> {
        let g = Graph::new("t");
        let ast = cypher::parse(query).unwrap();
        let read_only = ast.is_read_only();
        let plan = g.build_plan(&ast).unwrap();
        Arc::new(CachedPlan {
            has_params: plan.has_params(),
            plan: Arc::new(plan),
            read_only,
            optimized: true,
        })
    }

    #[test]
    fn normalization_collapses_whitespace_but_not_string_contents() {
        assert_eq!(normalize("  MATCH   (n)\n\tRETURN  n  "), "MATCH (n) RETURN n");
        assert_eq!(
            normalize("MATCH (n {name: 'two  spaces'}) RETURN n"),
            "MATCH (n {name: 'two  spaces'}) RETURN n"
        );
        assert_eq!(normalize("RETURN \"a  b\""), "RETURN \"a  b\"");
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn lookup_miss_then_insert_then_hit() {
        let cache = PlanCache::new(4);
        let metrics = Metrics::default();
        let Lookup::Miss(generation) = cache.lookup("MATCH (n) RETURN n", &metrics) else {
            panic!("empty cache must miss")
        };
        cache.insert(
            "MATCH (n) RETURN n".into(),
            plan_for("MATCH (n) RETURN n"),
            generation,
            &metrics,
        );
        assert!(matches!(cache.lookup("MATCH (n) RETURN n", &metrics), Lookup::Hit(_)));
        assert_eq!(cache.len(), 1);
        assert_eq!(metrics.plan_cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.plan_cache_misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn invalidation_rejects_in_flight_inserts() {
        let cache = PlanCache::new(4);
        let metrics = Metrics::default();
        let Lookup::Miss(generation) = cache.lookup("MATCH (n) RETURN n", &metrics) else {
            panic!()
        };
        // The invalidation lands while the caller is off building the plan.
        cache.invalidate();
        cache.insert(
            "MATCH (n) RETURN n".into(),
            plan_for("MATCH (n) RETURN n"),
            generation,
            &metrics,
        );
        assert!(
            cache.is_empty(),
            "an insert that observed a pre-invalidation generation must be dropped"
        );
        assert!(matches!(cache.lookup("MATCH (n) RETURN n", &metrics), Lookup::Miss(_)));
    }

    #[test]
    fn lru_eviction_is_bounded_and_counted() {
        let cache = PlanCache::new(2);
        let metrics = Metrics::default();
        for key in ["q1", "q2", "q3"] {
            let Lookup::Miss(generation) = cache.lookup(key, &metrics) else { panic!() };
            cache.insert(key.into(), plan_for("MATCH (n) RETURN n"), generation, &metrics);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(metrics.plan_cache_evictions.load(Ordering::Relaxed), 1);
        // q1 was the least recently used entry, so it is the one gone.
        assert!(matches!(cache.lookup("q1", &metrics), Lookup::Miss(_)));
        assert!(matches!(cache.lookup("q2", &metrics), Lookup::Hit(_)));
        assert!(matches!(cache.lookup("q3", &metrics), Lookup::Hit(_)));

        // A hit refreshes recency: q2 survives the next eviction, q3 goes.
        let Lookup::Miss(generation) = cache.lookup("q4", &metrics) else { panic!() };
        assert!(matches!(cache.lookup("q2", &metrics), Lookup::Hit(_)));
        cache.insert("q4".into(), plan_for("MATCH (n) RETURN n"), generation, &metrics);
        assert!(matches!(cache.lookup("q2", &metrics), Lookup::Hit(_)));
        assert!(matches!(cache.lookup("q3", &metrics), Lookup::Miss(_)));
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let cache = PlanCache::new(0);
        let metrics = Metrics::default();
        let Lookup::Miss(generation) = cache.lookup("q", &metrics) else { panic!() };
        cache.insert("q".into(), plan_for("MATCH (n) RETURN n"), generation, &metrics);
        assert!(cache.is_empty());
        assert!(matches!(cache.lookup("q", &metrics), Lookup::Miss(_)));
    }

    #[test]
    fn resizing_invalidates() {
        let cache = PlanCache::new(4);
        let metrics = Metrics::default();
        let Lookup::Miss(generation) = cache.lookup("q", &metrics) else { panic!() };
        cache.insert("q".into(), plan_for("MATCH (n) RETURN n"), generation, &metrics);
        let before = cache.generation();
        cache.set_capacity(8);
        assert!(cache.is_empty());
        assert!(cache.generation() > before);
    }
}
