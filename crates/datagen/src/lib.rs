//! # datagen
//!
//! Synthetic graph generators and benchmark workloads standing in for the
//! datasets of the RedisGraph paper's evaluation:
//!
//! * [`rmat`] — the Graph500 RMAT/Kronecker generator (the paper's "Graph500"
//!   dataset, 2.4 M vertices / 67 M edges at scale 21–22) with the official
//!   probabilities A=0.57, B=0.19, C=0.19, D=0.05.
//! * [`powerlaw`] — a preferential-attachment generator producing the
//!   heavy-tailed in-degree distribution of the paper's "Twitter" dataset
//!   (41.6 M vertices / 1.47 B edges), at a configurable, smaller scale.
//! * [`workload`] — the TigerGraph k-hop neighbourhood-count benchmark driver:
//!   seed selection (300 seeds for k = 1, 2; 10 seeds for k = 3, 6) and the
//!   per-dataset query mix.
//!
//! The generators emit plain edge lists (`Vec<(u64, u64)>`) so every engine in
//! this workspace (GraphBLAS-backed RedisGraph core, the adjacency-list
//! baseline) loads identical graphs.

pub mod powerlaw;
pub mod rmat;
pub mod workload;

pub use powerlaw::{twitter_like, PowerLawConfig};
pub use rmat::{graph500, RmatConfig};
pub use workload::{
    KhopWorkload, SeedSelection, TIGERGRAPH_SEEDS_LARGE_K, TIGERGRAPH_SEEDS_SMALL_K,
};

/// An edge list together with its vertex count — the interchange format
/// between generators and the engines under test.
#[derive(Debug, Clone)]
pub struct EdgeList {
    /// Number of vertices (vertex ids are `0..num_vertices`).
    pub num_vertices: u64,
    /// Directed edges `(source, destination)`. May contain duplicates and
    /// self-loops, exactly like the raw Graph500 generator output; engines
    /// decide how to handle them (RedisGraph keeps one matrix entry per pair).
    pub edges: Vec<(u64, u64)>,
}

impl EdgeList {
    /// Number of (possibly duplicate) generated edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Deduplicated edge count, ignoring self-loops — the number of entries an
    /// adjacency matrix built from this list will hold.
    pub fn distinct_edge_count(&self) -> usize {
        let mut e: Vec<(u64, u64)> = self.edges.iter().copied().filter(|&(s, d)| s != d).collect();
        e.sort_unstable();
        e.dedup();
        e.len()
    }

    /// Out-degree of every vertex (counting duplicate edges once).
    pub fn out_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_vertices as usize];
        let mut e = self.edges.clone();
        e.sort_unstable();
        e.dedup();
        for (s, _) in e {
            deg[s as usize] += 1;
        }
        deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_edge_count_ignores_duplicates_and_loops() {
        let el = EdgeList { num_vertices: 4, edges: vec![(0, 1), (0, 1), (1, 1), (2, 3)] };
        assert_eq!(el.num_edges(), 4);
        assert_eq!(el.distinct_edge_count(), 2);
    }

    #[test]
    fn out_degrees_counts_unique_neighbours() {
        let el = EdgeList { num_vertices: 3, edges: vec![(0, 1), (0, 1), (0, 2), (2, 0)] };
        assert_eq!(el.out_degrees(), vec![2, 0, 1]);
    }
}
