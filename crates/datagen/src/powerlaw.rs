//! Twitter-like power-law graph generator.
//!
//! The paper's second dataset is a crawl of the Twitter follower network
//! (41.6 M vertices, 1.47 B edges) — a proprietary snapshot we cannot ship.
//! What matters for the k-hop benchmark is its *shape*: a directed graph whose
//! in-degree follows a heavy-tailed power law (a few celebrity accounts with
//! enormous in-degree), dense enough that 3- and 6-hop neighbourhoods explode
//! to a large fraction of the graph. We reproduce that shape with a
//! preferential-attachment process (directed Barabási–Albert with extra random
//! rewiring), scaled down by a configurable factor.

use crate::EdgeList;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the Twitter-like generator.
#[derive(Debug, Clone, Copy)]
pub struct PowerLawConfig {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Outgoing edges created per newly added vertex (the "follows" count).
    pub edges_per_vertex: u32,
    /// Fraction of edges attached uniformly at random instead of
    /// preferentially (adds long-range randomness, avoids a pure tree core).
    pub random_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PowerLawConfig {
    fn default() -> Self {
        PowerLawConfig {
            num_vertices: 100_000,
            edges_per_vertex: 10,
            random_fraction: 0.15,
            seed: 1,
        }
    }
}

/// Generate a Twitter-like directed graph with a power-law in-degree
/// distribution via preferential attachment.
pub fn generate(config: &PowerLawConfig) -> EdgeList {
    assert!(config.num_vertices >= 2, "need at least two vertices");
    let n = config.num_vertices;
    let m = config.edges_per_vertex.max(1) as u64;
    let mut rng = StdRng::seed_from_u64(config.seed);

    // `targets` is a multiset of edge destinations: sampling uniformly from it
    // implements preferential attachment (probability ∝ current in-degree + 1,
    // because every vertex is inserted once when it is created).
    let mut targets: Vec<u64> = Vec::with_capacity((n * (m + 1)) as usize);
    let mut edges: Vec<(u64, u64)> = Vec::with_capacity((n * m) as usize);

    targets.push(0);
    for v in 1..n {
        let out = m.min(v); // early vertices cannot follow more accounts than exist
        for _ in 0..out {
            let dst = if rng.gen::<f64>() < config.random_fraction || targets.is_empty() {
                rng.gen_range(0..v)
            } else {
                targets[rng.gen_range(0..targets.len())]
            };
            if dst != v {
                edges.push((v, dst));
                targets.push(dst);
            }
        }
        targets.push(v);
    }
    EdgeList { num_vertices: n, edges }
}

/// The paper's "Twitter" dataset shape at a reduced size: `num_vertices`
/// vertices with an average out-degree similar to the original's 35
/// (1.47 B / 41.6 M ≈ 35 edges per vertex).
pub fn twitter_like(num_vertices: u64, seed: u64) -> EdgeList {
    generate(&PowerLawConfig { num_vertices, edges_per_vertex: 35, random_fraction: 0.15, seed })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_vertex_count_and_bounds() {
        let el = generate(&PowerLawConfig {
            num_vertices: 500,
            edges_per_vertex: 5,
            ..Default::default()
        });
        assert_eq!(el.num_vertices, 500);
        assert!(el.edges.iter().all(|&(s, d)| s < 500 && d < 500 && s != d));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = PowerLawConfig {
            num_vertices: 300,
            edges_per_vertex: 4,
            seed: 9,
            ..Default::default()
        };
        assert_eq!(generate(&cfg).edges, generate(&cfg).edges);
    }

    #[test]
    fn in_degree_is_heavy_tailed() {
        let el = generate(&PowerLawConfig {
            num_vertices: 5_000,
            edges_per_vertex: 8,
            ..Default::default()
        });
        let mut indeg = vec![0usize; el.num_vertices as usize];
        for &(_, d) in &el.edges {
            indeg[d as usize] += 1;
        }
        let max = *indeg.iter().max().unwrap();
        let avg = indeg.iter().sum::<usize>() as f64 / indeg.len() as f64;
        // the most-followed "celebrity" should dominate the average by a wide margin
        assert!(max as f64 > 20.0 * avg, "max={max}, avg={avg:.2}");
    }

    #[test]
    fn average_out_degree_close_to_requested() {
        let el = generate(&PowerLawConfig {
            num_vertices: 2_000,
            edges_per_vertex: 10,
            ..Default::default()
        });
        let avg = el.num_edges() as f64 / el.num_vertices as f64;
        assert!(avg > 8.0 && avg <= 10.0, "avg out-degree {avg}");
    }

    #[test]
    fn twitter_preset_matches_paper_density() {
        let el = twitter_like(1_000, 3);
        let avg = el.num_edges() as f64 / el.num_vertices as f64;
        assert!(avg > 25.0 && avg <= 35.0, "avg out-degree {avg}");
    }
}
