//! The TigerGraph k-hop neighbourhood-count benchmark workload, as used in the
//! paper's evaluation (section III):
//!
//! * query: "count the distinct vertices reachable from a seed in exactly ≤ k
//!   hops" for k ∈ {1, 2, 3, 6};
//! * 300 seed vertices for k = 1 and k = 2, 10 seeds for k = 3 and k = 6;
//! * seeds are executed sequentially (single-request latency) and the average
//!   response time is reported.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Seed count used by the TigerGraph benchmark for k = 1 and k = 2.
pub const TIGERGRAPH_SEEDS_SMALL_K: usize = 300;
/// Seed count used by the TigerGraph benchmark for k = 3 and k = 6.
pub const TIGERGRAPH_SEEDS_LARGE_K: usize = 10;

/// How seeds are chosen from the vertex set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedSelection {
    /// Uniformly at random from all vertices (the TigerGraph benchmark draws
    /// random seed sets and publishes them; we re-draw deterministically).
    UniformRandom,
    /// Only vertices with at least one outgoing edge (avoids trivially empty
    /// neighbourhoods on sparse synthetic graphs).
    NonIsolated,
}

/// A k-hop benchmark workload: the hop count and the seed vertices to query.
#[derive(Debug, Clone)]
pub struct KhopWorkload {
    /// Number of hops (k).
    pub k: u32,
    /// Seed vertices, queried sequentially.
    pub seeds: Vec<u64>,
}

impl KhopWorkload {
    /// Build the workload for one value of `k` following the TigerGraph seed
    /// counts (300 seeds for k ≤ 2, 10 seeds for k ≥ 3), choosing seeds
    /// deterministically from `seed`.
    pub fn tigergraph(
        k: u32,
        num_vertices: u64,
        out_degrees: &[usize],
        selection: SeedSelection,
        seed: u64,
    ) -> Self {
        let count = if k <= 2 { TIGERGRAPH_SEEDS_SMALL_K } else { TIGERGRAPH_SEEDS_LARGE_K };
        Self::with_seed_count(k, num_vertices, out_degrees, selection, seed, count)
    }

    /// Build a workload with an explicit seed count (used by the scaled-down
    /// CI configurations).
    pub fn with_seed_count(
        k: u32,
        num_vertices: u64,
        out_degrees: &[usize],
        selection: SeedSelection,
        seed: u64,
        count: usize,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ (k as u64) << 32);
        let candidates: Vec<u64> = match selection {
            SeedSelection::UniformRandom => (0..num_vertices).collect(),
            SeedSelection::NonIsolated => (0..num_vertices)
                .filter(|&v| out_degrees.get(v as usize).copied().unwrap_or(0) > 0)
                .collect(),
        };
        assert!(!candidates.is_empty(), "no candidate seed vertices");
        let mut seeds: Vec<u64> =
            candidates.choose_multiple(&mut rng, count.min(candidates.len())).copied().collect();
        // If the graph has fewer candidates than requested seeds, cycle them so
        // the workload still issues `count` queries like the benchmark does.
        while seeds.len() < count {
            let extra = seeds[seeds.len() % candidates.len().max(1)];
            seeds.push(extra);
        }
        KhopWorkload { k, seeds }
    }

    /// The full TigerGraph benchmark: workloads for k = 1, 2, 3 and 6.
    pub fn full_suite(
        num_vertices: u64,
        out_degrees: &[usize],
        selection: SeedSelection,
        seed: u64,
    ) -> Vec<Self> {
        [1, 2, 3, 6]
            .into_iter()
            .map(|k| Self::tigergraph(k, num_vertices, out_degrees, selection, seed))
            .collect()
    }

    /// Number of queries in this workload.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// True if the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Render the openCypher query text RedisGraph receives for one seed, as in
    /// the TigerGraph benchmark's k-hop query. The seed is pinned with `id(s)`
    /// so the planner can use a `Node By Id Seek` instead of a full scan, the
    /// same access path the original benchmark relies on.
    pub fn cypher_query(&self, seed: u64) -> String {
        format!("MATCH (s:Node)-[*1..{}]->(t) WHERE id(s) = {} RETURN count(t)", self.k, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tigergraph_seed_counts_match_paper() {
        let deg = vec![1usize; 1000];
        assert_eq!(
            KhopWorkload::tigergraph(1, 1000, &deg, SeedSelection::UniformRandom, 1).len(),
            300
        );
        assert_eq!(
            KhopWorkload::tigergraph(2, 1000, &deg, SeedSelection::UniformRandom, 1).len(),
            300
        );
        assert_eq!(
            KhopWorkload::tigergraph(3, 1000, &deg, SeedSelection::UniformRandom, 1).len(),
            10
        );
        assert_eq!(
            KhopWorkload::tigergraph(6, 1000, &deg, SeedSelection::UniformRandom, 1).len(),
            10
        );
    }

    #[test]
    fn seeds_are_deterministic_and_in_range() {
        let deg = vec![1usize; 64];
        let a = KhopWorkload::tigergraph(2, 64, &deg, SeedSelection::UniformRandom, 5);
        let b = KhopWorkload::tigergraph(2, 64, &deg, SeedSelection::UniformRandom, 5);
        assert_eq!(a.seeds, b.seeds);
        assert!(a.seeds.iter().all(|&s| s < 64));
    }

    #[test]
    fn non_isolated_selection_skips_zero_degree_vertices() {
        let deg = vec![0usize, 3, 0, 2, 0, 1];
        let w = KhopWorkload::with_seed_count(1, 6, &deg, SeedSelection::NonIsolated, 1, 3);
        assert!(w.seeds.iter().all(|&s| deg[s as usize] > 0));
    }

    #[test]
    fn small_graphs_cycle_seeds_to_requested_count() {
        let deg = vec![1usize; 4];
        let w = KhopWorkload::with_seed_count(1, 4, &deg, SeedSelection::UniformRandom, 1, 10);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn full_suite_covers_all_hop_counts() {
        let deg = vec![1usize; 100];
        let suite = KhopWorkload::full_suite(100, &deg, SeedSelection::UniformRandom, 2);
        let ks: Vec<u32> = suite.iter().map(|w| w.k).collect();
        assert_eq!(ks, vec![1, 2, 3, 6]);
    }

    #[test]
    fn cypher_rendering_embeds_hop_count_and_seed() {
        let w = KhopWorkload { k: 3, seeds: vec![7] };
        let q = w.cypher_query(7);
        assert!(q.contains("*1..3"));
        assert!(q.contains("id(s) = 7"));
        assert!(q.contains("count(t)"));
    }
}
