//! Graph500 RMAT / Kronecker graph generator.
//!
//! The Graph500 benchmark defines its input graph as a stochastic Kronecker
//! graph: each edge is placed by recursively descending `scale` levels of a
//! 2×2 probability matrix `[[A, B], [C, D]]` with A=0.57, B=0.19, C=0.19,
//! D=0.05. The paper's "Graph500" dataset (2.4 M vertices, 67 M edges) is this
//! generator at scale ≈ 21 with edge factor 28; we default to a smaller scale
//! so the reproduction runs on a laptop, and the harness exposes `--scale` to
//! go bigger.

use crate::EdgeList;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the RMAT generator.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average number of generated edges per vertex (Graph500 uses 16; the
    /// TigerGraph benchmark's Graph500 instance has ≈ 28).
    pub edge_factor: u32,
    /// Kronecker probabilities (must sum to 1).
    pub a: f64,
    /// Probability of the upper-right quadrant.
    pub b: f64,
    /// Probability of the lower-left quadrant.
    pub c: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Perturbation noise applied to the quadrant probabilities at each level,
    /// as in the reference Graph500 implementation, to avoid exactly
    /// self-similar structure. 0.0 disables it.
    pub noise: f64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig { scale: 14, edge_factor: 16, a: 0.57, b: 0.19, c: 0.19, seed: 42, noise: 0.1 }
    }
}

impl RmatConfig {
    /// Number of vertices (`2^scale`).
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of edges the generator will emit.
    pub fn num_edges(&self) -> u64 {
        self.num_vertices() * self.edge_factor as u64
    }

    /// Probability of the lower-right quadrant.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generate an RMAT edge list.
///
/// Duplicate edges and self-loops are kept (as in the raw Graph500 kernel-1
/// output); the consuming engine deduplicates them when building its
/// adjacency structure.
pub fn generate(config: &RmatConfig) -> EdgeList {
    let n = config.num_vertices();
    let m = config.num_edges();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        edges.push(sample_edge(config, &mut rng));
    }
    EdgeList { num_vertices: n, edges }
}

/// Generate the paper's "Graph500" dataset shape at the given scale.
pub fn graph500(scale: u32, seed: u64) -> EdgeList {
    generate(&RmatConfig { scale, seed, edge_factor: 28, ..RmatConfig::default() })
}

fn sample_edge(config: &RmatConfig, rng: &mut StdRng) -> (u64, u64) {
    let mut src = 0u64;
    let mut dst = 0u64;
    let (mut a, mut b, mut c) = (config.a, config.b, config.c);
    for _ in 0..config.scale {
        let d = (1.0 - a - b - c).max(0.0);
        let r: f64 = rng.gen();
        src <<= 1;
        dst <<= 1;
        if r < a {
            // upper-left quadrant: no bits set
        } else if r < a + b {
            dst |= 1;
        } else if r < a + b + c {
            src |= 1;
        } else {
            let _ = d;
            src |= 1;
            dst |= 1;
        }
        if config.noise > 0.0 {
            // multiplicative noise, renormalised, as in the Graph500 reference code
            let perturb = |p: f64, rng: &mut StdRng| {
                p * (1.0 - config.noise / 2.0 + rng.gen::<f64>() * config.noise)
            };
            let (na, nb, nc, nd) = (
                perturb(a, rng),
                perturb(b, rng),
                perturb(c, rng),
                perturb((1.0 - a - b - c).max(0.0), rng),
            );
            let total = na + nb + nc + nd;
            a = na / total;
            b = nb / total;
            c = nc / total;
        }
    }
    (src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_respects_requested_sizes() {
        let cfg = RmatConfig { scale: 8, edge_factor: 4, ..RmatConfig::default() };
        let el = generate(&cfg);
        assert_eq!(el.num_vertices, 256);
        assert_eq!(el.num_edges(), 1024);
        assert!(el.edges.iter().all(|&(s, d)| s < 256 && d < 256));
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let cfg = RmatConfig { scale: 8, edge_factor: 4, seed: 7, ..RmatConfig::default() };
        assert_eq!(generate(&cfg).edges, generate(&cfg).edges);
        let other = RmatConfig { seed: 8, ..cfg };
        assert_ne!(generate(&cfg).edges, generate(&other).edges);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // RMAT graphs are heavy-tailed: the max out-degree should far exceed
        // the average.
        let cfg = RmatConfig { scale: 10, edge_factor: 16, noise: 0.0, ..RmatConfig::default() };
        let el = generate(&cfg);
        let degs = el.out_degrees();
        let max = *degs.iter().max().unwrap();
        let avg = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        assert!(max as f64 > 4.0 * avg, "expected a heavy tail: max={max}, avg={avg:.1}");
    }

    #[test]
    fn quadrant_probabilities_bias_low_ids() {
        // With A=0.57 the mass concentrates on low vertex ids: the first half
        // of id space should hold clearly more than half the edge endpoints.
        let cfg = RmatConfig { scale: 10, edge_factor: 8, noise: 0.0, ..RmatConfig::default() };
        let el = generate(&cfg);
        let half = el.num_vertices / 2;
        let low = el.edges.iter().filter(|&&(s, _)| s < half).count();
        assert!(low as f64 > 0.6 * el.num_edges() as f64);
    }

    #[test]
    fn graph500_preset_uses_edge_factor_28() {
        let el = graph500(6, 1);
        assert_eq!(el.num_vertices, 64);
        assert_eq!(el.num_edges(), 64 * 28);
    }
}
