//! Property tests comparing every `crates/algo` GraphBLAS algorithm against
//! its naive pointer-chasing oracle in `baseline::algorithms`, on random RMAT
//! (Graph500-shaped) graphs from `datagen`.
//!
//! BFS levels, WCC labels and triangle counts must match exactly; SSSP
//! distances and converged PageRank scores must agree to 1e-6.

use algo::PageRankConfig;
use graphblas::prelude::*;
use proptest::prelude::*;
use proptest::strategy::StrategyExt;

/// A random small RMAT graph: vertex count plus a deduplicated edge list.
/// Self-loops are kept — the raw generator emits them, and both sides must
/// agree on their semantics (a diagonal matrix entry).
fn rmat_graph() -> impl Strategy<Value = (u64, Vec<(u64, u64)>)> {
    ((4u32..7), (1u32..7), any::<u64>()).prop_map(|(scale, edge_factor, seed)| {
        let el = datagen::rmat::generate(&datagen::RmatConfig {
            scale,
            edge_factor,
            seed,
            ..datagen::RmatConfig::default()
        });
        let mut edges = el.edges.clone();
        edges.sort_unstable();
        edges.dedup();
        (el.num_vertices, edges)
    })
}

/// Boolean adjacency matrix of a cleaned edge list.
fn adjacency(num_vertices: u64, edges: &[(u64, u64)]) -> SparseMatrix<bool> {
    let triples: Vec<(u64, u64, bool)> = edges.iter().map(|&(s, d)| (s, d, true)).collect();
    SparseMatrix::from_triples(num_vertices, num_vertices, &triples).expect("in bounds")
}

/// Deterministic pseudo-random edge weight in `[1, 10]`, derived from the
/// endpoints so both sides see identical weights without sharing state.
fn weight(s: u64, d: u64) -> f64 {
    1.0 + ((s.wrapping_mul(31).wrapping_add(d.wrapping_mul(17))) % 10) as f64
}

proptest! {
    #[test]
    fn bfs_levels_match_queue_bfs(graph in rmat_graph(), source_pick in any::<u64>()) {
        let (n, edges) = graph;
        let adj = adjacency(n, &edges);
        let source = source_pick % n;
        let algebraic = algo::bfs_levels(&adj, source);
        let naive = baseline::algorithms::bfs_levels(n, &edges, source);
        for v in 0..n {
            let got = algebraic.extract_element(v).unwrap_or(-1);
            prop_assert_eq!(got, naive[v as usize], "level mismatch at vertex {}", v);
        }
    }

    #[test]
    fn sssp_matches_bellman_ford(graph in rmat_graph(), source_pick in any::<u64>()) {
        let (n, edges) = graph;
        let source = source_pick % n;
        let weighted: Vec<(u64, u64, f64)> =
            edges.iter().map(|&(s, d)| (s, d, weight(s, d))).collect();
        let triples: Vec<(u64, u64, f64)> = weighted.clone();
        let w = SparseMatrix::from_triples(n, n, &triples).expect("in bounds");
        let algebraic = algo::sssp(&w, source);
        let naive = baseline::algorithms::sssp(n, &weighted, source);
        for v in 0..n {
            let got = algebraic.extract_element(v).unwrap_or(f64::INFINITY);
            let want = naive[v as usize];
            if want.is_infinite() {
                prop_assert!(got.is_infinite(), "vertex {} should be unreachable", v);
            } else {
                prop_assert!((got - want).abs() < 1e-6, "distance mismatch at {}: {} vs {}", v, got, want);
            }
        }
    }

    #[test]
    fn pagerank_matches_dense_power_iteration(graph in rmat_graph()) {
        let (n, edges) = graph;
        let adj = adjacency(n, &edges);
        let nodes: Vec<u64> = (0..n).collect();
        let config = PageRankConfig::default();
        let algebraic = algo::pagerank(&adj, &nodes, &config);
        let (naive, _) = baseline::algorithms::pagerank(
            n,
            &edges,
            config.damping,
            config.max_iterations,
            config.tolerance,
        );
        prop_assert_eq!(algebraic.scores.len(), naive.len());
        for &(v, score) in &algebraic.scores {
            prop_assert!(
                (score - naive[v as usize]).abs() < 1e-6,
                "pagerank mismatch at {}: {} vs {}", v, score, naive[v as usize]
            );
        }
        let total: f64 = algebraic.scores.iter().map(|(_, s)| s).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "scores must sum to 1, got {}", total);
    }

    #[test]
    fn wcc_labels_match_union_find(graph in rmat_graph()) {
        let (n, edges) = graph;
        let adj = adjacency(n, &edges);
        let nodes: Vec<u64> = (0..n).collect();
        let algebraic = algo::wcc(&adj, &nodes);
        let naive = baseline::algorithms::wcc(n, &edges);
        for (v, label) in algebraic {
            prop_assert_eq!(label, naive[v as usize], "component mismatch at vertex {}", v);
        }
    }

    #[test]
    fn triangle_counts_match_adjacency_intersection(graph in rmat_graph()) {
        let (n, edges) = graph;
        let adj = adjacency(n, &edges);
        prop_assert_eq!(
            algo::triangle_count(&adj),
            baseline::algorithms::triangle_count(n, &edges)
        );
    }
}
