//! PageRank as a damped power iteration: one `PLUS_TIMES` `vxm` per round
//! against the column-stochastic transition matrix, plus element-wise
//! teleport/dangling correction (LAGraph `LAGr_PageRank`).

use graphblas::prelude::*;
use graphblas::Index;

/// Tuning knobs for [`pagerank`].
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor `d` (probability of following an edge).
    pub damping: f64,
    /// Hard cap on power-iteration rounds.
    pub max_iterations: u32,
    /// Convergence threshold on the L1 norm of the score delta.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig { damping: 0.85, max_iterations: 100, tolerance: 1e-9 }
    }
}

/// The result of a [`pagerank`] run.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// `(vertex, score)` pairs, one per input vertex, in input order. Scores
    /// sum to 1.
    pub scores: Vec<(Index, f64)>,
    /// Power-iteration rounds actually executed.
    pub iterations: u32,
}

/// Damped PageRank over the directed graph `adj`, restricted to the vertex
/// set `nodes` (the matrix dimension is usually much larger than the number
/// of live vertices; every stored edge must connect vertices in `nodes`).
///
/// Dangling vertices (no out-edges) redistribute their mass uniformly, so the
/// scores form a probability distribution at every step.
///
/// # Panics
/// Panics if `adj` has pending updates or a vertex id is out of bounds.
pub fn pagerank(
    adj: &SparseMatrix<bool>,
    nodes: &[Index],
    config: &PageRankConfig,
) -> PageRankResult {
    let n = nodes.len();
    if n == 0 {
        return PageRankResult { scores: Vec::new(), iterations: 0 };
    }
    let nf = n as f64;
    let d = config.damping;

    // Column-stochastic transition matrix W[u][v] = 1 / outdeg(u).
    let mut triples = Vec::with_capacity(adj.nvals());
    let mut dangling_nodes = Vec::new();
    for &u in nodes {
        let deg = adj.row_degree(u);
        if deg == 0 {
            dangling_nodes.push(u);
            continue;
        }
        let (cols, _) = adj.row(u);
        let w = 1.0 / deg as f64;
        triples.extend(cols.iter().map(|&v| (u, v, w)));
    }
    let transition = SparseMatrix::from_triples(adj.nrows(), adj.ncols(), &triples)
        .expect("triples are in bounds");

    let semiring = Semiring::<f64>::plus_times();
    let desc = Descriptor::default();

    let entries: Vec<(Index, f64)> = nodes.iter().map(|&v| (v, 1.0 / nf)).collect();
    let mut rank = SparseVector::from_entries(adj.nrows(), &entries).expect("in bounds");

    let mut iterations = 0;
    for _ in 0..config.max_iterations {
        iterations += 1;
        let contrib = vxm(&rank, &transition, &semiring, None, &desc);
        let dangling_mass: f64 =
            dangling_nodes.iter().map(|&u| rank.extract_element(u).unwrap_or(0.0)).sum();
        let teleport = (1.0 - d) / nf + d * dangling_mass / nf;

        let mut delta = 0.0;
        let next_entries: Vec<(Index, f64)> = nodes
            .iter()
            .map(|&v| {
                let score = teleport + d * contrib.extract_element(v).unwrap_or(0.0);
                delta += (score - rank.extract_element(v).unwrap_or(0.0)).abs();
                (v, score)
            })
            .collect();
        rank = SparseVector::from_entries(adj.nrows(), &next_entries).expect("in bounds");
        if delta < config.tolerance {
            break;
        }
    }

    let scores = nodes.iter().map(|&v| (v, rank.extract_element(v).unwrap_or(0.0))).collect();
    PageRankResult { scores, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(dim: u64, edges: &[(u64, u64)], n: u64) -> PageRankResult {
        let triples: Vec<(u64, u64, bool)> = edges.iter().map(|&(s, t)| (s, t, true)).collect();
        let adj = SparseMatrix::from_triples(dim, dim, &triples).unwrap();
        let nodes: Vec<u64> = (0..n).collect();
        pagerank(&adj, &nodes, &PageRankConfig::default())
    }

    #[test]
    fn scores_sum_to_one() {
        let r = run(8, &[(0, 1), (1, 2), (2, 0), (3, 0), (4, 0)], 5);
        let total: f64 = r.scores.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
        assert!(r.iterations > 1);
    }

    #[test]
    fn hub_outranks_spokes() {
        // 1..=4 all point at 0.
        let r = run(8, &[(1, 0), (2, 0), (3, 0), (4, 0)], 5);
        let score = |v: u64| r.scores.iter().find(|(i, _)| *i == v).unwrap().1;
        assert!(score(0) > score(1));
        assert!((score(1) - score(4)).abs() < 1e-12);
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let r = run(4, &[(0, 1), (1, 2), (2, 0)], 3);
        for (_, s) in &r.scores {
            assert!((s - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_graph_yields_no_scores() {
        let r = run(4, &[], 0);
        assert!(r.scores.is_empty());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn dangling_mass_is_redistributed() {
        // 0→1, 1 is dangling: scores must still sum to 1.
        let r = run(4, &[(0, 1)], 2);
        let total: f64 = r.scores.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
