//! Triangle counting with the "Sandia" masked-SpGEMM formulation:
//! `ntri = Σ (L ⊙ (L ·(+,pair) Lᵀ))` where `L` is the strictly lower triangle
//! of the symmetrised, loop-free adjacency matrix.

use graphblas::prelude::*;

/// Number of undirected triangles in `adj`, counting each triangle once.
/// Edge direction, parallel edges (one stored entry per pair) and self-loops
/// are all ignored, as in LAGraph's `LAGr_TriangleCount`.
///
/// # Panics
/// Panics if `adj` has pending updates.
pub fn triangle_count(adj: &SparseMatrix<bool>) -> u64 {
    // Undirected, loop-free structure.
    let sym = ewise_add_matrix(adj, &transpose(adj), &BinaryOp::LOr);
    let sym = select_matrix(&sym, &SelectOp::OffDiag);
    let lower = select_matrix(&sym, &SelectOp::StrictLower);

    // The mask is the bool pattern; the operand carries u64 so PLUS_PAIR can
    // count matched wedges.
    let lower_triples: Vec<(u64, u64, u64)> = lower.iter().map(|(r, c, _)| (r, c, 1u64)).collect();
    let l = SparseMatrix::from_triples(lower.nrows(), lower.ncols(), &lower_triples)
        .expect("in bounds");

    // C⟨L⟩ = L ·(+,pair) Lᵀ: C[i][j] counts the common lower neighbours of i
    // and j, evaluated only on positions where the edge (i, j) exists — each
    // triangle {k < j < i} is counted exactly once, at entry (i, j).
    let mask = MatrixMask::new(&lower);
    let desc = Descriptor::new().with_transpose_b().with_mask_structure();
    let wedges = mxm(&l, &l, &Semiring::<u64>::plus_pair(), Some(&mask), &desc);
    reduce_matrix_to_scalar(&wedges, &graphblas::monoid::plus_monoid())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(dim: u64, edges: &[(u64, u64)]) -> u64 {
        let triples: Vec<(u64, u64, bool)> = edges.iter().map(|&(s, t)| (s, t, true)).collect();
        triangle_count(&SparseMatrix::from_triples(dim, dim, &triples).unwrap())
    }

    #[test]
    fn single_triangle() {
        assert_eq!(count(3, &[(0, 1), (1, 2), (2, 0)]), 1);
    }

    #[test]
    fn direction_and_reciprocal_edges_do_not_double_count() {
        // Same triangle with every edge also stored reversed.
        assert_eq!(count(3, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)]), 1);
    }

    #[test]
    fn k4_has_four_triangles() {
        let edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        assert_eq!(count(4, &edges), 4);
    }

    #[test]
    fn trees_and_cycles_without_chords_have_none() {
        assert_eq!(count(4, &[(0, 1), (0, 2), (0, 3)]), 0);
        assert_eq!(count(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]), 0);
    }

    #[test]
    fn self_loops_are_ignored() {
        assert_eq!(count(3, &[(0, 0), (0, 1), (1, 2), (2, 0)]), 1);
    }
}
