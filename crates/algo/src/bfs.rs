//! Breadth-first search levels via level-synchronous masked `vxm` — the
//! canonical GraphBLAS algorithm (LAGraph `LAGr_BreadthFirstSearch`).

use graphblas::prelude::*;
use graphblas::Index;

/// Hop distance of every reachable vertex from `source` following directed
/// edges of `adj`. The source gets level `0`; vertices the BFS never reaches
/// have no entry in the returned vector.
///
/// Each round is one `vxm` over the `LOR_LAND` boolean semiring with the
/// visited set as a complemented structural mask, so a vertex is assigned the
/// level of the *first* frontier that touches it.
///
/// # Panics
/// Panics if `source >= adj.nrows()` or if `adj` has pending updates.
pub fn bfs_levels(adj: &SparseMatrix<bool>, source: Index) -> SparseVector<i64> {
    let semiring = Semiring::lor_land();
    let desc = Descriptor::new().with_mask_complement().with_mask_structure();

    let mut levels = SparseVector::<i64>::new(adj.nrows());
    levels.set_element(source, 0);
    let mut visited = SparseVector::<bool>::new(adj.nrows());
    visited.set_element(source, true);
    let mut frontier = visited.clone();

    let mut level = 0i64;
    while !frontier.is_empty() {
        level += 1;
        let mask = VectorMask::new(&visited);
        let next = vxm(&frontier, adj, &semiring, Some(&mask), &desc);
        for (i, _) in next.iter() {
            levels.set_element(i, level);
        }
        visited = ewise_add_vector(&visited, &next, &BinaryOp::LOr);
        frontier = next;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> SparseMatrix<bool> {
        // 0→1, 0→2, 1→3, 2→3, 3→4; vertex 5 isolated
        SparseMatrix::from_triples(
            6,
            6,
            &[(0, 1, true), (0, 2, true), (1, 3, true), (2, 3, true), (3, 4, true)],
        )
        .unwrap()
    }

    #[test]
    fn levels_match_hop_distances() {
        let levels = bfs_levels(&diamond(), 0);
        assert_eq!(levels.extract_element(0), Some(0));
        assert_eq!(levels.extract_element(1), Some(1));
        assert_eq!(levels.extract_element(2), Some(1));
        assert_eq!(levels.extract_element(3), Some(2));
        assert_eq!(levels.extract_element(4), Some(3));
        assert_eq!(levels.extract_element(5), None);
    }

    #[test]
    fn bfs_from_a_sink_reaches_only_itself() {
        let levels = bfs_levels(&diamond(), 4);
        assert_eq!(levels.nvals(), 1);
        assert_eq!(levels.extract_element(4), Some(0));
    }

    #[test]
    fn shortcut_edges_produce_the_shorter_level() {
        let adj =
            SparseMatrix::from_triples(4, 4, &[(0, 1, true), (1, 2, true), (0, 2, true)]).unwrap();
        let levels = bfs_levels(&adj, 0);
        assert_eq!(levels.extract_element(2), Some(1));
    }

    #[test]
    fn cycles_terminate() {
        let adj =
            SparseMatrix::from_triples(3, 3, &[(0, 1, true), (1, 2, true), (2, 0, true)]).unwrap();
        let levels = bfs_levels(&adj, 0);
        assert_eq!(levels.extract_element(0), Some(0));
        assert_eq!(levels.extract_element(1), Some(1));
        assert_eq!(levels.extract_element(2), Some(2));
    }
}
