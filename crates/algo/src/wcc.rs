//! Weakly connected components by min-label propagation: every vertex starts
//! with its own id and repeatedly adopts the smallest label among its
//! neighbours (both edge directions), one `MIN_FIRST` `vxm` per round.

use graphblas::prelude::*;
use graphblas::Index;

/// Component labels for the vertex set `nodes` of the directed graph `adj`,
/// ignoring edge direction. Each vertex is labelled with the smallest vertex
/// id of its weakly connected component, so labels are canonical: two
/// vertices are connected iff their labels are equal.
///
/// # Panics
/// Panics if `adj` has pending updates or a vertex id is out of bounds.
pub fn wcc(adj: &SparseMatrix<bool>, nodes: &[Index]) -> Vec<(Index, Index)> {
    wcc_with_iterations(adj, nodes).0
}

/// [`wcc`] plus the number of propagation rounds executed (including the
/// final round that detected the fixpoint).
pub fn wcc_with_iterations(
    adj: &SparseMatrix<bool>,
    nodes: &[Index],
) -> (Vec<(Index, Index)>, u32) {
    // Symmetrise the structure into a u64 matrix so the FIRST multiply can
    // carry the propagated label through the product.
    let mut triples = Vec::with_capacity(2 * adj.nvals());
    for (u, v, _) in adj.iter() {
        triples.push((u, v, 1u64));
        triples.push((v, u, 1u64));
    }
    let sym = SparseMatrix::from_triples_dup(adj.nrows(), adj.ncols(), &triples, |a, _| a)
        .expect("in bounds");

    let min_first =
        Semiring::new(graphblas::monoid::min_monoid(u64::MAX), BinaryOp::First, "min_first");
    let desc = Descriptor::default();

    let entries: Vec<(Index, u64)> = nodes.iter().map(|&v| (v, v)).collect();
    let mut labels = SparseVector::from_entries(adj.nrows(), &entries).expect("in bounds");

    let mut iterations = 0;
    loop {
        iterations += 1;
        let propagated = vxm(&labels, &sym, &min_first, None, &desc);
        let next = ewise_add_vector(&labels, &propagated, &BinaryOp::Min);
        if next == labels {
            break;
        }
        labels = next;
    }
    (nodes.iter().map(|&v| (v, labels.extract_element(v).unwrap_or(v))).collect(), iterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(dim: u64, edges: &[(u64, u64)], n: u64) -> Vec<(u64, u64)> {
        let triples: Vec<(u64, u64, bool)> = edges.iter().map(|&(s, t)| (s, t, true)).collect();
        let adj = SparseMatrix::from_triples(dim, dim, &triples).unwrap();
        let nodes: Vec<u64> = (0..n).collect();
        wcc(&adj, &nodes)
    }

    #[test]
    fn two_components_get_two_labels() {
        // {0,1,2} chained, {3,4} chained, 5 isolated
        let l = labels(8, &[(0, 1), (1, 2), (3, 4)], 6);
        assert_eq!(l, vec![(0, 0), (1, 0), (2, 0), (3, 3), (4, 3), (5, 5)]);
    }

    #[test]
    fn direction_is_ignored() {
        // 0→1 and 2→1: all three are weakly connected.
        let l = labels(4, &[(0, 1), (2, 1)], 3);
        assert!(l.iter().all(|&(_, c)| c == 0));
    }

    #[test]
    fn long_path_converges() {
        let edges: Vec<(u64, u64)> = (0..9).map(|i| (i, i + 1)).collect();
        let l = labels(10, &edges, 10);
        assert!(l.iter().all(|&(_, c)| c == 0));
    }

    #[test]
    fn empty_node_set() {
        assert!(labels(4, &[], 0).is_empty());
    }
}
