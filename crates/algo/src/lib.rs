//! # algo
//!
//! LAGraph-style whole-graph algorithms expressed purely in terms of the
//! [`graphblas`] crate's primitives — the "analytics on the same matrix
//! substrate" half of the paper's story. Each algorithm is one semiring choice
//! away from the traversal machinery the query engine already uses:
//!
//! | Algorithm | Kernel | Semiring |
//! |---|---|---|
//! | [`bfs_levels`] | masked `vxm`, level-synchronous | `LOR_LAND` over `bool` |
//! | [`sssp`] | Bellman–Ford rounds of `vxm` | `MIN_PLUS` over `f64` |
//! | [`pagerank`] | damped power iteration via `vxm` + `ewise` | `PLUS_TIMES` over `f64` |
//! | [`wcc`] | min-label propagation | `MIN_FIRST` over `u64` |
//! | [`triangle_count`] | masked `mxm` + `reduce` | `PLUS_PAIR` over `u64` |
//!
//! Inputs are plain adjacency matrices (`SparseMatrix<bool>` for structure,
//! `SparseMatrix<f64>` for weights), so the crate depends only on
//! `graphblas`; `redisgraph-core` exposes these functions to Cypher as
//! `CALL algo.*` procedures.
//!
//! ```
//! use graphblas::prelude::*;
//!
//! // Directed path 0→1→2 plus a chord 0→2.
//! let adj = SparseMatrix::from_triples(
//!     4,
//!     4,
//!     &[(0, 1, true), (1, 2, true), (0, 2, true)],
//! )
//! .unwrap();
//! let levels = algo::bfs_levels(&adj, 0);
//! assert_eq!(levels.extract_element(2), Some(1)); // the chord wins
//! assert_eq!(levels.extract_element(3), None); // unreachable
//! ```

pub mod bfs;
pub mod pagerank;
pub mod sssp;
pub mod triangles;
pub mod wcc;

pub use bfs::bfs_levels;
pub use pagerank::{pagerank, PageRankConfig, PageRankResult};
pub use sssp::{sssp, sssp_with_iterations};
pub use triangles::triangle_count;
pub use wcc::{wcc, wcc_with_iterations};
