//! Single-source shortest paths as Bellman–Ford rounds over the `MIN_PLUS`
//! (tropical) semiring — LAGraph's `LAGr_SingleSourceShortestPath` shape.

use graphblas::prelude::*;
use graphblas::Index;

/// Shortest-path distances from `source` over a weighted adjacency matrix
/// (`weights[u][v]` = cost of edge `u→v`; absent entry = no edge). Vertices
/// that are unreachable have no entry in the result.
///
/// Each round relaxes every edge once: `d ← d min (d min.+ W)`. The iteration
/// stops at a fixpoint, which a graph with non-negative weights reaches after
/// at most |V| − 1 rounds; the loop is additionally capped at `nrows` rounds
/// so negative cycles cannot hang it.
///
/// # Panics
/// Panics if `source >= weights.nrows()` or if `weights` has pending updates.
pub fn sssp(weights: &SparseMatrix<f64>, source: Index) -> SparseVector<f64> {
    sssp_with_iterations(weights, source).0
}

/// [`sssp`] plus the number of Bellman–Ford relaxation rounds executed
/// (including the final round that detected the fixpoint).
pub fn sssp_with_iterations(
    weights: &SparseMatrix<f64>,
    source: Index,
) -> (SparseVector<f64>, u32) {
    let semiring = Semiring::min_plus(f64::INFINITY);
    let desc = Descriptor::default();

    let mut dist = SparseVector::<f64>::new(weights.nrows());
    dist.set_element(source, 0.0);

    let mut iterations = 0;
    for _ in 0..weights.nrows().max(1) {
        iterations += 1;
        let relaxed = vxm(&dist, weights, &semiring, None, &desc);
        let next = ewise_add_vector(&dist, &relaxed, &BinaryOp::Min);
        if next == dist {
            break;
        }
        dist = next;
    }
    (dist, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted() -> SparseMatrix<f64> {
        // 0→1 (1), 1→2 (1), 0→2 (5): the two-hop path beats the direct edge.
        SparseMatrix::from_triples(4, 4, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]).unwrap()
    }

    #[test]
    fn multi_hop_path_beats_heavier_direct_edge() {
        let dist = sssp(&weighted(), 0);
        assert_eq!(dist.extract_element(0), Some(0.0));
        assert_eq!(dist.extract_element(1), Some(1.0));
        assert_eq!(dist.extract_element(2), Some(2.0));
        assert_eq!(dist.extract_element(3), None);
    }

    #[test]
    fn unit_weights_reduce_to_bfs_distance() {
        let w =
            SparseMatrix::from_triples(5, 5, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)])
                .unwrap();
        let dist = sssp(&w, 0);
        assert_eq!(dist.extract_element(3), Some(1.0));
        assert_eq!(dist.extract_element(2), Some(2.0));
    }

    #[test]
    fn cycle_converges_to_fixpoint() {
        let w = SparseMatrix::from_triples(3, 3, &[(0, 1, 2.0), (1, 2, 2.0), (2, 0, 2.0)]).unwrap();
        let dist = sssp(&w, 0);
        assert_eq!(dist.extract_element(0), Some(0.0));
        assert_eq!(dist.extract_element(1), Some(2.0));
        assert_eq!(dist.extract_element(2), Some(4.0));
    }
}
