//! # baseline
//!
//! The comparison side of the paper's evaluation.
//!
//! * [`engine`] — a conventional **adjacency-list, pointer-chasing** graph
//!   database engine with per-node property storage and a BFS k-hop
//!   implementation. This is the architectural stand-in for the traversal-style
//!   databases the TigerGraph benchmark measured (Neo4j, JanusGraph, ArangoDB,
//!   Neptune): every hop dereferences per-node neighbour lists instead of
//!   operating on sparse matrices.
//! * [`literature`] — the published average 1-hop response times from the
//!   TigerGraph benchmark report that Fig. 1 of the paper plots for the
//!   databases we cannot run here. They are carried as constants so the
//!   figure harness can print the same comparison rows.
//! * [`algorithms`] — naive reference implementations (queue BFS, edge-list
//!   Bellman–Ford, dense power iteration, union–find, adjacency-intersection
//!   triangle counting) used as oracles by `crates/algo`'s property tests.

pub mod algorithms;
pub mod engine;
pub mod literature;

pub use engine::AdjacencyListGraph;
pub use literature::{literature_response_times, LiteratureEntry};
