//! Naive pointer-chasing reference implementations of the graph algorithms
//! that `crates/algo` expresses as GraphBLAS linear algebra. These are the
//! oracle side of the algorithm property tests: queue-based BFS, edge-list
//! Bellman–Ford, dense power iteration, union–find, and sorted-adjacency
//! triangle enumeration — no matrices anywhere.
//!
//! All functions take a plain edge list (`(src, dst)` pairs over vertices
//! `0..num_vertices`); duplicate edges collapse to one stored edge, exactly
//! as an adjacency matrix stores one entry per pair. Self-loops are kept as
//! ordinary edges (a diagonal matrix entry), except by [`triangle_count`],
//! which ignores them on both sides.

use std::collections::VecDeque;

/// Deduplicated out-adjacency lists (self-loops kept, like diagonal matrix
/// entries) — the shape the matrix engine effectively stores.
fn out_lists(num_vertices: u64, edges: &[(u64, u64)]) -> Vec<Vec<u64>> {
    let mut adj = vec![Vec::new(); num_vertices as usize];
    let mut clean: Vec<(u64, u64)> =
        edges.iter().copied().filter(|&(s, d)| s < num_vertices && d < num_vertices).collect();
    clean.sort_unstable();
    clean.dedup();
    for (s, d) in clean {
        adj[s as usize].push(d);
    }
    adj
}

/// BFS hop distance from `source` following directed edges; `-1` marks
/// unreachable vertices (the matrix-side result has no entry there).
pub fn bfs_levels(num_vertices: u64, edges: &[(u64, u64)], source: u64) -> Vec<i64> {
    let adj = out_lists(num_vertices, edges);
    let mut levels = vec![-1i64; num_vertices as usize];
    if source >= num_vertices {
        return levels;
    }
    levels[source as usize] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u as usize] {
            if levels[v as usize] < 0 {
                levels[v as usize] = levels[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    levels
}

/// Bellman–Ford shortest-path distances from `source` over a weighted,
/// directed edge list; `f64::INFINITY` marks unreachable vertices. Parallel
/// edges keep the cheapest weight, matching how a weight matrix stores one
/// entry per vertex pair.
pub fn sssp(num_vertices: u64, edges: &[(u64, u64, f64)], source: u64) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; num_vertices as usize];
    if source >= num_vertices {
        return dist;
    }
    dist[source as usize] = 0.0;
    for _ in 0..num_vertices.max(1) {
        let mut changed = false;
        for &(u, v, w) in edges {
            if u >= num_vertices || v >= num_vertices {
                continue;
            }
            let candidate = dist[u as usize] + w;
            if candidate < dist[v as usize] {
                dist[v as usize] = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

/// Damped PageRank by dense synchronous power iteration, with dangling mass
/// redistributed uniformly — the same iteration scheme (and the same
/// self-loop-counts-as-an-out-edge semantics) as `algo::pagerank`, so
/// converged scores agree to floating-point noise.
/// Returns the per-vertex scores and the number of rounds executed.
pub fn pagerank(
    num_vertices: u64,
    edges: &[(u64, u64)],
    damping: f64,
    max_iterations: u32,
    tolerance: f64,
) -> (Vec<f64>, u32) {
    let n = num_vertices as usize;
    if n == 0 {
        return (Vec::new(), 0);
    }
    let adj = out_lists(num_vertices, edges);
    let nf = n as f64;
    let mut rank = vec![1.0 / nf; n];
    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        let mut contrib = vec![0.0f64; n];
        let mut dangling_mass = 0.0;
        for (u, outs) in adj.iter().enumerate() {
            if outs.is_empty() {
                dangling_mass += rank[u];
                continue;
            }
            let share = rank[u] / outs.len() as f64;
            for &v in outs {
                contrib[v as usize] += share;
            }
        }
        let teleport = (1.0 - damping) / nf + damping * dangling_mass / nf;
        let mut delta = 0.0;
        let next: Vec<f64> = contrib
            .iter()
            .zip(rank.iter())
            .map(|(&c, &old)| {
                let score = teleport + damping * c;
                delta += (score - old).abs();
                score
            })
            .collect();
        rank = next;
        if delta < tolerance {
            break;
        }
    }
    (rank, iterations)
}

/// Weakly connected component labels by union–find, ignoring edge direction.
/// Each vertex is labelled with the smallest vertex id in its component —
/// the same canonical labelling `algo::wcc`'s min-propagation converges to.
pub fn wcc(num_vertices: u64, edges: &[(u64, u64)]) -> Vec<u64> {
    let n = num_vertices as usize;
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(u, v) in edges {
        if u >= num_vertices || v >= num_vertices {
            continue;
        }
        let (ru, rv) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
        // Union by value so the root is always the smallest id.
        if ru < rv {
            parent[rv] = ru;
        } else {
            parent[ru] = rv;
        }
    }
    (0..n).map(|v| find(&mut parent, v) as u64).collect()
}

/// Undirected triangle count by sorted-adjacency intersection: for every
/// undirected edge `(u, v)` with `u < v`, count the common neighbours `w > v`
/// so each triangle `u < v < w` is found exactly once.
pub fn triangle_count(num_vertices: u64, edges: &[(u64, u64)]) -> u64 {
    let mut und: Vec<Vec<u64>> = vec![Vec::new(); num_vertices as usize];
    let mut clean: Vec<(u64, u64)> = edges
        .iter()
        .copied()
        .filter(|&(s, d)| s != d && s < num_vertices && d < num_vertices)
        .map(|(s, d)| (s.min(d), s.max(d)))
        .collect();
    clean.sort_unstable();
    clean.dedup();
    for &(u, v) in &clean {
        und[u as usize].push(v);
        und[v as usize].push(u);
    }
    for list in &mut und {
        list.sort_unstable();
    }
    let mut triangles = 0u64;
    for &(u, v) in &clean {
        let (mut i, mut j) = (0usize, 0usize);
        let (nu, nv) = (&und[u as usize], &und[v as usize]);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if nu[i] > v {
                        triangles += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    triangles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_levels_on_a_diamond() {
        let levels = bfs_levels(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)], 0);
        assert_eq!(levels, vec![0, 1, 1, 2, 3, -1]);
    }

    #[test]
    fn sssp_prefers_cheaper_paths() {
        let dist = sssp(4, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)], 0);
        assert_eq!(dist[2], 2.0);
        assert!(dist[3].is_infinite());
    }

    #[test]
    fn pagerank_hub_dominates() {
        let (scores, iters) = pagerank(5, &[(1, 0), (2, 0), (3, 0), (4, 0)], 0.85, 100, 1e-9);
        assert!(scores[0] > scores[1]);
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(iters > 0);
    }

    #[test]
    fn wcc_labels_are_component_minima() {
        assert_eq!(wcc(6, &[(0, 1), (1, 2), (4, 3)]), vec![0, 0, 0, 3, 3, 5]);
    }

    #[test]
    fn triangle_count_ignores_direction_and_duplicates() {
        assert_eq!(triangle_count(3, &[(0, 1), (1, 0), (1, 2), (2, 0)]), 1);
        let k4 = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        assert_eq!(triangle_count(4, &k4), 4);
        assert_eq!(triangle_count(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]), 0);
    }
}
