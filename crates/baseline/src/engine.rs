//! A conventional adjacency-list graph engine (the "other graph databases"
//! architecture in the paper's comparison).
//!
//! Nodes keep explicit `Vec` neighbour lists (out- and in-edges) and a property
//! map; traversal is pointer chasing over those lists, and k-hop neighbourhood
//! counting is a queue-based BFS with a visited bitmap. Unlike the RedisGraph
//! core there is no sparse-matrix representation and no linear algebra — this
//! is exactly the design the paper positions RedisGraph against.

use std::collections::HashMap;
use std::collections::VecDeque;

/// A property value stored on nodes of the baseline engine.
pub type PropValue = i64;

/// One node record: neighbour lists plus properties.
#[derive(Debug, Clone, Default)]
struct NodeRecord {
    out_edges: Vec<u64>,
    in_edges: Vec<u64>,
    properties: HashMap<String, PropValue>,
}

/// An adjacency-list, pointer-chasing property graph.
#[derive(Debug, Clone, Default)]
pub struct AdjacencyListGraph {
    nodes: Vec<NodeRecord>,
    edge_count: usize,
}

impl AdjacencyListGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a graph from a generated edge list (same interchange format the
    /// RedisGraph core loads, so both engines see identical graphs).
    /// Duplicate edges and self-loops are dropped.
    pub fn from_edge_list(num_vertices: u64, edges: &[(u64, u64)]) -> Self {
        let mut g = AdjacencyListGraph {
            nodes: vec![NodeRecord::default(); num_vertices as usize],
            edge_count: 0,
        };
        let mut dedup: Vec<(u64, u64)> = edges
            .iter()
            .copied()
            .filter(|&(s, d)| s != d && s < num_vertices && d < num_vertices)
            .collect();
        dedup.sort_unstable();
        dedup.dedup();
        for (s, d) in dedup {
            g.nodes[s as usize].out_edges.push(d);
            g.nodes[d as usize].in_edges.push(s);
            g.edge_count += 1;
        }
        for (id, node) in g.nodes.iter_mut().enumerate() {
            node.properties.insert("id".to_string(), id as i64);
        }
        g
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (deduplicated) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self) -> u64 {
        self.nodes.push(NodeRecord::default());
        (self.nodes.len() - 1) as u64
    }

    /// Add a directed edge between existing nodes.
    pub fn add_edge(&mut self, src: u64, dst: u64) {
        self.nodes[src as usize].out_edges.push(dst);
        self.nodes[dst as usize].in_edges.push(src);
        self.edge_count += 1;
    }

    /// Set a node property.
    pub fn set_property(&mut self, node: u64, key: &str, value: PropValue) {
        self.nodes[node as usize].properties.insert(key.to_string(), value);
    }

    /// Read a node property.
    pub fn property(&self, node: u64, key: &str) -> Option<PropValue> {
        self.nodes.get(node as usize)?.properties.get(key).copied()
    }

    /// Out-neighbours of a node.
    pub fn out_neighbors(&self, node: u64) -> &[u64] {
        &self.nodes[node as usize].out_edges
    }

    /// In-neighbours of a node.
    pub fn in_neighbors(&self, node: u64) -> &[u64] {
        &self.nodes[node as usize].in_edges
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, node: u64) -> usize {
        self.nodes[node as usize].out_edges.len()
    }

    /// Count the distinct vertices reachable from `source` within `k` hops
    /// following outgoing edges — the TigerGraph k-hop benchmark query,
    /// implemented the way a traversal engine implements it: queue-based BFS
    /// with a visited bitmap, dereferencing per-node adjacency lists.
    pub fn khop_count(&self, source: u64, k: u32) -> u64 {
        if (source as usize) >= self.nodes.len() {
            return 0;
        }
        let mut visited = vec![false; self.nodes.len()];
        visited[source as usize] = true;
        let mut queue: VecDeque<(u64, u32)> = VecDeque::new();
        queue.push_back((source, 0));
        let mut reached = 0u64;
        while let Some((node, depth)) = queue.pop_front() {
            if depth == k {
                continue;
            }
            for &next in &self.nodes[node as usize].out_edges {
                if !visited[next as usize] {
                    visited[next as usize] = true;
                    reached += 1;
                    queue.push_back((next, depth + 1));
                }
            }
        }
        reached
    }

    /// The full set of vertices reachable within `k` hops (used by tests to
    /// cross-check against the matrix engine).
    pub fn khop_set(&self, source: u64, k: u32) -> Vec<u64> {
        let mut visited = vec![false; self.nodes.len()];
        visited[source as usize] = true;
        let mut queue: VecDeque<(u64, u32)> = VecDeque::new();
        queue.push_back((source, 0));
        let mut out = Vec::new();
        while let Some((node, depth)) = queue.pop_front() {
            if depth == k {
                continue;
            }
            for &next in &self.nodes[node as usize].out_edges {
                if !visited[next as usize] {
                    visited[next as usize] = true;
                    out.push(next);
                    queue.push_back((next, depth + 1));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Find the node whose `id` property equals `value` by scanning — the
    /// un-indexed lookup a property filter costs in a traversal engine.
    pub fn find_by_property(&self, key: &str, value: PropValue) -> Option<u64> {
        self.nodes.iter().position(|n| n.properties.get(key) == Some(&value)).map(|i| i as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> AdjacencyListGraph {
        // 0→1, 0→2, 1→3, 2→3, 3→4
        AdjacencyListGraph::from_edge_list(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
    }

    #[test]
    fn builds_from_edge_list_with_dedup() {
        let g = AdjacencyListGraph::from_edge_list(3, &[(0, 1), (0, 1), (1, 1), (1, 2)]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.in_neighbors(2), &[1]);
    }

    #[test]
    fn khop_counts_match_hand_computation() {
        let g = diamond();
        assert_eq!(g.khop_count(0, 1), 2); // {1,2}
        assert_eq!(g.khop_count(0, 2), 3); // {1,2,3}
        assert_eq!(g.khop_count(0, 3), 4); // {1,2,3,4}
        assert_eq!(g.khop_count(0, 6), 4);
        assert_eq!(g.khop_count(4, 3), 0);
        assert_eq!(g.khop_count(99, 1), 0);
    }

    #[test]
    fn khop_set_is_sorted_and_distinct() {
        let g = diamond();
        assert_eq!(g.khop_set(0, 2), vec![1, 2, 3]);
    }

    #[test]
    fn properties_and_lookup() {
        let mut g = diamond();
        assert_eq!(g.property(3, "id"), Some(3));
        g.set_property(3, "weight", 7);
        assert_eq!(g.property(3, "weight"), Some(7));
        assert_eq!(g.find_by_property("id", 4), Some(4));
        assert_eq!(g.find_by_property("id", 99), None);
    }

    #[test]
    fn incremental_construction() {
        let mut g = AdjacencyListGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.khop_count(a, 1), 1);
    }
}
