//! Published response times from the TigerGraph benchmark report (the source
//! the paper's Fig. 1 cites as reference [9]) for the databases that cannot be
//! run inside this reproduction.
//!
//! These numbers are *reference constants*, not measurements made here. The
//! figure harness prints them alongside the times measured for the RedisGraph
//! reproduction and the local adjacency-list baseline so the output has the
//! same rows as the paper's Fig. 1. Values are average 1-hop k-hop-count
//! response times in milliseconds on the benchmark's r4.8xlarge setup; they
//! carry the order-of-magnitude relationships behind the paper's
//! "36×–15 000× faster" claim.

/// One published data point from the TigerGraph benchmark report.
#[derive(Debug, Clone, PartialEq)]
pub struct LiteratureEntry {
    /// Database name as it appears in Fig. 1.
    pub system: &'static str,
    /// Dataset (`"graph500"` or `"twitter"`).
    pub dataset: &'static str,
    /// Average 1-hop response time in milliseconds.
    pub one_hop_ms: f64,
    /// Whether the system parallelises one query across all cores (relevant to
    /// the paper's single-core-per-query discussion).
    pub uses_all_cores: bool,
}

/// RedisGraph's own published numbers (for calibration in EXPERIMENTS.md).
pub const REDISGRAPH_PUBLISHED: &[LiteratureEntry] = &[
    LiteratureEntry {
        system: "RedisGraph (published)",
        dataset: "graph500",
        one_hop_ms: 0.399,
        uses_all_cores: false,
    },
    LiteratureEntry {
        system: "RedisGraph (published)",
        dataset: "twitter",
        one_hop_ms: 0.936,
        uses_all_cores: false,
    },
];

/// Published 1-hop response times for the comparison systems of Fig. 1.
pub fn literature_response_times() -> Vec<LiteratureEntry> {
    vec![
        LiteratureEntry {
            system: "TigerGraph",
            dataset: "graph500",
            one_hop_ms: 0.755,
            uses_all_cores: true,
        },
        LiteratureEntry {
            system: "TigerGraph",
            dataset: "twitter",
            one_hop_ms: 0.745,
            uses_all_cores: true,
        },
        LiteratureEntry {
            system: "Neo4j",
            dataset: "graph500",
            one_hop_ms: 14.5,
            uses_all_cores: true,
        },
        LiteratureEntry {
            system: "Neo4j",
            dataset: "twitter",
            one_hop_ms: 51.0,
            uses_all_cores: true,
        },
        LiteratureEntry {
            system: "Amazon Neptune",
            dataset: "graph500",
            one_hop_ms: 28.5,
            uses_all_cores: true,
        },
        LiteratureEntry {
            system: "Amazon Neptune",
            dataset: "twitter",
            one_hop_ms: 29.1,
            uses_all_cores: true,
        },
        LiteratureEntry {
            system: "JanusGraph",
            dataset: "graph500",
            one_hop_ms: 26.0,
            uses_all_cores: true,
        },
        LiteratureEntry {
            system: "JanusGraph",
            dataset: "twitter",
            one_hop_ms: 50.0,
            uses_all_cores: true,
        },
        LiteratureEntry {
            system: "ArangoDB",
            dataset: "graph500",
            one_hop_ms: 37.0,
            uses_all_cores: true,
        },
        LiteratureEntry {
            system: "ArangoDB",
            dataset: "twitter",
            one_hop_ms: 62.0,
            uses_all_cores: true,
        },
    ]
}

/// The published speedup band the paper's conclusion reports against the
/// non-TigerGraph systems ("36 to 15,000 times faster").
pub const PAPER_SPEEDUP_RANGE: (f64, f64) = (36.0, 15_000.0);

/// The published relative performance against TigerGraph ("2X and 0.8X").
pub const PAPER_TIGERGRAPH_RATIO: (f64, f64) = (2.0, 0.8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_system_has_both_datasets() {
        let entries = literature_response_times();
        for system in ["TigerGraph", "Neo4j", "Amazon Neptune", "JanusGraph", "ArangoDB"] {
            let count = entries.iter().filter(|e| e.system == system).count();
            assert_eq!(count, 2, "{system} should appear for both datasets");
        }
    }

    #[test]
    fn published_ordering_matches_the_papers_claim() {
        // RedisGraph's published 1-hop time beats every non-TigerGraph system
        // by at least an order of magnitude on graph500.
        let rg = REDISGRAPH_PUBLISHED.iter().find(|e| e.dataset == "graph500").unwrap().one_hop_ms;
        for e in literature_response_times() {
            if e.dataset == "graph500" && e.system != "TigerGraph" {
                assert!(e.one_hop_ms / rg > 30.0, "{} should be ≥ 36x slower", e.system);
            }
        }
    }

    #[test]
    fn tigergraph_ratio_is_near_parity() {
        let rg = REDISGRAPH_PUBLISHED.iter().find(|e| e.dataset == "twitter").unwrap();
        let tg = literature_response_times()
            .into_iter()
            .find(|e| e.system == "TigerGraph" && e.dataset == "twitter")
            .unwrap();
        let ratio = tg.one_hop_ms / rg.one_hop_ms;
        assert!(ratio > 0.5 && ratio < 2.5, "ratio {ratio} should be near the paper's 0.8–2x band");
    }
}
