//! Recursive-descent parser producing [`crate::ast::Query`] values.
//!
//! The parser recovers at clause boundaries: when a clause fails to parse
//! it records a spanned [`Diagnostic`], skips ahead to the next
//! clause-starting keyword, and keeps going, so a single malformed clause
//! reports every problem in the query instead of just the first.

use crate::ast::*;
use crate::diagnostics::{resolve, Diagnostic, RawDiagnostic};
use crate::lexer::Lexer;
use crate::token::{Token, TokenKind};

/// Errors produced while parsing: every diagnostic found in the query, in
/// source order, each with a `(line, col, len)` span.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// All problems found, ordered by source position (never empty).
    pub diagnostics: Vec<Diagnostic>,
}

impl ParseError {
    /// The first (primary) diagnostic.
    pub fn primary(&self) -> &Diagnostic {
        &self.diagnostics[0]
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.diagnostics.len() == 1 {
            write!(f, "parse error at {}", self.diagnostics[0])
        } else {
            write!(f, "{} parse errors:", self.diagnostics.len())?;
            for (i, d) in self.diagnostics.iter().enumerate() {
                let sep = if i == 0 { " " } else { "; " };
                write!(f, "{sep}{d}")?;
            }
            Ok(())
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse a Cypher query string into an AST. Fails with *every* diagnostic
/// the recovering parser found, not just the first.
pub fn parse(src: &str) -> Result<Query, ParseError> {
    let (query, diagnostics) = parse_recovering(src);
    match query {
        Some(q) if diagnostics.is_empty() => Ok(q),
        _ => Err(ParseError { diagnostics }),
    }
}

/// Parse with error recovery: returns whatever clauses could be salvaged
/// (for tooling that wants a partial AST) plus every diagnostic found. The
/// query is only trustworthy for execution when `diagnostics` is empty.
pub fn parse_recovering(src: &str) -> (Option<Query>, Vec<Diagnostic>) {
    let (tokens, mut raw) = Lexer::tokenize_raw(src);
    let query = Parser { tokens, pos: 0 }.parse_query(&mut raw);
    (query, resolve(src, raw))
}

/// Keywords that can begin a top-level clause — the parser's recovery
/// synchronization points.
const CLAUSE_STARTERS: &[&str] = &[
    "MATCH", "OPTIONAL", "WHERE", "RETURN", "WITH", "CREATE", "MERGE", "DELETE", "DETACH", "SET",
    "UNWIND", "CALL",
];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn peek_len(&self) -> usize {
        self.tokens[self.pos].len
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn diag<T>(&self, code: &'static str, message: impl Into<String>) -> Result<T, RawDiagnostic> {
        Err(RawDiagnostic::new(code, self.peek_offset(), self.peek_len(), message.into()))
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), RawDiagnostic> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.diag("E_EXPECTED_TOKEN", format!("expected {kind}, found {}", self.peek()))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if k == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), RawDiagnostic> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.diag(
                "E_EXPECTED_KEYWORD",
                format!("expected keyword `{kw}`, found {}", self.peek()),
            )
        }
    }

    fn expect_ident(&mut self) -> Result<String, RawDiagnostic> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            // Allow non-reserved-looking keywords as identifiers where openCypher does
            // (e.g. a property called `count`).
            TokenKind::Keyword(k) if k == "COUNT" => {
                self.bump();
                Ok(k.to_ascii_lowercase())
            }
            other => {
                self.diag("E_EXPECTED_IDENT", format!("expected an identifier, found {other}"))
            }
        }
    }

    // ------------------------------------------------------------- queries

    /// Skip ahead to the next clause-starting keyword (or end of input) so
    /// parsing can resume after a malformed clause.
    fn synchronize(&mut self) {
        loop {
            match self.peek() {
                TokenKind::Eof => return,
                TokenKind::Keyword(k) if CLAUSE_STARTERS.contains(&k.as_str()) => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn parse_query(&mut self, diags: &mut Vec<RawDiagnostic>) -> Option<Query> {
        let mut clauses = Vec::new();
        loop {
            let result = match self.peek().clone() {
                TokenKind::Eof => break,
                TokenKind::Keyword(kw) => match kw.as_str() {
                    "MATCH" => {
                        self.bump();
                        self.parse_pattern_list()
                            .map(|patterns| Clause::Match { optional: false, patterns })
                    }
                    "OPTIONAL" => {
                        self.bump();
                        self.expect_keyword("MATCH").and_then(|()| {
                            self.parse_pattern_list()
                                .map(|patterns| Clause::Match { optional: true, patterns })
                        })
                    }
                    "WHERE" => {
                        self.bump();
                        self.parse_expr().map(Clause::Where)
                    }
                    "RETURN" => {
                        self.bump();
                        self.parse_projection().map(Clause::Return)
                    }
                    "WITH" => {
                        self.bump();
                        self.parse_projection().map(Clause::With)
                    }
                    "CREATE" => {
                        self.bump();
                        self.parse_pattern_list().map(Clause::Create)
                    }
                    "MERGE" => {
                        // Treated as CREATE-if-absent by the engine; the parse shape is identical.
                        self.bump();
                        self.parse_pattern_list().map(Clause::Create)
                    }
                    "DELETE" => {
                        self.bump();
                        self.parse_delete(false)
                    }
                    "DETACH" => {
                        self.bump();
                        self.expect_keyword("DELETE").and_then(|()| self.parse_delete(true))
                    }
                    "SET" => {
                        self.bump();
                        self.parse_set_items().map(Clause::Set)
                    }
                    "UNWIND" => {
                        self.bump();
                        self.parse_expr().and_then(|list| {
                            self.expect_keyword("AS")?;
                            let variable = self.expect_ident()?;
                            Ok(Clause::Unwind { list, variable })
                        })
                    }
                    "CALL" => {
                        self.bump();
                        self.parse_call()
                    }
                    other => {
                        self.bump();
                        Err(RawDiagnostic::new(
                            "E_UNKNOWN_CLAUSE",
                            self.tokens[self.pos.saturating_sub(1)].offset,
                            other.len(),
                            format!("unexpected keyword `{other}`"),
                        )
                        .with_note(format!("a clause starts with {}", CLAUSE_STARTERS.join(", "))))
                    }
                },
                other => {
                    let err = self
                        .diag::<()>("E_UNKNOWN_CLAUSE", format!("unexpected {other}"))
                        .unwrap_err()
                        .with_note(format!("a clause starts with {}", CLAUSE_STARTERS.join(", ")));
                    self.bump();
                    Err(err)
                }
            };
            match result {
                Ok(clause) => clauses.push(clause),
                Err(diag) => {
                    diags.push(diag);
                    self.synchronize();
                }
            }
        }
        if clauses.is_empty() {
            if diags.is_empty() {
                diags.push(RawDiagnostic::new("E_EMPTY_QUERY", 0, 0, "empty query".into()));
            }
            return None;
        }
        Some(Query { clauses })
    }

    fn parse_delete(&mut self, detach: bool) -> Result<Clause, RawDiagnostic> {
        let mut variables = vec![self.expect_ident()?];
        while self.peek() == &TokenKind::Comma {
            self.bump();
            variables.push(self.expect_ident()?);
        }
        Ok(Clause::Delete { detach, variables })
    }

    fn parse_set_items(&mut self) -> Result<Vec<SetItem>, RawDiagnostic> {
        let mut items = Vec::new();
        loop {
            let variable = self.expect_ident()?;
            self.expect(&TokenKind::Dot)?;
            let property = self.expect_ident()?;
            self.expect(&TokenKind::Eq)?;
            let value = self.parse_expr()?;
            items.push(SetItem { variable, property, value });
            if self.peek() == &TokenKind::Comma {
                self.bump();
            } else {
                break;
            }
        }
        Ok(items)
    }

    /// `CALL proc.name(args) [YIELD col [AS alias], …]` — the clause syntax of
    /// RedisGraph's `CALL algo.*` procedures.
    fn parse_call(&mut self) -> Result<Clause, RawDiagnostic> {
        let mut procedure = self.expect_ident()?;
        while self.peek() == &TokenKind::Dot {
            self.bump();
            procedure.push('.');
            procedure.push_str(&self.expect_ident()?);
        }
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                args.push(self.parse_expr()?);
                if self.peek() == &TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let mut yields = Vec::new();
        if self.eat_keyword("YIELD") {
            loop {
                let column = self.expect_ident()?;
                let alias = if self.eat_keyword("AS") { Some(self.expect_ident()?) } else { None };
                yields.push(YieldItem { column, alias });
                if self.peek() == &TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        Ok(Clause::Call { procedure, args, yields })
    }

    // ------------------------------------------------------------ patterns

    fn parse_pattern_list(&mut self) -> Result<Vec<PathPattern>, RawDiagnostic> {
        let mut patterns = vec![self.parse_path_pattern()?];
        while self.peek() == &TokenKind::Comma {
            self.bump();
            patterns.push(self.parse_path_pattern()?);
        }
        Ok(patterns)
    }

    fn parse_path_pattern(&mut self) -> Result<PathPattern, RawDiagnostic> {
        let start = self.parse_node_pattern()?;
        let mut steps = Vec::new();
        while matches!(self.peek(), TokenKind::Dash | TokenKind::Lt) {
            let rel = self.parse_relationship_pattern()?;
            let node = self.parse_node_pattern()?;
            steps.push((rel, node));
        }
        Ok(PathPattern { start, steps })
    }

    fn parse_node_pattern(&mut self) -> Result<NodePattern, RawDiagnostic> {
        self.expect(&TokenKind::LParen)?;
        let mut node = NodePattern::default();
        if let TokenKind::Ident(name) = self.peek().clone() {
            node.variable = Some(name);
            self.bump();
        }
        while self.peek() == &TokenKind::Colon {
            self.bump();
            node.labels.push(self.expect_ident()?);
        }
        if self.peek() == &TokenKind::LBrace {
            node.properties = self.parse_property_map()?;
        }
        self.expect(&TokenKind::RParen)?;
        Ok(node)
    }

    fn parse_relationship_pattern(&mut self) -> Result<RelationshipPattern, RawDiagnostic> {
        // leading `<-` or `-`
        let incoming = if self.peek() == &TokenKind::Lt {
            self.bump();
            self.expect(&TokenKind::Dash)?;
            true
        } else {
            self.expect(&TokenKind::Dash)?;
            false
        };

        let mut rel = RelationshipPattern::default();
        if self.peek() == &TokenKind::LBracket {
            self.bump();
            if let TokenKind::Ident(name) = self.peek().clone() {
                rel.variable = Some(name);
                self.bump();
            }
            if self.peek() == &TokenKind::Colon {
                self.bump();
                rel.types.push(self.expect_ident()?);
                while self.peek() == &TokenKind::Pipe {
                    self.bump();
                    if self.peek() == &TokenKind::Colon {
                        self.bump();
                    }
                    rel.types.push(self.expect_ident()?);
                }
            }
            if self.peek() == &TokenKind::Star {
                self.bump();
                rel.var_length = Some(self.parse_var_length_bounds()?);
            }
            if self.peek() == &TokenKind::LBrace {
                rel.properties = self.parse_property_map()?;
            }
            self.expect(&TokenKind::RBracket)?;
        }

        // trailing `->` or `-`
        self.expect(&TokenKind::Dash)?;
        let outgoing = if self.peek() == &TokenKind::Gt {
            self.bump();
            true
        } else {
            false
        };

        rel.direction = match (incoming, outgoing) {
            (true, false) => Direction::Incoming,
            (false, true) => Direction::Outgoing,
            (false, false) => Direction::Both,
            (true, true) => Direction::Both,
        };
        Ok(rel)
    }

    fn parse_var_length_bounds(&mut self) -> Result<(u32, Option<u32>), RawDiagnostic> {
        // `*`, `*n`, `*n..`, `*n..m`, `*..m`
        let min = if let TokenKind::Integer(n) = *self.peek() {
            self.bump();
            n as u32
        } else {
            1
        };
        if self.peek() == &TokenKind::DotDot {
            self.bump();
            if let TokenKind::Integer(m) = *self.peek() {
                self.bump();
                Ok((min, Some(m as u32)))
            } else {
                Ok((min, None))
            }
        } else if min == 1 && !matches!(self.peek(), TokenKind::Integer(_)) {
            // bare `*` means any length ≥ 1 … unless a fixed length was given
            Ok((1, None))
        } else {
            // fixed length `*n`
            Ok((min, Some(min)))
        }
    }

    fn parse_property_map(&mut self) -> Result<Vec<(String, Literal)>, RawDiagnostic> {
        self.expect(&TokenKind::LBrace)?;
        let mut props = Vec::new();
        if self.peek() != &TokenKind::RBrace {
            loop {
                let key = self.expect_ident()?;
                self.expect(&TokenKind::Colon)?;
                let value = self.parse_literal()?;
                props.push((key, value));
                if self.peek() == &TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(props)
    }

    fn parse_literal(&mut self) -> Result<Literal, RawDiagnostic> {
        let lit = match self.peek().clone() {
            TokenKind::Integer(v) => Literal::Integer(v),
            TokenKind::Float(v) => Literal::Float(v),
            TokenKind::Str(s) => Literal::Str(s),
            TokenKind::Keyword(k) if k == "TRUE" => Literal::Bool(true),
            TokenKind::Keyword(k) if k == "FALSE" => Literal::Bool(false),
            TokenKind::Keyword(k) if k == "NULL" => Literal::Null,
            TokenKind::Dash => {
                self.bump();
                return match self.peek().clone() {
                    TokenKind::Integer(v) => {
                        self.bump();
                        Ok(Literal::Integer(-v))
                    }
                    TokenKind::Float(v) => {
                        self.bump();
                        Ok(Literal::Float(-v))
                    }
                    other => self.diag(
                        "E_EXPECTED_NUMBER",
                        format!("expected a number after `-`, found {other}"),
                    ),
                };
            }
            other => {
                return self
                    .diag("E_EXPECTED_LITERAL", format!("expected a literal, found {other}"))
            }
        };
        self.bump();
        Ok(lit)
    }

    // -------------------------------------------------------- projections

    fn parse_projection(&mut self) -> Result<Projection, RawDiagnostic> {
        let distinct = self.eat_keyword("DISTINCT");
        let mut items = vec![self.parse_return_item()?];
        while self.peek() == &TokenKind::Comma {
            self.bump();
            items.push(self.parse_return_item()?);
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let order = if self.eat_keyword("DESC") {
                    SortOrder::Descending
                } else {
                    self.eat_keyword("ASC");
                    SortOrder::Ascending
                };
                order_by.push((expr, order));
                if self.peek() == &TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let skip = if self.eat_keyword("SKIP") { Some(self.parse_unsigned()?) } else { None };
        let limit = if self.eat_keyword("LIMIT") { Some(self.parse_unsigned()?) } else { None };
        Ok(Projection { distinct, items, order_by, skip, limit })
    }

    fn parse_unsigned(&mut self) -> Result<u64, RawDiagnostic> {
        match *self.peek() {
            TokenKind::Integer(n) if n >= 0 => {
                self.bump();
                Ok(n as u64)
            }
            _ => self.diag("E_EXPECTED_NUMBER", "expected a non-negative integer"),
        }
    }

    fn parse_return_item(&mut self) -> Result<ReturnItem, RawDiagnostic> {
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword("AS") { Some(self.expect_ident()?) } else { None };
        Ok(ReturnItem { expr, alias })
    }

    // -------------------------------------------------------- expressions

    fn parse_expr(&mut self) -> Result<Expr, RawDiagnostic> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, RawDiagnostic> {
        let mut lhs = self.parse_xor()?;
        while self.eat_keyword("OR") {
            let rhs = self.parse_xor()?;
            lhs = Expr::Binary(BinaryOperator::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_xor(&mut self) -> Result<Expr, RawDiagnostic> {
        let mut lhs = self.parse_and()?;
        while self.eat_keyword("XOR") {
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinaryOperator::Xor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, RawDiagnostic> {
        let mut lhs = self.parse_not()?;
        while self.eat_keyword("AND") {
            let rhs = self.parse_not()?;
            lhs = Expr::Binary(BinaryOperator::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr, RawDiagnostic> {
        if self.eat_keyword("NOT") {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary(UnaryOperator::Not, Box::new(inner)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, RawDiagnostic> {
        let lhs = self.parse_additive()?;
        let op = match self.peek() {
            TokenKind::Eq => Some(BinaryOperator::Eq),
            TokenKind::Ne => Some(BinaryOperator::Ne),
            TokenKind::Lt => Some(BinaryOperator::Lt),
            TokenKind::Le => Some(BinaryOperator::Le),
            TokenKind::Gt => Some(BinaryOperator::Gt),
            TokenKind::Ge => Some(BinaryOperator::Ge),
            TokenKind::Keyword(k) if k == "IN" => Some(BinaryOperator::In),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_additive()?;
            Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn parse_additive(&mut self) -> Result<Expr, RawDiagnostic> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOperator::Add,
                TokenKind::Dash => BinaryOperator::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, RawDiagnostic> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOperator::Mul,
                TokenKind::Slash => BinaryOperator::Div,
                TokenKind::Percent => BinaryOperator::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, RawDiagnostic> {
        if self.peek() == &TokenKind::Dash {
            self.bump();
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary(UnaryOperator::Minus, Box::new(inner)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, RawDiagnostic> {
        match self.peek().clone() {
            TokenKind::Integer(v) => {
                self.bump();
                Ok(Expr::Literal(Literal::Integer(v)))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Literal(Literal::Float(v)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::Parameter(p) => {
                self.bump();
                Ok(Expr::Parameter(p))
            }
            TokenKind::Keyword(k) if k == "TRUE" => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            TokenKind::Keyword(k) if k == "FALSE" => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            TokenKind::Keyword(k) if k == "NULL" => {
                self.bump();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::Keyword(k) if k == "COUNT" => {
                self.bump();
                self.parse_function_call("count".to_string())
            }
            TokenKind::LParen => {
                self.bump();
                let expr = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(expr)
            }
            TokenKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if self.peek() != &TokenKind::RBracket {
                    loop {
                        items.push(self.parse_expr()?);
                        if self.peek() == &TokenKind::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RBracket)?;
                Ok(Expr::List(items))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek() == &TokenKind::LParen {
                    return self.parse_function_call(name.to_ascii_lowercase());
                }
                if self.peek() == &TokenKind::Dot {
                    self.bump();
                    let prop = self.expect_ident()?;
                    return Ok(Expr::Property(name, prop));
                }
                Ok(Expr::Variable(name))
            }
            other => self.diag("E_EXPECTED_EXPR", format!("unexpected {other} in expression")),
        }
    }

    fn parse_function_call(&mut self, name: String) -> Result<Expr, RawDiagnostic> {
        self.expect(&TokenKind::LParen)?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut args = Vec::new();
        if self.peek() == &TokenKind::Star {
            // count(*)
            self.bump();
        } else if self.peek() != &TokenKind::RParen {
            loop {
                args.push(self.parse_expr()?);
                if self.peek() == &TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Expr::FunctionCall { name, args, distinct })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_match_return() {
        let q = parse("MATCH (a:Person) RETURN a").unwrap();
        assert_eq!(q.clauses.len(), 2);
        match &q.clauses[0] {
            Clause::Match { optional, patterns } => {
                assert!(!optional);
                assert_eq!(patterns.len(), 1);
                assert_eq!(patterns[0].start.variable.as_deref(), Some("a"));
                assert_eq!(patterns[0].start.labels, vec!["Person"]);
            }
            other => panic!("expected MATCH, got {other:?}"),
        }
    }

    #[test]
    fn parses_relationship_directions() {
        let q = parse("MATCH (a)-[:KNOWS]->(b), (a)<-[:LIKES]-(c), (a)-[r]-(d) RETURN a").unwrap();
        let Clause::Match { patterns, .. } = &q.clauses[0] else { panic!() };
        assert_eq!(patterns[0].steps[0].0.direction, Direction::Outgoing);
        assert_eq!(patterns[0].steps[0].0.types, vec!["KNOWS"]);
        assert_eq!(patterns[1].steps[0].0.direction, Direction::Incoming);
        assert_eq!(patterns[2].steps[0].0.direction, Direction::Both);
        assert_eq!(patterns[2].steps[0].0.variable.as_deref(), Some("r"));
    }

    #[test]
    fn parses_variable_length_paths() {
        let q = parse("MATCH (a)-[*1..3]->(b) RETURN b").unwrap();
        let Clause::Match { patterns, .. } = &q.clauses[0] else { panic!() };
        assert_eq!(patterns[0].steps[0].0.var_length, Some((1, Some(3))));

        let q = parse("MATCH (a)-[:KNOWS*2]->(b) RETURN b").unwrap();
        let Clause::Match { patterns, .. } = &q.clauses[0] else { panic!() };
        assert_eq!(patterns[0].steps[0].0.var_length, Some((2, Some(2))));

        let q = parse("MATCH (a)-[*]->(b) RETURN b").unwrap();
        let Clause::Match { patterns, .. } = &q.clauses[0] else { panic!() };
        assert_eq!(patterns[0].steps[0].0.var_length, Some((1, None)));

        let q = parse("MATCH (a)-[*2..]->(b) RETURN b").unwrap();
        let Clause::Match { patterns, .. } = &q.clauses[0] else { panic!() };
        assert_eq!(patterns[0].steps[0].0.var_length, Some((2, None)));
    }

    #[test]
    fn parses_zero_min_variable_length_paths() {
        // `*0..n` / `*0..` / `*0` are legal openCypher: hop 0 matches the
        // start node itself. The executor honours min_hops = 0 (regression:
        // the reachability loop used to drop hop 0 silently).
        let q = parse("MATCH (a)-[*0..2]->(b) RETURN b").unwrap();
        let Clause::Match { patterns, .. } = &q.clauses[0] else { panic!() };
        assert_eq!(patterns[0].steps[0].0.var_length, Some((0, Some(2))));

        let q = parse("MATCH (a)-[:KNOWS*0..]->(b) RETURN b").unwrap();
        let Clause::Match { patterns, .. } = &q.clauses[0] else { panic!() };
        assert_eq!(patterns[0].steps[0].0.var_length, Some((0, None)));

        let q = parse("MATCH (a)-[*0]->(b) RETURN b").unwrap();
        let Clause::Match { patterns, .. } = &q.clauses[0] else { panic!() };
        assert_eq!(patterns[0].steps[0].0.var_length, Some((0, Some(0))));
    }

    #[test]
    fn parses_node_property_maps() {
        let q = parse("MATCH (a:Node {id: 42, name: 'x', active: true}) RETURN a").unwrap();
        let Clause::Match { patterns, .. } = &q.clauses[0] else { panic!() };
        let props = &patterns[0].start.properties;
        assert_eq!(props[0], ("id".to_string(), Literal::Integer(42)));
        assert_eq!(props[1], ("name".to_string(), Literal::Str("x".into())));
        assert_eq!(props[2], ("active".to_string(), Literal::Bool(true)));
    }

    #[test]
    fn parses_where_with_precedence() {
        let q = parse("MATCH (a) WHERE a.age > 30 AND a.name = 'bob' OR NOT a.active RETURN a")
            .unwrap();
        let Clause::Where(expr) = &q.clauses[1] else { panic!() };
        // top level must be OR
        let Expr::Binary(BinaryOperator::Or, lhs, rhs) = expr else { panic!("expected OR at top") };
        assert!(matches!(**lhs, Expr::Binary(BinaryOperator::And, _, _)));
        assert!(matches!(**rhs, Expr::Unary(UnaryOperator::Not, _)));
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let q = parse("RETURN 1 + 2 * 3 AS x").unwrap();
        let proj = q.return_clause().unwrap();
        let Expr::Binary(BinaryOperator::Add, _, rhs) = &proj.items[0].expr else { panic!() };
        assert!(matches!(**rhs, Expr::Binary(BinaryOperator::Mul, _, _)));
        assert_eq!(proj.items[0].alias.as_deref(), Some("x"));
    }

    #[test]
    fn parses_return_modifiers() {
        let q =
            parse("MATCH (a) RETURN DISTINCT a.name AS n ORDER BY n DESC, a.age SKIP 5 LIMIT 10")
                .unwrap();
        let proj = q.return_clause().unwrap();
        assert!(proj.distinct);
        assert_eq!(proj.order_by.len(), 2);
        assert_eq!(proj.order_by[0].1, SortOrder::Descending);
        assert_eq!(proj.order_by[1].1, SortOrder::Ascending);
        assert_eq!(proj.skip, Some(5));
        assert_eq!(proj.limit, Some(10));
    }

    #[test]
    fn parses_aggregations() {
        let q = parse("MATCH (a)-[]->(b) RETURN count(b), count(DISTINCT b), sum(b.x), count(*)")
            .unwrap();
        let proj = q.return_clause().unwrap();
        assert_eq!(proj.items.len(), 4);
        let Expr::FunctionCall { name, distinct, .. } = &proj.items[1].expr else { panic!() };
        assert_eq!(name, "count");
        assert!(*distinct);
        let Expr::FunctionCall { name, args, .. } = &proj.items[3].expr else { panic!() };
        assert_eq!(name, "count");
        assert!(args.is_empty());
    }

    #[test]
    fn parses_create_delete_set() {
        let q = parse("CREATE (a:Person {name: 'x'})-[:KNOWS]->(b:Person {name: 'y'})").unwrap();
        assert!(matches!(q.clauses[0], Clause::Create(_)));
        assert!(!q.is_read_only());

        let q = parse("MATCH (a) WHERE a.id = 1 DETACH DELETE a").unwrap();
        assert!(matches!(q.clauses[2], Clause::Delete { detach: true, .. }));

        let q = parse("MATCH (a) SET a.age = 31, a.name = 'z' RETURN a").unwrap();
        let Clause::Set(items) = &q.clauses[1] else { panic!() };
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].property, "age");
    }

    #[test]
    fn parses_unwind_and_with() {
        let q = parse("UNWIND [1, 2, 3] AS x WITH x RETURN x").unwrap();
        assert!(matches!(q.clauses[0], Clause::Unwind { .. }));
        assert!(matches!(q.clauses[1], Clause::With(_)));
    }

    #[test]
    fn parses_multiple_relationship_types() {
        let q = parse("MATCH (a)-[:KNOWS|LIKES|:FOLLOWS]->(b) RETURN b").unwrap();
        let Clause::Match { patterns, .. } = &q.clauses[0] else { panic!() };
        assert_eq!(patterns[0].steps[0].0.types, vec!["KNOWS", "LIKES", "FOLLOWS"]);
    }

    #[test]
    fn parses_the_khop_benchmark_query() {
        let q = parse("MATCH (s:Node)-[*1..6]->(t) WHERE s.id = 12345 RETURN count(t)").unwrap();
        assert_eq!(q.clauses.len(), 3);
        assert!(q.is_read_only());
        let Clause::Match { patterns, .. } = &q.clauses[0] else { panic!() };
        assert_eq!(patterns[0].steps[0].0.var_length, Some((1, Some(6))));
    }

    #[test]
    fn parses_multi_hop_chained_pattern() {
        let q = parse("MATCH (a)-[:X]->(b)-[:Y]->(c)<-[:Z]-(d) RETURN a, d").unwrap();
        let Clause::Match { patterns, .. } = &q.clauses[0] else { panic!() };
        assert_eq!(patterns[0].hop_count(), 3);
        assert_eq!(patterns[0].steps[2].0.direction, Direction::Incoming);
    }

    #[test]
    fn parses_call_with_yield() {
        let q = parse("CALL algo.pagerank() YIELD node, score RETURN node ORDER BY score DESC")
            .unwrap();
        let Clause::Call { procedure, args, yields } = &q.clauses[0] else { panic!() };
        assert_eq!(procedure, "algo.pagerank");
        assert!(args.is_empty());
        assert_eq!(yields.len(), 2);
        assert_eq!(yields[0].binding_name(), "node");
        assert!(q.is_read_only());
    }

    #[test]
    fn parses_call_args_and_yield_aliases() {
        let q = parse("CALL algo.bfs(5) YIELD node AS n, level RETURN n, level").unwrap();
        let Clause::Call { procedure, args, yields } = &q.clauses[0] else { panic!() };
        assert_eq!(procedure, "algo.bfs");
        assert_eq!(args, &[Expr::Literal(Literal::Integer(5))]);
        assert_eq!(yields[0].binding_name(), "n");
        assert_eq!(yields[0].column, "node");
        assert_eq!(yields[1].binding_name(), "level");
    }

    #[test]
    fn parses_call_without_yield() {
        let q = parse("CALL algo.wcc()").unwrap();
        let Clause::Call { yields, .. } = &q.clauses[0] else { panic!() };
        assert!(yields.is_empty());
    }

    #[test]
    fn rejects_malformed_call_clauses() {
        // missing argument parens
        assert!(parse("CALL algo.pagerank YIELD node").is_err());
        // empty / malformed YIELD list
        assert!(parse("CALL algo.bfs(0) YIELD RETURN node").is_err());
        assert!(parse("CALL algo.bfs(0) YIELD node AS RETURN node").is_err());
        // missing procedure name
        assert!(parse("CALL (0)").is_err());
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse("").is_err());
        assert!(parse("MATCH (a").is_err());
        assert!(parse("MATCH (a) RETURN").is_err());
        assert!(parse("FROB (a)").is_err());
        assert!(parse("MATCH (a)-[>(b) RETURN a").is_err());
        assert!(parse("MATCH (a) WHERE RETURN a").is_err());
    }

    #[test]
    fn error_spans_point_at_the_problem() {
        let err = parse("MATCH (a) RETURN ").unwrap_err();
        let d = err.primary();
        assert_eq!(d.code, "E_EXPECTED_EXPR");
        // The query is 17 bytes; the error is at end of input: line 1, col 18.
        assert_eq!(d.span, (1, 18, 0));
        assert!(err.to_string().contains("parse error"));
        assert!(err.to_string().contains("1:18"));
    }

    #[test]
    fn recovery_collects_every_clause_error() {
        // Three broken clauses in one query: all three must be reported.
        let err = parse("MATCH (a WHERE 1 + RETURN )").unwrap_err();
        assert!(err.diagnostics.len() >= 2, "expected multiple diagnostics, got {err:?}");
        assert!(err.to_string().contains("parse errors"));
        // Diagnostics arrive in source order.
        let cols: Vec<u32> = err.diagnostics.iter().map(|d| d.span.1).collect();
        let mut sorted = cols.clone();
        sorted.sort_unstable();
        assert_eq!(cols, sorted);
    }

    #[test]
    fn recovery_spans_multiple_lines() {
        let err = parse("MATCH (a\nRETURN a,\nRETURN b").unwrap_err();
        assert!(err.diagnostics.len() >= 2);
        assert!(
            err.diagnostics.iter().any(|d| d.span.0 >= 2),
            "no diagnostic past line 1: {err:?}"
        );
    }

    #[test]
    fn partial_ast_survives_recovery() {
        let (query, diags) = parse_recovering("MATCH (a WHERE true RETURN a");
        assert!(!diags.is_empty());
        // The WHERE and RETURN clauses after the broken MATCH were salvaged.
        let q = query.expect("recoverable clauses");
        assert!(q.clauses.iter().any(|c| matches!(c, Clause::Return(_))));
    }

    #[test]
    fn lexer_and_parser_diagnostics_merge_in_source_order() {
        let err = parse("MATCH ^ (a) RETURN ~").unwrap_err();
        assert!(err.diagnostics.len() >= 2);
        assert_eq!(err.diagnostics[0].code, "E_UNEXPECTED_CHAR");
        assert_eq!(err.diagnostics[0].span.1, 7);
    }

    #[test]
    fn unknown_clause_diagnostics_carry_notes() {
        let err = parse("FROB (a)").unwrap_err();
        let d = err.primary();
        assert_eq!(d.code, "E_UNKNOWN_CLAUSE");
        assert!(d.notes.iter().any(|n| n.contains("MATCH")));
    }

    #[test]
    fn parameters_parse_in_expressions() {
        let q = parse("MATCH (a) WHERE a.id = $id RETURN a").unwrap();
        let Clause::Where(Expr::Binary(_, _, rhs)) = &q.clauses[1] else { panic!() };
        assert_eq!(**rhs, Expr::Parameter("id".into()));
    }
}
