//! Token definitions for the Cypher lexer.

use std::fmt;

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // literals & names
    /// An identifier or unquoted name (`a`, `Person`, `KNOWS`).
    Ident(String),
    /// A reserved keyword, stored upper-cased (`MATCH`, `RETURN`, …).
    Keyword(String),
    /// An integer literal.
    Integer(i64),
    /// A floating-point literal.
    Float(f64),
    /// A single- or double-quoted string literal (quotes stripped).
    Str(String),
    /// A query parameter (`$name`).
    Parameter(String),

    // punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `-`
    Dash,
    /// `+`
    Plus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `|`
    Pipe,

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(s) => write!(f, "keyword `{s}`"),
            TokenKind::Integer(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::Parameter(s) => write!(f, "parameter `${s}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::DotDot => write!(f, "`..`"),
            TokenKind::Dash => write!(f, "`-`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Ne => write!(f, "`<>`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus its byte range in the source (for spanned diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token in the query text.
    pub offset: usize,
    /// Length of the token's source text in bytes (0 for `Eof`).
    pub len: usize,
}

/// The reserved words of the supported Cypher subset. Keywords are recognised
/// case-insensitively, as required by openCypher.
pub const KEYWORDS: &[&str] = &[
    "MATCH", "OPTIONAL", "WHERE", "RETURN", "CREATE", "DELETE", "DETACH", "SET", "UNWIND", "WITH",
    "AS", "ORDER", "BY", "ASC", "DESC", "SKIP", "LIMIT", "DISTINCT", "AND", "OR", "NOT", "XOR",
    "TRUE", "FALSE", "NULL", "IN", "IS", "MERGE", "COUNT", "CALL", "YIELD",
];

/// True if `word` (any case) is a reserved keyword.
pub fn is_keyword(word: &str) -> bool {
    let upper = word.to_ascii_uppercase();
    KEYWORDS.contains(&upper.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_check_is_case_insensitive() {
        assert!(is_keyword("match"));
        assert!(is_keyword("Match"));
        assert!(is_keyword("RETURN"));
        assert!(!is_keyword("person"));
    }

    #[test]
    fn tokens_display_for_error_messages() {
        assert_eq!(TokenKind::Ident("a".into()).to_string(), "identifier `a`");
        assert_eq!(TokenKind::DotDot.to_string(), "`..`");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
