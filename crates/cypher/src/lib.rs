//! # cypher
//!
//! A hand-written lexer and recursive-descent parser for the openCypher subset
//! supported by the first generally-available RedisGraph release, which this
//! repository reproduces:
//!
//! * `MATCH` with node/relationship patterns, labels, relationship types,
//!   inline property maps, direction, and variable-length paths (`*min..max`);
//! * `WHERE` with comparisons, boolean connectives, and property access;
//! * `RETURN` (with `DISTINCT`, aliases and the aggregations `count`, `sum`,
//!   `avg`, `min`, `max`, `collect`), `ORDER BY`, `SKIP`, `LIMIT`;
//! * `CREATE`, `DELETE`, `SET`, `UNWIND`, and a basic `WITH`;
//! * `CALL proc.name(args) YIELD cols` procedure invocations (the
//!   `CALL algo.*` graph-algorithm surface).
//!
//! The parser produces a plain [`ast::Query`] that `redisgraph-core` compiles
//! into an execution plan of GraphBLAS operations.
//!
//! ```
//! use cypher::parse;
//!
//! let q = parse("MATCH (a:Person)-[:KNOWS*1..2]->(b) WHERE a.age > 30 RETURN b.name, count(b)").unwrap();
//! assert_eq!(q.clauses.len(), 3);
//! ```

pub mod ast;
pub mod diagnostics;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::*;
pub use diagnostics::{line_col, Diagnostic};
pub use lexer::Lexer;
pub use parser::{parse, parse_recovering, ParseError};
pub use token::{Token, TokenKind};
