//! The Cypher lexer: turns query text into a token stream.
//!
//! The lexer is error-recovering: a malformed construct (unterminated
//! string, stray character, …) is reported as a diagnostic and lexing
//! continues, so one bad token never hides the rest of the query's
//! problems. [`Lexer::tokenize`] keeps the strict first-error contract for
//! callers that only need a yes/no answer.

use crate::diagnostics::{resolve, Diagnostic, RawDiagnostic};
use crate::token::{is_keyword, Token, TokenKind};

/// Errors produced while lexing (first-error view; see
/// [`Lexer::tokenize_recovering`] for the full diagnostic list).
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset where it occurred.
    pub offset: usize,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// A streaming lexer over a query string.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0 }
    }

    /// Lex the entire input into a vector of tokens terminated by `Eof`,
    /// failing on the first malformed construct.
    pub fn tokenize(src: &'a str) -> Result<Vec<Token>, LexError> {
        let (tokens, diags) = Self::tokenize_raw(src);
        match diags.into_iter().next() {
            None => Ok(tokens),
            Some(d) => Err(LexError { message: d.message, offset: d.offset }),
        }
    }

    /// Lex the entire input, recovering past malformed constructs: always
    /// returns the full token stream plus every diagnostic found.
    pub fn tokenize_recovering(src: &'a str) -> (Vec<Token>, Vec<Diagnostic>) {
        let (tokens, diags) = Self::tokenize_raw(src);
        (tokens, resolve(src, diags))
    }

    pub(crate) fn tokenize_raw(src: &'a str) -> (Vec<Token>, Vec<RawDiagnostic>) {
        let mut lexer = Lexer::new(src);
        let mut tokens = Vec::new();
        let mut diags = Vec::new();
        loop {
            let Some(tok) = lexer.next_token_recovering(&mut diags) else { continue };
            let done = tok.kind == TokenKind::Eof;
            tokens.push(tok);
            if done {
                break;
            }
        }
        (tokens, diags)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_whitespace_and_comments(&mut self, diags: &mut Vec<RawDiagnostic>) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                // line comment `// ...`
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                // block comment `/* ... */`
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                diags.push(
                                    RawDiagnostic::new(
                                        "E_UNTERMINATED_COMMENT",
                                        start,
                                        self.pos - start,
                                        "unterminated block comment".into(),
                                    )
                                    .with_note("block comments close with `*/`"),
                                );
                                break;
                            }
                        }
                    }
                }
                _ => return,
            }
        }
    }

    /// Produce the next token, failing on the first malformed construct.
    pub fn next_token(&mut self) -> Result<Token, LexError> {
        let mut diags = Vec::new();
        loop {
            let tok = self.next_token_recovering(&mut diags);
            if let Some(d) = diags.into_iter().next() {
                return Err(LexError { message: d.message, offset: d.offset });
            }
            if let Some(tok) = tok {
                return Ok(tok);
            }
            diags = Vec::new();
        }
    }

    /// Produce the next token, recording problems in `diags`. Returns `None`
    /// when the malformed input produced no token at all (the caller should
    /// simply ask again); a partially-lexed token (e.g. an unterminated
    /// string) is returned so the parser can keep going.
    fn next_token_recovering(&mut self, diags: &mut Vec<RawDiagnostic>) -> Option<Token> {
        self.skip_whitespace_and_comments(diags);
        let offset = self.pos;
        let Some(c) = self.peek() else {
            return Some(Token { kind: TokenKind::Eof, offset, len: 0 });
        };

        let kind = match c {
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'[' => {
                self.bump();
                TokenKind::LBracket
            }
            b']' => {
                self.bump();
                TokenKind::RBracket
            }
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b':' => {
                self.bump();
                TokenKind::Colon
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b'|' => {
                self.bump();
                TokenKind::Pipe
            }
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'/' => {
                self.bump();
                TokenKind::Slash
            }
            b'%' => {
                self.bump();
                TokenKind::Percent
            }
            b'-' => {
                self.bump();
                TokenKind::Dash
            }
            b'=' => {
                self.bump();
                TokenKind::Eq
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        TokenKind::Le
                    }
                    Some(b'>') => {
                        self.bump();
                        TokenKind::Ne
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'.' => {
                self.bump();
                if self.peek() == Some(b'.') {
                    self.bump();
                    TokenKind::DotDot
                } else {
                    TokenKind::Dot
                }
            }
            b'$' => {
                self.bump();
                let name = self.lex_bare_word();
                if name.is_empty() {
                    diags.push(
                        RawDiagnostic::new(
                            "E_EMPTY_PARAMETER",
                            offset,
                            1,
                            "empty parameter name".into(),
                        )
                        .with_note("parameters are written `$name`"),
                    );
                    return None;
                }
                TokenKind::Parameter(name)
            }
            b'\'' | b'"' => self.lex_string(c, offset, diags),
            b'`' => {
                // back-quoted identifier
                self.bump();
                let start = self.pos;
                while let Some(ch) = self.peek() {
                    if ch == b'`' {
                        break;
                    }
                    self.pos += 1;
                }
                let name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                if self.peek() == Some(b'`') {
                    self.bump();
                } else {
                    diags.push(RawDiagnostic::new(
                        "E_UNTERMINATED_IDENT",
                        offset,
                        self.pos - offset,
                        "unterminated quoted identifier".into(),
                    ));
                }
                TokenKind::Ident(name)
            }
            c if c.is_ascii_digit() => self.lex_number(offset, diags),
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let word = self.lex_bare_word();
                if is_keyword(&word) {
                    TokenKind::Keyword(word.to_ascii_uppercase())
                } else {
                    TokenKind::Ident(word)
                }
            }
            other => {
                self.bump();
                diags.push(RawDiagnostic::new(
                    "E_UNEXPECTED_CHAR",
                    offset,
                    1,
                    format!("unexpected character `{}`", other as char),
                ));
                return None;
            }
        };
        Some(Token { kind, offset, len: self.pos - offset })
    }

    fn lex_bare_word(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn lex_number(&mut self, offset: usize, diags: &mut Vec<RawDiagnostic>) -> TokenKind {
        let start = self.pos;
        while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
            self.pos += 1;
        }
        // A fractional part only if the dot is followed by a digit; this keeps
        // `1..3` (a variable-length range) lexing as Integer DotDot Integer.
        let mut is_float = false;
        if self.peek() == Some(b'.') && self.peek2().map(|c| c.is_ascii_digit()).unwrap_or(false) {
            is_float = true;
            self.pos += 1;
            while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>().map(TokenKind::Float).unwrap_or_else(|e| {
                diags.push(RawDiagnostic::new(
                    "E_BAD_NUMBER",
                    offset,
                    self.pos - offset,
                    format!("bad float literal: {e}"),
                ));
                TokenKind::Float(0.0)
            })
        } else {
            text.parse::<i64>().map(TokenKind::Integer).unwrap_or_else(|e| {
                diags.push(RawDiagnostic::new(
                    "E_BAD_NUMBER",
                    offset,
                    self.pos - offset,
                    format!("bad integer literal: {e}"),
                ));
                TokenKind::Integer(0)
            })
        }
    }

    fn lex_string(
        &mut self,
        quote: u8,
        offset: usize,
        diags: &mut Vec<RawDiagnostic>,
    ) -> TokenKind {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(c) if c == quote => out.push(c as char),
                    Some(c) => out.push(c as char),
                    None => {
                        diags.push(self.unterminated_string(offset));
                        break;
                    }
                },
                Some(c) => out.push(c as char),
                None => {
                    diags.push(self.unterminated_string(offset));
                    break;
                }
            }
        }
        TokenKind::Str(out)
    }

    fn unterminated_string(&self, offset: usize) -> RawDiagnostic {
        RawDiagnostic::new(
            "E_UNTERMINATED_STRING",
            offset,
            self.pos - offset,
            "unterminated string".into(),
        )
        .with_note("strings are quoted with `'` or `\"`")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_basic_match_query() {
        let k = kinds("MATCH (a:Person) RETURN a");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword("MATCH".into()),
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::Colon,
                TokenKind::Ident("Person".into()),
                TokenKind::RParen,
                TokenKind::Keyword("RETURN".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(kinds("match")[0], TokenKind::Keyword("MATCH".into()));
        assert_eq!(kinds("ReTuRn")[0], TokenKind::Keyword("RETURN".into()));
    }

    #[test]
    fn variable_length_range_does_not_lex_as_float() {
        let k = kinds("*1..3");
        assert_eq!(
            k,
            vec![
                TokenKind::Star,
                TokenKind::Integer(1),
                TokenKind::DotDot,
                TokenKind::Integer(3),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_floats() {
        assert_eq!(kinds("42")[0], TokenKind::Integer(42));
        assert_eq!(kinds("3.25")[0], TokenKind::Float(3.25));
    }

    #[test]
    fn relationship_arrows_lex_as_punctuation() {
        let k = kinds("-[:KNOWS]->");
        assert_eq!(
            k,
            vec![
                TokenKind::Dash,
                TokenKind::LBracket,
                TokenKind::Colon,
                TokenKind::Ident("KNOWS".into()),
                TokenKind::RBracket,
                TokenKind::Dash,
                TokenKind::Gt,
                TokenKind::Eof
            ]
        );
        let k = kinds("<-[r]-");
        assert_eq!(k[0], TokenKind::Lt);
        assert_eq!(k[1], TokenKind::Dash);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(kinds("<= >= <> < > =").len(), 7);
        assert_eq!(kinds("a <> b")[1], TokenKind::Ne);
        assert_eq!(kinds("a <= b")[1], TokenKind::Le);
    }

    #[test]
    fn strings_with_both_quote_styles_and_escapes() {
        assert_eq!(kinds("'hello'")[0], TokenKind::Str("hello".into()));
        assert_eq!(kinds("\"world\"")[0], TokenKind::Str("world".into()));
        assert_eq!(kinds(r#"'it\'s'"#)[0], TokenKind::Str("it's".into()));
    }

    #[test]
    fn parameters_and_backquoted_identifiers() {
        assert_eq!(kinds("$name")[0], TokenKind::Parameter("name".into()));
        assert_eq!(kinds("`weird name`")[0], TokenKind::Ident("weird name".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("MATCH // a comment\n (a) /* block */ RETURN a");
        assert_eq!(k.len(), 7);
    }

    #[test]
    fn tokens_carry_spans() {
        let toks = Lexer::tokenize("MATCH $id").unwrap();
        assert_eq!((toks[0].offset, toks[0].len), (0, 5));
        assert_eq!((toks[1].offset, toks[1].len), (6, 3));
        assert_eq!(toks[2].len, 0); // Eof
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Lexer::tokenize("MATCH ^").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(Lexer::tokenize("'oops").is_err());
        assert!(Lexer::tokenize("/* nope").is_err());
    }

    #[test]
    fn recovery_reports_every_problem_and_keeps_lexing() {
        let (tokens, diags) = Lexer::tokenize_recovering("MATCH ^ (a) ~ RETURN a");
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].code, "E_UNEXPECTED_CHAR");
        assert_eq!(diags[0].span, (1, 7, 1));
        assert_eq!(diags[1].span, (1, 13, 1));
        // The good tokens around the junk all survive.
        let kinds: Vec<_> = tokens.into_iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokenKind::Keyword("RETURN".into())));
        assert_eq!(kinds.len(), 7); // MATCH ( a ) RETURN a Eof
    }

    #[test]
    fn unterminated_string_still_yields_its_partial_token() {
        let (tokens, diags) = Lexer::tokenize_recovering("RETURN 'oops");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "E_UNTERMINATED_STRING");
        assert_eq!(tokens[1].kind, TokenKind::Str("oops".into()));
    }
}
