//! The Cypher lexer: turns query text into a token stream.

use crate::token::{is_keyword, Token, TokenKind};

/// Errors produced while lexing.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset where it occurred.
    pub offset: usize,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// A streaming lexer over a query string.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0 }
    }

    /// Lex the entire input into a vector of tokens terminated by `Eof`.
    pub fn tokenize(src: &'a str) -> Result<Vec<Token>, LexError> {
        let mut lexer = Lexer::new(src);
        let mut tokens = Vec::new();
        loop {
            let tok = lexer.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            tokens.push(tok);
            if done {
                break;
            }
        }
        Ok(tokens)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_whitespace_and_comments(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                // line comment `// ...`
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                // block comment `/* ... */`
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(LexError {
                                    message: "unterminated block comment".into(),
                                    offset: start,
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produce the next token.
    pub fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_whitespace_and_comments()?;
        let offset = self.pos;
        let Some(c) = self.peek() else {
            return Ok(Token { kind: TokenKind::Eof, offset });
        };

        let kind = match c {
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'[' => {
                self.bump();
                TokenKind::LBracket
            }
            b']' => {
                self.bump();
                TokenKind::RBracket
            }
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b':' => {
                self.bump();
                TokenKind::Colon
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b'|' => {
                self.bump();
                TokenKind::Pipe
            }
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'/' => {
                self.bump();
                TokenKind::Slash
            }
            b'%' => {
                self.bump();
                TokenKind::Percent
            }
            b'-' => {
                self.bump();
                TokenKind::Dash
            }
            b'=' => {
                self.bump();
                TokenKind::Eq
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        TokenKind::Le
                    }
                    Some(b'>') => {
                        self.bump();
                        TokenKind::Ne
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'.' => {
                self.bump();
                if self.peek() == Some(b'.') {
                    self.bump();
                    TokenKind::DotDot
                } else {
                    TokenKind::Dot
                }
            }
            b'$' => {
                self.bump();
                let name = self.lex_bare_word();
                if name.is_empty() {
                    return Err(LexError { message: "empty parameter name".into(), offset });
                }
                TokenKind::Parameter(name)
            }
            b'\'' | b'"' => self.lex_string(c, offset)?,
            b'`' => {
                // back-quoted identifier
                self.bump();
                let start = self.pos;
                while let Some(ch) = self.peek() {
                    if ch == b'`' {
                        break;
                    }
                    self.pos += 1;
                }
                if self.peek() != Some(b'`') {
                    return Err(LexError {
                        message: "unterminated quoted identifier".into(),
                        offset,
                    });
                }
                let name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.bump();
                TokenKind::Ident(name)
            }
            c if c.is_ascii_digit() => self.lex_number(offset)?,
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let word = self.lex_bare_word();
                if is_keyword(&word) {
                    TokenKind::Keyword(word.to_ascii_uppercase())
                } else {
                    TokenKind::Ident(word)
                }
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{}`", other as char),
                    offset,
                })
            }
        };
        Ok(Token { kind, offset })
    }

    fn lex_bare_word(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn lex_number(&mut self, offset: usize) -> Result<TokenKind, LexError> {
        let start = self.pos;
        while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
            self.pos += 1;
        }
        // A fractional part only if the dot is followed by a digit; this keeps
        // `1..3` (a variable-length range) lexing as Integer DotDot Integer.
        let mut is_float = false;
        if self.peek() == Some(b'.') && self.peek2().map(|c| c.is_ascii_digit()).unwrap_or(false) {
            is_float = true;
            self.pos += 1;
            while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|e| LexError { message: format!("bad float literal: {e}"), offset })
        } else {
            text.parse::<i64>()
                .map(TokenKind::Integer)
                .map_err(|e| LexError { message: format!("bad integer literal: {e}"), offset })
        }
    }

    fn lex_string(&mut self, quote: u8, offset: usize) -> Result<TokenKind, LexError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(c) if c == quote => out.push(c as char),
                    Some(c) => out.push(c as char),
                    None => return Err(LexError { message: "unterminated string".into(), offset }),
                },
                Some(c) => out.push(c as char),
                None => return Err(LexError { message: "unterminated string".into(), offset }),
            }
        }
        Ok(TokenKind::Str(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_basic_match_query() {
        let k = kinds("MATCH (a:Person) RETURN a");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword("MATCH".into()),
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::Colon,
                TokenKind::Ident("Person".into()),
                TokenKind::RParen,
                TokenKind::Keyword("RETURN".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(kinds("match")[0], TokenKind::Keyword("MATCH".into()));
        assert_eq!(kinds("ReTuRn")[0], TokenKind::Keyword("RETURN".into()));
    }

    #[test]
    fn variable_length_range_does_not_lex_as_float() {
        let k = kinds("*1..3");
        assert_eq!(
            k,
            vec![
                TokenKind::Star,
                TokenKind::Integer(1),
                TokenKind::DotDot,
                TokenKind::Integer(3),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_floats() {
        assert_eq!(kinds("42")[0], TokenKind::Integer(42));
        assert_eq!(kinds("3.25")[0], TokenKind::Float(3.25));
    }

    #[test]
    fn relationship_arrows_lex_as_punctuation() {
        let k = kinds("-[:KNOWS]->");
        assert_eq!(
            k,
            vec![
                TokenKind::Dash,
                TokenKind::LBracket,
                TokenKind::Colon,
                TokenKind::Ident("KNOWS".into()),
                TokenKind::RBracket,
                TokenKind::Dash,
                TokenKind::Gt,
                TokenKind::Eof
            ]
        );
        let k = kinds("<-[r]-");
        assert_eq!(k[0], TokenKind::Lt);
        assert_eq!(k[1], TokenKind::Dash);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(kinds("<= >= <> < > =").len(), 7);
        assert_eq!(kinds("a <> b")[1], TokenKind::Ne);
        assert_eq!(kinds("a <= b")[1], TokenKind::Le);
    }

    #[test]
    fn strings_with_both_quote_styles_and_escapes() {
        assert_eq!(kinds("'hello'")[0], TokenKind::Str("hello".into()));
        assert_eq!(kinds("\"world\"")[0], TokenKind::Str("world".into()));
        assert_eq!(kinds(r#"'it\'s'"#)[0], TokenKind::Str("it's".into()));
    }

    #[test]
    fn parameters_and_backquoted_identifiers() {
        assert_eq!(kinds("$name")[0], TokenKind::Parameter("name".into()));
        assert_eq!(kinds("`weird name`")[0], TokenKind::Ident("weird name".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("MATCH // a comment\n (a) /* block */ RETURN a");
        assert_eq!(k.len(), 7);
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Lexer::tokenize("MATCH ^").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(Lexer::tokenize("'oops").is_err());
        assert!(Lexer::tokenize("/* nope").is_err());
    }
}
