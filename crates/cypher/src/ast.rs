//! Abstract syntax tree for the supported Cypher subset.

/// A literal value appearing in query text.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// 64-bit signed integer.
    Integer(i64),
    /// Double-precision float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// The SQL-ish `NULL`.
    Null,
}

/// Relationship traversal direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `-[]->` left to right.
    Outgoing,
    /// `<-[]-` right to left.
    Incoming,
    /// `-[]-` either direction.
    Both,
}

/// A node pattern: `(var:Label1:Label2 {key: literal, …})`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodePattern {
    /// Binding variable, if named.
    pub variable: Option<String>,
    /// Label constraints (conjunctive).
    pub labels: Vec<String>,
    /// Inline property equality constraints.
    pub properties: Vec<(String, Literal)>,
}

/// A relationship pattern: `-[var:TYPE1|TYPE2 *min..max {key: literal}]->`.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationshipPattern {
    /// Binding variable, if named.
    pub variable: Option<String>,
    /// Relationship type alternatives (disjunctive). Empty = any type.
    pub types: Vec<String>,
    /// Traversal direction.
    pub direction: Direction,
    /// Variable-length bounds: `None` = single hop; `Some((min, max))` where
    /// `max = None` means unbounded (`*`, `*2..`).
    pub var_length: Option<(u32, Option<u32>)>,
    /// Inline property equality constraints on the edge.
    pub properties: Vec<(String, Literal)>,
}

impl Default for RelationshipPattern {
    fn default() -> Self {
        RelationshipPattern {
            variable: None,
            types: Vec::new(),
            direction: Direction::Outgoing,
            var_length: None,
            properties: Vec::new(),
        }
    }
}

/// A linear path pattern: a node followed by zero or more (relationship, node)
/// steps, e.g. `(a)-[:KNOWS]->(b)<-[:LIKES]-(c)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathPattern {
    /// The first node of the path.
    pub start: NodePattern,
    /// Each traversal step: the relationship and the node it lands on.
    pub steps: Vec<(RelationshipPattern, NodePattern)>,
}

impl PathPattern {
    /// All node patterns in order along the path.
    pub fn nodes(&self) -> Vec<&NodePattern> {
        let mut out = vec![&self.start];
        out.extend(self.steps.iter().map(|(_, n)| n));
        out
    }

    /// Number of relationship steps.
    pub fn hop_count(&self) -> usize {
        self.steps.len()
    }
}

/// Scalar and boolean expressions (WHERE predicates, RETURN projections).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Literal(Literal),
    /// A bound variable (`a`).
    Variable(String),
    /// Property access (`a.name`).
    Property(String, String),
    /// A query parameter (`$id`).
    Parameter(String),
    /// Unary operators.
    Unary(UnaryOperator, Box<Expr>),
    /// Binary operators.
    Binary(BinaryOperator, Box<Expr>, Box<Expr>),
    /// Function call, possibly an aggregation; `distinct` covers
    /// `count(DISTINCT x)`.
    FunctionCall {
        /// Lower-cased function name.
        name: String,
        /// Argument expressions (`count(*)` is represented with no arguments).
        args: Vec<Expr>,
        /// Whether `DISTINCT` was specified.
        distinct: bool,
    },
    /// A bracketed list literal.
    List(Vec<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOperator {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Minus,
}

/// Binary operators, in the Cypher sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOperator {
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `XOR`
    Xor,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `IN`
    In,
}

/// One projected item of a `RETURN` or `WITH` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ReturnItem {
    /// The projected expression.
    pub expr: Expr,
    /// Optional `AS alias`.
    pub alias: Option<String>,
}

impl ReturnItem {
    /// The column name this item produces in the result set.
    pub fn column_name(&self) -> String {
        if let Some(alias) = &self.alias {
            return alias.clone();
        }
        match &self.expr {
            Expr::Variable(v) => v.clone(),
            Expr::Property(v, p) => format!("{v}.{p}"),
            Expr::FunctionCall { name, args, .. } => {
                if args.is_empty() {
                    format!("{name}(*)")
                } else {
                    format!("{name}(…)")
                }
            }
            _ => "expr".to_string(),
        }
    }
}

/// Sort direction of an `ORDER BY` key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (default).
    Ascending,
    /// Descending.
    Descending,
}

/// A `RETURN` / `WITH` projection with its modifiers.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    /// Whether `DISTINCT` was given.
    pub distinct: bool,
    /// Projected items, in order.
    pub items: Vec<ReturnItem>,
    /// `ORDER BY` keys.
    pub order_by: Vec<(Expr, SortOrder)>,
    /// `SKIP n`.
    pub skip: Option<u64>,
    /// `LIMIT n`.
    pub limit: Option<u64>,
}

/// A single `SET` assignment: `variable.property = expression`.
#[derive(Debug, Clone, PartialEq)]
pub struct SetItem {
    /// Target variable.
    pub variable: String,
    /// Target property name.
    pub property: String,
    /// Value expression.
    pub value: Expr,
}

/// One item of a `CALL … YIELD` list: `column [AS alias]`.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldItem {
    /// The procedure output column being yielded.
    pub column: String,
    /// Optional `AS alias`.
    pub alias: Option<String>,
}

impl YieldItem {
    /// The variable name this item binds in subsequent clauses.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.column)
    }
}

/// Top-level query clauses, in source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `MATCH pattern [, pattern]*` (with `optional = true` for `OPTIONAL MATCH`).
    Match {
        /// Whether this is an `OPTIONAL MATCH`.
        optional: bool,
        /// Comma-separated path patterns.
        patterns: Vec<PathPattern>,
    },
    /// `WHERE predicate`.
    Where(Expr),
    /// `RETURN …`.
    Return(Projection),
    /// `WITH …` (intermediate projection).
    With(Projection),
    /// `CREATE pattern [, pattern]*`.
    Create(Vec<PathPattern>),
    /// `DELETE var [, var]*` (with `detach = true` for `DETACH DELETE`).
    Delete {
        /// Whether `DETACH` was specified.
        detach: bool,
        /// Variables naming the entities to delete.
        variables: Vec<String>,
    },
    /// `SET a.p = expr [, …]`.
    Set(Vec<SetItem>),
    /// `UNWIND list AS var`.
    Unwind {
        /// The list-valued expression.
        list: Expr,
        /// The introduced variable.
        variable: String,
    },
    /// `CALL proc.name(args) [YIELD col [AS alias], …]`.
    Call {
        /// Dotted procedure name (`algo.pagerank`), as written.
        procedure: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Yield items; empty means "yield every output column under its
        /// natural name".
        yields: Vec<YieldItem>,
    },
}

/// A parsed query: an ordered list of clauses.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Clauses in the order they appear in the query text.
    pub clauses: Vec<Clause>,
}

impl Query {
    /// The `RETURN` projection, if the query has one.
    pub fn return_clause(&self) -> Option<&Projection> {
        self.clauses.iter().find_map(|c| match c {
            Clause::Return(p) => Some(p),
            _ => None,
        })
    }

    /// True if the query only reads (no CREATE / DELETE / SET).
    pub fn is_read_only(&self) -> bool {
        !self
            .clauses
            .iter()
            .any(|c| matches!(c, Clause::Create(_) | Clause::Delete { .. } | Clause::Set(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn return_item_column_names() {
        let item = ReturnItem { expr: Expr::Property("a".into(), "name".into()), alias: None };
        assert_eq!(item.column_name(), "a.name");
        let aliased = ReturnItem { expr: Expr::Variable("a".into()), alias: Some("x".into()) };
        assert_eq!(aliased.column_name(), "x");
        let agg = ReturnItem {
            expr: Expr::FunctionCall { name: "count".into(), args: vec![], distinct: false },
            alias: None,
        };
        assert_eq!(agg.column_name(), "count(*)");
    }

    #[test]
    fn path_pattern_helpers() {
        let p = PathPattern {
            start: NodePattern { variable: Some("a".into()), ..Default::default() },
            steps: vec![(RelationshipPattern::default(), NodePattern::default())],
        };
        assert_eq!(p.hop_count(), 1);
        assert_eq!(p.nodes().len(), 2);
    }

    #[test]
    fn read_only_detection() {
        let read = Query {
            clauses: vec![Clause::Return(Projection {
                distinct: false,
                items: vec![],
                order_by: vec![],
                skip: None,
                limit: None,
            })],
        };
        assert!(read.is_read_only());
        let write = Query { clauses: vec![Clause::Create(vec![])] };
        assert!(!write.is_read_only());
    }
}
