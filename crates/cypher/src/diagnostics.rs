//! Structured parse diagnostics with source spans.
//!
//! Both the lexer and the parser recover past the first problem and report
//! *every* diagnostic they find, each carrying a stable machine-readable
//! code and a `(line, col, len)` span resolved against the query text —
//! the Spark-trace / rowan-recovery idiom instead of first-error bailout.

use std::fmt;

/// One problem found while lexing or parsing, with a precise source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`"E_EXPECTED_EXPR"`, …).
    pub code: &'static str,
    /// `(line, col, len)`: 1-based line and column of the first byte of the
    /// offending range, and its length in bytes (0 at end of input).
    pub span: (u32, u32, u32),
    /// Human-readable description of the problem.
    pub message: String,
    /// Extra context: hints about what would have been valid here.
    pub notes: Vec<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (line, col, _) = self.span;
        write!(f, "{line}:{col}: {} ({})", self.message, self.code)?;
        for note in &self.notes {
            write!(f, " — note: {note}")?;
        }
        Ok(())
    }
}

/// A diagnostic before span resolution: a raw byte range into the source.
/// The lexer and parser produce these; [`resolve`] turns them into public
/// [`Diagnostic`]s once the source text is in hand.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RawDiagnostic {
    pub(crate) code: &'static str,
    pub(crate) offset: usize,
    pub(crate) len: usize,
    pub(crate) message: String,
    pub(crate) notes: Vec<String>,
}

impl RawDiagnostic {
    pub(crate) fn new(code: &'static str, offset: usize, len: usize, message: String) -> Self {
        RawDiagnostic { code, offset, len, message, notes: Vec::new() }
    }

    pub(crate) fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

/// 1-based `(line, col)` of the given byte offset in `src`. Columns count
/// bytes from the last newline, which matches how editors address ASCII
/// query text; an offset past the end addresses the end of input.
pub fn line_col(src: &str, offset: usize) -> (u32, u32) {
    let offset = offset.min(src.len());
    let before = &src.as_bytes()[..offset];
    let line = before.iter().filter(|&&b| b == b'\n').count() as u32 + 1;
    let col = before.iter().rev().take_while(|&&b| b != b'\n').count() as u32 + 1;
    (line, col)
}

/// Resolve raw byte-offset diagnostics into public spanned ones, ordered by
/// source position.
pub(crate) fn resolve(src: &str, mut raw: Vec<RawDiagnostic>) -> Vec<Diagnostic> {
    raw.sort_by_key(|d| d.offset);
    raw.into_iter()
        .map(|d| {
            let (line, col) = line_col(src, d.offset);
            Diagnostic {
                code: d.code,
                span: (line, col, d.len as u32),
                message: d.message,
                notes: d.notes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_is_one_based_and_newline_aware() {
        assert_eq!(line_col("abc", 0), (1, 1));
        assert_eq!(line_col("abc", 2), (1, 3));
        assert_eq!(line_col("ab\ncd", 3), (2, 1));
        assert_eq!(line_col("ab\ncd", 4), (2, 2));
        // past-the-end clamps to end of input
        assert_eq!(line_col("ab", 99), (1, 3));
    }

    #[test]
    fn diagnostics_render_span_code_and_notes() {
        let d = Diagnostic {
            code: "E_TEST",
            span: (2, 7, 3),
            message: "something broke".into(),
            notes: vec!["try harder".into()],
        };
        assert_eq!(d.to_string(), "2:7: something broke (E_TEST) — note: try harder");
    }

    #[test]
    fn resolution_orders_by_offset() {
        let raw = vec![
            RawDiagnostic::new("E_B", 5, 1, "second".into()),
            RawDiagnostic::new("E_A", 1, 1, "first".into()),
        ];
        let out = resolve("MATCH x\n", raw);
        assert_eq!(out[0].message, "first");
        assert_eq!(out[1].message, "second");
        assert_eq!(out[0].span, (1, 2, 1));
    }
}
