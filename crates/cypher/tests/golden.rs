//! Golden-file parser tests: each query's parsed AST (pretty `Debug`) — or,
//! for the error cases, the `ParseError` display — is snapshotted under
//! `tests/golden/*.snap` and compared verbatim on every run.
//!
//! To (re)generate snapshots after an intentional grammar change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p cypher --test golden
//! ```
//!
//! and review the diff like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

/// The corpus: name → query. Covers every clause the README advertises
/// (MATCH / WHERE / CREATE / DELETE / SET / UNWIND / WITH), the aggregate
/// functions, projection modifiers, and a set of malformed inputs whose
/// error messages are part of the contract.
const CASES: &[(&str, &str)] = &[
    (
        "match_simple",
        "MATCH (a:Person)-[:KNOWS]->(b) RETURN a.name, b.name",
    ),
    (
        "match_where_boolean",
        "MATCH (a:Person) WHERE a.age > 30 AND NOT a.name = 'Bob' RETURN a",
    ),
    (
        "match_varlength_id_seek",
        "MATCH (s:Node)-[*1..3]->(t) WHERE id(s) = 7 RETURN count(t)",
    ),
    (
        "match_undirected_with_props",
        "MATCH (a {name: 'Ann'})-[r:PAID {amount: 30}]-(b:Merchant) RETURN r",
    ),
    (
        "match_multi_pattern",
        "MATCH (a:Customer)-[:HOLDS]->(card:Card)<-[:HOLDS]-(b:Customer) \
         WHERE a.name < b.name RETURN a.name, b.name, card.number",
    ),
    (
        "create_nodes_and_edges",
        "CREATE (ann:Person {name: 'Ann', age: 34})-[:KNOWS {since: 2015}]->(bob:Person {name: 'Bob'})",
    ),
    (
        "delete_edge",
        "MATCH (a:Node {id: 9})-[r:NEXT]->(b) DELETE r",
    ),
    (
        "detach_delete_node",
        "MATCH (n:Node {id: 5}) DETACH DELETE n",
    ),
    (
        "set_properties",
        "MATCH (c:Counter) SET c.n = 10, c.label = 'updated' RETURN c.n",
    ),
    (
        "unwind_list",
        "UNWIND [1, 2, 3] AS x RETURN x",
    ),
    (
        "aggregates_order_skip_limit",
        "MATCH (p:Person) RETURN count(p), avg(p.age) AS mean, min(p.age), max(p.age), collect(p.name) \
         ORDER BY mean DESC SKIP 1 LIMIT 2",
    ),
    (
        "return_distinct",
        "MATCH (a)-[:KNOWS]->(b) RETURN DISTINCT b.name",
    ),
    (
        "with_projection",
        "MATCH (a:Person) WITH a.age AS age RETURN age",
    ),
    (
        "call_pagerank_yield",
        "CALL algo.pagerank() YIELD node, score RETURN node, score ORDER BY score DESC LIMIT 5",
    ),
    (
        "call_bfs_args_and_alias",
        "CALL algo.bfs(7) YIELD node AS n, level RETURN n, level ORDER BY level",
    ),
    (
        "call_wcc_filtered",
        "CALL algo.wcc() YIELD node, component WHERE component = 0 RETURN count(node)",
    ),
    (
        "match_with_parameters",
        "MATCH (s:Node)-[*1..2]->(t) WHERE id(s) = $src AND t.name = $name RETURN count(t)",
    ),
    // Error paths: the snapshot records the ParseError display — every
    // recovered diagnostic with its `line:col` span and code — so span and
    // wording regressions are caught too.
    ("err_unclosed_node", "MATCH (a RETURN a"),
    ("err_dangling_relationship", "MATCH (a)-[:KNOWS]-> RETURN a"),
    ("err_bad_property_literal", "CREATE (a:Person {name: })"),
    ("err_unknown_clause", "FROBNICATE (a) RETURN a"),
    ("err_missing_return_items", "MATCH (a) RETURN"),
    ("err_unterminated_string", "MATCH (a {name: 'Ann) RETURN a"),
    ("err_call_empty_yield", "CALL algo.bfs(0) YIELD RETURN node"),
    ("err_call_missing_parens", "CALL algo.pagerank YIELD node"),
    // Multi-error recovery: one malformed clause must not hide the problems
    // after it — the parser resynchronizes at the next clause keyword.
    ("err_recovery_three_clauses", "MATCH (a WHERE 1 + RETURN )"),
    ("err_recovery_multiline", "MATCH (a\nRETURN a,\nRETURN b"),
    ("err_recovery_lex_and_parse", "MATCH ^ (a) RETURN a +"),
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn render(query: &str) -> String {
    let mut out = String::new();
    writeln!(out, "query: {query}").unwrap();
    match cypher::parse(query) {
        Ok(ast) => writeln!(out, "{ast:#?}").unwrap(),
        Err(err) => writeln!(out, "ERROR: {err}").unwrap(),
    }
    out
}

#[test]
fn parser_output_matches_golden_snapshots() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    let mut failures = Vec::new();

    for (name, query) in CASES {
        let actual = render(query);
        let path = dir.join(format!("{name}.snap"));
        if update {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&path, &actual).unwrap();
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(expected) if expected == actual => {}
            Ok(expected) => failures.push(format!(
                "snapshot mismatch for `{name}`\n--- expected ({}) ---\n{expected}\n--- actual ---\n{actual}",
                path.display()
            )),
            Err(e) => failures.push(format!(
                "missing snapshot {} for `{name}` ({e}); run with UPDATE_GOLDEN=1 to create it",
                path.display()
            )),
        }
    }

    assert!(
        failures.is_empty(),
        "{} golden case(s) diverged:\n\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn golden_corpus_covers_the_advertised_grammar() {
    // The corpus itself is part of the contract: make sure the happy-path
    // cases exercise every clause kind so a grammar regression cannot hide
    // behind a shrunken test set.
    use cypher::Clause;
    let mut seen_match = false;
    let mut seen_where = false;
    let mut seen_create = false;
    let mut seen_delete = false;
    let mut seen_set = false;
    let mut seen_unwind = false;
    let mut seen_with = false;
    let mut seen_aggregate = false;
    let mut seen_call = false;

    for (name, query) in CASES {
        if name.starts_with("err_") {
            assert!(
                cypher::parse(query).is_err(),
                "`{name}` is expected to be a parse error but parsed successfully"
            );
            continue;
        }
        let ast = cypher::parse(query)
            .unwrap_or_else(|e| panic!("happy-path case `{name}` failed to parse: {e}"));
        for clause in &ast.clauses {
            match clause {
                Clause::Match { .. } => seen_match = true,
                Clause::Where(_) => seen_where = true,
                Clause::Create(_) => seen_create = true,
                Clause::Delete { .. } => seen_delete = true,
                Clause::Set(_) => seen_set = true,
                Clause::Unwind { .. } => seen_unwind = true,
                Clause::With(_) => seen_with = true,
                Clause::Call { .. } => seen_call = true,
                Clause::Return(projection) => {
                    if projection.items.iter().any(|item| {
                        matches!(
                            &item.expr,
                            cypher::Expr::FunctionCall { name, .. }
                                if ["count", "sum", "avg", "min", "max", "collect"]
                                    .contains(&name.to_ascii_lowercase().as_str())
                        )
                    }) {
                        seen_aggregate = true;
                    }
                }
            }
        }
    }

    assert!(seen_match, "corpus must cover MATCH");
    assert!(seen_where, "corpus must cover WHERE");
    assert!(seen_create, "corpus must cover CREATE");
    assert!(seen_delete, "corpus must cover DELETE");
    assert!(seen_set, "corpus must cover SET");
    assert!(seen_unwind, "corpus must cover UNWIND");
    assert!(seen_with, "corpus must cover WITH");
    assert!(seen_aggregate, "corpus must cover aggregate functions");
    assert!(seen_call, "corpus must cover CALL … YIELD");
}
