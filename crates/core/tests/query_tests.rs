//! End-to-end query tests: Cypher text in, result rows out, exercising the
//! full parse → plan → execute pipeline against the matrix-backed store.

use redisgraph_core::{Graph, Value};

/// A small social graph used by most tests.
fn social_graph() -> Graph {
    let mut g = Graph::new("social");
    g.query(
        "CREATE (ann:Person {name: 'Ann', age: 34}), \
                (bob:Person {name: 'Bob', age: 28}), \
                (cat:Person {name: 'Cat', age: 41}), \
                (dan:Person {name: 'Dan', age: 23}), \
                (acme:Company {name: 'Acme'}), \
                (ann)-[:KNOWS {since: 2015}]->(bob), \
                (bob)-[:KNOWS {since: 2019}]->(cat), \
                (cat)-[:KNOWS {since: 2020}]->(dan), \
                (ann)-[:WORKS_AT]->(acme), \
                (bob)-[:WORKS_AT]->(acme)",
    )
    .unwrap();
    g
}

#[test]
fn create_reports_statistics() {
    let mut g = Graph::new("t");
    let rs = g.query("CREATE (:A {x: 1})-[:R {w: 2}]->(:B)").unwrap();
    assert_eq!(rs.stats.nodes_created, 2);
    assert_eq!(rs.stats.relationships_created, 1);
    assert_eq!(rs.stats.properties_set, 2);
    assert_eq!(g.node_count(), 2);
    assert_eq!(g.edge_count(), 1);
}

#[test]
fn match_all_nodes() {
    let mut g = social_graph();
    let rs = g.query("MATCH (n) RETURN n").unwrap();
    assert_eq!(rs.rows.len(), 5);
}

#[test]
fn match_by_label() {
    let mut g = social_graph();
    let rs = g.query("MATCH (p:Person) RETURN p.name ORDER BY p.name").unwrap();
    let names: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(names, vec!["Ann", "Bob", "Cat", "Dan"]);
}

#[test]
fn match_with_inline_properties() {
    let mut g = social_graph();
    let rs = g.query("MATCH (p:Person {name: 'Bob'}) RETURN p.age").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(28)));
}

#[test]
fn single_hop_traversal_with_type() {
    let mut g = social_graph();
    let rs = g.query("MATCH (a:Person {name: 'Ann'})-[:KNOWS]->(b) RETURN b.name").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Str("Bob".into())));
}

#[test]
fn traversal_direction_matters() {
    let mut g = social_graph();
    let out = g.query("MATCH (a {name: 'Bob'})-[:KNOWS]->(b) RETURN b.name").unwrap();
    assert_eq!(out.scalar(), Some(&Value::Str("Cat".into())));
    let incoming = g.query("MATCH (a {name: 'Bob'})<-[:KNOWS]-(b) RETURN b.name").unwrap();
    assert_eq!(incoming.scalar(), Some(&Value::Str("Ann".into())));
    let both =
        g.query("MATCH (a {name: 'Bob'})-[:KNOWS]-(b) RETURN b.name ORDER BY b.name").unwrap();
    assert_eq!(both.rows.len(), 2);
}

#[test]
fn multi_hop_chained_pattern() {
    let mut g = social_graph();
    let rs =
        g.query("MATCH (a:Person {name: 'Ann'})-[:KNOWS]->()-[:KNOWS]->(c) RETURN c.name").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Str("Cat".into())));
}

#[test]
fn variable_length_traversal() {
    let mut g = social_graph();
    let rs = g
        .query("MATCH (a:Person {name: 'Ann'})-[:KNOWS*1..3]->(b) RETURN b.name ORDER BY b.name")
        .unwrap();
    let names: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(names, vec!["Bob", "Cat", "Dan"]);

    let rs = g.query("MATCH (a:Person {name: 'Ann'})-[:KNOWS*2..2]->(b) RETURN b.name").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Str("Cat".into())));
}

#[test]
fn khop_count_query_matches_library_fast_path() {
    let mut g = Graph::new("k");
    g.query("CREATE (a:Node), (b:Node), (c:Node), (d:Node), (a)-[:LINK]->(b), (b)-[:LINK]->(c), (c)-[:LINK]->(d), (a)-[:LINK]->(c)").unwrap();
    let rs = g.query("MATCH (s)-[*1..2]->(t) WHERE id(s) = 0 RETURN count(t)").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(3)));
    assert_eq!(g.khop_count(0, 2), 3);
    let rs6 = g.query("MATCH (s)-[*1..6]->(t) WHERE id(s) = 0 RETURN count(t)").unwrap();
    assert_eq!(rs6.scalar(), Some(&Value::Int(3)));
}

#[test]
fn where_filters_with_boolean_logic() {
    let mut g = social_graph();
    let rs = g
        .query("MATCH (p:Person) WHERE p.age > 25 AND p.age < 40 RETURN p.name ORDER BY p.name")
        .unwrap();
    let names: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(names, vec!["Ann", "Bob"]);

    let rs =
        g.query("MATCH (p:Person) WHERE p.name = 'Ann' OR p.name = 'Dan' RETURN count(p)").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(2)));
}

#[test]
fn aggregations_with_grouping() {
    let mut g = social_graph();
    // group people by whether they work at Acme
    let rs = g.query("MATCH (p:Person)-[:WORKS_AT]->(c:Company) RETURN c.name, count(p)").unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Str("Acme".into()));
    assert_eq!(rs.rows[0][1], Value::Int(2));

    let rs =
        g.query("MATCH (p:Person) RETURN min(p.age), max(p.age), avg(p.age), sum(p.age)").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(23));
    assert_eq!(rs.rows[0][1], Value::Int(41));
    assert_eq!(rs.rows[0][2], Value::Float(31.5));
    assert_eq!(rs.rows[0][3], Value::Int(126));
}

#[test]
fn count_star_and_distinct() {
    let mut g = social_graph();
    let rs = g.query("MATCH (p:Person) RETURN count(*)").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(4)));
    let rs = g.query("MATCH (:Person)-[:WORKS_AT]->(c) RETURN count(DISTINCT c)").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(1)));
}

#[test]
fn order_skip_limit() {
    let mut g = social_graph();
    let rs = g.query("MATCH (p:Person) RETURN p.name ORDER BY p.age DESC SKIP 1 LIMIT 2").unwrap();
    let names: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    // ages desc: Cat(41), Ann(34), Bob(28), Dan(23); skip 1, limit 2 → Ann, Bob
    assert_eq!(names, vec!["Ann", "Bob"]);
}

#[test]
fn distinct_rows() {
    let mut g = social_graph();
    let rs = g.query("MATCH (p:Person)-[:WORKS_AT]->(c:Company) RETURN DISTINCT c.name").unwrap();
    assert_eq!(rs.rows.len(), 1);
}

#[test]
fn set_updates_properties() {
    let mut g = social_graph();
    let rs = g
        .query("MATCH (p:Person {name: 'Ann'}) SET p.age = 35, p.title = 'engineer' RETURN p.age")
        .unwrap();
    assert_eq!(rs.stats.properties_set, 2);
    assert_eq!(rs.scalar(), Some(&Value::Int(35)));
    assert_eq!(g.node_property(0, "title"), Value::Str("engineer".into()));
}

#[test]
fn delete_removes_nodes_and_edges() {
    let mut g = social_graph();
    let before_edges = g.edge_count();
    let rs = g.query("MATCH (p:Person {name: 'Bob'}) DETACH DELETE p").unwrap();
    assert_eq!(rs.stats.nodes_deleted, 1);
    assert!(rs.stats.relationships_deleted >= 2);
    assert_eq!(g.node_count(), 4);
    assert!(g.edge_count() < before_edges);
    // Bob is gone from label scans and traversals.
    let rs = g.query("MATCH (p:Person) RETURN count(p)").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(3)));
}

#[test]
fn unwind_produces_one_row_per_element() {
    let mut g = Graph::new("u");
    let rs = g.query("UNWIND [1, 2, 3] AS x RETURN x * 10 ORDER BY x").unwrap();
    let values: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(values, vec![10, 20, 30]);
}

#[test]
fn with_chains_projections() {
    let mut g = social_graph();
    let rs =
        g.query("MATCH (p:Person) WITH p.age AS age WHERE age > 30 RETURN count(age)").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(2)));
}

#[test]
fn scalar_functions_in_projections() {
    let mut g = social_graph();
    let rs =
        g.query("MATCH (p:Person {name: 'Ann'}) RETURN id(p), labels(p), size(labels(p))").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(0));
    assert_eq!(rs.rows[0][1], Value::List(vec![Value::Str("Person".into())]));
    assert_eq!(rs.rows[0][2], Value::Int(1));
}

#[test]
fn relationship_property_filter() {
    let mut g = social_graph();
    let rs = g
        .query("MATCH (a)-[k:KNOWS]->(b) WHERE k.since >= 2019 RETURN b.name ORDER BY b.name")
        .unwrap();
    let names: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(names, vec!["Cat", "Dan"]);
}

#[test]
fn relationship_inline_property_map() {
    let mut g = social_graph();
    let rs = g.query("MATCH (a)-[:KNOWS {since: 2015}]->(b) RETURN b.name").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Str("Bob".into())));
}

#[test]
fn nonexistent_relationship_type_matches_nothing() {
    let mut g = social_graph();
    let rs = g.query("MATCH (a)-[:NOPE]->(b) RETURN count(b)").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(0)));
}

#[test]
fn cartesian_product_of_patterns() {
    let mut g = social_graph();
    let rs = g.query("MATCH (p:Person), (c:Company) RETURN count(*)").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(4)));
}

#[test]
fn match_after_create_sees_new_data() {
    let mut g = Graph::new("rw");
    g.query("CREATE (:X {v: 1})").unwrap();
    g.query("CREATE (:X {v: 2})").unwrap();
    let rs = g.query("MATCH (x:X) RETURN sum(x.v)").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(3)));
}

#[test]
fn match_then_create_connects_existing_nodes() {
    let mut g = social_graph();
    g.query("MATCH (a:Person {name: 'Ann'}), (d:Person {name: 'Dan'}) CREATE (a)-[:KNOWS {since: 2024}]->(d)").unwrap();
    let rs = g.query("MATCH (a {name: 'Ann'})-[:KNOWS]->(b) RETURN count(b)").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(2)));
}

#[test]
fn explain_lists_plan_operations() {
    let g = social_graph();
    let plan = g.explain("MATCH (s:Node)-[*1..3]->(t) WHERE id(s) = 7 RETURN count(t)").unwrap();
    let text = plan.join("\n");
    assert!(text.contains("Node By Id Seek"));
    assert!(text.contains("Conditional Traverse"));
    assert!(text.contains("Aggregate"));
}

#[test]
fn syntax_errors_are_reported() {
    let mut g = Graph::new("err");
    let err = g.query("MATCH (a RETURN a").unwrap_err();
    assert!(matches!(err, redisgraph_core::QueryError::Syntax(_)));
    let err = g.query("MATCH (a) DELETE zz").unwrap_err();
    assert!(matches!(err, redisgraph_core::QueryError::UnknownVariable(_)));
}

#[test]
fn return_without_match_evaluates_expressions() {
    let mut g = Graph::new("expr");
    let rs = g.query("RETURN 1 + 2 * 3 AS x, 'a' + 'b' AS s").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(7));
    assert_eq!(rs.rows[0][1], Value::Str("ab".into()));
    assert_eq!(rs.columns, vec!["x", "s"]);
}

#[test]
fn execution_time_is_recorded() {
    let mut g = social_graph();
    let rs = g.query("MATCH (p:Person) RETURN count(p)").unwrap();
    assert!(rs.stats.execution_time.as_nanos() > 0);
}

// ---------------------------------------------------------------- CALL algo.*

/// A two-component graph for the algorithm procedures: a 4-cycle with a chord
/// (one triangle) plus an isolated pair.
fn algo_graph() -> Graph {
    let mut g = Graph::new("algos");
    g.query(
        "CREATE (a:Node {id: 0}), (b:Node {id: 1}), (c:Node {id: 2}), (d:Node {id: 3}), \
                (x:Node {id: 4}), (y:Node {id: 5}), \
                (a)-[:LINK {weight: 1.0}]->(b), \
                (b)-[:LINK {weight: 2.0}]->(c), \
                (c)-[:LINK {weight: 4.0}]->(a), \
                (c)-[:LINK {weight: 1.0}]->(d), \
                (x)-[:LINK]->(y)",
    )
    .unwrap();
    g
}

#[test]
fn call_bfs_yields_levels_composable_with_where() {
    let mut g = algo_graph();
    let rs = g
        .query("CALL algo.bfs(0) YIELD node, level WHERE level > 0 RETURN node ORDER BY level")
        .unwrap();
    // 0 is excluded by WHERE; reachable are 1 (level 1), 2 (level 2), 3 (level 3).
    assert_eq!(rs.rows.len(), 3);
    assert_eq!(rs.rows[0][0], Value::Node(1));
    assert_eq!(rs.rows[2][0], Value::Node(3));
}

#[test]
fn call_sssp_uses_edge_weights() {
    let mut g = algo_graph();
    let rs = g
        .query("CALL algo.sssp(0) YIELD node, distance RETURN node, distance ORDER BY distance")
        .unwrap();
    // 0 (0.0), 1 (1.0), 2 (3.0), 3 (4.0)
    assert_eq!(rs.rows.len(), 4);
    assert_eq!(rs.rows[3], vec![Value::Node(3), Value::Float(4.0)]);
}

#[test]
fn call_pagerank_top_scores_through_order_by_limit() {
    let mut g = algo_graph();
    let rs = g
        .query(
            "CALL algo.pagerank() YIELD node, score \
             RETURN node, score ORDER BY score DESC LIMIT 5",
        )
        .unwrap();
    assert_eq!(rs.columns, vec!["node", "score"]);
    assert_eq!(rs.rows.len(), 5);
    // Scores are sorted descending and sum (over all 6 nodes) to 1.
    let scores: Vec<f64> = rs.rows.iter().filter_map(|r| r[1].as_f64()).collect();
    assert!(scores.windows(2).all(|w| w[0] >= w[1]));
    let all = g.query("CALL algo.pagerank() YIELD score RETURN sum(score)").unwrap();
    let total = all.scalar().and_then(|v| v.as_f64()).unwrap();
    assert!((total - 1.0).abs() < 1e-6, "total = {total}");
}

#[test]
fn call_wcc_counts_components() {
    let mut g = algo_graph();
    let rs =
        g.query("CALL algo.wcc() YIELD node, component RETURN count(DISTINCT component)").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(2)));
}

#[test]
fn call_triangles_counts_the_chorded_cycle() {
    let mut g = algo_graph();
    let rs = g.query("CALL algo.triangles() YIELD triangles RETURN triangles").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(1)));
}

#[test]
fn call_yield_aliases_rebind_columns() {
    let mut g = algo_graph();
    let rs = g
        .query("CALL algo.bfs(0) YIELD node AS n, level AS hops RETURN n, hops ORDER BY hops")
        .unwrap();
    assert_eq!(rs.columns, vec!["n", "hops"]);
    assert_eq!(rs.rows[0], vec![Value::Node(0), Value::Int(0)]);
}

#[test]
fn call_runs_on_the_readonly_path() {
    let g = algo_graph();
    let rs = g.query_readonly("CALL algo.pagerank() YIELD node, score RETURN count(node)").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(6)));
}

#[test]
fn unknown_procedure_is_caught_at_plan_time() {
    let g = algo_graph();
    let err = g.explain("CALL algo.nope() YIELD x RETURN x").unwrap_err();
    assert!(matches!(err, redisgraph_core::QueryError::UnknownProcedure(p) if p == "algo.nope"));
}

#[test]
fn bad_yield_column_and_arity_are_plan_errors() {
    let g = algo_graph();
    let err = g.explain("CALL algo.pagerank() YIELD node, rank RETURN rank").unwrap_err();
    assert!(matches!(err, redisgraph_core::QueryError::Type(m) if m.contains("does not yield")));
    let err = g.explain("CALL algo.wcc(1) YIELD node RETURN node").unwrap_err();
    assert!(matches!(err, redisgraph_core::QueryError::Type(m) if m.contains("arguments")));
}

#[test]
fn procedure_call_appears_in_explain() {
    let g = algo_graph();
    let plan = g.explain("CALL algo.pagerank() YIELD node, score RETURN node").unwrap();
    assert!(plan.join("\n").contains("ProcedureCall | algo.pagerank"));
}

#[test]
fn yield_cannot_shadow_an_existing_variable() {
    let g = algo_graph();
    // `level` is already bound by UNWIND; YIELD must not silently clobber it.
    let err = g
        .explain("UNWIND [10, 20] AS level CALL algo.bfs(0) YIELD node, level RETURN level")
        .unwrap_err();
    assert!(
        matches!(err, redisgraph_core::QueryError::Type(ref m) if m.contains("already declared")),
        "got {err:?}"
    );
    // Renaming with AS resolves the collision.
    let plan = g
        .explain("UNWIND [10, 20] AS level CALL algo.bfs(0) YIELD node, level AS hops RETURN hops")
        .unwrap();
    assert!(plan.join("\n").contains("ProcedureCall"));
}

#[test]
fn fractional_node_ids_are_rejected_not_truncated() {
    let mut g = algo_graph();
    let err = g.query("CALL algo.bfs(1.9) YIELD node RETURN node").unwrap_err();
    assert!(
        matches!(err, redisgraph_core::QueryError::Type(ref m) if m.contains("integer")),
        "got {err:?}"
    );
    let err = g.query("CALL algo.pagerank(0.85, 2.7) YIELD node RETURN node").unwrap_err();
    assert!(matches!(err, redisgraph_core::QueryError::Type(ref m) if m.contains("integer")));
}
