//! Runtime values (`SIValue` in the RedisGraph C code base).
//!
//! Values flow through execution-plan records, property stores, and the result
//! set. Comparison follows openCypher semantics closely enough for the
//! supported subset: numbers compare numerically across Int/Float, strings
//! lexicographically, `Null` compares equal to nothing (including itself) for
//! filters but sorts last in `ORDER BY`.

use crate::{EdgeId, NodeId};
use std::cmp::Ordering;
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing / unknown.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// A graph node, by id.
    Node(NodeId),
    /// A graph relationship, by id.
    Edge(EdgeId),
    /// An ordered list of values.
    List(Vec<Value>),
}

impl Value {
    /// True if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Coerce to a boolean for filter evaluation: `Bool` is itself, `Null` is
    /// false, anything else is a type error represented as `false`.
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Numeric view (Int and Float only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    /// openCypher equality: numbers compare across Int/Float; `Null` is never
    /// equal to anything (returns `None`, i.e. unknown).
    pub fn cypher_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Some(x == y),
                _ => Some(a == b),
            },
        }
    }

    /// openCypher ordering for comparisons; `None` when incomparable or null.
    pub fn cypher_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                _ => None,
            },
        }
    }

    /// Total ordering used by `ORDER BY` and `DISTINCT`: nulls sort last, then
    /// bools, numbers, strings, nodes, edges, lists.
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Bool(_) => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Str(_) => 2,
                Value::Node(_) => 3,
                Value::Edge(_) => 4,
                Value::List(_) => 5,
                Value::Null => 6,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            _ if rank(self) != rank(other) => rank(self).cmp(&rank(other)),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Node(a), Value::Node(b)) => a.cmp(b),
            (Value::Edge(a), Value::Edge(b)) => a.cmp(b),
            (Value::List(a), Value::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.sort_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => a
                .as_f64()
                .unwrap_or(f64::NAN)
                .partial_cmp(&b.as_f64().unwrap_or(f64::NAN))
                .unwrap_or(Ordering::Equal),
        }
    }

    /// Arithmetic addition (numeric or string concatenation).
    pub fn add(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
            (Value::Str(a), Value::Str(b)) => Value::Str(format!("{a}{b}")),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Value::Float(x + y),
                _ => Value::Null,
            },
        }
    }

    /// Arithmetic subtraction.
    pub fn sub(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_sub(*b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Value::Float(x - y),
                _ => Value::Null,
            },
        }
    }

    /// Arithmetic multiplication.
    pub fn mul(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_mul(*b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Value::Float(x * y),
                _ => Value::Null,
            },
        }
    }

    /// Arithmetic division (always float, like openCypher's `/` on mixed input;
    /// integer division when both are integers). Division by zero gives Null.
    pub fn div(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a / b)
                }
            }
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(_), Some(0.0)) => Value::Null,
                (Some(x), Some(y)) => Value::Float(x / y),
                _ => Value::Null,
            },
        }
    }

    /// Modulo.
    pub fn rem(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) if *b != 0 => Value::Int(a % b),
            _ => Value::Null,
        }
    }
}

impl From<&cypher::Literal> for Value {
    fn from(lit: &cypher::Literal) -> Self {
        match lit {
            cypher::Literal::Integer(i) => Value::Int(*i),
            cypher::Literal::Float(f) => Value::Float(*f),
            cypher::Literal::Str(s) => Value::Str(s.clone()),
            cypher::Literal::Bool(b) => Value::Bool(*b),
            cypher::Literal::Null => Value::Null,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Node(id) => write!(f, "(node:{id})"),
            Value::Edge(id) => write!(f, "[edge:{id}]"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::Int(3).cypher_eq(&Value::Float(3.0)), Some(true));
        assert_eq!(Value::Int(3).cypher_eq(&Value::Int(4)), Some(false));
        assert_eq!(Value::Null.cypher_eq(&Value::Int(1)), None);
        assert_eq!(Value::Str("a".into()).cypher_eq(&Value::Str("a".into())), Some(true));
    }

    #[test]
    fn comparisons_and_sorting() {
        assert_eq!(Value::Int(2).cypher_cmp(&Value::Float(2.5)), Some(Ordering::Less));
        assert_eq!(
            Value::Str("a".into()).cypher_cmp(&Value::Str("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Str("a".into()).cypher_cmp(&Value::Int(1)), None);
        // nulls sort last
        assert_eq!(Value::Null.sort_cmp(&Value::Int(5)), Ordering::Greater);
        assert_eq!(Value::Int(5).sort_cmp(&Value::Null), Ordering::Less);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Value::Int(5));
        assert_eq!(Value::Int(2).add(&Value::Float(0.5)), Value::Float(2.5));
        assert_eq!(Value::Str("a".into()).add(&Value::Str("b".into())), Value::Str("ab".into()));
        assert_eq!(Value::Int(7).div(&Value::Int(2)), Value::Int(3));
        assert_eq!(Value::Int(7).div(&Value::Int(0)), Value::Null);
        assert_eq!(Value::Int(7).rem(&Value::Int(4)), Value::Int(3));
        assert_eq!(Value::Int(7).mul(&Value::Int(6)), Value::Int(42));
        assert_eq!(Value::Int(7).sub(&Value::Int(6)), Value::Int(1));
    }

    #[test]
    fn truthiness_is_strict() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Int(1).is_truthy());
        assert!(!Value::Null.is_truthy());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::List(vec![Value::Int(1), Value::Int(2)]).to_string(), "[1, 2]");
        assert_eq!(Value::Node(3).to_string(), "(node:3)");
    }

    #[test]
    fn literal_conversion() {
        assert_eq!(Value::from(&cypher::Literal::Integer(5)), Value::Int(5));
        assert_eq!(Value::from(&cypher::Literal::Bool(true)), Value::Bool(true));
        assert_eq!(Value::from(&cypher::Literal::Null), Value::Null);
    }
}
