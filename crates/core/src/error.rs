//! Query-level error type.

use std::fmt;

/// Errors surfaced to clients by [`crate::Graph::query`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The query text failed to lex or parse.
    Syntax(String),
    /// The query references an unknown variable.
    UnknownVariable(String),
    /// The query `CALL`s a procedure that is not registered.
    UnknownProcedure(String),
    /// The query uses a feature outside the supported subset.
    Unsupported(String),
    /// A runtime type error (e.g. adding a string to an integer).
    Type(String),
    /// Internal invariant violation.
    Internal(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Syntax(m) => write!(f, "syntax error: {m}"),
            QueryError::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            QueryError::UnknownProcedure(p) => write!(f, "unknown procedure `{p}`"),
            QueryError::Unsupported(m) => write!(f, "unsupported query feature: {m}"),
            QueryError::Type(m) => write!(f, "type error: {m}"),
            QueryError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<cypher::ParseError> for QueryError {
    fn from(e: cypher::ParseError) -> Self {
        QueryError::Syntax(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_category() {
        assert!(QueryError::Syntax("x".into()).to_string().starts_with("syntax"));
        assert!(QueryError::UnknownVariable("v".into()).to_string().contains("`v`"));
        assert!(QueryError::Unsupported("w".into()).to_string().contains("unsupported"));
    }

    #[test]
    fn parse_errors_convert() {
        let parse_err = cypher::parse("MATCH (").unwrap_err();
        let q: QueryError = parse_err.into();
        assert!(matches!(q, QueryError::Syntax(_)));
    }
}
