//! # redisgraph-core
//!
//! The core of the RedisGraph reproduction: a property-graph database whose
//! storage is a set of GraphBLAS sparse matrices and whose openCypher queries
//! are executed as sparse linear algebra, as described in *"RedisGraph:
//! GraphBLAS Enabled Graph Database"* (Cailliau et al., 2019).
//!
//! * [`store`] — the graph object: node/edge entity storage (DataBlocks),
//!   label matrices, one adjacency matrix per relationship type plus the
//!   combined adjacency matrix and its transpose, and the schema registries.
//! * [`exec`] — the query engine: an AST→execution-plan compiler and the
//!   operations (scans, algebraic traversals, filters, projections,
//!   aggregations, writes) that evaluate it.
//! * [`value`] — the runtime value type (`SIValue` in RedisGraph).
//!
//! ## Quickstart
//!
//! ```
//! use redisgraph_core::Graph;
//!
//! let mut g = Graph::new("social");
//! g.query("CREATE (:Person {name: 'Ann', age: 34})-[:KNOWS]->(:Person {name: 'Bob', age: 28})").unwrap();
//! let result = g.query("MATCH (a:Person)-[:KNOWS]->(b) RETURN a.name, b.name").unwrap();
//! assert_eq!(result.rows.len(), 1);
//! ```

pub mod error;
pub mod exec;
pub mod store;
pub mod value;

pub use error::QueryError;
pub use exec::ops::{TraverseStrategy, BATCH_TRAVERSE_MIN_RECORDS};
pub use exec::plan::{format_profile, ExecutionPlan, OpProfile, Params};
pub use exec::resultset::{QueryStats, ResultSet};
pub use store::graph::{Graph, GraphSnapshot, TraverseDir};
pub use value::Value;

/// Node identifier: the row/column index of the node in every matrix.
pub type NodeId = u64;
/// Edge identifier: index into the edge DataBlock.
pub type EdgeId = u64;
