//! The `CALL algo.*` procedure registry: whole-graph algorithms from
//! `crates/algo` exposed as row-streaming procedures that plug into the
//! normal record pipeline (composable with `WHERE` / `ORDER BY` / `LIMIT`).
//!
//! Every procedure reads the graph's sparse matrices directly — the same
//! substrate `MATCH` traversals multiply against — so analytics and queries
//! share one representation, which is the paper's core argument.

use crate::error::QueryError;
use crate::store::graph::Graph;
use crate::value::Value;
use crate::NodeId;

/// The shape of a procedure implementation: evaluated arguments in, result
/// rows out (one `Vec<Value>` per row, one value per yield column).
pub type ProcedureFn = fn(&Graph, &[Value]) -> Result<Vec<Vec<Value>>, QueryError>;

/// A registered procedure: fixed name, output columns, arity bounds, and the
/// function that produces its rows.
pub struct Procedure {
    /// Canonical dotted name (`algo.pagerank`); matched case-insensitively.
    pub name: &'static str,
    /// Output column names, in row order.
    pub yields: &'static [&'static str],
    /// Minimum number of arguments.
    pub min_args: usize,
    /// Maximum number of arguments.
    pub max_args: usize,
    /// Produce the result rows for the given evaluated arguments.
    pub run: ProcedureFn,
}

/// All registered procedures.
pub static PROCEDURES: &[Procedure] = &[
    Procedure {
        name: "algo.bfs",
        yields: &["node", "level"],
        min_args: 1,
        max_args: 1,
        run: proc_bfs,
    },
    Procedure {
        name: "algo.sssp",
        yields: &["node", "distance"],
        min_args: 1,
        max_args: 2,
        run: proc_sssp,
    },
    Procedure {
        name: "algo.pagerank",
        yields: &["node", "score"],
        min_args: 0,
        max_args: 2,
        run: proc_pagerank,
    },
    Procedure {
        name: "algo.wcc",
        yields: &["node", "component"],
        min_args: 0,
        max_args: 0,
        run: proc_wcc,
    },
    Procedure {
        name: "algo.triangles",
        yields: &["triangles"],
        min_args: 0,
        max_args: 0,
        run: proc_triangles,
    },
];

/// Look up a procedure by (case-insensitive) dotted name.
pub fn find(name: &str) -> Option<&'static Procedure> {
    PROCEDURES.iter().find(|p| p.name.eq_ignore_ascii_case(name))
}

/// Extract an integer argument (floats are rejected rather than silently
/// truncated, so `algo.bfs(1.9)` is a type error, not a BFS from node 1).
fn int_arg(value: &Value, what: &str) -> Result<i64, QueryError> {
    match value {
        Value::Int(i) => Ok(*i),
        other => Err(QueryError::Type(format!("{what} must be an integer, got {other}"))),
    }
}

/// Extract a node id argument, checking the node exists.
fn node_arg(graph: &Graph, value: &Value, procedure: &str) -> Result<NodeId, QueryError> {
    let id = int_arg(value, &format!("{procedure} node id"))?;
    if id < 0 || graph.node(id as NodeId).is_none() {
        return Err(QueryError::Type(format!("{procedure}: node {id} does not exist")));
    }
    Ok(id as NodeId)
}

fn proc_bfs(graph: &Graph, args: &[Value]) -> Result<Vec<Vec<Value>>, QueryError> {
    let source = node_arg(graph, &args[0], "algo.bfs")?;
    let adj = graph.adjacency_matrix();
    let levels = algo::bfs_levels(&adj, source);
    Ok(levels.iter().map(|(node, level)| vec![Value::Node(node), Value::Int(level)]).collect())
}

fn proc_sssp(graph: &Graph, args: &[Value]) -> Result<Vec<Vec<Value>>, QueryError> {
    let source = node_arg(graph, &args[0], "algo.sssp")?;
    let weight_prop = match args.get(1) {
        None => "weight".to_string(),
        Some(Value::Str(s)) => s.clone(),
        Some(other) => {
            return Err(QueryError::Type(format!(
                "algo.sssp expects a property name as its second argument, got {other}"
            )))
        }
    };
    let weights = graph.weight_matrix(&weight_prop, 1.0);
    let dist = algo::sssp(&weights, source);
    Ok(dist.iter().map(|(node, d)| vec![Value::Node(node), Value::Float(d)]).collect())
}

fn proc_pagerank(graph: &Graph, args: &[Value]) -> Result<Vec<Vec<Value>>, QueryError> {
    let mut config = algo::PageRankConfig::default();
    if let Some(damping) = args.first() {
        let d = damping.as_f64().ok_or_else(|| {
            QueryError::Type(format!("algo.pagerank damping must be numeric, got {damping}"))
        })?;
        if !(0.0..=1.0).contains(&d) {
            return Err(QueryError::Type(format!(
                "algo.pagerank damping must be in [0, 1], got {d}"
            )));
        }
        config.damping = d;
    }
    if let Some(iters) = args.get(1) {
        let n = int_arg(iters, "algo.pagerank iteration cap")?;
        if n <= 0 {
            return Err(QueryError::Type(format!(
                "algo.pagerank iteration cap must be positive, got {n}"
            )));
        }
        config.max_iterations = n as u32;
    }
    let nodes = graph.all_node_ids();
    let adj = graph.adjacency_matrix();
    let result = algo::pagerank(&adj, &nodes, &config);
    Ok(result
        .scores
        .into_iter()
        .map(|(node, score)| vec![Value::Node(node), Value::Float(score)])
        .collect())
}

fn proc_wcc(graph: &Graph, _args: &[Value]) -> Result<Vec<Vec<Value>>, QueryError> {
    let nodes = graph.all_node_ids();
    let adj = graph.adjacency_matrix();
    let labels = algo::wcc(&adj, &nodes);
    Ok(labels
        .into_iter()
        .map(|(node, component)| vec![Value::Node(node), Value::Int(component as i64)])
        .collect())
}

fn proc_triangles(graph: &Graph, _args: &[Value]) -> Result<Vec<Vec<Value>>, QueryError> {
    let adj = graph.adjacency_matrix();
    let count = algo::triangle_count(&adj);
    Ok(vec![vec![Value::Int(count as i64)]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_graph() -> Graph {
        let mut g = Graph::new("p");
        let a = g.add_node(&["Node"], vec![]);
        let b = g.add_node(&["Node"], vec![]);
        let c = g.add_node(&["Node"], vec![]);
        g.add_edge(a, b, "L", vec![("weight", Value::Float(2.0))]).unwrap();
        g.add_edge(b, c, "L", vec![("weight", Value::Float(3.0))]).unwrap();
        g.add_edge(c, a, "L", vec![]).unwrap();
        g.sync_matrices();
        g
    }

    #[test]
    fn registry_lookup_is_case_insensitive() {
        assert!(find("algo.pagerank").is_some());
        assert!(find("ALGO.PageRank").is_some());
        assert!(find("algo.nope").is_none());
    }

    #[test]
    fn bfs_rows_carry_nodes_and_levels() {
        let g = triangle_graph();
        let rows = proc_bfs(&g, &[Value::Int(0)]).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.contains(&vec![Value::Node(0), Value::Int(0)]));
        assert!(rows.contains(&vec![Value::Node(2), Value::Int(2)]));
    }

    #[test]
    fn sssp_reads_the_weight_property_with_default() {
        let g = triangle_graph();
        let rows = proc_sssp(&g, &[Value::Int(0)]).unwrap();
        // 0→1 (2.0), 0→1→2 (5.0); the unweighted edge 2→0 defaults to 1.0.
        assert!(rows.contains(&vec![Value::Node(1), Value::Float(2.0)]));
        assert!(rows.contains(&vec![Value::Node(2), Value::Float(5.0)]));
    }

    #[test]
    fn pagerank_validates_arguments() {
        let g = triangle_graph();
        assert!(proc_pagerank(&g, &[Value::Float(1.5)]).is_err());
        assert!(proc_pagerank(&g, &[Value::Float(0.85), Value::Int(0)]).is_err());
        let rows = proc_pagerank(&g, &[]).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn missing_nodes_are_type_errors() {
        let g = triangle_graph();
        assert!(matches!(proc_bfs(&g, &[Value::Int(99)]), Err(QueryError::Type(_))));
        assert!(matches!(proc_bfs(&g, &[Value::Str("x".into())]), Err(QueryError::Type(_))));
    }

    #[test]
    fn wcc_and_triangles_on_the_cycle() {
        let g = triangle_graph();
        let labels = proc_wcc(&g, &[]).unwrap();
        assert!(labels.iter().all(|row| row[1] == Value::Int(0)));
        let tri = proc_triangles(&g, &[]).unwrap();
        assert_eq!(tri, vec![vec![Value::Int(1)]]);
    }
}
