//! Execution-plan operations.
//!
//! Each operation maps a batch of [`Record`]s to a new batch. The operation
//! set mirrors RedisGraph's execution plan: scans, algebraic traversals,
//! filters, projections/aggregations and the write operations.

use crate::exec::aggregate::{Accumulator, AggFunc};
use crate::exec::algebraic::AlgebraicExpression;
use crate::exec::expr::{contains_aggregate, eval};
use crate::exec::record::{Bindings, Record};
use crate::exec::resultset::QueryStats;
use crate::store::graph::{Graph, TraverseDir};
use crate::value::Value;
use crate::{EdgeId, NodeId};
use cypher::{Direction, Expr, PathPattern, Projection, SetItem, SortOrder};
use graphblas::prelude::*;
use std::borrow::Cow;
use std::collections::{HashMap, HashSet};

/// How `Conditional Traverse` / `Expand Into` operators execute.
///
/// The paper's central claim is that traversals *are* algebraic expressions:
/// a batch of plan records becomes a frontier matrix `F` (record × node) and
/// one relation step becomes `F ⊕.⊗ Aᵣ`, a masked sparse `mxm` whose rows
/// are probed back into records. The scalar strategy is the per-record
/// pointer-chasing fallback; both produce row-for-row identical output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraverseStrategy {
    /// Batch once at least [`BATCH_TRAVERSE_MIN_RECORDS`] records flow
    /// through the traversal; pointer-chase below that (building frontier
    /// matrices for a handful of records costs more than it saves).
    #[default]
    Auto,
    /// Always traverse record by record (`graph.neighbors()` row walks).
    Scalar,
    /// Always evaluate the traversal as a frontier `mxm`.
    Batched,
}

/// Record-batch size at which [`TraverseStrategy::Auto`] switches from the
/// scalar path to the frontier `mxm`.
pub const BATCH_TRAVERSE_MIN_RECORDS: usize = 64;

/// The parameters of one `Traverse` plan op, bundled so the execution
/// strategies share a signature.
#[derive(Debug, Clone)]
pub struct TraverseSpec<'a> {
    /// Slot of the already-bound source node.
    pub src_slot: usize,
    /// Slot receiving the destination node (already bound for expand-into).
    pub dst_slot: usize,
    /// Slot receiving the traversed edge (single hop, named edge only).
    pub edge_slot: Option<usize>,
    /// Relationship type names (empty = any type).
    pub rel_types: &'a [String],
    /// Pattern direction.
    pub direction: Direction,
    /// Minimum hop count (0 = the source itself matches).
    pub min_hops: u32,
    /// Maximum hop count; `None` = unbounded.
    pub max_hops: Option<u32>,
    /// True if the destination is already bound (expand-into / semi-join).
    pub expand_into: bool,
    /// Intra-query GraphBLAS thread budget, snapshotted from the process
    /// context when the plan was built (`ExecutionPlan::thread_budget`) so a
    /// runtime `QUERY_THREADS` change never retunes a query in flight.
    pub nthreads: usize,
}

/// One step of an execution plan.
#[derive(Debug, Clone)]
pub enum PlanOp {
    /// Bind every node of the graph to `slot` (cartesian with existing records).
    AllNodeScan {
        /// Output slot.
        slot: usize,
        /// Variable name (for `EXPLAIN`).
        var: String,
    },
    /// Bind every node carrying `label` to `slot`.
    NodeByLabelScan {
        /// Output slot.
        slot: usize,
        /// Variable name.
        var: String,
        /// Label to scan.
        label: String,
    },
    /// Bind a single node looked up by internal id (`WHERE id(n) = …`).
    NodeByIdSeek {
        /// Output slot.
        slot: usize,
        /// Variable name.
        var: String,
        /// Expression producing the node id.
        id_expr: Expr,
    },
    /// Keep only records whose predicate evaluates to `true`.
    Filter {
        /// The predicate.
        expr: Expr,
    },
    /// Keep only records whose `slot` node carries `label`.
    LabelFilter {
        /// Slot holding the node.
        slot: usize,
        /// Required label.
        label: String,
    },
    /// Keep only records whose `slot` entity has property `key` equal to `value`.
    PropFilter {
        /// Slot holding the node or edge.
        slot: usize,
        /// Property name.
        key: String,
        /// Required value.
        value: Value,
    },
    /// Traverse relationships from the node in `src_slot`, binding reached
    /// nodes to `dst_slot` (and the traversed edge to `edge_slot` for single
    /// hops). Variable-length traversals run the masked-vxm BFS.
    Traverse {
        /// Slot of the already-bound source node.
        src_slot: usize,
        /// Slot receiving the destination node.
        dst_slot: usize,
        /// Destination variable name.
        dst_var: String,
        /// Slot receiving the traversed edge (single hop, named edge only).
        edge_slot: Option<usize>,
        /// Relationship type names (empty = any type).
        rel_types: Vec<String>,
        /// Pattern direction.
        direction: Direction,
        /// Minimum hop count.
        min_hops: u32,
        /// Maximum hop count; `None` = unbounded.
        max_hops: Option<u32>,
        /// True if the destination is already bound (expand-into / semi-join).
        expand_into: bool,
    },
    /// A fused fixed-length chain traversal: the whole chain evaluates as
    /// one algebraic product under the counting semiring instead of one
    /// `Traverse` op (and record materialisation) per hop. Built by the
    /// optimizer pass in [`crate::exec::algebraic`].
    FusedTraverse {
        /// Slot of the already-bound source node (the frontier).
        src_slot: usize,
        /// Slot receiving the chain's final destination node.
        dst_slot: usize,
        /// Final destination variable name.
        dst_var: String,
        /// The algebraic expression (`F·A_R·A_S`) the op evaluates.
        expr: AlgebraicExpression,
        /// Hidden slot receiving the per-row path count when the downstream
        /// consumer is a weight-aware aggregation; `None` = expand each
        /// product cell into `count` records.
        weight_slot: Option<usize>,
    },
    /// Final projection (`RETURN`).
    Project(Projection),
    /// Final aggregation (`RETURN` containing aggregate functions).
    Aggregate {
        /// The aggregating projection.
        projection: Projection,
        /// Slot holding a per-record path-count weight written by an
        /// upstream [`PlanOp::FusedTraverse`] (`Null`/absent = weight 1).
        weight_slot: Option<usize>,
    },
    /// Intermediate projection (`WITH`); re-binds records for the next segment.
    With(Projection),
    /// Create the given patterns once per incoming record.
    Create {
        /// Patterns to instantiate.
        patterns: Vec<PathPattern>,
    },
    /// Delete the entities bound to the named variables.
    Delete {
        /// `DETACH DELETE` flag (node deletion always cascades to incident
        /// edges, as RedisGraph does).
        detach: bool,
        /// Variables to delete.
        vars: Vec<String>,
    },
    /// Set properties on bound entities.
    SetProps {
        /// Assignments.
        items: Vec<SetItem>,
    },
    /// Expand a list expression into one record per element.
    Unwind {
        /// List-valued expression.
        list: Expr,
        /// Output slot.
        slot: usize,
        /// Variable name.
        var: String,
    },
    /// Invoke a registered procedure (`CALL algo.*`) and stream its rows into
    /// the record pipeline, once per incoming record.
    ProcedureCall {
        /// Canonical procedure name (validated at plan-build time).
        name: String,
        /// Argument expressions, evaluated per record.
        args: Vec<Expr>,
        /// `(procedure output column index, record slot)` pairs for the
        /// yielded columns.
        outputs: Vec<(usize, usize)>,
    },
}

impl PlanOp {
    /// One-line description used by `GRAPH.EXPLAIN`.
    pub fn describe(&self) -> String {
        match self {
            PlanOp::AllNodeScan { var, .. } => format!("All Node Scan | ({var})"),
            PlanOp::NodeByLabelScan { var, label, .. } => {
                format!("Node By Label Scan | ({var}:{label})")
            }
            PlanOp::NodeByIdSeek { var, .. } => format!("Node By Id Seek | ({var})"),
            PlanOp::Filter { .. } => "Filter".to_string(),
            PlanOp::LabelFilter { label, .. } => format!("Label Filter | :{label}"),
            PlanOp::PropFilter { key, .. } => format!("Property Filter | .{key}"),
            PlanOp::Traverse { dst_var, rel_types, min_hops, max_hops, expand_into, .. } => {
                let types =
                    if rel_types.is_empty() { "*".to_string() } else { rel_types.join("|") };
                let hops = match (min_hops, max_hops) {
                    (1, Some(1)) => String::new(),
                    (min, Some(max)) => format!(" *{min}..{max}"),
                    (min, None) => format!(" *{min}.."),
                };
                if *expand_into {
                    format!("Expand Into | [:{types}{hops}] -> ({dst_var})")
                } else {
                    format!("Conditional Traverse | [:{types}{hops}] -> ({dst_var})")
                }
            }
            PlanOp::FusedTraverse { expr, .. } => format!("Conditional Traverse | {expr}"),
            PlanOp::Project(_) => "Project".to_string(),
            PlanOp::Aggregate { .. } => "Aggregate".to_string(),
            PlanOp::With(_) => "With".to_string(),
            PlanOp::Create { .. } => "Create".to_string(),
            PlanOp::Delete { .. } => "Delete".to_string(),
            PlanOp::SetProps { .. } => "Update".to_string(),
            PlanOp::Unwind { var, .. } => format!("Unwind | ({var})"),
            PlanOp::ProcedureCall { name, .. } => format!("ProcedureCall | {name}"),
        }
    }
}

fn to_traverse_dir(d: Direction) -> TraverseDir {
    match d {
        Direction::Outgoing => TraverseDir::Outgoing,
        Direction::Incoming => TraverseDir::Incoming,
        Direction::Both => TraverseDir::Both,
    }
}

/// Execute the scan-type ops.
pub fn run_scan(
    op: &PlanOp,
    records: Vec<Record>,
    bindings: &Bindings,
    graph: &Graph,
) -> Vec<Record> {
    let mut out = Vec::new();
    match op {
        PlanOp::AllNodeScan { slot, .. } => {
            let nodes = graph.all_node_ids();
            for record in &records {
                for &n in &nodes {
                    let mut r = record.clone();
                    ensure_len(&mut r, bindings);
                    r[*slot] = Value::Node(n);
                    out.push(r);
                }
            }
        }
        PlanOp::NodeByLabelScan { slot, label, .. } => {
            let nodes = graph.nodes_with_label(label);
            for record in &records {
                for &n in &nodes {
                    let mut r = record.clone();
                    ensure_len(&mut r, bindings);
                    r[*slot] = Value::Node(n);
                    out.push(r);
                }
            }
        }
        PlanOp::NodeByIdSeek { slot, id_expr, .. } => {
            for record in &records {
                let id_val = eval(id_expr, record, bindings, graph);
                if let Some(id) = id_val.as_i64() {
                    if id >= 0 && graph.node(id as NodeId).is_some() {
                        let mut r = record.clone();
                        ensure_len(&mut r, bindings);
                        r[*slot] = Value::Node(id as NodeId);
                        out.push(r);
                    }
                }
            }
        }
        _ => unreachable!("run_scan called with a non-scan op"),
    }
    out
}

fn ensure_len(record: &mut Record, bindings: &Bindings) {
    if record.len() < bindings.len() {
        record.resize(bindings.len(), Value::Null);
    }
}

/// Execute the filter-type ops.
pub fn run_filter(
    op: &PlanOp,
    records: Vec<Record>,
    bindings: &Bindings,
    graph: &Graph,
) -> Vec<Record> {
    records
        .into_iter()
        .filter(|record| match op {
            PlanOp::Filter { expr } => eval(expr, record, bindings, graph).is_truthy(),
            PlanOp::LabelFilter { slot, label } => match record.get(*slot) {
                Some(Value::Node(id)) => graph.node_has_label(*id, label),
                _ => false,
            },
            PlanOp::PropFilter { slot, key, value } => {
                let actual = match record.get(*slot) {
                    Some(Value::Node(id)) => graph.node_property(*id, key),
                    Some(Value::Edge(id)) => graph.edge_property(*id, key),
                    _ => Value::Null,
                };
                actual.cypher_eq(value) == Some(true)
            }
            _ => unreachable!("run_filter called with a non-filter op"),
        })
        .collect()
}

/// Execute a traverse op, dispatching on the graph's [`TraverseStrategy`].
/// Both strategies produce row-for-row identical output (proven by the
/// `traverse_differential` integration suite).
pub fn run_traverse(
    records: Vec<Record>,
    bindings: &Bindings,
    graph: &Graph,
    spec: &TraverseSpec<'_>,
) -> Vec<Record> {
    let rel_ids: Option<Vec<usize>> = if spec.rel_types.is_empty() {
        None
    } else {
        Some(spec.rel_types.iter().filter_map(|t| graph.schema.rel_type_id(t)).collect())
    };
    // If the pattern names relationship types that do not exist, nothing matches.
    if let Some(ids) = &rel_ids {
        if ids.len() != spec.rel_types.len() {
            return Vec::new();
        }
    }
    let batched = match graph.traverse_strategy() {
        TraverseStrategy::Scalar => false,
        TraverseStrategy::Batched => true,
        TraverseStrategy::Auto => records.len() >= BATCH_TRAVERSE_MIN_RECORDS,
    };
    if batched {
        run_traverse_batched(records, bindings, graph, spec, rel_ids.as_deref())
    } else {
        run_traverse_scalar(records, bindings, graph, spec, rel_ids.as_deref())
    }
}

/// The per-record scalar strategy: pointer-chase `graph.neighbors()` row
/// walks (single hop) or a per-source BFS (variable length).
pub fn run_traverse_scalar(
    records: Vec<Record>,
    bindings: &Bindings,
    graph: &Graph,
    spec: &TraverseSpec<'_>,
    rel_ids: Option<&[usize]>,
) -> Vec<Record> {
    let dir = to_traverse_dir(spec.direction);
    let max = spec.max_hops.unwrap_or_else(|| graph.node_count().max(1) as u32);
    let single_hop = spec.min_hops == 1 && max == 1;
    let mut out = Vec::new();

    for record in records {
        let Some(Value::Node(src)) = record.get(spec.src_slot).cloned() else { continue };
        if single_hop {
            let neighbors = graph.neighbors(src, rel_ids, dir);
            if spec.expand_into {
                let target = record.get(spec.dst_slot).cloned();
                for (nbr, edge) in neighbors {
                    if target == Some(Value::Node(nbr)) {
                        let mut r = record.clone();
                        ensure_len(&mut r, bindings);
                        if let Some(es) = spec.edge_slot {
                            r[es] = Value::Edge(edge);
                        }
                        out.push(r);
                    }
                }
            } else {
                for (nbr, edge) in neighbors {
                    let mut r = record.clone();
                    ensure_len(&mut r, bindings);
                    r[spec.dst_slot] = Value::Node(nbr);
                    if let Some(es) = spec.edge_slot {
                        r[es] = Value::Edge(edge);
                    }
                    out.push(r);
                }
            }
        } else {
            // Variable-length traversal.
            let reached: Vec<NodeId> = match rel_ids {
                None => graph
                    .khop_reach_with(src, spec.min_hops, max, dir, spec.nthreads)
                    .indices()
                    .to_vec(),
                Some(ids) => typed_bfs(graph, src, spec.min_hops, max, ids, dir),
            };
            if spec.expand_into {
                let target = record.get(spec.dst_slot).cloned();
                if let Some(Value::Node(t)) = target {
                    if reached.contains(&t) {
                        out.push(record.clone());
                    }
                }
            } else {
                for n in reached {
                    let mut r = record.clone();
                    ensure_len(&mut r, bindings);
                    r[spec.dst_slot] = Value::Node(n);
                    out.push(r);
                }
            }
        }
    }
    out
}

/// The batched algebraic strategy: the whole record batch becomes one
/// frontier matrix `F` (record × node, one entry per row at the record's
/// source), the relation step is evaluated as `F ⊕.⊗ Aᵣ` per relation matrix
/// (`any_second` carries edge ids into the product; reverse traversal
/// multiplies the incrementally-maintained transpose), and the product rows
/// are probed back into `(record, dst, edge)` tuples in record-major order so
/// the output matches the scalar path row for row. Expand-into becomes a
/// structural mask over the bound destinations; variable-length patterns run
/// a level-synchronous masked-`mxm` BFS on the whole batch at once. The
/// `mxm` inherits its thread count from [`graphblas::Context`] (the
/// `QUERY_THREADS` knob), parallelising over frontier row blocks.
pub fn run_traverse_batched(
    records: Vec<Record>,
    bindings: &Bindings,
    graph: &Graph,
    spec: &TraverseSpec<'_>,
    rel_ids: Option<&[usize]>,
) -> Vec<Record> {
    let dir = to_traverse_dir(spec.direction);
    let max = spec.max_hops.unwrap_or_else(|| graph.node_count().max(1) as u32);
    let single_hop = spec.min_hops == 1 && max == 1;
    let dim = graph.dim();

    // One frontier row per *distinct* source node: records sharing a source
    // (the common case deep in a multi-hop pipeline, where thousands of
    // records fan out of a few hub nodes) share one product row instead of
    // recomputing it. `record_rows[i]` maps record `i` back to its row;
    // records without a bound source produce no output.
    let mut src_row: HashMap<NodeId, u64> = HashMap::new();
    let mut frontier_entries: Vec<(u64, u64)> = Vec::new();
    let mut record_rows: Vec<Option<u64>> = Vec::with_capacity(records.len());
    for r in &records {
        match r.get(spec.src_slot) {
            Some(Value::Node(s)) => {
                let row = *src_row.entry(*s).or_insert_with(|| {
                    let row = frontier_entries.len() as u64;
                    frontier_entries.push((row, *s));
                    row
                });
                record_rows.push(Some(row));
            }
            _ => record_rows.push(None),
        }
    }
    if frontier_entries.is_empty() {
        return Vec::new();
    }

    let batch = BatchFrontier { entries: &frontier_entries, record_rows: &record_rows, dim };
    if single_hop {
        batched_single_hop(&records, bindings, graph, spec, rel_ids, dir, &batch)
    } else {
        batched_var_length(&records, bindings, graph, spec, rel_ids, dir, &batch, max)
    }
}

/// The shared frontier layout of one batched traversal: distinct source
/// coordinates plus the record → frontier-row mapping.
struct BatchFrontier<'a> {
    /// `(row, source node)` coordinates, one per distinct source.
    entries: &'a [(u64, u64)],
    /// Frontier row of each record (`None` = source not bound).
    record_rows: &'a [Option<u64>],
    /// Node-space dimension (frontier column count).
    dim: u64,
}

impl BatchFrontier<'_> {
    fn nrows(&self) -> u64 {
        self.entries.len() as u64
    }
}

/// Per-relation single-hop products: the forward and backward `F ⊕.⊗ Aᵣ`
/// results, in the pattern's relation-type order.
type HopProducts = Vec<(Option<SparseMatrix<u64>>, Option<SparseMatrix<u64>>)>;

/// One-hop batched traversal: `C = F ⊕.⊗ Aᵣ` per relation matrix under the
/// edge-id-carrying `any_second` semiring.
#[allow(clippy::too_many_arguments)]
fn batched_single_hop(
    records: &[Record],
    bindings: &Bindings,
    graph: &Graph,
    spec: &TraverseSpec<'_>,
    rel_ids: Option<&[usize]>,
    dir: TraverseDir,
    batch: &BatchFrontier<'_>,
) -> Vec<Record> {
    let forward = matches!(dir, TraverseDir::Outgoing | TraverseDir::Both);
    let backward = matches!(dir, TraverseDir::Incoming | TraverseDir::Both);
    let rels: Vec<usize> = match rel_ids {
        Some(ids) => ids.to_vec(),
        None => (0..graph.relation_type_count()).collect(),
    };

    let frontier = frontier_matrix::<u64>(batch.nrows(), batch.dim, batch.entries, 1);
    let semiring = Semiring::<u64>::any_second();
    // Expand-into is a semi-join: mask the product with the bound
    // destinations so only the (source row, target) entries are even
    // computed. Records sharing a source row contribute their targets to the
    // same mask row; emission below probes each record's own target.
    let target_mask = if spec.expand_into {
        let targets: Vec<(u64, u64)> = records
            .iter()
            .zip(batch.record_rows)
            .filter_map(|(r, row)| match (row, r.get(spec.dst_slot)) {
                (Some(row), Some(Value::Node(t))) if *t < batch.dim => Some((*row, *t)),
                _ => None,
            })
            .collect();
        Some(frontier_matrix::<bool>(batch.nrows(), batch.dim, &targets, true))
    } else {
        None
    };
    let desc = if target_mask.is_some() {
        Descriptor::new().with_mask_structure().with_nthreads(spec.nthreads)
    } else {
        Descriptor::new().with_nthreads(spec.nthreads)
    };
    let mask = target_mask.as_ref().map(MatrixMask::new);

    // One product per relation matrix (and per direction), kept separate so
    // row probing can interleave them in the scalar path's emission order.
    let mut products: HopProducts = Vec::with_capacity(rels.len());
    for &rel in &rels {
        let fwd = if forward {
            graph
                .relation_matrix(rel)
                .map(|m| mxm(&frontier, m.as_ref(), &semiring, mask.as_ref(), &desc))
        } else {
            None
        };
        let bwd = if backward {
            graph
                .relation_matrix_t(rel)
                .map(|m| mxm(&frontier, m.as_ref(), &semiring, mask.as_ref(), &desc))
        } else {
            None
        };
        products.push((fwd, bwd));
    }

    // Probe: record-major, then per relation forward-then-backward, columns
    // ascending — exactly the scalar `neighbors()` emission order. A product
    // cell whose `(src, dst)` pair holds parallel same-type edges expands to
    // one row per edge (ascending ids), matching `Graph::neighbors`.
    let mut out = Vec::new();
    for (record, row) in records.iter().zip(batch.record_rows) {
        let Some(row) = *row else { continue };
        let Some(&Value::Node(src)) = record.get(spec.src_slot) else { continue };
        let emit = |dst: NodeId, edge: EdgeId, rel: usize, fwd: bool, out: &mut Vec<Record>| {
            // Transposed products traverse the edge backwards: the stored
            // entity runs dst → src.
            let (s, d) = if fwd { (src, dst) } else { (dst, src) };
            let edges: &[EdgeId] = match graph.parallel_edges(rel, s, d) {
                Some(list) => list,
                None => std::slice::from_ref(&edge),
            };
            for &e in edges {
                let mut r = record.clone();
                ensure_len(&mut r, bindings);
                if !spec.expand_into {
                    r[spec.dst_slot] = Value::Node(dst);
                }
                if let Some(es) = spec.edge_slot {
                    r[es] = Value::Edge(e);
                }
                out.push(r);
            }
        };
        if spec.expand_into {
            // Semi-join: only the record's own bound target counts.
            let Some(&Value::Node(t)) = record.get(spec.dst_slot) else { continue };
            if t >= batch.dim {
                continue;
            }
            for (&rel, (fwd, bwd)) in rels.iter().zip(&products) {
                for (product, is_fwd) in [(fwd, true), (bwd, false)] {
                    if let Some(product) = product {
                        if let Some(edge) = product.extract_element(row, t) {
                            emit(t, edge, rel, is_fwd, &mut out);
                        }
                    }
                }
            }
        } else {
            for (&rel, (fwd, bwd)) in rels.iter().zip(&products) {
                for (product, is_fwd) in [(fwd, true), (bwd, false)] {
                    if let Some(product) = product {
                        let (cols, vals) = probe_row(product, row);
                        for (&dst, &edge) in cols.iter().zip(vals.iter()) {
                            emit(dst, edge, rel, is_fwd, &mut out);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Variable-length batched traversal: a level-synchronous BFS of masked
/// `mxm`s over the whole batch — the matrix generalisation of
/// [`Graph::khop_reach`], one row per distinct source.
#[allow(clippy::too_many_arguments)]
fn batched_var_length(
    records: &[Record],
    bindings: &Bindings,
    graph: &Graph,
    spec: &TraverseSpec<'_>,
    rel_ids: Option<&[usize]>,
    dir: TraverseDir,
    batch: &BatchFrontier<'_>,
    max: u32,
) -> Vec<Record> {
    let forward = matches!(dir, TraverseDir::Outgoing | TraverseDir::Both);
    let backward = matches!(dir, TraverseDir::Incoming | TraverseDir::Both);

    // Traversal matrices in the requested direction. The boolean semiring
    // distributes over ∨, so each hop multiplies the frontier against every
    // matrix separately and ORs the frontier-sized products — never
    // materialising an O(nnz) union matrix (the `Cow`s below only merge
    // when the graph has pending deltas).
    let adjacency: Vec<Cow<'_, SparseMatrix<bool>>> = match rel_ids {
        None => {
            let mut mats = Vec::new();
            if forward {
                mats.push(graph.adjacency_matrix());
            }
            if backward {
                mats.push(graph.adjacency_matrix_t());
            }
            mats
        }
        Some(_) => Vec::new(),
    };
    let relations: Vec<Cow<'_, SparseMatrix<u64>>> = match rel_ids {
        None => Vec::new(),
        Some(ids) => {
            let mut mats = Vec::new();
            for &rel in ids {
                if forward {
                    mats.extend(graph.relation_matrix(rel));
                }
                if backward {
                    mats.extend(graph.relation_matrix_t(rel));
                }
            }
            mats
        }
    };

    let bool_semiring = Semiring::lor_land();
    let pair_semiring = Semiring::<u64>::any_pair();
    let desc =
        Descriptor::new().with_mask_complement().with_mask_structure().with_nthreads(spec.nthreads);
    let mut frontier = frontier_matrix::<bool>(batch.nrows(), batch.dim, batch.entries, true);
    let mut visited = frontier.clone();
    // Hop 0 is each source node itself.
    let mut reached = if spec.min_hops == 0 {
        frontier.clone()
    } else {
        SparseMatrix::<bool>::new(batch.nrows(), batch.dim)
    };

    for hop in 1..=max {
        if frontier.nvals() == 0 {
            break;
        }
        let next = {
            let mask = MatrixMask::new(&visited);
            let mut acc: Option<SparseMatrix<bool>> = None;
            let mut fold = |p: SparseMatrix<bool>| {
                acc = Some(match acc.take() {
                    None => p,
                    Some(prev) => ewise_add_matrix(&prev, &p, &BinaryOp::LOr),
                });
            };
            for m in &adjacency {
                fold(mxm(&frontier, m.as_ref(), &bool_semiring, Some(&mask), &desc));
            }
            if !relations.is_empty() {
                // Relation matrices hold edge ids; retype the (small)
                // frontier to u64 and take the structure of each product
                // rather than copying whole relation matrices to bool.
                let triples: Vec<(u64, u64, u64)> =
                    frontier.iter().map(|(r, c, _)| (r, c, 1)).collect();
                let frontier_u64 = SparseMatrix::from_triples(batch.nrows(), batch.dim, &triples)
                    .expect("frontier coordinates are in bounds");
                for m in &relations {
                    let p = mxm(&frontier_u64, m.as_ref(), &pair_semiring, Some(&mask), &desc);
                    fold(structure(&p));
                }
            }
            match acc {
                Some(next) => next,
                None => break, // no matrices selected: nothing to traverse
            }
        };
        visited = ewise_add_matrix(&visited, &next, &BinaryOp::LOr);
        if hop >= spec.min_hops {
            reached = ewise_add_matrix(&reached, &next, &BinaryOp::LOr);
        }
        frontier = next;
    }

    let mut out = Vec::new();
    for (record, row) in records.iter().zip(batch.record_rows) {
        let Some(row) = *row else { continue };
        if spec.expand_into {
            if let Some(Value::Node(t)) = record.get(spec.dst_slot) {
                if *t < batch.dim && reached.extract_element(row, *t).is_some() {
                    out.push(record.clone());
                }
            }
        } else {
            let (cols, _) = probe_row(&reached, row);
            for &dst in cols {
                let mut r = record.clone();
                ensure_len(&mut r, bindings);
                r[spec.dst_slot] = Value::Node(dst);
                out.push(r);
            }
        }
    }
    out
}

/// Set-based BFS restricted to a list of relationship types (used when a
/// variable-length pattern names specific types on the scalar path; the
/// untyped case uses the algebraic `khop_reach`).
fn typed_bfs(
    graph: &Graph,
    src: NodeId,
    min_hops: u32,
    max_hops: u32,
    rel_ids: &[usize],
    dir: TraverseDir,
) -> Vec<NodeId> {
    let mut visited: HashSet<NodeId> = HashSet::new();
    visited.insert(src);
    let mut frontier: Vec<NodeId> = vec![src];
    let mut reached: HashSet<NodeId> = HashSet::new();
    // Hop 0 is the source itself (`*0..n` patterns).
    if min_hops == 0 {
        reached.insert(src);
    }
    for hop in 1..=max_hops {
        if frontier.is_empty() {
            break;
        }
        let mut next = Vec::new();
        for &n in &frontier {
            for (nbr, _) in graph.neighbors(n, Some(rel_ids), dir) {
                if visited.insert(nbr) {
                    next.push(nbr);
                    if hop >= min_hops {
                        reached.insert(nbr);
                    }
                }
            }
        }
        frontier = next;
    }
    let mut out: Vec<NodeId> = reached.into_iter().collect();
    out.sort_unstable();
    out
}

/// An output row paired with its evaluated `ORDER BY` keys.
type SortableRow = (Vec<Value>, Vec<(Value, SortOrder)>);

/// Evaluate the sort keys of `ORDER BY` for one output row.
fn sort_keys(
    order_by: &[(Expr, SortOrder)],
    projection: &Projection,
    row: &[Value],
    record: &Record,
    bindings: &Bindings,
    graph: &Graph,
) -> Vec<(Value, SortOrder)> {
    order_by
        .iter()
        .map(|(expr, order)| {
            // Prefer matching an output column (by alias or identical expression)
            // so aggregated columns can be sorted on.
            let col = projection.items.iter().position(|item| {
                &item.expr == expr
                    || matches!((expr, &item.alias), (Expr::Variable(v), Some(alias)) if v == alias)
            });
            let value = match col {
                Some(i) => row.get(i).cloned().unwrap_or(Value::Null),
                None => eval(expr, record, bindings, graph),
            };
            (value, *order)
        })
        .collect()
}

fn apply_order_skip_limit(projection: &Projection, mut rows: Vec<SortableRow>) -> Vec<Vec<Value>> {
    if !projection.order_by.is_empty() {
        rows.sort_by(|a, b| {
            for ((va, order), (vb, _)) in a.1.iter().zip(b.1.iter()) {
                let cmp = va.sort_cmp(vb);
                let cmp = match order {
                    SortOrder::Ascending => cmp,
                    SortOrder::Descending => cmp.reverse(),
                };
                if cmp != std::cmp::Ordering::Equal {
                    return cmp;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    let mut out: Vec<Vec<Value>> = rows.into_iter().map(|(row, _)| row).collect();
    if projection.distinct {
        let mut seen = HashSet::new();
        out.retain(|row| seen.insert(format!("{row:?}")));
    }
    let skip = projection.skip.unwrap_or(0) as usize;
    if skip > 0 {
        out.drain(..skip.min(out.len()));
    }
    if let Some(limit) = projection.limit {
        out.truncate(limit as usize);
    }
    out
}

/// Execute a plain projection (no aggregates): evaluate every item per record.
pub fn run_project(
    projection: &Projection,
    records: &[Record],
    bindings: &Bindings,
    graph: &Graph,
) -> Vec<Vec<Value>> {
    let rows: Vec<SortableRow> = records
        .iter()
        .map(|record| {
            let row: Vec<Value> = projection
                .items
                .iter()
                .map(|item| eval(&item.expr, record, bindings, graph))
                .collect();
            let keys = sort_keys(&projection.order_by, projection, &row, record, bindings, graph);
            (row, keys)
        })
        .collect();
    apply_order_skip_limit(projection, rows)
}

/// Execute an aggregating projection: group records by the non-aggregate items
/// and fold the aggregate items with [`Accumulator`]s. `weight_slot` carries
/// the path-count weight of compact records emitted by a fused traversal
/// (`Null` or absent = weight 1, i.e. an ordinary record).
pub fn run_aggregate(
    projection: &Projection,
    weight_slot: Option<usize>,
    records: &[Record],
    bindings: &Bindings,
    graph: &Graph,
) -> Vec<Vec<Value>> {
    // Split items into group keys and aggregates, remembering their positions.
    let mut group_positions = Vec::new();
    let mut agg_positions = Vec::new();
    for (i, item) in projection.items.iter().enumerate() {
        if contains_aggregate(&item.expr) {
            agg_positions.push(i);
        } else {
            group_positions.push(i);
        }
    }

    type GroupState = (Vec<Value>, Vec<Accumulator>);
    let mut groups: HashMap<String, GroupState> = HashMap::new();
    let mut group_order: Vec<String> = Vec::new();

    for record in records {
        let key_values: Vec<Value> = group_positions
            .iter()
            .map(|&i| eval(&projection.items[i].expr, record, bindings, graph))
            .collect();
        let key = format!("{key_values:?}");
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            group_order.push(key);
            let accs = agg_positions
                .iter()
                .map(|&i| match &projection.items[i].expr {
                    Expr::FunctionCall { name, distinct, .. } => {
                        let func = AggFunc::from_name(name).unwrap_or(AggFunc::Count);
                        Accumulator::new(func, *distinct)
                    }
                    _ => Accumulator::new(AggFunc::Count, false),
                })
                .collect();
            (key_values.clone(), accs)
        });
        let weight = weight_slot
            .and_then(|ws| record.get(ws))
            .and_then(Value::as_i64)
            .map_or(1, |w| w.max(0) as u64);
        for (acc, &item_pos) in entry.1.iter_mut().zip(agg_positions.iter()) {
            if let Expr::FunctionCall { args, .. } = &projection.items[item_pos].expr {
                let value = match args.first() {
                    Some(arg) => eval(arg, record, bindings, graph),
                    None => Value::Bool(true), // count(*): every record counts
                };
                acc.update_weighted(value, weight);
            }
        }
    }

    // Aggregations with no input records still produce one row (e.g. count = 0)
    // when there are no group keys.
    if groups.is_empty() && group_positions.is_empty() {
        let accs: Vec<Accumulator> = agg_positions
            .iter()
            .map(|&i| match &projection.items[i].expr {
                Expr::FunctionCall { name, distinct, .. } => {
                    Accumulator::new(AggFunc::from_name(name).unwrap_or(AggFunc::Count), *distinct)
                }
                _ => Accumulator::new(AggFunc::Count, false),
            })
            .collect();
        groups.insert("empty".into(), (Vec::new(), accs));
        group_order.push("empty".into());
    }

    let rows: Vec<SortableRow> = group_order
        .into_iter()
        .map(|key| {
            let (key_values, accs) = groups.remove(&key).expect("group exists");
            let mut row = vec![Value::Null; projection.items.len()];
            for (value, &pos) in key_values.into_iter().zip(group_positions.iter()) {
                row[pos] = value;
            }
            for (acc, &pos) in accs.into_iter().zip(agg_positions.iter()) {
                row[pos] = acc.finish();
            }
            let keys =
                sort_keys(&projection.order_by, projection, &row, &Vec::new(), bindings, graph);
            (row, keys)
        })
        .collect();
    apply_order_skip_limit(projection, rows)
}

/// Execute a `CREATE` op for every incoming record.
pub fn run_create(
    patterns: &[PathPattern],
    records: &mut Vec<Record>,
    bindings: &Bindings,
    graph: &mut Graph,
    stats: &mut QueryStats,
) {
    if records.is_empty() {
        records.push(vec![Value::Null; bindings.len()]);
    }
    for record in records.iter_mut() {
        ensure_len(record, bindings);
        for pattern in patterns {
            // Create / resolve the start node, then walk the steps.
            let mut prev = resolve_or_create_node(&pattern.start, record, bindings, graph, stats);
            for (rel, node) in &pattern.steps {
                let current = resolve_or_create_node(node, record, bindings, graph, stats);
                let rel_type = rel.types.first().map(|s| s.as_str()).unwrap_or("RELATED_TO");
                let props: Vec<(&str, Value)> =
                    rel.properties.iter().map(|(k, lit)| (k.as_str(), Value::from(lit))).collect();
                stats.properties_set += props.len();
                let (src, dst) = match rel.direction {
                    Direction::Incoming => (current, prev),
                    _ => (prev, current),
                };
                let edge = graph.add_edge(src, dst, rel_type, props).expect("endpoints exist");
                stats.relationships_created += 1;
                if let Some(var) = &rel.variable {
                    if let Some(slot) = bindings.slot(var) {
                        record[slot] = Value::Edge(edge);
                    }
                }
                prev = current;
            }
        }
    }
}

fn resolve_or_create_node(
    pattern: &cypher::NodePattern,
    record: &mut Record,
    bindings: &Bindings,
    graph: &mut Graph,
    stats: &mut QueryStats,
) -> NodeId {
    if let Some(var) = &pattern.variable {
        if let Some(slot) = bindings.slot(var) {
            if let Some(Value::Node(id)) = record.get(slot) {
                return *id;
            }
        }
    }
    let labels: Vec<&str> = pattern.labels.iter().map(|s| s.as_str()).collect();
    let props: Vec<(&str, Value)> =
        pattern.properties.iter().map(|(k, lit)| (k.as_str(), Value::from(lit))).collect();
    stats.properties_set += props.len();
    stats.labels_added += labels.len();
    let id = graph.add_node(&labels, props);
    stats.nodes_created += 1;
    if let Some(var) = &pattern.variable {
        if let Some(slot) = bindings.slot(var) {
            record[slot] = Value::Node(id);
        }
    }
    id
}

/// Execute a `DELETE` op.
pub fn run_delete(
    vars: &[String],
    records: &[Record],
    bindings: &Bindings,
    graph: &mut Graph,
    stats: &mut QueryStats,
) {
    let mut nodes: HashSet<NodeId> = HashSet::new();
    let mut edges: HashSet<EdgeId> = HashSet::new();
    for record in records {
        for var in vars {
            if let Some(slot) = bindings.slot(var) {
                match record.get(slot) {
                    Some(Value::Node(id)) => {
                        nodes.insert(*id);
                    }
                    Some(Value::Edge(id)) => {
                        edges.insert(*id);
                    }
                    _ => {}
                }
            }
        }
    }
    for e in edges {
        if graph.delete_edge(e) {
            stats.relationships_deleted += 1;
        }
    }
    for n in nodes {
        let before = graph.edge_count();
        if graph.delete_node(n) {
            stats.nodes_deleted += 1;
            stats.relationships_deleted += before - graph.edge_count();
        }
    }
}

/// Execute a `SET` op.
pub fn run_set(
    items: &[SetItem],
    records: &[Record],
    bindings: &Bindings,
    graph: &mut Graph,
    stats: &mut QueryStats,
) {
    for record in records {
        for item in items {
            let Some(slot) = bindings.slot(&item.variable) else { continue };
            let value = eval(&item.value, record, bindings, graph);
            let updated = match record.get(slot) {
                Some(Value::Node(id)) => graph.set_node_property(*id, &item.property, value),
                Some(Value::Edge(id)) => graph.set_edge_property(*id, &item.property, value),
                _ => false,
            };
            if updated {
                stats.properties_set += 1;
            }
        }
    }
}

/// True if evaluating the expression can depend on the current record
/// (i.e. it reads a bound variable or property somewhere).
fn reads_record(expr: &Expr) -> bool {
    match expr {
        Expr::Variable(_) | Expr::Property(_, _) => true,
        Expr::Literal(_) | Expr::Parameter(_) => false,
        Expr::Unary(_, inner) => reads_record(inner),
        Expr::Binary(_, lhs, rhs) => reads_record(lhs) || reads_record(rhs),
        Expr::List(items) => items.iter().any(reads_record),
        Expr::FunctionCall { args, .. } => args.iter().any(reads_record),
    }
}

/// Execute a `CALL` op: run the registered procedure once per incoming record
/// (arguments are evaluated against that record) and emit one output record
/// per produced row, with the yielded columns written into their slots.
/// When every argument is record-independent (the common `CALL algo.x(…)`
/// with literal arguments) the algorithm runs once and its rows are reused
/// for every incoming record.
pub fn run_procedure(
    name: &str,
    args: &[Expr],
    outputs: &[(usize, usize)],
    records: Vec<Record>,
    bindings: &Bindings,
    graph: &Graph,
) -> Result<Vec<Record>, crate::error::QueryError> {
    let proc = crate::exec::procedures::find(name).ok_or_else(|| {
        crate::error::QueryError::Internal(format!("procedure `{name}` vanished after planning"))
    })?;
    let constant_args = !args.iter().any(reads_record);
    let mut cached_rows: Option<Vec<Vec<Value>>> = None;
    let mut out = Vec::new();
    for record in &records {
        if cached_rows.is_none() {
            let argv: Vec<Value> = args.iter().map(|a| eval(a, record, bindings, graph)).collect();
            cached_rows = Some((proc.run)(graph, &argv)?);
        }
        let rows = cached_rows.as_ref().expect("computed above");
        for row in rows {
            let mut r = record.clone();
            ensure_len(&mut r, bindings);
            for &(col, slot) in outputs {
                r[slot] = row[col].clone();
            }
            out.push(r);
        }
        if !constant_args {
            cached_rows = None;
        }
    }
    Ok(out)
}

/// Execute an `UNWIND` op.
pub fn run_unwind(
    list: &Expr,
    slot: usize,
    records: Vec<Record>,
    bindings: &Bindings,
    graph: &Graph,
) -> Vec<Record> {
    let mut out = Vec::new();
    for record in records {
        let value = eval(list, &record, bindings, graph);
        let items = match value {
            Value::List(items) => items,
            Value::Null => continue,
            single => vec![single],
        };
        for item in items {
            let mut r = record.clone();
            ensure_len(&mut r, bindings);
            r[slot] = item;
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_reexport_compiles() {
        // A smoke test that the cypher AST types used above stay in sync.
        let lit = cypher::Literal::Integer(1);
        assert_eq!(Value::from(&lit), Value::Int(1));
    }

    #[test]
    fn op_descriptions_for_explain() {
        let scan = PlanOp::AllNodeScan { slot: 0, var: "n".into() };
        assert!(scan.describe().contains("All Node Scan"));
        let traverse = PlanOp::Traverse {
            src_slot: 0,
            dst_slot: 1,
            dst_var: "m".into(),
            edge_slot: None,
            rel_types: vec!["KNOWS".into()],
            direction: Direction::Outgoing,
            min_hops: 1,
            max_hops: Some(3),
            expand_into: false,
        };
        let text = traverse.describe();
        assert!(text.contains("Conditional Traverse"));
        assert!(text.contains("KNOWS"));
        assert!(text.contains("*1..3"));
    }
}
