//! Query result sets and execution statistics, mirroring what `GRAPH.QUERY`
//! returns to a Redis client (header, rows, statistics footer).

use crate::value::Value;
use std::time::Duration;

/// Mutation statistics reported after a query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryStats {
    /// Nodes created by the query.
    pub nodes_created: usize,
    /// Relationships created by the query.
    pub relationships_created: usize,
    /// Properties set by the query.
    pub properties_set: usize,
    /// Nodes deleted by the query.
    pub nodes_deleted: usize,
    /// Relationships deleted by the query.
    pub relationships_deleted: usize,
    /// Labels added to nodes.
    pub labels_added: usize,
    /// Wall-clock execution time.
    pub execution_time: Duration,
    /// Whether the execution reused a cached plan skeleton instead of
    /// parsing and planning the query text from scratch. Set by the server's
    /// plan cache; always `false` for plans built directly by [`crate::Graph`].
    pub cached: bool,
}

/// The result of executing a query.
#[derive(Debug, Clone, Default)]
pub struct ResultSet {
    /// Column names, in projection order. Empty for pure-write queries.
    pub columns: Vec<String>,
    /// Result rows; each row has one value per column.
    pub rows: Vec<Vec<Value>>,
    /// Mutation/timing statistics.
    pub stats: QueryStats,
}

impl ResultSet {
    /// Create an empty result set (write-only query).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single scalar of a one-row one-column result (e.g. `RETURN count(t)`),
    /// if the shape matches.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// Render as an aligned text table (used by the examples and the server's
    /// verbose replies).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if !self.columns.is_empty() {
            out.push_str(&self.columns.join(" | "));
            out.push('\n');
            out.push_str(&"-".repeat(self.columns.join(" | ").len().max(4)));
            out.push('\n');
            for row in &self.rows {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                out.push_str(&cells.join(" | "));
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "{} row(s); created {} nodes, {} relationships; set {} properties; deleted {} nodes, {} relationships; {:.3} ms\n",
            self.rows.len(),
            self.stats.nodes_created,
            self.stats.relationships_created,
            self.stats.properties_set,
            self.stats.nodes_deleted,
            self.stats.relationships_deleted,
            self.stats.execution_time.as_secs_f64() * 1e3,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_extraction() {
        let rs = ResultSet {
            columns: vec!["count(t)".into()],
            rows: vec![vec![Value::Int(7)]],
            stats: QueryStats::default(),
        };
        assert_eq!(rs.scalar(), Some(&Value::Int(7)));
        assert_eq!(rs.len(), 1);

        let multi = ResultSet {
            columns: vec!["a".into()],
            rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            stats: QueryStats::default(),
        };
        assert_eq!(multi.scalar(), None);
    }

    #[test]
    fn table_rendering_includes_header_and_stats() {
        let rs = ResultSet {
            columns: vec!["name".into(), "age".into()],
            rows: vec![vec![Value::Str("ann".into()), Value::Int(34)]],
            stats: QueryStats { nodes_created: 2, ..Default::default() },
        };
        let table = rs.to_table();
        assert!(table.contains("name | age"));
        assert!(table.contains("ann | 34"));
        assert!(table.contains("created 2 nodes"));
    }

    #[test]
    fn empty_result_set() {
        let rs = ResultSet::empty();
        assert!(rs.is_empty());
        assert!(rs.to_table().contains("0 row(s)"));
    }
}
